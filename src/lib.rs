//! # mimose
//!
//! A full-system Rust reproduction of **"Exploiting Input Tensor Dynamics in
//! Activation Checkpointing for Efficient Training on GPU"** (Liao, Li, Yang
//! et al., IPDPS 2023) — the *Mimose* input-aware checkpointing planner,
//! every baseline planner it is evaluated against, and the simulated
//! training substrate (operator cost model, model graphs, GPU memory arena,
//! data pipeline) the evaluation runs on.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`tensor`] — shapes and dtypes;
//! * [`ops`] — operator taxonomy, shape inference, FLOP/byte costs;
//! * [`models`] — BERT/RoBERTa/T5/ResNet/Swin block graphs;
//! * [`simgpu`] — virtual clock, device profile, memory arena;
//! * [`data`] — synthetic datasets with the paper's input dynamics;
//! * [`estimator`] — polynomial/SVR/tree/GBT regression library;
//! * [`planner`] — plan types, policy trait, Sublinear/Checkmate/MONeT/DTR;
//! * [`core`] — Mimose itself (collector, estimator, scheduler, cache);
//! * [`exec`] — the iteration executor: [`Session`](exec::Session),
//!   trainer, recovery ladder;
//! * [`cluster`] — the multi-device, multi-job fleet scheduler.
//!
//! The experiment harness regenerating every table/figure lives in the
//! `mimose-exp` crate (binaries only; it consumes this facade).
//!
//! ## Quickstart
//!
//! ```
//! use mimose::prelude::*;
//!
//! // `.optimize()` runs the graph-pass pipeline (dedup, DCE, in-place
//! // stash elision) — sessions plan against the shrunk footprint.
//! let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
//! let dataset = presets::glue_qqp();
//! let mut session = Session::builder(&model, &dataset)
//!     .policy(MimosePolicy::new(MimoseConfig::with_budget(5 << 30)))
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! session.run(50).unwrap();
//! assert_eq!(session.summary().oom_iters, 0);
//! assert!(session.summary().max_peak_bytes <= 5 << 30);
//! ```

pub use mimose_audit as audit;
pub use mimose_cluster as cluster;
pub use mimose_core as core;
pub use mimose_data as data;
pub use mimose_estimator as estimator;
pub use mimose_exec as exec;
pub use mimose_models as models;
pub use mimose_ops as ops;
pub use mimose_planner as planner;
pub use mimose_rng as rng;
pub use mimose_runtime as runtime;
pub use mimose_simgpu as simgpu;
pub use mimose_tensor as tensor;

/// The types most programs touch, importable in one line.
///
/// Covers the session front door, the policy zoo, the fleet scheduler,
/// and the handful of substrate types (device, dataset, model builders)
/// every experiment needs.
pub mod prelude {
    pub use mimose_chaos::{
        DeviceFault, FaultInjector, FaultSpec, FleetFaultPlan, TimedDeviceFault,
    };
    pub use mimose_cluster::{
        ArrivalProcess, Cluster, ClusterBuilder, ClusterError, ClusterReport, ClusterSpec,
        DevicePool, FleetEvent, FleetEventKind, JobOutcome, JobPolicy, JobSpec, Mode,
        SchedulePolicy, SloRollup, Workload,
    };
    pub use mimose_core::{MimoseConfig, MimosePolicy};
    pub use mimose_data::{presets, Dataset};
    pub use mimose_exec::{
        BlockIteration, DtrIteration, ExecError, RecoveryConfig, Session, SessionBuilder,
        SessionCheckpoint, Trainer,
    };
    pub use mimose_models::builders::{bert_base, resnet50_od, roberta_base, t5_base, BertHead};
    pub use mimose_models::{
        GraphDelta, ModelGraph, ModelInput, ModelProfile, OptimizedGraph, PassPipeline,
    };
    pub use mimose_planner::{MemoryPolicy, PolicyKind};
    pub use mimose_runtime::{IterationReport, RunSummary};
    pub use mimose_simgpu::DeviceProfile;
}
