//! # mimose
//!
//! A full-system Rust reproduction of **"Exploiting Input Tensor Dynamics in
//! Activation Checkpointing for Efficient Training on GPU"** (Liao, Li, Yang
//! et al., IPDPS 2023) — the *Mimose* input-aware checkpointing planner,
//! every baseline planner it is evaluated against, and the simulated
//! training substrate (operator cost model, model graphs, GPU memory arena,
//! data pipeline) the evaluation runs on.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`tensor`] — shapes and dtypes;
//! * [`ops`] — operator taxonomy, shape inference, FLOP/byte costs;
//! * [`models`] — BERT/RoBERTa/T5/ResNet/Swin block graphs;
//! * [`simgpu`] — virtual clock, device profile, memory arena;
//! * [`data`] — synthetic datasets with the paper's input dynamics;
//! * [`estimator`] — polynomial/SVR/tree/GBT regression library;
//! * [`planner`] — plan types, policy trait, Sublinear/Checkmate/MONeT/DTR;
//! * [`core`] — Mimose itself (collector, estimator, scheduler, cache);
//! * [`exec`] — the iteration executor and trainer;
//! * [`exp`] — the experiment harness regenerating every table/figure.
//!
//! ## Quickstart
//!
//! ```
//! use mimose::core::{MimoseConfig, MimosePolicy};
//! use mimose::data::presets;
//! use mimose::exec::Trainer;
//! use mimose::models::builders::{bert_base, BertHead};
//!
//! let model = bert_base(BertHead::Classification { labels: 2 });
//! let dataset = presets::glue_qqp();
//! let mut policy = MimosePolicy::new(MimoseConfig::with_budget(5 << 30));
//! let mut trainer = Trainer::new(&model, &dataset, &mut policy, 42);
//! let summary = trainer.run_summary(50);
//! assert_eq!(summary.oom_iters, 0);
//! assert!(summary.max_peak_bytes <= 5 << 30);
//! ```

pub use mimose_audit as audit;
pub use mimose_core as core;
pub use mimose_data as data;
pub use mimose_estimator as estimator;
pub use mimose_exec as exec;
pub use mimose_exp as exp;
pub use mimose_models as models;
pub use mimose_ops as ops;
pub use mimose_planner as planner;
pub use mimose_rng as rng;
pub use mimose_runtime as runtime;
pub use mimose_simgpu as simgpu;
pub use mimose_tensor as tensor;
