//! Quickstart: train BERT-base on a GLUE-QQP-like stream under a 5 GiB
//! budget with Mimose, and watch the planner move from sheltered collection
//! to responsive per-input planning.
//!
//! Run with: `cargo run --release --example quickstart`

use mimose::core::{MimoseConfig, MimosePolicy, Phase};
use mimose::data::presets;
use mimose::exec::Trainer;
use mimose::models::builders::{bert_base, BertHead};
use mimose::planner::MemoryPolicy;

fn main() {
    let budget = 5usize << 30;
    let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
    let dataset = presets::glue_qqp();

    println!(
        "model: {} ({:.1} M params), dataset: {} (batch {})",
        model.name,
        model.param_count() as f64 / 1e6,
        dataset.name(),
        dataset.batch_size()
    );
    println!("budget: {} GiB\n", budget >> 30);

    let mut policy = MimosePolicy::new(MimoseConfig::with_budget(budget));
    let mut trainer = Trainer::new(&model, &dataset, &mut policy, 42);

    println!("iter  seqlen  phase       peak(GiB)  ckpt  time(ms)");
    for (i, report) in trainer
        .run(40)
        .expect("training run")
        .into_iter()
        .enumerate()
    {
        let phase = if report.shuttle {
            "sheltered "
        } else {
            "responsive"
        };
        println!(
            "{:>4}  {:>6}  {}  {:>9.2}  {:>4}  {:>8.1}",
            i,
            report.input.per_sample_extent(),
            phase,
            report.peak_bytes as f64 / (1u64 << 30) as f64,
            report.dropped_units,
            report.time.total_ns() as f64 / 1e6,
        );
        assert!(report.ok(), "iteration {i} ran out of memory");
        assert!(report.peak_bytes <= budget, "budget violated at iter {i}");
    }

    assert_eq!(policy.phase(), Phase::Responsive);
    let stats = policy.stats();
    println!(
        "\ncollected {} shuttle iterations, generated {} plans ({} cache hits)",
        stats.shuttle_iters, stats.plans_generated, stats.cache_hits
    );
    let (lo, hi) = stats.plan_ns_range();
    println!(
        "plan generation latency: {:.0}~{:.0} us (the paper's sub-millisecond claim)",
        lo as f64 / 1e3,
        hi as f64 / 1e3
    );
    let _ = policy.budget_bytes();
}
