//! Estimator playground: fit every regression family on shuttle-style
//! samples from T5-base and inspect accuracy — a hands-on version of the
//! paper's Table IV study, plus the §IV-C taxonomy behind it.
//!
//! Run with: `cargo run --release --example estimator_playground`

use mimose::data::presets;
use mimose::estimator::{
    metrics, DecisionTreeRegressor, GbtRegressor, PolynomialRegressor, Regressor, SvrRegressor,
};
use mimose::models::builders::t5_base;
use mimose::ops::OpCategory;

fn main() {
    let model = t5_base();
    let dataset = presets::un_pc();

    // §IV-C: operator taxonomy → maximum polynomial degree of memory in the
    // input size.
    println!("operator categories and their memory growth (paper §IV-C):");
    for c in [
        OpCategory::Elementwise,
        OpCategory::FixedOutput,
        OpCategory::ImplicitReduction,
        OpCategory::Structure,
    ] {
        println!("  {:<20} degree ≤ {}", c.to_string(), c.max_poly_degree());
    }
    println!();

    // Collect (input size, total activation bytes) like the shuttle
    // collector would.
    let mut stream = dataset.stream(15);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while xs.len() < 10 {
        let input = stream.next_batch();
        if !seen.insert(input.input_size()) {
            continue;
        }
        let p = model.profile(&input).expect("validates");
        xs.push(p.input_size as f64);
        ys.push(p.total_act_bytes() as f64);
    }

    // Held-out evaluation points.
    let mut test_stream = dataset.stream(99);
    let mut tx = Vec::new();
    let mut ty = Vec::new();
    for _ in 0..25 {
        let input = test_stream.next_batch();
        let p = model.profile(&input).expect("validates");
        tx.push(p.input_size as f64);
        ty.push(p.total_act_bytes() as f64);
    }

    let mut candidates: Vec<Box<dyn Regressor>> = vec![
        Box::new(PolynomialRegressor::new(1)),
        Box::new(PolynomialRegressor::new(2)),
        Box::new(PolynomialRegressor::new(3)),
        Box::new(SvrRegressor::default_params()),
        Box::new(DecisionTreeRegressor::default_params()),
        Box::new(GbtRegressor::default_params()),
    ];

    println!("family             held-out rel. error   r^2");
    for m in candidates.iter_mut() {
        m.fit(&xs, &ys).expect("fit succeeds");
        let pred: Vec<f64> = tx.iter().map(|&x| m.predict(x)).collect();
        println!(
            "{:<18} {:>18.3}%  {:>6.3}",
            m.name(),
            metrics::mean_relative_error(&pred, &ty) * 100.0,
            metrics::r_squared(&pred, &ty)
        );
    }
    println!("\nThe quadratic polynomial is exact because T5 activation bytes");
    println!("are (at most) quadratic in the input size — the Fig 8 argument.");
}
