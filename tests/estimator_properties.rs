//! Property tests on the regression library: the quadratic polynomial must
//! recover arbitrary quadratics exactly (the property §IV-C relies on), and
//! every family must stay finite on arbitrary valid inputs. Cases are drawn
//! from a seeded generator so failures reproduce exactly.

use mimose::estimator::{
    DecisionTreeRegressor, GbtRegressor, PolynomialRegressor, Regressor, SvrRegressor,
};
use mimose::rng::{Rng, SeedableRng, StdRng};

#[test]
fn quadratic_fit_recovers_random_quadratics() {
    let mut rng = StdRng::seed_from_u64(0xE571_0001);
    for _ in 0..64 {
        let c0 = rng.gen_range(1.0e3f64..1.0e9);
        let c1 = rng.gen_range(0.0f64..1.0e4);
        let c2 = rng.gen_range(0.0f64..10.0);
        let x0 = rng.gen_range(100.0f64..10_000.0);
        let xs: Vec<f64> = (0..10).map(|i| x0 * (1.0 + i as f64 * 0.35)).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let mut p = PolynomialRegressor::new(2);
        p.fit(&xs, &ys).expect("fit succeeds");
        // Predict inside and outside the training range.
        for &x in &[x0 * 0.5, x0 * 2.0, x0 * 6.0] {
            let want = c0 + c1 * x + c2 * x * x;
            let got = p.predict(x);
            assert!(
                (got - want).abs() / want.abs().max(1.0) < 1e-4,
                "x={x}: got {got}, want {want}"
            );
        }
    }
}

#[test]
fn linear_fit_recovers_random_lines() {
    let mut rng = StdRng::seed_from_u64(0xE571_0002);
    for _ in 0..64 {
        let c0 = rng.gen_range(-1.0e6f64..1.0e6);
        let c1 = rng.gen_range(-100.0f64..100.0);
        let xs: Vec<f64> = (1..=8).map(|i| i as f64 * 137.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x).collect();
        let mut p = PolynomialRegressor::new(1);
        p.fit(&xs, &ys).expect("fit succeeds");
        let x = 555.0;
        let want = c0 + c1 * x;
        assert!((p.predict(x) - want).abs() < 1e-3 * (want.abs() + 1.0));
    }
}

#[test]
fn all_families_stay_finite() {
    let mut rng = StdRng::seed_from_u64(0xE571_0003);
    for _ in 0..24 {
        let n = rng.gen_range(6usize..20);
        let seed_ys: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0f64..1.0e9)).collect();
        let xs: Vec<f64> = (0..seed_ys.len())
            .map(|i| 100.0 + i as f64 * 250.0)
            .collect();
        let families: Vec<Box<dyn Regressor>> = vec![
            Box::new(PolynomialRegressor::new(2)),
            Box::new(SvrRegressor::default_params()),
            Box::new(DecisionTreeRegressor::default_params()),
            Box::new(GbtRegressor::new(25, 0.1, 3)),
        ];
        for mut m in families {
            m.fit(&xs, &seed_ys).expect("fit succeeds");
            for &x in &[50.0, 1_000.0, 10_000.0] {
                assert!(m.predict(x).is_finite(), "{} produced non-finite", m.name());
            }
        }
    }
}

#[test]
fn tree_predictions_stay_within_target_range() {
    let mut rng = StdRng::seed_from_u64(0xE571_0004);
    for _ in 0..32 {
        let n = rng.gen_range(4usize..30);
        let ys: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..1.0e6)).collect();
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let mut t = DecisionTreeRegressor::default_params();
        t.fit(&xs, &ys).expect("fit succeeds");
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &x in &[-5.0, 3.5, 1_000.0] {
            let p = t.predict(x);
            assert!(
                p >= lo - 1e-9 && p <= hi + 1e-9,
                "prediction {p} outside [{lo},{hi}]"
            );
        }
    }
}
