//! Cross-crate consistency: the planner's analytic peak-memory model and
//! the executor's allocator measurements must agree, and every plan a
//! planner claims feasible must actually execute within budget.
//!
//! The randomized cases are seeded-deterministic (see `mimose::rng`), so
//! failures reproduce exactly.

use mimose::exec::BlockIteration;
use mimose::models::builders::{bert_base, roberta_base, t5_base, BertHead};
use mimose::models::{ModelGraph, ModelInput, ModelProfile};
use mimose::planner::memory_model::{min_feasible_budget, peak_bytes};
use mimose::planner::{CheckmatePolicy, CheckpointPlan, SublinearPolicy};
use mimose::rng::{Rng, SeedableRng, StdRng};
use mimose::simgpu::DeviceProfile;

fn models() -> Vec<(ModelGraph, ModelInput)> {
    vec![
        (
            bert_base(BertHead::Classification { labels: 2 }),
            ModelInput::tokens(32, 200),
        ),
        (
            roberta_base(BertHead::Classification { labels: 1 }),
            ModelInput::tokens(64, 110),
        ),
        (t5_base(), ModelInput::tokens(8, 180)),
    ]
}

fn engine_peak(p: &ModelProfile, plan: &CheckpointPlan) -> usize {
    let dev = DeviceProfile::v100();
    let run = BlockIteration::plan(p, plan)
        .device(&dev)
        .capacity(64 << 30)
        .run();
    assert!(run.report.ok(), "engine OOMed in an unconstrained arena");
    run.report.peak_bytes
}

fn random_mask(rng: &mut StdRng, n: usize) -> CheckpointPlan {
    let mut plan = CheckpointPlan::none(n);
    for i in 0..n {
        plan.set(i, rng.gen::<bool>());
    }
    plan
}

#[test]
fn analytic_peak_matches_engine_for_structured_plans() {
    for (model, input) in models() {
        let p = model.profile(&input).unwrap();
        let n = p.blocks.len();
        for plan in [
            CheckpointPlan::none(n),
            CheckpointPlan::all(n),
            CheckpointPlan::from_indices(n, &[1, 3, 5]).unwrap(),
            CheckpointPlan::from_indices(n, &(1..n - 1).collect::<Vec<_>>()).unwrap(),
        ] {
            let analytic = peak_bytes(&p, &plan);
            let engine = engine_peak(&p, &plan);
            let rel = (engine as f64 - analytic as f64).abs() / analytic as f64;
            assert!(
                rel < 0.002,
                "{} {plan}: engine {engine} vs analytic {analytic}",
                model.name
            );
        }
    }
}

#[test]
fn analytic_peak_matches_engine_for_random_plans() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    let model = bert_base(BertHead::Classification { labels: 2 });
    for _ in 0..24 {
        let seq = rng.gen_range(32usize..332);
        let p = model.profile(&ModelInput::tokens(32, seq)).unwrap();
        let plan = random_mask(&mut rng, 14);
        let analytic = peak_bytes(&p, &plan);
        let engine = engine_peak(&p, &plan);
        let rel = (engine as f64 - analytic as f64).abs() / analytic as f64;
        assert!(rel < 0.002, "seq {seq} {plan}: {engine} vs {analytic}");
    }
}

#[test]
fn feasible_static_plans_execute_within_budget() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    let model = bert_base(BertHead::Classification { labels: 2 });
    for _ in 0..32 {
        let seq = rng.gen_range(100usize..332);
        let budget_gb = rng.gen_range(4usize..12);
        let p = model.profile(&ModelInput::tokens(32, seq)).unwrap();
        let budget = budget_gb << 30;
        if budget < min_feasible_budget(&p) {
            continue; // nothing can fit; skip
        }
        for plan in [
            SublinearPolicy::plan_offline(&p, budget).plan().clone(),
            CheckmatePolicy::plan_offline(&p, budget).plan().clone(),
        ] {
            let engine = engine_peak(&p, &plan);
            assert!(
                engine <= budget,
                "seq {seq} budget {budget_gb} GiB: engine peak {engine}"
            );
        }
    }
}

#[test]
fn checkpointing_never_increases_peak() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    let model = bert_base(BertHead::Classification { labels: 2 });
    let p = model.profile(&ModelInput::tokens(32, 128)).unwrap();
    for _ in 0..64 {
        let mut plan = random_mask(&mut rng, 14);
        let extra = rng.gen_range(0usize..14);
        let before = peak_bytes(&p, &plan);
        plan.set(extra, true);
        let after = peak_bytes(&p, &plan);
        assert!(after <= before, "checkpointing block {extra} raised peak");
    }
}
