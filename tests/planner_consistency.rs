//! Cross-crate consistency: the planner's analytic peak-memory model and
//! the executor's allocator measurements must agree, and every plan a
//! planner claims feasible must actually execute within budget.

use mimose::exec::{run_block_iteration, BlockMode};
use mimose::models::builders::{bert_base, roberta_base, t5_base, BertHead};
use mimose::models::{ModelGraph, ModelInput, ModelProfile};
use mimose::planner::memory_model::{min_feasible_budget, peak_bytes};
use mimose::planner::{CheckmatePolicy, CheckpointPlan, SublinearPolicy};
use mimose::simgpu::DeviceProfile;
use proptest::prelude::*;

fn models() -> Vec<(ModelGraph, ModelInput)> {
    vec![
        (
            bert_base(BertHead::Classification { labels: 2 }),
            ModelInput::tokens(32, 200),
        ),
        (
            roberta_base(BertHead::Classification { labels: 1 }),
            ModelInput::tokens(64, 110),
        ),
        (t5_base(), ModelInput::tokens(8, 180)),
    ]
}

fn engine_peak(p: &ModelProfile, plan: &CheckpointPlan) -> usize {
    let dev = DeviceProfile::v100();
    let run = run_block_iteration(p, BlockMode::Plan(plan), 64 << 30, &dev, 0, 0);
    assert!(run.report.ok(), "engine OOMed in an unconstrained arena");
    run.report.peak_bytes
}

#[test]
fn analytic_peak_matches_engine_for_structured_plans() {
    for (model, input) in models() {
        let p = model.profile(&input).unwrap();
        let n = p.blocks.len();
        for plan in [
            CheckpointPlan::none(n),
            CheckpointPlan::all(n),
            CheckpointPlan::from_indices(n, &[1, 3, 5]),
            CheckpointPlan::from_indices(n, &(1..n - 1).collect::<Vec<_>>()),
        ] {
            let analytic = peak_bytes(&p, &plan);
            let engine = engine_peak(&p, &plan);
            let rel = (engine as f64 - analytic as f64).abs() / analytic as f64;
            assert!(
                rel < 0.002,
                "{} {plan}: engine {engine} vs analytic {analytic}",
                model.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn analytic_peak_matches_engine_for_random_plans(
        mask in prop::collection::vec(any::<bool>(), 14),
        seq in 32usize..332,
    ) {
        let model = bert_base(BertHead::Classification { labels: 2 });
        let p = model.profile(&ModelInput::tokens(32, seq)).unwrap();
        let mut plan = CheckpointPlan::none(14);
        for (i, &m) in mask.iter().enumerate() {
            plan.set(i, m);
        }
        let analytic = peak_bytes(&p, &plan);
        let engine = engine_peak(&p, &plan);
        let rel = (engine as f64 - analytic as f64).abs() / analytic as f64;
        prop_assert!(rel < 0.002, "seq {seq} {plan}: {engine} vs {analytic}");
    }

    #[test]
    fn feasible_static_plans_execute_within_budget(
        seq in 100usize..332,
        budget_gb in 4usize..12,
    ) {
        let model = bert_base(BertHead::Classification { labels: 2 });
        let p = model.profile(&ModelInput::tokens(32, seq)).unwrap();
        let budget = budget_gb << 30;
        if budget < min_feasible_budget(&p) {
            return Ok(()); // nothing can fit; skip
        }
        for plan in [
            SublinearPolicy::plan_offline(&p, budget).plan().clone(),
            CheckmatePolicy::plan_offline(&p, budget).plan().clone(),
        ] {
            let engine = engine_peak(&p, &plan);
            prop_assert!(
                engine <= budget,
                "seq {seq} budget {budget_gb} GiB: engine peak {engine}"
            );
        }
    }

    #[test]
    fn checkpointing_never_increases_peak(
        base_mask in prop::collection::vec(any::<bool>(), 14),
        extra in 0usize..14,
    ) {
        let model = bert_base(BertHead::Classification { labels: 2 });
        let p = model.profile(&ModelInput::tokens(32, 128)).unwrap();
        let mut plan = CheckpointPlan::none(14);
        for (i, &m) in base_mask.iter().enumerate() {
            plan.set(i, m);
        }
        let before = peak_bytes(&p, &plan);
        plan.set(extra, true);
        let after = peak_bytes(&p, &plan);
        prop_assert!(after <= before, "checkpointing block {extra} raised peak");
    }
}
