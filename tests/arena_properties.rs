//! Property tests on the memory-arena substrate: no byte is ever lost, free
//! ranges stay disjoint and coalesced, and fragmentation accounting is
//! consistent under arbitrary alloc/free interleavings.

use mimose::simgpu::{AllocId, Arena};
use proptest::prelude::*;

/// A random allocator script: sizes to allocate, and for each step whether
/// to free a previously live allocation (chosen by index).
#[derive(Debug, Clone)]
enum Step {
    Alloc(usize),
    FreeNth(usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (1usize..512 * 1024).prop_map(Step::Alloc),
            (0usize..64).prop_map(Step::FreeNth),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn invariants_hold_under_random_scripts(script in steps()) {
        let mut arena = Arena::new(8 << 20);
        let mut live: Vec<AllocId> = Vec::new();
        for step in script {
            match step {
                Step::Alloc(sz) => {
                    if let Ok(id) = arena.alloc(sz) {
                        live.push(id);
                    }
                }
                Step::FreeNth(n) => {
                    if !live.is_empty() {
                        let id = live.swap_remove(n % live.len());
                        arena.free(id);
                    }
                }
            }
            arena.check_invariants().expect("invariant violated");
            prop_assert!(arena.used_bytes() <= arena.capacity());
            prop_assert!(arena.largest_free() <= arena.free_bytes());
            prop_assert_eq!(
                arena.fragmentation_bytes(),
                arena.free_bytes() - arena.largest_free()
            );
        }
        // Free everything: the arena must return to one pristine range.
        for id in live {
            arena.free(id);
        }
        arena.check_invariants().expect("invariant violated after drain");
        prop_assert_eq!(arena.used_bytes(), 0);
        prop_assert_eq!(arena.largest_free(), arena.capacity());
        prop_assert_eq!(arena.fragmentation_bytes(), 0);
    }

    #[test]
    fn stats_are_monotone(script in steps()) {
        let mut arena = Arena::new(4 << 20);
        let mut live: Vec<AllocId> = Vec::new();
        let mut prev_peak = 0usize;
        for step in script {
            match step {
                Step::Alloc(sz) => {
                    if let Ok(id) = arena.alloc(sz) {
                        live.push(id);
                    }
                }
                Step::FreeNth(n) => {
                    if !live.is_empty() {
                        let id = live.swap_remove(n % live.len());
                        arena.free(id);
                    }
                }
            }
            let stats = arena.stats();
            prop_assert!(stats.peak_used >= prev_peak);
            prop_assert!(stats.peak_used >= arena.used_bytes());
            prop_assert!(stats.peak_extent <= arena.capacity());
            prop_assert!(stats.peak_footprint >= stats.peak_used);
            prev_peak = stats.peak_used;
        }
    }

    #[test]
    fn alloc_sizes_are_aligned_and_sufficient(sz in 1usize..1_000_000) {
        let mut arena = Arena::new(16 << 20);
        let id = arena.alloc(sz).expect("fits");
        let got = arena.size_of(id).expect("live");
        prop_assert!(got >= sz);
        prop_assert_eq!(got % 512, 0);
    }
}
