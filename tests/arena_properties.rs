//! Property tests on the memory-arena substrate: no byte is ever lost, free
//! ranges stay disjoint and coalesced, and fragmentation accounting is
//! consistent under arbitrary alloc/free interleavings.
//!
//! The randomized scripts are seeded-deterministic (see `mimose::rng`), so
//! failures reproduce exactly.

use mimose::audit::{audit_trace, has_errors};
use mimose::rng::{Rng, SeedableRng, StdRng};
use mimose::simgpu::{AllocId, AllocPolicy, Arena};

/// A random allocator script: sizes to allocate, and for each step whether
/// to free a previously live allocation (chosen by index).
#[derive(Debug, Clone)]
enum Step {
    Alloc(usize),
    FreeNth(usize),
}

fn random_script(rng: &mut StdRng, len: usize) -> Vec<Step> {
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.55) {
                Step::Alloc(rng.gen_range(1usize..512 * 1024))
            } else {
                Step::FreeNth(rng.gen_range(0usize..64))
            }
        })
        .collect()
}

fn run_script(arena: &mut Arena, script: &[Step], mut each: impl FnMut(&Arena)) -> Vec<AllocId> {
    let mut live: Vec<AllocId> = Vec::new();
    for step in script {
        match *step {
            Step::Alloc(sz) => {
                if let Ok(id) = arena.alloc(sz) {
                    live.push(id);
                }
            }
            Step::FreeNth(n) => {
                if !live.is_empty() {
                    let id = live.swap_remove(n % live.len());
                    arena.free(id);
                }
            }
        }
        each(arena);
    }
    live
}

#[test]
fn invariants_hold_under_random_scripts() {
    let mut rng = StdRng::seed_from_u64(0xA3EA_0001);
    for _ in 0..48 {
        let len = 1 + rng.gen_range(0usize..200);
        let script = random_script(&mut rng, len);
        let mut arena = Arena::new(8 << 20);
        let live = run_script(&mut arena, &script, |arena| {
            arena.check_invariants().expect("invariant violated");
            assert!(arena.used_bytes() <= arena.capacity());
            assert!(arena.largest_free() <= arena.free_bytes());
            assert_eq!(
                arena.fragmentation_bytes(),
                arena.free_bytes() - arena.largest_free()
            );
        });
        // Free everything: the arena must return to one pristine range.
        for id in live {
            arena.free(id);
        }
        arena
            .check_invariants()
            .expect("invariant violated after drain");
        assert_eq!(arena.used_bytes(), 0);
        assert_eq!(arena.largest_free(), arena.capacity());
        assert_eq!(arena.fragmentation_bytes(), 0);
    }
}

#[test]
fn stats_are_monotone() {
    let mut rng = StdRng::seed_from_u64(0xA3EA_0002);
    for _ in 0..48 {
        let len = 1 + rng.gen_range(0usize..200);
        let script = random_script(&mut rng, len);
        let mut arena = Arena::new(4 << 20);
        let mut prev_peak = 0usize;
        run_script(&mut arena, &script, |arena| {
            let stats = arena.stats();
            assert!(stats.peak_used >= prev_peak);
            assert!(stats.peak_used >= arena.used_bytes());
            assert!(stats.peak_extent <= arena.capacity());
            assert!(stats.peak_footprint >= stats.peak_used);
            prev_peak = stats.peak_used;
        });
    }
}

#[test]
fn alloc_sizes_are_aligned_and_sufficient() {
    let mut rng = StdRng::seed_from_u64(0xA3EA_0003);
    for _ in 0..256 {
        let sz = rng.gen_range(1usize..1_000_000);
        let mut arena = Arena::new(16 << 20);
        let id = arena.alloc(sz).expect("fits");
        let got = arena.size_of(id).expect("live");
        assert!(got >= sz);
        assert_eq!(got % 512, 0);
    }
}

/// Differential check: random alloc/free scripts, replayed through the
/// trace auditor's independent shadow allocator, must produce zero
/// error-severity diagnostics under both fit policies — the arena and the
/// auditor derive the free-space structure by entirely different code
/// paths, so agreement here pins down coalescing, alignment, range
/// accounting, and the `ArenaStats` high-watermarks all at once.
#[test]
fn trace_audit_is_clean_for_both_fit_policies() {
    for (policy, seed) in [
        (AllocPolicy::FirstFit, 0xD1FF_0001u64),
        (AllocPolicy::BestFit, 0xD1FF_0002u64),
    ] {
        let mut rng = StdRng::seed_from_u64(seed);
        for case in 0..32 {
            // A small arena so OOM (and fragmentation-OOM) paths are hit too.
            let mut arena = Arena::with_policy(2 << 20, policy);
            arena.set_tracing(true);
            let len = 1 + rng.gen_range(0usize..300);
            let mut script = random_script(&mut rng, len);
            // Guarantee at least one allocation so every trace has content.
            script.insert(0, Step::Alloc(4096));
            let live = run_script(&mut arena, &script, |_| {});
            // Occasionally drain or reset so end-of-trace states vary.
            match case % 3 {
                0 => {
                    for id in live {
                        arena.free(id);
                    }
                }
                1 => arena.reset(),
                _ => {}
            }
            let stats = arena.stats();
            let trace = arena.take_trace();
            assert!(
                stats.allocs + stats.oom_events > 0,
                "script exercised nothing"
            );
            let diags = audit_trace(arena.capacity(), &trace, Some(&stats));
            assert!(
                !has_errors(&diags),
                "{policy:?} case {case}: auditor disagrees with arena: {diags:?}"
            );
        }
    }
}
