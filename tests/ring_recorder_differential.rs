//! Differential pin of the ring-buffer recorder against the plain
//! [`EventLog`]: tee'd into the same engine run over the committed seed
//! fixture's scenario grid, the ring must decode back the *identical*
//! event stream, and folding either stream must agree byte for byte —
//! proving the packed encoding is lossless exactly where the recorded
//! default path now relies on it.

use mimose::exec::BlockIteration;
use mimose::models::builders::{bert_base, BertHead};
use mimose::models::{ModelInput, ModelProfile};
use mimose::planner::CheckpointPlan;
use mimose::runtime::{fold_events, EventLog, RingRecorder, Tee};
use mimose::simgpu::DeviceProfile;

fn profile(batch: usize, seq: usize) -> ModelProfile {
    bert_base(BertHead::Classification { labels: 2 })
        .profile(&ModelInput::tokens(batch, seq))
        .expect("fixture input must profile")
}

#[test]
fn ring_decodes_the_exact_stream_and_folds_identically_across_the_seed_grid() {
    let dev = DeviceProfile::v100();
    let cap = 64usize << 30;
    for (batch, seq) in [(32usize, 128usize), (32, 200), (16, 320)] {
        let p = profile(batch, seq);
        let n = p.blocks.len();
        let plans = [
            ("none", CheckpointPlan::none(n)),
            ("all", CheckpointPlan::all(n)),
            (
                "alt",
                CheckpointPlan::from_indices(n, &[1, 3, 5, 7, 9]).expect("indices in range"),
            ),
        ];
        for (pname, plan) in &plans {
            let mut log = EventLog::new();
            let mut ring = RingRecorder::for_blocks(n);
            let mut tee = Tee(&mut log, &mut ring);
            let _run = BlockIteration::plan(&p, plan)
                .device(&dev)
                .capacity(cap)
                .planning_ns(4321)
                .run_into(&mut tee);
            assert_eq!(
                ring.dropped_events(),
                0,
                "bert_b{batch}_s{seq}_plan_{pname}: for_blocks sizing evicted"
            );
            let decoded = ring.decode();
            assert_eq!(
                decoded, log.events,
                "bert_b{batch}_s{seq}_plan_{pname}: decode diverged from the log"
            );
            let ff = fold_events(cap, &decoded);
            let fl = fold_events(cap, &log.events);
            assert_eq!(
                ff.time, fl.time,
                "bert_b{batch}_s{seq}_plan_{pname}: fold clock diverged"
            );
            assert_eq!(ff.peak_used, fl.peak_used);
            assert_eq!(ff.peak_frag, fl.peak_frag);
            assert_eq!(ff.report_extent(), fl.report_extent());
            assert_eq!(ff.allocs, fl.allocs);
            assert_eq!(ff.frees, fl.frees);
        }

        // The shuttle (double-forward) iteration exercises the measurement
        // path's boundary/clock events too.
        let mut log = EventLog::new();
        let mut ring = RingRecorder::for_blocks(n);
        let mut tee = Tee(&mut log, &mut ring);
        let _run = BlockIteration::shuttle(&p)
            .device(&dev)
            .capacity(cap)
            .run_into(&mut tee);
        assert_eq!(
            ring.dropped_events(),
            0,
            "shuttle: for_blocks sizing evicted"
        );
        assert_eq!(
            ring.decode(),
            log.events,
            "bert_b{batch}_s{seq}_shuttle: decode diverged from the log"
        );
    }
}
