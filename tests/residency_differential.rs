//! Differential properties of the incremental residency engine: after any
//! sequence of mutations, [`ResidencyModel::peak`] must equal the original
//! O(L) reference walk over the equivalent plan — the engine is an index,
//! never a second opinion.
//!
//! All cases are seeded-deterministic (see `mimose::rng`), so failures
//! reproduce exactly.

use mimose::models::{BlockProfile, ModelInput, ModelProfile};
use mimose::planner::memory_model::{
    peak_bytes_fine_reference, peak_bytes_reference, recompute_flops, FinePlan,
};
use mimose::planner::{CheckpointPlan, ResidencyModel};
use mimose::rng::{Rng, SeedableRng, StdRng};

/// A random synthetic profile: `n` blocks with independently drawn tensor
/// sizes, including degenerate zero-byte blocks and zero-cost boundaries.
fn random_profile(rng: &mut StdRng, n: usize) -> ModelProfile {
    let blocks = (0..n)
        .map(|i| BlockProfile {
            name: format!("blk{i}"),
            stage: 0,
            index: i,
            act_bytes: if rng.gen_bool(0.1) {
                0
            } else {
                rng.gen_range(1usize..64 << 20)
            },
            out_bytes: rng.gen_range(0usize..8 << 20),
            in_bytes: rng.gen_range(0usize..8 << 20),
            fwd_flops: rng.gen_range(0.0..1e12),
            bwd_flops: rng.gen_range(0.0..2e12),
            fwd_bytes_moved: rng.gen_range(0usize..1 << 20),
            tensors: Vec::new(),
        })
        .collect();
    ModelProfile {
        model: "synthetic".into(),
        input: ModelInput::tokens(1, 1),
        input_size: 1,
        blocks,
        const_bytes: rng.gen_range(0usize..2 << 30),
        param_count: 0,
        input_bytes: rng.gen_range(0usize..64 << 20),
    }
}

fn random_plan(rng: &mut StdRng, n: usize) -> CheckpointPlan {
    let mut plan = CheckpointPlan::none(n);
    for i in 0..n {
        plan.set(i, rng.gen::<bool>());
    }
    plan
}

/// Core differential property: over many random profiles × random flip
/// sequences, the engine's O(1) peak query matches the reference walk after
/// *every* mutation. Well over 1000 randomized flip sequences in total.
#[test]
fn peak_matches_reference_after_every_flip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    let mut sequences = 0usize;
    for _case in 0..150 {
        let n = rng.gen_range(1usize..96);
        let profile = random_profile(&mut rng, n);
        for _seq in 0..8 {
            sequences += 1;
            let mut plan = random_plan(&mut rng, n);
            let mut model = ResidencyModel::from_plan(&profile, &plan);
            assert_eq!(model.peak(), peak_bytes_reference(&profile, &plan));
            for _step in 0..24 {
                let i = rng.gen_range(0usize..n);
                plan.set(i, !plan.is_checkpointed(i));
                model.flip(i);
                assert_eq!(
                    model.peak(),
                    peak_bytes_reference(&profile, &plan),
                    "divergence after flipping block {i} of {n}"
                );
            }
            assert_eq!(model.to_plan(), plan);
            assert_eq!(
                model.recompute_flops(),
                recompute_flops(&profile, &plan),
                "recompute cost diverged from the reference"
            );
        }
    }
    assert!(sequences >= 1000, "only {sequences} sequences exercised");
}

/// Fine-granularity differential: partial drops (MONeT-style) tracked via
/// `set_dropped` match the fine reference walk, including over-drop clamping.
#[test]
fn fine_peak_matches_reference_after_every_mutation() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for _case in 0..120 {
        let n = rng.gen_range(1usize..64);
        let profile = random_profile(&mut rng, n);
        let mut plan = FinePlan::none(n);
        let mut model = ResidencyModel::from_fine(&profile, &plan);
        for _step in 0..32 {
            let i = rng.gen_range(0usize..n);
            // Occasionally request more than the block holds; both the
            // reference walk and the engine clamp to act_bytes.
            let dropped = if rng.gen_bool(0.1) {
                profile.blocks[i].act_bytes + rng.gen_range(0usize..1 << 20)
            } else {
                rng.gen_range(0usize..profile.blocks[i].act_bytes + 1)
            };
            plan.dropped_bytes[i] = dropped;
            model.set_dropped(i, dropped);
            assert_eq!(
                model.peak(),
                peak_bytes_fine_reference(&profile, &plan),
                "fine divergence after dropping {dropped} B from block {i}"
            );
        }
    }
}

/// Undo restores the exact pre-mutation state: peak, plan, and journal
/// behave as a stack regardless of which mutation kind is being undone.
#[test]
fn undo_and_mark_restore_exact_state() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    for _case in 0..100 {
        let n = rng.gen_range(1usize..48);
        let profile = random_profile(&mut rng, n);
        let plan = random_plan(&mut rng, n);
        let mut model = ResidencyModel::from_plan(&profile, &plan);
        let peak0 = model.peak();
        let mark = model.mark();
        let steps = rng.gen_range(1usize..16);
        for _ in 0..steps {
            match rng.gen_range(0u32..3) {
                0 => model.flip(rng.gen_range(0usize..n)),
                1 => {
                    let i = rng.gen_range(0usize..n);
                    let on = rng.gen::<bool>();
                    model.set_checkpointed(i, on);
                }
                _ => {
                    let i = rng.gen_range(0usize..n);
                    let d = rng.gen_range(0usize..profile.blocks[i].act_bytes + 1);
                    model.set_dropped(i, d);
                }
            }
        }
        model.undo_to(mark);
        assert_eq!(model.peak(), peak0, "undo_to did not restore the peak");
        assert_eq!(model.to_plan(), plan, "undo_to did not restore the plan");
    }
}

/// Single-step undo pairs with every mutation, including no-op mutations
/// (`set_checkpointed` to the current state must still journal one entry).
#[test]
fn every_mutation_pairs_with_one_undo() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    for _case in 0..60 {
        let n = rng.gen_range(1usize..32);
        let profile = random_profile(&mut rng, n);
        let mut model = ResidencyModel::from_plan(&profile, &CheckpointPlan::none(n));
        let mut peaks = vec![model.peak()];
        let steps = rng.gen_range(1usize..20);
        for _ in 0..steps {
            let i = rng.gen_range(0usize..n);
            // ~half the time this is a no-op (already in the target state).
            model.set_checkpointed(i, rng.gen::<bool>());
            peaks.push(model.peak());
        }
        for _ in 0..steps {
            assert!(model.undo(), "journal exhausted early");
            peaks.pop();
            assert_eq!(model.peak(), *peaks.last().unwrap());
        }
        assert!(!model.undo(), "journal should be empty");
    }
}

/// Non-mutating what-if queries agree with actually mutating and undoing:
/// `peak_if_kept` / `peak_if_checkpointed` / `peak_if_dropped` are pure
/// reads — they must return exactly the post-mutation peak while leaving
/// peak, plan, and journal untouched.
#[test]
fn what_if_queries_match_mutate_then_undo() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0006);
    for _case in 0..100 {
        let n = rng.gen_range(1usize..64);
        let profile = random_profile(&mut rng, n);
        let plan = random_plan(&mut rng, n);
        let mut model = ResidencyModel::from_plan(&profile, &plan);
        // Drift into a random mixed state so queries run against non-trivial
        // pending suffix adds in the tree.
        for _ in 0..rng.gen_range(0usize..16) {
            let i = rng.gen_range(0usize..n);
            model.set_dropped(i, rng.gen_range(0usize..profile.blocks[i].act_bytes + 2));
        }
        model.commit();
        let peak0 = model.peak();
        let plan0 = model.to_plan();
        for _probe in 0..24 {
            let i = rng.gen_range(0usize..n);
            let (predicted, actual) = match rng.gen_range(0u32..3) {
                0 => {
                    let on = rng.gen::<bool>();
                    let p = model.peak_if_checkpointed(i, on);
                    model.set_checkpointed(i, on);
                    (p, model.peak())
                }
                1 => {
                    let k = rng.gen_range(0usize..profile.blocks[i].act_bytes + 2);
                    let p = model.peak_if_kept(i, k);
                    let clamped = k.min(profile.blocks[i].act_bytes);
                    model.set_dropped(i, profile.blocks[i].act_bytes - clamped);
                    (p, model.peak())
                }
                _ => {
                    let d = rng.gen_range(0usize..profile.blocks[i].act_bytes + 2);
                    let p = model.peak_if_dropped(i, d);
                    model.set_dropped(i, d);
                    (p, model.peak())
                }
            };
            assert_eq!(predicted, actual, "what-if diverged on block {i} of {n}");
            assert!(model.undo());
        }
        assert_eq!(model.peak(), peak0, "what-if probes mutated the peak");
        assert_eq!(model.to_plan(), plan0, "what-if probes mutated the plan");
        assert!(!model.undo(), "what-if probes left journal entries");
    }
}

/// Batched flips land on the same state as the equivalent singles, and
/// `commit` makes the state permanent (undo becomes a no-op).
#[test]
fn apply_batch_matches_singles_and_commit_seals() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0005);
    for _case in 0..60 {
        let n = rng.gen_range(1usize..40);
        let profile = random_profile(&mut rng, n);
        let plan = random_plan(&mut rng, n);
        let batch: Vec<(usize, bool)> = (0..rng.gen_range(1usize..12))
            .map(|_| (rng.gen_range(0usize..n), rng.gen::<bool>()))
            .collect();

        let mut batched = ResidencyModel::from_plan(&profile, &plan);
        batched.apply_batch(&batch);
        let mut singles = ResidencyModel::from_plan(&profile, &plan);
        for &(i, on) in &batch {
            singles.set_checkpointed(i, on);
        }
        assert_eq!(batched.peak(), singles.peak());
        assert_eq!(batched.to_plan(), singles.to_plan());

        batched.commit();
        let sealed = batched.peak();
        assert!(!batched.undo(), "commit must clear the journal");
        assert_eq!(batched.peak(), sealed);
    }
}
