//! Differential properties of the incremental repair rung: across hundreds
//! of randomized bucket walks, every plan the repair pass accepts must be
//! (a) lint-clean under the symbolic schedule sanitizer, (b) within the
//! memory budget by the reference peak walk, (c) within the configured
//! quality ratio of the cold solve's recompute FLOPs, and (d) soundly
//! certified whenever the interval verifier can certify it at all.
//!
//! All cases are seeded-deterministic (see `mimose::rng`), so failures
//! reproduce exactly.

use mimose::audit::{has_errors, lint_plan_schedule};
use mimose::core::{
    covering_flop_lower_bound, repair_plan, GreedyBucketScheduler, RepairConfig, Scheduler,
};
use mimose::models::{BlockProfile, ModelInput, ModelProfile};
use mimose::planner::memory_model::{peak_bytes, recompute_flops};
use mimose::planner::CheckpointPlan;
use mimose::rng::{Rng, SeedableRng, StdRng};
use mimose_verify::{certify, SizeBucket};

/// Per-block growth coefficients: one random model *shape* whose block
/// tensor sizes scale linearly with the input size, like the estimator's
/// fitted polynomials do between neighboring buckets.
struct Shape {
    /// `(act_per_x, out_per_x, flops_per_x)` for each block.
    coef: Vec<(usize, usize, f64)>,
    const_bytes: usize,
}

fn random_shape(rng: &mut StdRng) -> Shape {
    let n = rng.gen_range(8usize..64);
    let coef = (0..n)
        .map(|_| {
            let act = if rng.gen_bool(0.1) {
                0 // boundary-style block: checkpointing it frees nothing
            } else {
                rng.gen_range(1usize << 10..1 << 20)
            };
            let out = rng.gen_range(1usize << 8..1 << 14);
            let flops = rng.gen_range(1e6..1e10);
            (act, out, flops)
        })
        .collect();
    Shape {
        coef,
        const_bytes: rng.gen_range(0usize..256 << 20),
    }
}

/// Instantiate the shape at input size `x` — the profile the estimator
/// would hand the scheduler for that bucket.
fn profile_at(shape: &Shape, x: usize) -> ModelProfile {
    let blocks = shape
        .coef
        .iter()
        .enumerate()
        .map(|(i, &(act, out, flops))| BlockProfile {
            name: format!("b{i}"),
            stage: 0,
            index: i,
            act_bytes: act * x,
            out_bytes: out * x,
            in_bytes: out * x,
            fwd_flops: flops * x as f64,
            bwd_flops: 2.0 * flops * x as f64,
            fwd_bytes_moved: (act + out) * x,
            tensors: Vec::new(),
        })
        .collect();
    ModelProfile {
        model: "synthetic".into(),
        input: ModelInput::tokens(1, x),
        input_size: x,
        blocks,
        const_bytes: shape.const_bytes,
        param_count: 0,
        input_bytes: 1024 * x,
    }
}

/// A feasible budget between the all-checkpoint floor and the no-checkpoint
/// peak; `denom` controls how tight.
fn budget_for(p: &ModelProfile, denom: usize) -> usize {
    let n = p.blocks.len();
    let lo = peak_bytes(p, &CheckpointPlan::all(n));
    let hi = peak_bytes(p, &CheckpointPlan::none(n));
    lo + (hi - lo) / denom
}

/// The core differential: walk input sizes away from a cached bucket and
/// repair its plan at every step, checking each accepted repair against the
/// independent reference implementations. Well over 500 walk steps.
#[test]
fn repaired_plans_are_lint_clean_within_budget_and_near_cold_quality() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0A11);
    let solver = GreedyBucketScheduler::new(0.10);
    let cfg = RepairConfig::default();
    let mut steps = 0usize;
    let mut accepted = 0usize;
    let mut certified = 0usize;
    for _case in 0..80 {
        let shape = random_shape(&mut rng);
        let x0 = rng.gen_range(64usize..256);
        let denom = rng.gen_range(4usize..64);
        let donor_p = profile_at(&shape, x0);
        let donor = solver.schedule(&donor_p, budget_for(&donor_p, denom));
        for _step in 0..8 {
            steps += 1;
            // One bucket-width-ish hop in either direction (≤ 12 %).
            let delta = rng.gen_range(1usize..=x0 / 10 + 1);
            let x = if rng.gen_bool(0.5) {
                x0 + delta
            } else {
                x0.saturating_sub(delta).max(1)
            };
            let p = profile_at(&shape, x);
            let budget = budget_for(&p, denom);
            let Some(plan) = repair_plan(&p, &donor, budget, &cfg) else {
                continue; // the policy falls back to a cold solve
            };
            accepted += 1;

            // (a) Symbolic def-use sanitizer finds nothing.
            let diags = lint_plan_schedule(&plan, "repaired");
            assert!(
                !has_errors(&diags),
                "repaired plan fails the schedule lint: {diags:?}"
            );

            // (b) Reference peak walk stays within budget.
            assert!(
                peak_bytes(&p, &plan) <= budget,
                "repaired plan over budget at x={x}"
            );

            // (c) Quality: within the ratio of the covering lower bound,
            // hence of the cold solve (which can do no better than lb).
            let lb = covering_flop_lower_bound(&p, budget);
            let flops = recompute_flops(&p, &plan);
            assert!(
                flops <= cfg.max_quality_ratio * lb + 1.0,
                "repair missed its own quality gate: {flops} vs lb {lb}"
            );
            let cold = solver.schedule(&p, budget);
            if peak_bytes(&p, &cold) <= budget {
                let cold_flops = recompute_flops(&p, &cold);
                assert!(
                    flops <= cfg.max_quality_ratio * cold_flops + 1.0,
                    "repair recompute {flops} exceeds {}x cold solve {cold_flops}",
                    cfg.max_quality_ratio
                );
            }

            // (d) When the interval verifier certifies the repaired plan,
            // the certificate must be sound: measured peak ≤ bound ≤ budget.
            if let Ok(cert) = certify(
                std::slice::from_ref(&p),
                &plan,
                SizeBucket::new(x, x),
                budget,
            ) {
                certified += 1;
                assert!(cert.peak_upper_bound <= budget);
                assert!(
                    peak_bytes(&p, &plan) <= cert.peak_upper_bound,
                    "certificate bound below the measured peak"
                );
            }
        }
    }
    assert!(steps >= 500, "only {steps} walk steps exercised");
    // Random-density profiles are adversarial for the quality gate (the
    // fractional covering bound is loose when flop densities are wild), so
    // most walks legitimately fall back to a cold solve; the floor only
    // pins that the accepting path stays exercised.
    assert!(
        accepted >= 50,
        "repair accepted only {accepted}/{steps} — the rung is not being exercised"
    );
    assert!(certified > 0, "no repaired plan was ever certifiable");
}

/// Degenerate walks: repairing onto the *same* profile the donor was solved
/// for must always succeed and never regress the donor's own quality.
#[test]
fn repair_onto_the_donor_profile_is_the_identity_up_to_trimming() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0B0B);
    let solver = GreedyBucketScheduler::new(0.10);
    let cfg = RepairConfig::default();
    for _case in 0..40 {
        let shape = random_shape(&mut rng);
        let x = rng.gen_range(64usize..256);
        let p = profile_at(&shape, x);
        let budget = budget_for(&p, rng.gen_range(4usize..64));
        let donor = solver.schedule(&p, budget);
        if peak_bytes(&p, &donor) > budget {
            continue; // greedy itself could not fit; nothing to preserve
        }
        let Some(plan) = repair_plan(&p, &donor, budget, &cfg) else {
            // The only admissible refusal is the quality gate (greedy
            // itself may sit above the covering bound ratio).
            let lb = covering_flop_lower_bound(&p, budget);
            assert!(
                recompute_flops(&p, &donor) > cfg.max_quality_ratio * lb,
                "repair refused a donor that already fits and meets the bound"
            );
            continue;
        };
        assert!(peak_bytes(&p, &plan) <= budget);
        assert!(
            recompute_flops(&p, &plan) <= recompute_flops(&p, &donor) + 1.0,
            "repairing in place made the donor's recompute cost worse"
        );
    }
}
