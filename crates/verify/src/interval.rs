//! Interval-domain abstract interpretation for peak residency.
//!
//! The abstract state is an *envelope profile*: the block-wise join (per-byte
//! channel maximum) of concrete profiles evaluated across an input-size
//! bucket `[lo, hi]`. Because every peak model in `mimose-planner` is
//! monotone in each per-block byte figure (`peak = base + max_i (S(i) +
//! act_i + 2·out_i + in_i)` — sums and maxes of the inputs), evaluating it on
//! the join yields a sound upper bound over everything the envelope covers.
//! The transfer function for checkpointing decisions is the residency
//! segment-tree's `peak_if_*` what-if queries, applied bit by bit.

use std::hash::{Hash, Hasher};

use mimose_models::{ModelProfile, ALLOC_ALIGN};
use mimose_planner::{peak_bytes_hybrid, CheckpointPlan, HybridPlan, ResidencyModel};

use mimose_planner::memory_model::{peak_bytes_fine, FinePlan};

/// A quantized input-size bucket `[lo, hi]`, both ends inclusive — the
/// concretisation of one plan-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SizeBucket {
    /// Smallest input size the bucket covers.
    pub lo: usize,
    /// Largest input size the bucket covers.
    pub hi: usize,
}

impl SizeBucket {
    /// Bucket covering `[lo, hi]` (swapping the ends if reversed).
    #[must_use]
    pub fn new(lo: usize, hi: usize) -> Self {
        SizeBucket {
            lo: lo.min(hi),
            hi: lo.max(hi),
        }
    }

    /// Whether `input_size` lies inside the bucket.
    #[must_use]
    pub fn contains(&self, input_size: usize) -> bool {
        self.lo <= input_size && input_size <= self.hi
    }
}

impl std::fmt::Display for SizeBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Proof that a specific plan stays under a peak-residency bound for every
/// input size in a bucket. `plan_hash` ties the certificate to the exact
/// plan it was derived for, so a cache or admission hit can check validity
/// in O(1): `covers(x) && fits(budget) && matches_hash(h)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafetyCertificate {
    /// Input-size range the bound holds for.
    pub bucket: SizeBucket,
    /// Sound upper bound on peak resident bytes across the bucket.
    pub peak_upper_bound: usize,
    /// Largest single allocation the certified execution can request, in
    /// granule-rounded bytes. Feeds the fragmentation headroom of
    /// [`arena_capacity`](Self::arena_capacity).
    pub largest_alloc: usize,
    /// Hash of the certified plan (see [`plan_hash`]).
    pub plan_hash: u64,
}

impl SafetyCertificate {
    /// Whether the certificate's bucket contains `input_size`.
    #[must_use]
    pub fn covers(&self, input_size: usize) -> bool {
        self.bucket.contains(input_size)
    }

    /// Whether the certified bound fits under `budget` bytes.
    #[must_use]
    pub fn fits(&self, budget: usize) -> bool {
        self.peak_upper_bound <= budget
    }

    /// Arena bytes sufficient to execute the certified plan without
    /// fragmentation-induced OOM: the logical bound, plus the 2 % allocator
    /// headroom the planner factory already grants exact-budget plans, plus
    /// one largest-single-allocation. `peak_upper_bound` bounds *logical*
    /// residency exactly; a real arena additionally fragments its address
    /// space depending on allocation order, which no byte-count analysis can
    /// bound tightly. The largest-allocation term covers the worst hole: a
    /// first-fit arena only fails a request when no free region is large
    /// enough, and extending capacity extends the top free region
    /// contiguously, so one extra largest-allocation of space heals any
    /// single unsatisfiable request the logical bound permits.
    #[must_use]
    pub fn arena_capacity(&self) -> usize {
        self.peak_upper_bound + self.peak_upper_bound / 50 + self.largest_alloc
    }

    /// Whether the certificate was issued for a plan hashing to `hash`.
    #[must_use]
    pub fn matches_hash(&self, hash: u64) -> bool {
        self.plan_hash == hash
    }

    /// Whether the certificate was issued for exactly `plan`.
    #[must_use]
    pub fn matches_plan(&self, plan: &CheckpointPlan) -> bool {
        self.plan_hash == plan_hash(plan)
    }
}

impl std::fmt::Display for SafetyCertificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cert{{bucket: {}, peak ≤ {} B, plan: {:#018x}}}",
            self.bucket, self.peak_upper_bound, self.plan_hash
        )
    }
}

/// Why certification failed. The bound is still reported so callers can
/// measure false-reject rates against dynamic replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// No envelope profiles were supplied.
    EmptyEnvelope,
    /// Envelope profiles or the plan disagree on block count.
    ShapeMismatch {
        /// Block count expected (from the first envelope profile).
        expected: usize,
        /// Mismatching block count found.
        got: usize,
    },
    /// The sound bound exceeds the budget; the plan is not certifiable for
    /// the whole bucket (it may still fit at individual sizes).
    BudgetExceeded {
        /// The sound upper bound computed.
        bound: usize,
        /// The budget it had to fit under.
        budget: usize,
    },
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::EmptyEnvelope => write!(f, "no envelope profiles supplied"),
            CertifyError::ShapeMismatch { expected, got } => {
                write!(f, "block-count mismatch: expected {expected}, got {got}")
            }
            CertifyError::BudgetExceeded { bound, budget } => {
                write!(f, "sound peak bound {bound} B exceeds budget {budget} B")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

/// Stable hash of a checkpoint plan (SipHash over the drop mask).
#[must_use]
pub fn plan_hash(plan: &CheckpointPlan) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    plan.hash(&mut h);
    h.finish()
}

/// Stable hash of a tensor-granular plan (byte counts + FLOP bit patterns).
#[must_use]
pub fn fine_plan_hash(plan: &FinePlan) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    plan.dropped_bytes.hash(&mut h);
    for f in &plan.recompute_flops {
        f.to_bits().hash(&mut h);
    }
    h.finish()
}

/// Stable hash of a hybrid plan (memory-wise it is its checkpoint
/// equivalent, but swap/recompute choices are distinguished).
#[must_use]
pub fn hybrid_plan_hash(plan: &HybridPlan) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for a in &plan.actions {
        (*a as u8).hash(&mut h);
    }
    h.finish()
}

/// Round a byte figure up to the allocator granule, minimum one granule —
/// the arena's accounting for any allocation it actually makes.
fn granule(bytes: usize) -> usize {
    bytes
        .saturating_add(ALLOC_ALIGN - 1)
        .div_euclid(ALLOC_ALIGN)
        .saturating_mul(ALLOC_ALIGN)
        .max(ALLOC_ALIGN)
}

/// Join a non-empty envelope of concrete profiles into the abstract state:
/// per block the channel-wise byte maximum, plus the maxima of the constant
/// and input footprints. Evaluating any monotone peak model on the join
/// soundly bounds its value on every member of the envelope.
///
/// The join's byte figures are rounded to the allocator granule: the arena
/// rounds every allocation up to the 512 B granule (minimum one granule),
/// and while profiling pre-aligns per-block tensor figures, the constant,
/// input and boundary-output footprints are allocated from their raw sizes.
/// Rounding here makes the abstract state dominate the bytes the arena
/// *accounts*, not just the bytes requested — without it a certificate can
/// be a few hundred bytes short of what replay actually consumes.
pub fn join_envelope(envelope: &[ModelProfile]) -> Result<ModelProfile, CertifyError> {
    let Some(first) = envelope.first() else {
        return Err(CertifyError::EmptyEnvelope);
    };
    let n = first.blocks.len();
    let mut join = first.clone();
    for p in &envelope[1..] {
        if p.blocks.len() != n {
            return Err(CertifyError::ShapeMismatch {
                expected: n,
                got: p.blocks.len(),
            });
        }
        join.const_bytes = join.const_bytes.max(p.const_bytes);
        join.input_bytes = join.input_bytes.max(p.input_bytes);
        join.input_size = join.input_size.max(p.input_size);
        for (jb, pb) in join.blocks.iter_mut().zip(&p.blocks) {
            jb.act_bytes = jb.act_bytes.max(pb.act_bytes);
            jb.out_bytes = jb.out_bytes.max(pb.out_bytes);
            jb.in_bytes = jb.in_bytes.max(pb.in_bytes);
            jb.fwd_flops = jb.fwd_flops.max(pb.fwd_flops);
            jb.bwd_flops = jb.bwd_flops.max(pb.bwd_flops);
        }
    }
    // Granule rounding (see above): the channels the engine allocates as
    // single raw-sized allocations get the arena's min-one-granule rule; the
    // activation channel is a sum of already-aligned tensors, so a plain
    // round-up suffices and zero stays zero.
    join.const_bytes = granule(join.const_bytes);
    join.input_bytes = granule(join.input_bytes);
    for jb in join.blocks.iter_mut() {
        jb.out_bytes = granule(jb.out_bytes);
        if jb.act_bytes > 0 {
            jb.act_bytes = granule(jb.act_bytes);
        }
        if jb.in_bytes > 0 {
            jb.in_bytes = granule(jb.in_bytes);
        }
    }
    Ok(join)
}

/// Largest single allocation the engine can request when executing the
/// joined profile: the constant and input footprints plus every per-block
/// channel (activations, boundary output, boundary input — gradients are
/// output-sized). Expects a granule-rounded join.
fn largest_alloc(join: &ModelProfile) -> usize {
    let blocks = join
        .blocks
        .iter()
        .map(|b| b.act_bytes.max(b.out_bytes).max(b.in_bytes))
        .max()
        .unwrap_or(0);
    join.const_bytes.max(join.input_bytes).max(blocks)
}

/// Sound upper bound on peak resident bytes for `plan` across `envelope`,
/// computed by abstract interpretation: start from the all-kept state on the
/// joined profile and apply each checkpoint bit through the residency
/// tree's `peak_if_checkpointed` what-if transfer function.
pub fn peak_upper_bound(
    envelope: &[ModelProfile],
    plan: &CheckpointPlan,
) -> Result<usize, CertifyError> {
    let join = join_envelope(envelope)?;
    if join.blocks.len() != plan.len() {
        return Err(CertifyError::ShapeMismatch {
            expected: join.blocks.len(),
            got: plan.len(),
        });
    }
    let mut model = ResidencyModel::from_plan(&join, &CheckpointPlan::none(plan.len()));
    for i in plan.indices() {
        // Transfer function: query the what-if bound, then commit the bit.
        let after = model.peak_if_checkpointed(i, true);
        model.set_checkpointed(i, true);
        debug_assert_eq!(model.peak(), after, "what-if disagrees with commit");
    }
    Ok(model.peak())
}

/// Certify `plan` for every input size in `bucket` under `budget` bytes.
///
/// `envelope` must contain profiles whose block-wise byte figures bound
/// every concrete profile the bucket can produce (e.g. the bucket endpoints
/// plus any interior extrema of the per-block estimators — the quadratic
/// estimator attains channel extrema only at endpoints or its vertex).
pub fn certify(
    envelope: &[ModelProfile],
    plan: &CheckpointPlan,
    bucket: SizeBucket,
    budget: usize,
) -> Result<SafetyCertificate, CertifyError> {
    let bound = peak_upper_bound(envelope, plan)?;
    if bound > budget {
        return Err(CertifyError::BudgetExceeded { bound, budget });
    }
    Ok(SafetyCertificate {
        bucket,
        peak_upper_bound: bound,
        largest_alloc: largest_alloc(&join_envelope(envelope)?),
        plan_hash: plan_hash(plan),
    })
}

/// [`certify`] for a tensor-granular (MONeT) plan.
pub fn certify_fine(
    envelope: &[ModelProfile],
    plan: &FinePlan,
    bucket: SizeBucket,
    budget: usize,
) -> Result<SafetyCertificate, CertifyError> {
    let join = join_envelope(envelope)?;
    if join.blocks.len() != plan.len() {
        return Err(CertifyError::ShapeMismatch {
            expected: join.blocks.len(),
            got: plan.len(),
        });
    }
    let bound = peak_bytes_fine(&join, plan);
    if bound > budget {
        return Err(CertifyError::BudgetExceeded { bound, budget });
    }
    Ok(SafetyCertificate {
        bucket,
        peak_upper_bound: bound,
        largest_alloc: largest_alloc(&join),
        plan_hash: fine_plan_hash(plan),
    })
}

/// [`certify`] for a hybrid swap/recompute (Capuchin) plan.
pub fn certify_hybrid(
    envelope: &[ModelProfile],
    plan: &HybridPlan,
    bucket: SizeBucket,
    budget: usize,
) -> Result<SafetyCertificate, CertifyError> {
    let join = join_envelope(envelope)?;
    if join.blocks.len() != plan.len() {
        return Err(CertifyError::ShapeMismatch {
            expected: join.blocks.len(),
            got: plan.len(),
        });
    }
    let bound = peak_bytes_hybrid(&join, plan);
    if bound > budget {
        return Err(CertifyError::BudgetExceeded { bound, budget });
    }
    Ok(SafetyCertificate {
        bucket,
        peak_upper_bound: bound,
        largest_alloc: largest_alloc(&join),
        plan_hash: hybrid_plan_hash(plan),
    })
}

/// Certify a DTR-style reactive policy config for every size in the bucket.
///
/// DTR needs no plan: with device capacity at least the no-eviction peak,
/// the engine can never run out even if every eviction is useless, and with
/// less it relies on reactive eviction. The sound (if loose) bound is
/// therefore the joined no-checkpoint peak; the pinned constant + input
/// footprint must additionally fit the eviction budget, since no eviction
/// can reclaim pinned bytes.
pub fn certify_dtr(
    envelope: &[ModelProfile],
    dtr_budget: usize,
    bucket: SizeBucket,
    budget: usize,
) -> Result<SafetyCertificate, CertifyError> {
    let join = join_envelope(envelope)?;
    let pinned = join.const_bytes + join.input_bytes;
    let bound = join.peak_no_checkpoint();
    if pinned > dtr_budget || bound > budget {
        return Err(CertifyError::BudgetExceeded {
            bound: bound.max(pinned),
            budget: budget.min(dtr_budget),
        });
    }
    Ok(SafetyCertificate {
        bucket,
        peak_upper_bound: bound,
        largest_alloc: largest_alloc(&join),
        plan_hash: dtr_budget as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;
    use mimose_planner::memory_model::peak_bytes;

    fn profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(8, seq))
            .unwrap()
    }

    #[test]
    fn join_dominates_every_member() {
        let envelope = [profile(64), profile(128), profile(256)];
        let join = join_envelope(&envelope).unwrap();
        for p in &envelope {
            for (jb, pb) in join.blocks.iter().zip(&p.blocks) {
                assert!(jb.act_bytes >= pb.act_bytes);
                assert!(jb.out_bytes >= pb.out_bytes);
                assert!(jb.in_bytes >= pb.in_bytes);
            }
            assert!(join.const_bytes >= p.const_bytes);
            assert!(join.input_bytes >= p.input_bytes);
        }
    }

    #[test]
    fn bound_matches_direct_peak_on_join_and_dominates_members() {
        let envelope = [profile(64), profile(192)];
        let join = join_envelope(&envelope).unwrap();
        let n = join.blocks.len();
        for plan in [
            CheckpointPlan::none(n),
            CheckpointPlan::all(n),
            CheckpointPlan::from_indices(n, &[1, 4, 7]).unwrap(),
        ] {
            let bound = peak_upper_bound(&envelope, &plan).unwrap();
            assert_eq!(bound, peak_bytes(&join, &plan));
            for p in &envelope {
                assert!(bound >= peak_bytes(p, &plan), "{plan}");
            }
        }
    }

    #[test]
    fn certify_respects_budget() {
        let envelope = [profile(64), profile(128)];
        let n = envelope[0].blocks.len();
        let plan = CheckpointPlan::all(n);
        let bucket = SizeBucket::new(8 * 64, 8 * 128);
        let bound = peak_upper_bound(&envelope, &plan).unwrap();
        let cert = certify(&envelope, &plan, bucket, bound).unwrap();
        assert_eq!(cert.peak_upper_bound, bound);
        assert!(cert.covers(8 * 100));
        assert!(!cert.covers(8 * 200));
        assert!(cert.fits(bound));
        assert!(cert.matches_plan(&plan));
        assert!(!cert.matches_plan(&CheckpointPlan::none(n)));
        let err = certify(&envelope, &plan, bucket, bound - 1).unwrap_err();
        assert_eq!(
            err,
            CertifyError::BudgetExceeded {
                bound,
                budget: bound - 1
            }
        );
    }

    #[test]
    fn shape_mismatch_reported() {
        let envelope = [profile(64)];
        let plan = CheckpointPlan::none(3);
        assert!(matches!(
            certify(&envelope, &plan, SizeBucket::new(1, 2), usize::MAX),
            Err(CertifyError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            join_envelope(&[]),
            Err(CertifyError::EmptyEnvelope)
        ));
    }

    #[test]
    fn dtr_certificate_requires_pinned_fit() {
        let envelope = [profile(64)];
        // The bound works on the granule-rounded join, which dominates the
        // raw member figures.
        let join = join_envelope(&envelope).unwrap();
        let pinned = join.const_bytes + join.input_bytes;
        let bucket = SizeBucket::new(1, 8 * 64);
        assert!(certify_dtr(&envelope, pinned - 1, bucket, usize::MAX).is_err());
        let cert = certify_dtr(&envelope, pinned, bucket, usize::MAX).unwrap();
        assert_eq!(cert.peak_upper_bound, join.peak_no_checkpoint());
        assert!(cert.peak_upper_bound >= envelope[0].peak_no_checkpoint());
    }
}
