//! Pre-execution static analysis for checkpoint plans (`mimose-verify`).
//!
//! Everything in `mimose-audit` is *dynamic*: it replays recorded traces and
//! event streams after an iteration already ran, so a bad plan is only caught
//! once it has cost an OOM and a trip up the recovery ladder. This crate adds
//! the static layer in front of execution:
//!
//! 1. A **schedule sanitizer** ([`sanitize`]) that lowers a plan to its
//!    symbolic forward/backward timeline ([`Schedule`]) and walks the def-use
//!    dataflow — no arena, no engine — flagging use-after-free,
//!    use-after-evict, double-free, recompute-without-live-dependency and
//!    dependency-order violations before anything executes.
//! 2. An **interval-domain abstract interpreter** ([`certify`]) that, given a
//!    quantized input-size bucket `[lo, hi]` and envelope profiles evaluated
//!    across that bucket, computes a sound upper bound on peak residency and
//!    issues a [`SafetyCertificate`] a cache or admission controller can
//!    check in O(1) instead of re-solving.
//!
//! The crate deliberately depends only on `mimose-models` and
//! `mimose-planner` so that `mimose-core` (plan cache) and `mimose-cluster`
//! (admission) can consume certificates without a dependency cycle;
//! `mimose-audit` converts [`Violation`]s into its diagnostic JSON family.

#![warn(missing_docs)]

mod graph;
mod interval;
mod sanitize;
mod schedule;

pub use graph::lint_graph;
pub use interval::{
    certify, certify_dtr, certify_fine, certify_hybrid, fine_plan_hash, hybrid_plan_hash,
    join_envelope, plan_hash, CertifyError, SafetyCertificate, SizeBucket,
};
pub use sanitize::{sanitize, Severity, Violation};
pub use schedule::{SchedOp, Schedule};
