//! Symbolic forward/backward schedules.
//!
//! A [`Schedule`] is the def-use timeline a checkpoint plan *implies*: which
//! activation and boundary tensors are defined, evicted, recomputed and freed
//! in what order. The sanitizer walks this IR symbolically — no arena, no
//! engine — so a malformed schedule is caught before any execution.

use mimose_planner::CheckpointPlan;

/// One step of a symbolic execution schedule, at block granularity.
///
/// Per block `i` the IR tracks two tensors: `act[i]` (the block's internal
/// activations) and `out[i]` (its boundary output, which is block `i+1`'s
/// input). Gradients are implicit: `Backward { block: i }` consumes the
/// gradient produced by `Backward { block: i + 1 }` (or the loss for the
/// last block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedOp {
    /// Run block `i`'s forward pass: uses `out[i-1]` (or the model input for
    /// block 0), defines `act[i]` and `out[i]`.
    Forward {
        /// Global block index.
        block: usize,
    },
    /// Drop `act[i]` after the forward pass (the checkpointing evict).
    Evict {
        /// Global block index.
        block: usize,
    },
    /// Release the boundary output `out[i]` early (normally `Backward`
    /// releases it). Only appears in hand-built or mutated schedules.
    FreeOutput {
        /// Global block index.
        block: usize,
    },
    /// Rematerialise `act[i]` from `out[i-1]` before block `i`'s backward.
    Recompute {
        /// Global block index.
        block: usize,
    },
    /// Run block `i`'s backward pass: uses `act[i]`, `out[i]` and the
    /// incoming gradient, then frees `act[i]` and `out[i]`.
    Backward {
        /// Global block index.
        block: usize,
    },
}

impl SchedOp {
    /// The block the op targets.
    #[must_use]
    pub fn block(&self) -> usize {
        match *self {
            SchedOp::Forward { block }
            | SchedOp::Evict { block }
            | SchedOp::FreeOutput { block }
            | SchedOp::Recompute { block }
            | SchedOp::Backward { block } => block,
        }
    }
}

impl std::fmt::Display for SchedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SchedOp::Forward { block } => write!(f, "forward({block})"),
            SchedOp::Evict { block } => write!(f, "evict({block})"),
            SchedOp::FreeOutput { block } => write!(f, "free-output({block})"),
            SchedOp::Recompute { block } => write!(f, "recompute({block})"),
            SchedOp::Backward { block } => write!(f, "backward({block})"),
        }
    }
}

/// A symbolic execution schedule over `n_blocks` blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    n_blocks: usize,
    ops: Vec<SchedOp>,
}

impl Schedule {
    /// Build from an explicit op list (hand-built schedules, mutants).
    #[must_use]
    pub fn from_ops(n_blocks: usize, ops: Vec<SchedOp>) -> Self {
        Schedule { n_blocks, ops }
    }

    /// The canonical lowering of a checkpoint plan: forwards in order with an
    /// evict after each checkpointed block, then the reverse sweep with a
    /// recompute before each checkpointed block's backward. This is exactly
    /// the timeline `peak_bytes` / the block engine assume, and it must
    /// always sanitize clean.
    #[must_use]
    pub fn from_plan(plan: &CheckpointPlan) -> Self {
        let n = plan.len();
        let mut ops = Vec::with_capacity(2 * n + 2 * plan.count());
        for i in 0..n {
            ops.push(SchedOp::Forward { block: i });
            if plan.is_checkpointed(i) {
                ops.push(SchedOp::Evict { block: i });
            }
        }
        for i in (0..n).rev() {
            if plan.is_checkpointed(i) {
                ops.push(SchedOp::Recompute { block: i });
            }
            ops.push(SchedOp::Backward { block: i });
        }
        Schedule { n_blocks: n, ops }
    }

    /// Number of blocks the schedule covers.
    #[must_use]
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// The op sequence.
    #[must_use]
    pub fn ops(&self) -> &[SchedOp] {
        &self.ops
    }

    /// Remove the op at `index` (mutant builder). Out-of-range is a no-op.
    pub fn remove_op(&mut self, index: usize) {
        if index < self.ops.len() {
            self.ops.remove(index);
        }
    }

    /// Insert `op` at `index`, clamped to the op-list length (mutant builder).
    pub fn insert_op(&mut self, index: usize, op: SchedOp) {
        let at = index.min(self.ops.len());
        self.ops.insert(at, op);
    }

    /// Swap the ops at `a` and `b` (mutant builder). Out-of-range is a no-op.
    pub fn swap_ops(&mut self, a: usize, b: usize) {
        if a < self.ops.len() && b < self.ops.len() {
            self.ops.swap(a, b);
        }
    }

    /// Index of the first op matching `pred`, if any.
    pub fn position(&self, pred: impl Fn(&SchedOp) -> bool) -> Option<usize> {
        self.ops.iter().position(pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_lowering_shape() {
        let plan = CheckpointPlan::from_indices(4, &[1, 3]).unwrap();
        let s = Schedule::from_plan(&plan);
        assert_eq!(s.n_blocks(), 4);
        // 4 forwards + 2 evicts + 2 recomputes + 4 backwards.
        assert_eq!(s.ops().len(), 12);
        assert_eq!(s.ops()[0], SchedOp::Forward { block: 0 });
        assert_eq!(s.ops()[2], SchedOp::Evict { block: 1 });
        // The reverse sweep recomputes 3 before backward(3).
        assert_eq!(s.ops()[6], SchedOp::Recompute { block: 3 });
        assert_eq!(s.ops()[7], SchedOp::Backward { block: 3 });
        assert_eq!(*s.ops().last().unwrap(), SchedOp::Backward { block: 0 });
    }

    #[test]
    fn mutant_builders() {
        let plan = CheckpointPlan::all(3);
        let mut s = Schedule::from_plan(&plan);
        let len = s.ops().len();
        s.remove_op(0);
        assert_eq!(s.ops().len(), len - 1);
        s.insert_op(0, SchedOp::Forward { block: 0 });
        assert_eq!(s.ops().len(), len);
        let i = s
            .position(|op| matches!(op, SchedOp::Recompute { block: 2 }))
            .unwrap();
        assert_eq!(s.ops()[i], SchedOp::Recompute { block: 2 });
    }
}
