//! The schedule sanitizer: a symbolic def-use dataflow walk.
//!
//! Each tensor (`act[i]`, `out[i]`) moves through a four-state lattice
//! `Undefined → Live → Evicted → Freed`; gradients are tracked implicitly as
//! "backward of block `i+1` has completed". Every op's uses are checked
//! against the current state before its defs/kills are applied, so each
//! class of malformed schedule maps to a distinct check id.

use crate::schedule::{SchedOp, Schedule};

/// How bad a sanitizer finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The schedule would read or free dead memory — must not execute.
    Error,
    /// Suspicious but executable (leaks, incomplete backward sweeps).
    Warning,
}

/// One sanitizer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable check id (`use-after-free`, `use-after-evict`, `double-free`,
    /// `recompute-without-live-dependency`, `dependency-order-violation`,
    /// `activation-leak`, `incomplete-backward`).
    pub check: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Index of the offending op in the schedule, when tied to one op.
    pub op_index: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Violation {
    fn error(check: &'static str, op_index: usize, message: String) -> Self {
        Violation {
            check,
            severity: Severity::Error,
            op_index: Some(op_index),
            message,
        }
    }

    fn warning(check: &'static str, message: String) -> Self {
        Violation {
            check,
            severity: Severity::Warning,
            op_index: None,
            message,
        }
    }

    /// True for [`Severity::Error`].
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

/// Lifetime state of one symbolic tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Undefined,
    Live,
    Evicted,
    Freed,
}

/// Walk `schedule`'s def-use dataflow and report every violation found.
///
/// The canonical lowering of any well-formed [`CheckpointPlan`]
/// ([`Schedule::from_plan`]) sanitizes clean; each mutation class (dropped
/// recompute, duplicated evict, reordered backward, early frees) trips the
/// corresponding check id.
///
/// [`CheckpointPlan`]: mimose_planner::CheckpointPlan
#[must_use]
pub fn sanitize(schedule: &Schedule) -> Vec<Violation> {
    let n = schedule.n_blocks();
    let mut act = vec![State::Undefined; n];
    let mut out = vec![State::Undefined; n];
    let mut backward_done = vec![false; n];
    let mut v: Vec<Violation> = Vec::new();

    // Check a *use* of a tensor expected to be Live.
    let check_use = |v: &mut Vec<Violation>,
                     state: State,
                     what: String,
                     by: &SchedOp,
                     idx: usize,
                     undefined_check: &'static str| {
        match state {
            State::Live => {}
            State::Evicted => v.push(Violation::error(
                "use-after-evict",
                idx,
                format!("{by} reads {what}, which was evicted and never recomputed"),
            )),
            State::Freed => v.push(Violation::error(
                "use-after-free",
                idx,
                format!("{by} reads {what}, which was already freed"),
            )),
            State::Undefined => v.push(Violation::error(
                undefined_check,
                idx,
                format!("{by} reads {what}, which is not yet defined"),
            )),
        }
    };

    for (idx, op) in schedule.ops().iter().enumerate() {
        let b = op.block();
        if b >= n {
            v.push(Violation::error(
                "dependency-order-violation",
                idx,
                format!("{op} targets block {b}, but the schedule covers {n} blocks"),
            ));
            continue;
        }
        match *op {
            SchedOp::Forward { block } => {
                if block > 0 {
                    check_use(
                        &mut v,
                        out[block - 1],
                        format!("out[{}]", block - 1),
                        op,
                        idx,
                        "dependency-order-violation",
                    );
                }
                if act[block] == State::Live || out[block] == State::Live {
                    v.push(Violation::error(
                        "dependency-order-violation",
                        idx,
                        format!("{op} re-runs a block whose tensors are still live"),
                    ));
                }
                act[block] = State::Live;
                out[block] = State::Live;
            }
            SchedOp::Evict { block } => match act[block] {
                State::Live => act[block] = State::Evicted,
                State::Evicted | State::Freed => v.push(Violation::error(
                    "double-free",
                    idx,
                    format!("{op} releases act[{block}], which is already dead"),
                )),
                State::Undefined => v.push(Violation::error(
                    "dependency-order-violation",
                    idx,
                    format!("{op} releases act[{block}] before its forward defined it"),
                )),
            },
            SchedOp::FreeOutput { block } => match out[block] {
                State::Live => out[block] = State::Freed,
                State::Evicted | State::Freed => v.push(Violation::error(
                    "double-free",
                    idx,
                    format!("{op} releases out[{block}], which is already dead"),
                )),
                State::Undefined => v.push(Violation::error(
                    "dependency-order-violation",
                    idx,
                    format!("{op} releases out[{block}] before its forward defined it"),
                )),
            },
            SchedOp::Recompute { block } => {
                // Recompute re-runs the forward from the block's input; that
                // boundary tensor must still be resident.
                if block > 0 && out[block - 1] != State::Live {
                    v.push(Violation::error(
                        "recompute-without-live-dependency",
                        idx,
                        format!(
                            "{op} needs out[{}] to re-run the forward, but it is {}",
                            block - 1,
                            state_name(out[block - 1]),
                        ),
                    ));
                }
                match act[block] {
                    State::Evicted => act[block] = State::Live,
                    State::Live => v.push(Violation::warning(
                        "redundant-recompute",
                        format!("{op} rematerialises act[{block}], which is still live"),
                    )),
                    State::Undefined | State::Freed => v.push(Violation::error(
                        "dependency-order-violation",
                        idx,
                        format!(
                            "{op} rematerialises act[{block}], which is {}",
                            state_name(act[block])
                        ),
                    )),
                }
            }
            SchedOp::Backward { block } => {
                // Gradient dependency: the loss feeds the last block, every
                // other block's incoming gradient is produced by backward of
                // the next block.
                let grad_ready = block + 1 >= n || backward_done[block + 1];
                if !grad_ready {
                    v.push(Violation::error(
                        "dependency-order-violation",
                        idx,
                        format!(
                            "{op} runs before backward({}) produced its gradient",
                            block + 1
                        ),
                    ));
                }
                if backward_done[block] {
                    v.push(Violation::error(
                        "double-free",
                        idx,
                        format!("{op} runs twice; its tensors were freed the first time"),
                    ));
                } else {
                    check_use(
                        &mut v,
                        act[block],
                        format!("act[{block}]"),
                        op,
                        idx,
                        "dependency-order-violation",
                    );
                    check_use(
                        &mut v,
                        out[block],
                        format!("out[{block}]"),
                        op,
                        idx,
                        "dependency-order-violation",
                    );
                }
                act[block] = State::Freed;
                out[block] = State::Freed;
                backward_done[block] = true;
            }
        }
    }

    for i in 0..n {
        if !backward_done[i] {
            v.push(Violation::warning(
                "incomplete-backward",
                format!("block {i} never ran its backward pass"),
            ));
        }
        if act[i] == State::Live || out[i] == State::Live {
            v.push(Violation::warning(
                "activation-leak",
                format!("block {i} leaves tensors live at the end of the schedule"),
            ));
        }
    }
    v
}

fn state_name(s: State) -> &'static str {
    match s {
        State::Undefined => "not yet defined",
        State::Live => "live",
        State::Evicted => "evicted",
        State::Freed => "freed",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use mimose_planner::CheckpointPlan;

    fn checks(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.check).collect()
    }

    #[test]
    fn canonical_schedules_sanitize_clean() {
        for plan in [
            CheckpointPlan::none(6),
            CheckpointPlan::all(6),
            CheckpointPlan::from_indices(6, &[0, 2, 5]).unwrap(),
        ] {
            let s = Schedule::from_plan(&plan);
            let v = sanitize(&s);
            assert!(v.is_empty(), "{plan}: {v:?}");
        }
    }

    #[test]
    fn dropped_recompute_is_use_after_evict() {
        let plan = CheckpointPlan::from_indices(4, &[2]).unwrap();
        let mut s = Schedule::from_plan(&plan);
        let i = s
            .position(|op| matches!(op, SchedOp::Recompute { block: 2 }))
            .unwrap();
        s.remove_op(i);
        let v = sanitize(&s);
        assert!(checks(&v).contains(&"use-after-evict"), "{v:?}");
    }

    #[test]
    fn duplicated_evict_is_double_free() {
        let plan = CheckpointPlan::from_indices(4, &[1]).unwrap();
        let mut s = Schedule::from_plan(&plan);
        let i = s
            .position(|op| matches!(op, SchedOp::Evict { block: 1 }))
            .unwrap();
        s.insert_op(i + 1, SchedOp::Evict { block: 1 });
        let v = sanitize(&s);
        assert!(checks(&v).contains(&"double-free"), "{v:?}");
    }

    #[test]
    fn reordered_backward_is_dependency_order_violation() {
        let plan = CheckpointPlan::none(4);
        let mut s = Schedule::from_plan(&plan);
        let a = s
            .position(|op| matches!(op, SchedOp::Backward { block: 3 }))
            .unwrap();
        let b = s
            .position(|op| matches!(op, SchedOp::Backward { block: 2 }))
            .unwrap();
        s.swap_ops(a, b);
        let v = sanitize(&s);
        assert!(checks(&v).contains(&"dependency-order-violation"), "{v:?}");
    }

    #[test]
    fn freed_dependency_is_recompute_without_live_dependency() {
        let plan = CheckpointPlan::from_indices(4, &[2]).unwrap();
        let mut s = Schedule::from_plan(&plan);
        let i = s
            .position(|op| matches!(op, SchedOp::Recompute { block: 2 }))
            .unwrap();
        s.insert_op(i, SchedOp::FreeOutput { block: 1 });
        let v = sanitize(&s);
        assert!(
            checks(&v).contains(&"recompute-without-live-dependency"),
            "{v:?}"
        );
    }

    #[test]
    fn early_output_free_is_use_after_free() {
        let plan = CheckpointPlan::none(3);
        let mut s = Schedule::from_plan(&plan);
        let i = s
            .position(|op| matches!(op, SchedOp::Backward { block: 1 }))
            .unwrap();
        s.insert_op(i, SchedOp::FreeOutput { block: 1 });
        let v = sanitize(&s);
        assert!(checks(&v).contains(&"use-after-free"), "{v:?}");
    }

    #[test]
    fn missing_backward_is_a_warning_not_an_error() {
        let plan = CheckpointPlan::none(2);
        let mut s = Schedule::from_plan(&plan);
        let i = s
            .position(|op| matches!(op, SchedOp::Backward { block: 0 }))
            .unwrap();
        s.remove_op(i);
        let v = sanitize(&s);
        assert!(v.iter().all(|x| !x.is_error()), "{v:?}");
        assert!(checks(&v).contains(&"incomplete-backward"), "{v:?}");
        assert!(checks(&v).contains(&"activation-leak"), "{v:?}");
    }

    #[test]
    fn out_of_range_block_is_flagged() {
        let s = Schedule::from_ops(2, vec![SchedOp::Forward { block: 7 }]);
        let v = sanitize(&s);
        assert!(checks(&v).contains(&"dependency-order-violation"), "{v:?}");
    }
}
