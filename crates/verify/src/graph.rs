//! Graph-equivalence lint for [`OptimizedGraph`]s.
//!
//! The optimization passes in `mimose-models::optimize` claim three safety
//! properties; this module re-derives each one **independently** — from
//! `mimose-ops` metadata and its own dataflow walk, never by calling the
//! optimizer's analysis — so a bug in a pass cannot hide behind the same
//! bug in its checker:
//!
//! 1. **FLOPs preserved**: every optimized block computes exactly the FLOPs
//!    of the raw block's *live* subgraph (nodes reachable from the block
//!    output) — passes may drop dead work but never live work, and never
//!    add any.
//! 2. **Bytes monotone**: per-block activation bytes never increase, and
//!    block input/output boundaries (the checkpoint interface every planner
//!    and the executor depend on) are byte-identical.
//! 3. **Dataflow isomorphic**: the value computed by each block output is
//!    structurally unchanged modulo merged views — checked by canonical
//!    value-numbering hashes of the output expression trees.
//! 4. **Elisions safe**: every node annotated `Elided`/`MaskOnly` is in the
//!    releasable set this module re-derives from
//!    [`OpKind::backward_needs`](mimose_ops::OpKind::backward_needs) and
//!    [`OpKind::backward_needs_input`](mimose_ops::OpKind::backward_needs_input).

use crate::{Severity, Violation};
use mimose_models::{Block, ModelGraph, ModelInput, NodeInput, OptimizedGraph, StashMode};
use mimose_ops::BackwardNeeds;
use mimose_tensor::TensorMeta;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn err(check: &'static str, message: String) -> Violation {
    Violation {
        check,
        severity: Severity::Error,
        op_index: None,
        message,
    }
}

/// Shape-evaluate a block locally (independent of the models crate's
/// internal evaluator). Returns `None` on any inference failure — which the
/// lint reports as a structure violation.
fn eval_nodes(
    block: &Block,
    input: TensorMeta,
    context: Option<TensorMeta>,
) -> Option<Vec<TensorMeta>> {
    let mut outs: Vec<TensorMeta> = Vec::with_capacity(block.nodes.len());
    for (ni, node) in block.nodes.iter().enumerate() {
        let mut operands = Vec::with_capacity(node.inputs.len());
        for src in &node.inputs {
            operands.push(match *src {
                NodeInput::BlockInput => input,
                NodeInput::Node(j) if j < ni => outs[j],
                NodeInput::Node(_) => return None,
                NodeInput::Context => context?,
            });
        }
        outs.push(node.op.infer(&operands).ok()?);
    }
    Some(outs)
}

/// Nodes reachable from the block's last node through operand edges.
fn live_set(block: &Block) -> Vec<bool> {
    let n = block.nodes.len();
    let mut live = vec![false; n];
    let mut stack = vec![n - 1];
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        for src in &block.nodes[i].inputs {
            if let NodeInput::Node(j) = *src {
                stack.push(j);
            }
        }
    }
    live
}

/// Forward FLOPs of the block's live subgraph.
fn live_flops(block: &Block, input: TensorMeta, context: Option<TensorMeta>) -> Option<f64> {
    let outs = eval_nodes(block, input, context)?;
    let live = live_set(block);
    let mut total = 0.0;
    for (ni, node) in block.nodes.iter().enumerate() {
        if !live[ni] {
            continue;
        }
        let operands: Vec<TensorMeta> = node
            .inputs
            .iter()
            .map(|src| match *src {
                NodeInput::BlockInput => input,
                NodeInput::Node(j) => outs[j],
                NodeInput::Context => context.expect("checked in eval_nodes"),
            })
            .collect();
        total += node.op.cost(&operands, outs[ni]).fwd_flops;
    }
    Some(total)
}

/// Canonical value-number of the expression a node computes: a hash over
/// the operator and its operands' value-numbers. Two blocks whose last
/// nodes hash equal compute structurally identical functions of the block
/// input and context (modulo hash collision).
fn value_number(block: &Block, memo: &mut Vec<Option<u64>>, ni: usize) -> u64 {
    if let Some(h) = memo[ni] {
        return h;
    }
    let node = &block.nodes[ni];
    let mut hasher = DefaultHasher::new();
    // OpKind carries f32 attributes, so hash its debug rendering (stable
    // within one process, which is all a comparison lint needs).
    format!("{:?}", node.op).hash(&mut hasher);
    for src in &node.inputs {
        match *src {
            NodeInput::BlockInput => "input".hash(&mut hasher),
            NodeInput::Context => "context".hash(&mut hasher),
            NodeInput::Node(j) => value_number(block, memo, j).hash(&mut hasher),
        }
    }
    let h = hasher.finish();
    memo[ni] = Some(h);
    h
}

fn output_value_number(block: &Block) -> u64 {
    let mut memo = vec![None; block.nodes.len()];
    value_number(block, &mut memo, block.nodes.len() - 1)
}

/// Independently re-derived releasable stash mode for node `ni`: the most
/// aggressive mode the autograd metadata permits. Mirrors (by design, as a
/// second implementation) the optimizer's safety predicate.
fn releasable_mode(block: &Block, ni: usize) -> StashMode {
    let n = block.nodes.len();
    if ni == n - 1 {
        return StashMode::Default;
    }
    // Does the last node transitively view-alias ni?
    let mut idx = n - 1;
    while block.nodes[idx].op.is_view() {
        match block.nodes[idx].inputs[0] {
            NodeInput::Node(j) => {
                if j == ni {
                    return StashMode::Default;
                }
                idx = j;
            }
            _ => break,
        }
    }
    // Collect effective readers through views.
    let mut pending: Vec<usize> = vec![ni];
    let mut reads: Vec<(usize, usize)> = Vec::new();
    while let Some(p) = pending.pop() {
        for (ci, cons) in block.nodes.iter().enumerate() {
            for (k, src) in cons.inputs.iter().enumerate() {
                if *src == NodeInput::Node(p) {
                    if cons.op.is_view() {
                        pending.push(ci);
                    } else {
                        reads.push((ci, k));
                    }
                }
            }
        }
    }
    if reads
        .iter()
        .any(|&(ci, k)| block.nodes[ci].op.backward_needs_input(k))
    {
        return StashMode::Default;
    }
    match block.nodes[ni].op.backward_needs() {
        BackwardNeeds::Nothing => StashMode::Elided,
        BackwardNeeds::Mask => StashMode::MaskOnly,
        BackwardNeeds::Output => StashMode::Default,
    }
}

/// Walk `(stage, block, input_meta, context)` tuples of a graph.
fn per_block_inputs(
    graph: &ModelGraph,
    input: &ModelInput,
) -> Option<Vec<(TensorMeta, Option<TensorMeta>)>> {
    let mut cur = input.meta();
    let mut context: Option<TensorMeta> = None;
    let mut out = Vec::with_capacity(graph.num_blocks());
    for stage in &graph.stages {
        for block in &stage.blocks {
            out.push((cur, context));
            let outs = eval_nodes(block, cur, context)?;
            cur = *outs.last()?;
        }
        if stage.capture_context {
            context = Some(cur);
        }
    }
    Some(out)
}

/// Lint an [`OptimizedGraph`] against its raw graph for one concrete input.
///
/// Returns one [`Violation`] per broken equivalence property (empty means
/// the optimization is provably safe for this input):
/// `graph-block-structure`, `graph-flops-changed`, `graph-bytes-increased`,
/// `graph-boundary-changed`, `graph-dataflow-changed`,
/// `graph-unsafe-elision`.
#[must_use]
pub fn lint_graph(opt: &OptimizedGraph, input: &ModelInput) -> Vec<Violation> {
    let mut v = Vec::new();
    let raw = opt.raw();
    let g: &ModelGraph = opt;

    if raw.num_blocks() != g.num_blocks() {
        v.push(err(
            "graph-block-structure",
            format!(
                "block count changed: raw {} vs optimized {}",
                raw.num_blocks(),
                g.num_blocks()
            ),
        ));
        return v; // everything below assumes aligned blocks
    }

    let (Ok(raw_p), Ok(opt_p)) = (raw.profile(input), opt.profile(input)) else {
        v.push(err(
            "graph-block-structure",
            "profile evaluation failed on raw or optimized graph".into(),
        ));
        return v;
    };
    let (Some(raw_in), Some(opt_in)) = (per_block_inputs(raw, input), per_block_inputs(g, input))
    else {
        v.push(err(
            "graph-block-structure",
            "shape evaluation failed during lint".into(),
        ));
        return v;
    };

    let raw_blocks: Vec<&Block> = raw.blocks().map(|(_, b)| b).collect();
    let opt_blocks: Vec<&Block> = g.blocks().map(|(_, b)| b).collect();

    for bi in 0..raw_blocks.len() {
        let name = &opt_p.blocks[bi].name;

        // 1. FLOPs: optimized block == live subgraph of raw block.
        let expect = live_flops(raw_blocks[bi], raw_in[bi].0, raw_in[bi].1);
        let got = opt_p.blocks[bi].fwd_flops;
        match expect {
            Some(e) if (e - got).abs() <= 1e-6 * e.max(1.0) => {}
            Some(e) => v.push(err(
                "graph-flops-changed",
                format!("{name}: live raw flops {e} vs optimized {got}"),
            )),
            None => v.push(err(
                "graph-block-structure",
                format!("{name}: raw block failed shape evaluation"),
            )),
        }

        // 2. Bytes: activations monotone, boundaries identical.
        if opt_p.blocks[bi].act_bytes > raw_p.blocks[bi].act_bytes {
            v.push(err(
                "graph-bytes-increased",
                format!(
                    "{name}: act bytes grew {} -> {}",
                    raw_p.blocks[bi].act_bytes, opt_p.blocks[bi].act_bytes
                ),
            ));
        }
        if opt_p.blocks[bi].out_bytes != raw_p.blocks[bi].out_bytes
            || opt_p.blocks[bi].in_bytes != raw_p.blocks[bi].in_bytes
        {
            v.push(err(
                "graph-boundary-changed",
                format!("{name}: block input/output bytes changed"),
            ));
        }

        // 3. Dataflow isomorphism of the block output.
        if output_value_number(raw_blocks[bi]) != output_value_number(opt_blocks[bi]) {
            v.push(err(
                "graph-dataflow-changed",
                format!("{name}: output expression tree changed"),
            ));
        }

        // 4. Every elision is in the independently re-derived releasable set.
        for (ni, ann) in opt.annotations()[bi].iter().enumerate() {
            let node = &opt_blocks[bi].nodes[ni];
            if node.op.is_view() {
                continue; // views own no storage; any mode is vacuous
            }
            let allowed = releasable_mode(opt_blocks[bi], ni);
            let safe = match ann.stash {
                StashMode::Default => true,
                // MaskOnly is weaker than Elided: permitted wherever full
                // elision is.
                StashMode::MaskOnly => allowed != StashMode::Default,
                StashMode::Elided => allowed == StashMode::Elided,
            };
            if !safe {
                v.push(err(
                    "graph-unsafe-elision",
                    format!(
                        "{name}[{ni}] ({}): annotated {:?} but only {:?} is releasable",
                        node.op.mnemonic(),
                        ann.stash,
                        allowed
                    ),
                ));
            }
        }
        let _ = opt_in; // inputs validated above; silences unused in release
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, resnet50_od, roberta_base, t5_base, BertHead};
    use mimose_models::{GraphPass, NodeAnnotation, PassKind, PassPipeline, PassReport};

    #[test]
    fn canonical_builders_lint_clean() {
        let cases: Vec<(ModelGraph, ModelInput)> = vec![
            (
                bert_base(BertHead::Classification { labels: 2 }),
                ModelInput::tokens(8, 128),
            ),
            (
                roberta_base(BertHead::Classification { labels: 1 }),
                ModelInput::tokens(8, 128),
            ),
            (t5_base(), ModelInput::tokens(4, 128)),
            (resnet50_od(), ModelInput::image(2, 640, 640)),
        ];
        for (g, input) in cases {
            let name = g.name.clone();
            let opt = g.optimize();
            let viols = lint_graph(&opt, &input);
            assert!(viols.is_empty(), "{name}: {viols:?}");
        }
    }

    /// A deliberately unsound pass that elides every stash unconditionally.
    struct ElideEverything;
    impl GraphPass for ElideEverything {
        fn kind(&self) -> PassKind {
            PassKind::InplaceStash
        }
        fn apply(&self, graph: &mut ModelGraph, ann: &mut Vec<Vec<NodeAnnotation>>) -> PassReport {
            let mut n = 0;
            for (bi, (_, block)) in graph.blocks().enumerate() {
                for slot in ann[bi].iter_mut().take(block.nodes.len()) {
                    *slot = NodeAnnotation {
                        stash: StashMode::Elided,
                        by: Some(PassKind::InplaceStash),
                    };
                    n += 1;
                }
            }
            PassReport {
                pass: PassKind::InplaceStash,
                nodes_removed: 0,
                nodes_rewired: 0,
                nodes_annotated: n,
                blocks_touched: graph.num_blocks(),
            }
        }
    }

    #[test]
    fn unsound_pass_is_caught() {
        let g = bert_base(BertHead::Classification { labels: 2 });
        let evil = PassPipeline::new(vec![Box::new(ElideEverything)]);
        let opt = evil.run(g);
        let viols = lint_graph(&opt, &ModelInput::tokens(4, 64));
        assert!(
            viols.iter().any(|v| v.check == "graph-unsafe-elision"),
            "{viols:?}"
        );
    }

    #[test]
    fn identity_wrapper_lints_clean() {
        let opt = OptimizedGraph::unoptimized(t5_base());
        assert!(lint_graph(&opt, &ModelInput::tokens(2, 64)).is_empty());
    }
}
