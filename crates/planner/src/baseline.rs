//! The no-checkpointing baseline (original PyTorch in the paper's Fig 10).

use crate::{CheckpointPlan, Directive, Granularity, MemoryPolicy, PlanTiming, PlannerMeta};
use mimose_models::ModelProfile;

/// Baseline policy: never checkpoints; memory is whatever the model needs.
#[derive(Debug, Clone, Default)]
pub struct BaselinePolicy;

impl BaselinePolicy {
    /// Create the baseline policy.
    #[must_use]
    pub fn new() -> Self {
        BaselinePolicy
    }
}

impl MemoryPolicy for BaselinePolicy {
    fn meta(&self) -> PlannerMeta {
        PlannerMeta {
            name: "Baseline",
            swapping: false,
            checkpointing: false,
            dynamic_input: true,
            dynamic_graph: true,
            frag_avoidance: "-",
            granularity: Granularity::Tensor,
            timing: PlanTiming::Runtime,
            search_space: "-",
            search_algorithm: "-",
            solving_time: "-",
        }
    }

    fn budget_bytes(&self) -> usize {
        usize::MAX
    }

    fn begin_iteration(&mut self, _iter: usize, profile: &ModelProfile) -> Directive {
        Directive::RunPlan(CheckpointPlan::none(profile.blocks.len()))
    }

    fn predicted_peak_bytes(&self, profile: &ModelProfile) -> Option<usize> {
        Some(profile.peak_no_checkpoint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    #[test]
    fn baseline_never_checkpoints() {
        let m = bert_base(BertHead::Classification { labels: 2 });
        let p = m.profile(&ModelInput::tokens(8, 64)).unwrap();
        let mut pol = BaselinePolicy::new();
        match pol.begin_iteration(0, &p) {
            Directive::RunPlan(plan) => assert_eq!(plan.count(), 0),
            _ => panic!("expected RunPlan"),
        }
    }
}
