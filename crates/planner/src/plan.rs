//! Checkpoint plan representation.

/// Error building or indexing a [`CheckpointPlan`]: a block index fell
/// outside the plan's range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanIndexError {
    /// The offending block index.
    pub index: usize,
    /// Number of blocks the plan covers.
    pub len: usize,
}

impl std::fmt::Display for PlanIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "block index {} out of range for plan over {} blocks",
            self.index, self.len
        )
    }
}

impl std::error::Error for PlanIndexError {}

/// A checkpointing plan over a model's blocks: `drop[i] == true` means block
/// `i` is checkpointed — its internal activations are dropped after the
/// block's forward pass and recomputed at the start of its backward pass
/// (the semantics of `torch.utils.checkpoint`, which Mimose builds on).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CheckpointPlan {
    drop: Vec<bool>,
}

impl CheckpointPlan {
    /// A plan over `n` blocks with nothing checkpointed.
    #[must_use]
    pub fn none(n: usize) -> Self {
        CheckpointPlan {
            drop: vec![false; n],
        }
    }

    /// A plan over `n` blocks with everything checkpointed.
    #[must_use]
    pub fn all(n: usize) -> Self {
        CheckpointPlan {
            drop: vec![true; n],
        }
    }

    /// Build from a per-block mask: `mask[i] == true` checkpoints block
    /// `i`. Takes ownership, so callers that already materialized a mask
    /// (the repair hot path) pay nothing to turn it into a plan.
    #[must_use]
    pub fn from_mask(mask: Vec<bool>) -> Self {
        CheckpointPlan { drop: mask }
    }

    /// Build from an explicit set of checkpointed block indices.
    ///
    /// Returns [`PlanIndexError`] when any index is `>= n` — planner inputs
    /// (deserialized configs, experiment sweeps) are untrusted, so this is a
    /// recoverable condition rather than a panic.
    pub fn from_indices(n: usize, indices: &[usize]) -> Result<Self, PlanIndexError> {
        let mut drop = vec![false; n];
        for &i in indices {
            if i >= n {
                return Err(PlanIndexError { index: i, len: n });
            }
            drop[i] = true;
        }
        Ok(CheckpointPlan { drop })
    }

    /// Number of blocks the plan covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.drop.len()
    }

    /// True when the plan covers zero blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.drop.is_empty()
    }

    /// Whether block `i` is checkpointed.
    ///
    /// # Panics
    /// Panics when `i >= self.len()`; use [`CheckpointPlan::get`] for a
    /// non-panicking lookup.
    #[inline]
    #[must_use]
    pub fn is_checkpointed(&self, i: usize) -> bool {
        debug_assert!(
            i < self.drop.len(),
            "is_checkpointed({i}) out of range for plan over {} blocks",
            self.drop.len()
        );
        self.drop[i]
    }

    /// Whether block `i` is checkpointed, or `None` when `i` is out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> Option<bool> {
        self.drop.get(i).copied()
    }

    /// Mark block `i` checkpointed.
    ///
    /// # Panics
    /// Panics when `i >= self.len()`; use [`CheckpointPlan::try_set`] for a
    /// non-panicking variant.
    pub fn set(&mut self, i: usize, checkpoint: bool) {
        debug_assert!(
            i < self.drop.len(),
            "set({i}) out of range for plan over {} blocks",
            self.drop.len()
        );
        self.drop[i] = checkpoint;
    }

    /// Mark block `i` checkpointed, reporting out-of-range indices.
    pub fn try_set(&mut self, i: usize, checkpoint: bool) -> Result<(), PlanIndexError> {
        match self.drop.get_mut(i) {
            Some(slot) => {
                *slot = checkpoint;
                Ok(())
            }
            None => Err(PlanIndexError {
                index: i,
                len: self.drop.len(),
            }),
        }
    }

    /// The plan as a per-block mask slice (`mask[i] == true` ⟺ block `i`
    /// is checkpointed) — the bulk counterpart of [`CheckpointPlan::get`]
    /// for hot paths that walk every block anyway.
    #[must_use]
    pub fn as_mask(&self) -> &[bool] {
        &self.drop
    }

    /// Number of checkpointed blocks.
    #[must_use]
    pub fn count(&self) -> usize {
        self.drop.iter().filter(|&&d| d).count()
    }

    /// Iterator over checkpointed block indices.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.drop
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(i))
    }
}

impl std::fmt::Display for CheckpointPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ckpt{{")?;
        let mut first = true;
        for i in self.indices() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}/{}", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_and_all() {
        assert_eq!(CheckpointPlan::none(5).count(), 0);
        assert_eq!(CheckpointPlan::all(5).count(), 5);
    }

    #[test]
    fn from_indices_roundtrip() {
        let p = CheckpointPlan::from_indices(10, &[2, 7]).unwrap();
        assert!(p.is_checkpointed(2));
        assert!(p.is_checkpointed(7));
        assert!(!p.is_checkpointed(3));
        assert_eq!(p.indices().collect::<Vec<_>>(), vec![2, 7]);
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        let err = CheckpointPlan::from_indices(3, &[3]).unwrap_err();
        assert_eq!(err, PlanIndexError { index: 3, len: 3 });
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn get_and_try_set_report_out_of_range() {
        let mut p = CheckpointPlan::none(4);
        assert_eq!(p.get(3), Some(false));
        assert_eq!(p.get(4), None);
        assert!(p.try_set(3, true).is_ok());
        assert!(p.is_checkpointed(3));
        assert_eq!(p.try_set(9, true), Err(PlanIndexError { index: 9, len: 4 }));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics_with_context() {
        let mut p = CheckpointPlan::none(3);
        p.set(5, true);
    }

    #[test]
    fn display_lists_indices() {
        let p = CheckpointPlan::from_indices(4, &[1, 3]).unwrap();
        assert_eq!(p.to_string(), "ckpt{1,3}/4");
    }
}
