//! Checkpoint plan representation.

use serde::{Deserialize, Serialize};

/// A checkpointing plan over a model's blocks: `drop[i] == true` means block
/// `i` is checkpointed — its internal activations are dropped after the
/// block's forward pass and recomputed at the start of its backward pass
/// (the semantics of `torch.utils.checkpoint`, which Mimose builds on).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CheckpointPlan {
    drop: Vec<bool>,
}

impl CheckpointPlan {
    /// A plan over `n` blocks with nothing checkpointed.
    pub fn none(n: usize) -> Self {
        CheckpointPlan {
            drop: vec![false; n],
        }
    }

    /// A plan over `n` blocks with everything checkpointed.
    pub fn all(n: usize) -> Self {
        CheckpointPlan {
            drop: vec![true; n],
        }
    }

    /// Build from an explicit set of checkpointed block indices.
    pub fn from_indices(n: usize, indices: &[usize]) -> Self {
        let mut drop = vec![false; n];
        for &i in indices {
            assert!(i < n, "block index {i} out of range {n}");
            drop[i] = true;
        }
        CheckpointPlan { drop }
    }

    /// Number of blocks the plan covers.
    pub fn len(&self) -> usize {
        self.drop.len()
    }

    /// True when the plan covers zero blocks.
    pub fn is_empty(&self) -> bool {
        self.drop.is_empty()
    }

    /// Whether block `i` is checkpointed.
    #[inline]
    pub fn is_checkpointed(&self, i: usize) -> bool {
        self.drop[i]
    }

    /// Mark block `i` checkpointed.
    pub fn set(&mut self, i: usize, checkpoint: bool) {
        self.drop[i] = checkpoint;
    }

    /// Number of checkpointed blocks.
    pub fn count(&self) -> usize {
        self.drop.iter().filter(|&&d| d).count()
    }

    /// Iterator over checkpointed block indices.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.drop
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(i))
    }
}

impl std::fmt::Display for CheckpointPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ckpt{{")?;
        let mut first = true;
        for i in self.indices() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}/{}", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_and_all() {
        assert_eq!(CheckpointPlan::none(5).count(), 0);
        assert_eq!(CheckpointPlan::all(5).count(), 5);
    }

    #[test]
    fn from_indices_roundtrip() {
        let p = CheckpointPlan::from_indices(10, &[2, 7]);
        assert!(p.is_checkpointed(2));
        assert!(p.is_checkpointed(7));
        assert!(!p.is_checkpointed(3));
        assert_eq!(p.indices().collect::<Vec<_>>(), vec![2, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = CheckpointPlan::from_indices(3, &[3]);
    }

    #[test]
    fn display_lists_indices() {
        let p = CheckpointPlan::from_indices(4, &[1, 3]);
        assert_eq!(p.to_string(), "ckpt{1,3}/4");
    }
}
