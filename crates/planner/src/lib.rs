//! # mimose-planner
//!
//! Checkpointing-plan representation, the analytic peak-memory model shared
//! by every planner, the [`MemoryPolicy`] interface the executor drives, and
//! the four comparison planners of the paper's evaluation: the PyTorch
//! baseline, *Sublinear* (static greedy), *Checkmate* (static cost-optimal),
//! *MONeT* (static tensor-granular) and *DTR* (reactive tensor eviction).
//! Mimose itself lives in `mimose-core`.

#![warn(missing_docs)]

mod baseline;
mod capuchin;
mod checkmate;
mod dtr;
mod kind;
pub mod memory_model;
mod monet;
mod plan;
mod recovery;
mod residency;
mod sublinear;
mod traits;

pub use baseline::BaselinePolicy;
pub use capuchin::{peak_bytes_hybrid, BlockAction, CapuchinPolicy, HybridPlan};
pub use checkmate::CheckmatePolicy;
pub use dtr::{h_dtr, DtrPolicy};
pub use kind::PolicyKind;
pub use monet::MonetPolicy;
pub use plan::{CheckpointPlan, PlanIndexError};
pub use recovery::{RecoveryEvent, RecoveryRung};
pub use residency::{Mark, ResidencyModel};
pub use sublinear::SublinearPolicy;
pub use traits::{
    input_of, BlockObservation, Directive, Granularity, IterationObservation, MemoryPolicy,
    PlanTierStats, PlanTiming, PlannerMeta,
};
