//! *Sublinear* (Chen et al., "Training Deep Nets with Sublinear Memory
//! Cost") — the static checkpointing baseline.
//!
//! The plan is computed **once**, offline, against a worst-case input
//! profile, and applied unchanged to every iteration (Fig 2 "static
//! planner"). On small inputs this wastes budget and recomputes needlessly —
//! the inefficiency Fig 4 quantifies (up to 35 % throughput loss).

use crate::{
    CheckpointPlan, Directive, Granularity, MemoryPolicy, PlanTiming, PlannerMeta, ResidencyModel,
};
use mimose_models::ModelProfile;

/// Static greedy planner in the Sublinear style.
#[derive(Debug, Clone)]
pub struct SublinearPolicy {
    budget: usize,
    plan: CheckpointPlan,
    feasible: bool,
}

impl SublinearPolicy {
    /// Plan offline for `worst` (the largest input the dataset can collate)
    /// under `budget` bytes.
    #[must_use]
    pub fn plan_offline(worst: &ModelProfile, budget: usize) -> Self {
        let n = worst.blocks.len();
        // Greedy over segments: repeatedly checkpoint the block with the
        // largest activation footprint until the worst case fits. Each
        // candidate is an O(log L) flip on the residency engine.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| worst.blocks[b].act_bytes.cmp(&worst.blocks[a].act_bytes));
        let mut model = ResidencyModel::from_plan(worst, &CheckpointPlan::none(n));
        let mut feasible = model.fits(budget);
        if !feasible {
            for &i in &order {
                model.set_checkpointed(i, true);
                if model.fits(budget) {
                    feasible = true;
                    break;
                }
            }
        }
        SublinearPolicy {
            budget,
            plan: model.to_plan(),
            feasible,
        }
    }

    /// Whether the offline plan satisfies the budget for the worst case.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// The static plan.
    #[must_use]
    pub fn plan(&self) -> &CheckpointPlan {
        &self.plan
    }
}

impl MemoryPolicy for SublinearPolicy {
    fn meta(&self) -> PlannerMeta {
        PlannerMeta {
            name: "Sublinear",
            swapping: false,
            checkpointing: true,
            dynamic_input: false,
            dynamic_graph: false,
            frag_avoidance: "x",
            granularity: Granularity::Layer,
            timing: PlanTiming::Offline,
            search_space: "segments",
            search_algorithm: "greedy",
            solving_time: "short",
        }
    }

    fn budget_bytes(&self) -> usize {
        self.budget
    }

    fn begin_iteration(&mut self, _iter: usize, _profile: &ModelProfile) -> Directive {
        // The same conservative plan regardless of the actual input.
        Directive::RunPlan(self.plan.clone())
    }

    fn predicted_peak_bytes(&self, profile: &ModelProfile) -> Option<usize> {
        (self.plan.len() == profile.blocks.len())
            .then(|| crate::memory_model::peak_bytes(profile, &self.plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_model::peak_bytes;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    fn profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn plan_fits_worst_case() {
        let worst = profile(332);
        let budget = 6 << 30;
        let pol = SublinearPolicy::plan_offline(&worst, budget);
        assert!(pol.is_feasible());
        assert!(peak_bytes(&worst, pol.plan()) <= budget);
    }

    #[test]
    fn smaller_budget_checkpoints_more() {
        let worst = profile(332);
        let loose = SublinearPolicy::plan_offline(&worst, 9 << 30);
        let tight = SublinearPolicy::plan_offline(&worst, 4 << 30);
        assert!(tight.plan().count() >= loose.plan().count());
    }

    #[test]
    fn plan_is_static_across_inputs() {
        let worst = profile(332);
        let mut pol = SublinearPolicy::plan_offline(&worst, 5 << 30);
        let small = profile(40);
        let d1 = pol.begin_iteration(0, &small);
        let d2 = pol.begin_iteration(1, &worst);
        assert_eq!(d1, d2, "static planner must not adapt to input");
    }

    #[test]
    fn impossible_budget_reported_infeasible() {
        let worst = profile(332);
        let pol = SublinearPolicy::plan_offline(&worst, 1 << 30); // < const bytes
        assert!(!pol.is_feasible());
        assert_eq!(pol.plan().count(), worst.blocks.len());
    }

    #[test]
    fn small_inputs_leave_budget_unused() {
        // The Fig 4 observation: the static plan leaves a large part of the
        // budget unused on a small input.
        let worst = profile(300);
        let budget = 3 << 30;
        let pol = SublinearPolicy::plan_offline(&worst, budget);
        let small = profile(55);
        let used = peak_bytes(&small, pol.plan());
        assert!(
            (budget - used) > (900 << 20),
            "unused budget only {} MiB",
            (budget - used) >> 20
        );
    }
}
