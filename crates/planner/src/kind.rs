//! [`PolicyKind`]: a data-carrying name for each comparison planner plus a
//! uniform factory, so callers (exp binaries, the cluster scheduler,
//! benches) stop hand-constructing the six planner types with inconsistent
//! positional arguments.
//!
//! Mimose itself is *not* a variant: it lives upstream in `mimose-core`
//! (which depends on this crate), so callers that need it construct
//! `MimosePolicy` directly — everything else goes through [`PolicyKind::build`].

use crate::{
    BaselinePolicy, CapuchinPolicy, CheckmatePolicy, DtrPolicy, MemoryPolicy, MonetPolicy,
    SublinearPolicy,
};
use mimose_models::ModelProfile;
use mimose_simgpu::DeviceProfile;

/// One of the six planner-crate policies, nameable as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// No checkpointing (original PyTorch).
    Baseline,
    /// Static greedy segment checkpointing.
    Sublinear,
    /// Static cost-optimal checkpointing (MILP-style local search).
    Checkmate,
    /// Static tensor-granular plan.
    Monet,
    /// Reactive tensor eviction.
    Dtr,
    /// Hybrid swap/recompute planning.
    Capuchin,
}

impl PolicyKind {
    /// Every variant, in the paper's comparison order.
    #[must_use]
    pub fn all() -> [PolicyKind; 6] {
        [
            PolicyKind::Baseline,
            PolicyKind::Sublinear,
            PolicyKind::Checkmate,
            PolicyKind::Monet,
            PolicyKind::Dtr,
            PolicyKind::Capuchin,
        ]
    }

    /// Display name (matches each policy's `PlannerMeta::name`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Baseline => "Baseline",
            PolicyKind::Sublinear => "Sublinear",
            PolicyKind::Checkmate => "Checkmate",
            PolicyKind::Monet => "MONeT",
            PolicyKind::Dtr => "DTR",
            PolicyKind::Capuchin => "Capuchin",
        }
    }

    /// Parse a (case-insensitive) name as printed by [`Self::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<PolicyKind> {
        Self::all()
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Build the policy against `reference` (the profile static planners
    /// solve for — typically the dataset's worst case) under `budget`
    /// bytes, on the default V100 device. `Baseline` ignores both.
    #[must_use]
    pub fn build(&self, reference: &ModelProfile, budget: usize) -> Box<dyn MemoryPolicy> {
        self.build_on(reference, budget, &DeviceProfile::v100())
    }

    /// [`Self::build`] with an explicit device (only Capuchin's swap-cost
    /// model consults it).
    #[must_use]
    pub fn build_on(
        &self,
        reference: &ModelProfile,
        budget: usize,
        dev: &DeviceProfile,
    ) -> Box<dyn MemoryPolicy> {
        match self {
            PolicyKind::Baseline => Box::new(BaselinePolicy::new()),
            PolicyKind::Sublinear => Box::new(SublinearPolicy::plan_offline(reference, budget)),
            PolicyKind::Checkmate => Box::new(CheckmatePolicy::plan_offline(reference, budget)),
            PolicyKind::Monet => Box::new(MonetPolicy::plan_offline(reference, budget)),
            PolicyKind::Dtr => Box::new(DtrPolicy::new(budget)),
            PolicyKind::Capuchin => Box::new(CapuchinPolicy::plan_offline(reference, budget, dev)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    #[test]
    fn factory_matches_meta_names_and_budgets() {
        let m = bert_base(BertHead::Classification { labels: 2 });
        let worst = m.profile(&ModelInput::tokens(32, 300)).unwrap();
        for kind in PolicyKind::all() {
            let pol = kind.build(&worst, 6 << 30);
            assert_eq!(pol.meta().name, kind.name(), "{kind:?}");
            if kind == PolicyKind::Baseline {
                assert_eq!(pol.budget_bytes(), usize::MAX);
            } else {
                assert_eq!(pol.budget_bytes(), 6 << 30);
            }
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("monet"), Some(PolicyKind::Monet));
        assert_eq!(PolicyKind::parse("nope"), None);
    }

    #[test]
    fn predictions_respect_budget_for_static_planners() {
        let m = bert_base(BertHead::Classification { labels: 2 });
        let worst = m.profile(&ModelInput::tokens(32, 300)).unwrap();
        let budget = 6usize << 30;
        for kind in [PolicyKind::Sublinear, PolicyKind::Dtr, PolicyKind::Capuchin] {
            let pol = kind.build(&worst, budget);
            let predicted = pol
                .predicted_peak_bytes(&worst)
                .expect("planner policies predict");
            assert!(predicted <= budget, "{kind:?}: {predicted} > {budget}");
        }
        // Baseline predicts the full no-checkpoint peak.
        let base = PolicyKind::Baseline.build(&worst, budget);
        assert_eq!(
            base.predicted_peak_bytes(&worst),
            Some(worst.peak_no_checkpoint())
        );
    }
}
