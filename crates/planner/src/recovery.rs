//! Typed record of the executor's staged OOM-recovery ladder.
//!
//! When an allocation fails mid-iteration, the block engine climbs a ladder
//! of increasingly expensive remedies instead of aborting: compact the arena
//! and retry, demote additional blocks to checkpointed in place, restart the
//! iteration under a multiplicatively shrunk budget, and finally fall back
//! to a fully-checkpointed plan. Every rung taken is recorded as a
//! [`RecoveryEvent`] on the iteration report, with its virtual-clock cost,
//! so recovery behaviour is observable, auditable (the recovery-trace linter
//! in `mimose-audit`) and can feed back into planning (the adaptive budget
//! shrink in `mimose-core`).
//!
//! The types live here — not in `mimose-exec` — because they cross three
//! crate boundaries: the executor produces them, policies consume them via
//! [`IterationObservation`](crate::IterationObservation), and the audit
//! layer lints them.

/// One rung of the OOM-recovery ladder, in escalation order.
///
/// The derived `Ord` follows the declaration order, so `a < b` means `a` is
/// the cheaper remedy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecoveryRung {
    /// Compact the arena (slide live allocations down, coalescing all free
    /// space into one range) and retry the failed allocation. Cures
    /// fragmentation OOMs and absorbs transient (injected) failures.
    CoalesceRetry,
    /// Demote additional blocks to checkpointed in place: evict the
    /// internal activations of already-executed kept blocks (they will be
    /// recomputed in backward) and mark not-yet-executed blocks as
    /// checkpointed to shed upcoming pressure. Forward pass only; the
    /// checkpointed set only ever grows (monotone demotion).
    Demotion,
    /// Abort the attempt and restart the whole iteration under a
    /// multiplicatively shrunk planning budget, carrying the demoted plan
    /// forward. Bounded by the configured restart limit.
    Restart,
    /// The guaranteed-terminal last attempt: every block checkpointed. If
    /// even this OOMs the iteration is genuinely infeasible and the failure
    /// is reported as fatal.
    Fallback,
}

impl RecoveryRung {
    /// Short lower-case name for tables and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RecoveryRung::CoalesceRetry => "coalesce-retry",
            RecoveryRung::Demotion => "demotion",
            RecoveryRung::Restart => "restart",
            RecoveryRung::Fallback => "fallback",
        }
    }
}

/// One recovery action taken by the executor, with cost attribution on the
/// virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// The ladder rung taken.
    pub rung: RecoveryRung,
    /// Which execution attempt (0-based) the event occurred in. Inline
    /// rungs keep the current attempt; `Restart`/`Fallback` close attempt
    /// `attempt` and open `attempt + 1`.
    pub attempt: usize,
    /// Iteration phase of the failing allocation
    /// (`"const"`/`"input"`/`"forward"`/`"recompute"`/`"backward"`).
    pub phase: &'static str,
    /// Bytes the failing allocation requested (aligned).
    pub requested: usize,
    /// Checkpointed blocks before the action.
    pub ckpt_before: usize,
    /// Checkpointed blocks after the action (≥ `ckpt_before`: demotion is
    /// monotone).
    pub ckpt_after: usize,
    /// Cumulative budget multiplier in effect after this event (1.0 for
    /// inline rungs; shrinks multiplicatively on each `Restart`).
    pub shrink_factor: f64,
    /// Virtual time attributed to the action itself: compaction copy time
    /// for `CoalesceRetry`, the aborted attempt's whole elapsed time for
    /// `Restart`/`Fallback`. Demotion's cost surfaces later as ordinary
    /// recompute time and is not double-counted here.
    pub time_cost_ns: u64,
    /// Bytes the action made available immediately (compaction: bytes
    /// defragmented into the coalesced range; demotion: internals evicted).
    pub freed_bytes: usize,
}

impl RecoveryEvent {
    /// Render as a single JSON object (no external dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rung\":\"{}\",\"attempt\":{},\"phase\":\"{}\",\"requested\":{},\
             \"ckpt_before\":{},\"ckpt_after\":{},\"shrink_factor\":{:.6},\
             \"time_cost_ns\":{},\"freed_bytes\":{}}}",
            self.rung.name(),
            self.attempt,
            self.phase,
            self.requested,
            self.ckpt_before,
            self.ckpt_after,
            self.shrink_factor,
            self.time_cost_ns,
            self.freed_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rungs_order_by_escalation() {
        assert!(RecoveryRung::CoalesceRetry < RecoveryRung::Demotion);
        assert!(RecoveryRung::Demotion < RecoveryRung::Restart);
        assert!(RecoveryRung::Restart < RecoveryRung::Fallback);
    }

    #[test]
    fn event_serialises_to_json() {
        let ev = RecoveryEvent {
            rung: RecoveryRung::Restart,
            attempt: 1,
            phase: "forward",
            requested: 4096,
            ckpt_before: 3,
            ckpt_after: 7,
            shrink_factor: 0.85,
            time_cost_ns: 12345,
            freed_bytes: 0,
        };
        let j = ev.to_json();
        assert!(j.contains("\"rung\":\"restart\""), "{j}");
        assert!(j.contains("\"ckpt_after\":7"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
