//! *DTR* — Dynamic Tensor Rematerialization (Kirisame et al., ICLR'21).
//!
//! DTR keeps no plan at all: it reacts to OOM during execution by evicting
//! the live tensor with the smallest h-DTR heuristic value
//! `h(t) = cost(t) / (size(t) · staleness(t))` and rematerialising it on
//! demand. The policy here carries the budget and the heuristic; the tensor
//! engine in `mimose-exec` drives eviction, charges the per-operator
//! metadata-maintenance overhead the paper measures at ~26 % of iteration
//! time (Fig 5), and suffers allocator fragmentation from its scattered
//! frees.

use crate::{Directive, Granularity, MemoryPolicy, PlanTiming, PlannerMeta};
use mimose_models::ModelProfile;

/// The h-DTR eviction score: lower is a better eviction victim.
///
/// `cost_ns` is the time to rematerialise the tensor (including currently-
/// evicted neighbours), `bytes` its size, `staleness_ns` the time since its
/// last access.
#[inline]
#[must_use]
pub fn h_dtr(cost_ns: f64, bytes: usize, staleness_ns: u64) -> f64 {
    let denom = (bytes as f64) * (staleness_ns.max(1) as f64);
    cost_ns / denom
}

/// DTR runtime policy.
#[derive(Debug, Clone)]
pub struct DtrPolicy {
    budget: usize,
}

impl DtrPolicy {
    /// DTR with the given memory budget (the engine evicts when exceeding
    /// it).
    #[must_use]
    pub fn new(budget: usize) -> Self {
        DtrPolicy { budget }
    }
}

impl MemoryPolicy for DtrPolicy {
    fn meta(&self) -> PlannerMeta {
        PlannerMeta {
            name: "DTR",
            swapping: false,
            checkpointing: true,
            dynamic_input: true,
            dynamic_graph: true,
            frag_avoidance: "x",
            granularity: Granularity::Tensor,
            timing: PlanTiming::Runtime,
            search_space: "currently traced tensors",
            search_algorithm: "greedy",
            solving_time: "short",
        }
    }

    fn budget_bytes(&self) -> usize {
        self.budget
    }

    fn begin_iteration(&mut self, _iter: usize, _profile: &ModelProfile) -> Directive {
        Directive::DtrDynamic
    }

    fn predicted_peak_bytes(&self, profile: &ModelProfile) -> Option<usize> {
        // Reactive eviction keeps residency at the budget; small inputs may
        // never reach it.
        Some(self.budget.min(profile.peak_no_checkpoint()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_prefers_cheap_large_stale_tensors() {
        // Cheap to recompute, big, untouched for long → smallest h.
        let victim = h_dtr(1_000.0, 100 << 20, 1_000_000);
        let keep_hot = h_dtr(1_000.0, 100 << 20, 10); // recently used
        let keep_small = h_dtr(1_000.0, 1 << 10, 1_000_000); // tiny
        let keep_costly = h_dtr(1e9, 100 << 20, 1_000_000); // expensive
        assert!(victim < keep_hot);
        assert!(victim < keep_small);
        assert!(victim < keep_costly);
    }

    #[test]
    fn zero_staleness_does_not_divide_by_zero() {
        assert!(h_dtr(1.0, 1, 0).is_finite());
    }
}
