//! Incremental peak-residency engine: the planning hot path.
//!
//! Every candidate-loop planner (greedy buckets, knapsack, Checkmate's local
//! search, MONeT's tensor drops, Capuchin's hybrid selection) repeatedly asks
//! "what is the peak if I toggle this one block?". Answering with the full
//! timeline walk ([`crate::memory_model::peak_bytes_reference`]) costs O(L)
//! per candidate and makes the loops O(L²)–O(L³). This module materialises
//! the forward+backward residency timeline **once** and then supports
//! single-block mutations in O(log L) with an O(1) exact peak query.
//!
//! # Suffix-delta formulation
//!
//! Let `kept_j ∈ [0, act_j]` be the internal activation bytes block `j`
//! retains between its forward and backward pass (`kept_j = 0` when the
//! block is checkpointed, `act_j` when it is not, anything in between for
//! tensor-granular MONeT plans). Define the prefix residency
//!
//! ```text
//! S(i) = Σ_{j<i} (kept_j + out_j)
//! ```
//!
//! Walking the same timeline as the reference model shows that the resident
//! bytes just before forward block `i` are `base + S(i)` and just before
//! backward block `i` are `base + S(i) + kept_i + out_i`. The two peak
//! candidates at block `i` are therefore
//!
//! ```text
//! forward:  base + S(i) + act_i +   out_i            (working set)
//! backward: base + S(i) + act_i + 2·out_i + in_i     (recompute + grads)
//! ```
//!
//! — the backward candidate re-materialises the *full* `act_i` whether or
//! not the block checkpoints, so both candidates are independent of block
//! `i`'s own bit, and the backward one always dominates (out/in ≥ 0). Hence
//!
//! ```text
//! peak = base + max_i (S(i) + m_i),    m_i = act_i + 2·out_i + in_i
//! ```
//!
//! `m_i` is a profile constant; only `S` depends on the plan, and changing
//! `kept_i` by `δ` shifts `S(j)` by `δ` for every `j > i` — a **suffix
//! range-add**. A max-segment-tree over `V_j = S(j) + m_j` with lazy adds
//! answers the global max in O(1) and applies a flip in O(log L).
//!
//! This also explains Fig 9 structurally: flipping the *last* block touches
//! an empty suffix, so it can never lower the peak.

use crate::memory_model::FinePlan;
use crate::CheckpointPlan;
use mimose_models::ModelProfile;

/// Max-segment-tree with lazy range adds, supporting only the operations
/// the residency engine needs: O(L) build, O(log L) suffix add, O(1) global
/// max. Since every query is the *global* max, pending adds never need to be
/// pushed down — each node stores the max of its subtree with all adds at or
/// below it already applied.
#[derive(Debug, Clone)]
struct MaxAddTree {
    /// Number of leaves (padded to a power of two).
    size: usize,
    /// Logical number of values.
    len: usize,
    /// `max[v]` = subtree max including `add` entries within the subtree.
    max: Vec<i64>,
    /// Pending add applied to the whole subtree rooted at `v` (already
    /// reflected in `max[v]`).
    add: Vec<i64>,
}

/// Padding sentinel for leaves beyond `len`. Far below any real residency
/// value, but far enough from `i64::MIN` that accumulated suffix adds can
/// never overflow it (adds are bounded by total profile bytes ≪ 2^50).
const NEG_INF: i64 = i64::MIN / 4;

impl MaxAddTree {
    fn build(values: &[i64]) -> Self {
        let len = values.len();
        let size = len.next_power_of_two().max(1);
        let mut max = vec![NEG_INF; 2 * size];
        max[size..size + len].copy_from_slice(values);
        for v in (1..size).rev() {
            max[v] = max[2 * v].max(max[2 * v + 1]);
        }
        MaxAddTree {
            size,
            len,
            max,
            add: vec![0; 2 * size],
        }
    }

    /// Maximum over all values, including every pending add.
    fn global_max(&self) -> i64 {
        self.max[1]
    }

    /// Add `delta` to every value in `[l, len)`. Iterative — this is the
    /// single hottest operation of the planning loops, so no recursion.
    /// Padding leaves in `[len, size)` take the add too; they start at
    /// [`NEG_INF`] and stay out of any max.
    fn suffix_add(&mut self, l: usize, delta: i64) {
        if l >= self.len || delta == 0 {
            return;
        }
        // Cover [l, size) with O(log L) canonical nodes: walking up from
        // leaf `l + size`, the node itself (when it is a left child or the
        // start) and every right sibling on the path cover the suffix.
        let mut v = l + self.size;
        self.add[v] += delta;
        self.max[v] += delta;
        while v > 1 {
            if v & 1 == 0 {
                // Left child: its right sibling is entirely inside the
                // suffix.
                self.add[v + 1] += delta;
                self.max[v + 1] += delta;
            }
            v >>= 1;
            self.max[v] = self.max[2 * v].max(self.max[2 * v + 1]) + self.add[v];
        }
    }

    /// `(max over [0, split), max over [split, len))` in one O(log L) root
    /// descent, without mutating anything. Backs the non-mutating what-if
    /// peak queries: "peak if block i's kept bytes changed by δ" is
    /// `max(left, right + δ)` split at `i + 1`.
    fn split_max(&self, split: usize) -> (i64, i64) {
        if split == 0 {
            return (NEG_INF, self.max[1]);
        }
        if split >= self.len {
            return (self.max[1], NEG_INF);
        }
        // Walk root → the `split` leaf. `acc` carries the pending adds of
        // strict ancestors (max[v] already includes add[v] and below); every
        // subtree hanging off the path falls entirely on one side.
        let (mut v, mut acc) = (1usize, 0i64);
        let (mut left, mut right) = (NEG_INF, NEG_INF);
        let (mut lo, mut hi) = (0usize, self.size);
        while v < self.size {
            let a = self.add[v];
            let mid = (lo + hi) / 2;
            if split < mid {
                right = right.max(self.max[2 * v + 1] + acc + a);
                v *= 2;
                hi = mid;
            } else {
                left = left.max(self.max[2 * v] + acc + a);
                v = 2 * v + 1;
                lo = mid;
            }
            acc += a;
        }
        // The leaf holds index `split` itself — the right side's first value.
        right = right.max(self.max[v] + acc);
        (left, right)
    }
}

/// Journal entry for [`ResidencyModel::undo`]: the state of one block before
/// a mutation.
#[derive(Debug, Clone, Copy)]
struct JournalEntry {
    block: usize,
    prev_kept: usize,
    prev_ckpt: bool,
}

/// Opaque savepoint into the mutation journal (see [`ResidencyModel::mark`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark(usize);

/// Incremental peak-residency model of one training iteration.
///
/// Built once from a profile + plan in O(L), then mutated with
/// [`flip`](Self::flip) / [`set_checkpointed`](Self::set_checkpointed) /
/// [`set_dropped`](Self::set_dropped) in O(log L) each while
/// [`peak`](Self::peak) stays an O(1) exact query — it always equals what
/// the reference walk (`peak_bytes_reference`) would return for the current
/// state (the differential property tests in `tests/residency_differential.rs`
/// pin this down over randomized profiles and flip sequences).
///
/// ```
/// use mimose_models::builders::{bert_base, BertHead};
/// use mimose_models::ModelInput;
/// use mimose_planner::memory_model::peak_bytes;
/// use mimose_planner::{CheckpointPlan, ResidencyModel};
///
/// let model = bert_base(BertHead::Classification { labels: 2 });
/// let profile = model.profile(&ModelInput::tokens(32, 128)).unwrap();
/// let n = profile.blocks.len();
/// let mut m = ResidencyModel::from_plan(&profile, &CheckpointPlan::none(n));
/// assert_eq!(m.peak(), peak_bytes(&profile, &CheckpointPlan::none(n)));
/// m.flip(1); // checkpoint encoder 1 in O(log L)
/// assert_eq!(m.peak(), peak_bytes(&profile, &m.to_plan()));
/// m.undo();
/// assert_eq!(m.to_plan(), CheckpointPlan::none(n));
/// ```
#[derive(Debug, Clone)]
pub struct ResidencyModel {
    base: usize,
    act: Vec<usize>,
    fwd_flops: Vec<f64>,
    kept: Vec<usize>,
    ckpt: Vec<bool>,
    tree: MaxAddTree,
    journal: Vec<JournalEntry>,
}

impl ResidencyModel {
    /// Build from a block-granular checkpoint plan. O(L).
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when `plan` and `profile` disagree on block count.
    pub fn from_plan(profile: &ModelProfile, plan: &CheckpointPlan) -> Self {
        assert_eq!(profile.blocks.len(), plan.len(), "plan/model size mismatch");
        let kept: Vec<usize> = profile
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                if plan.is_checkpointed(i) {
                    0
                } else {
                    b.act_bytes
                }
            })
            .collect();
        let ckpt: Vec<bool> = (0..plan.len()).map(|i| plan.is_checkpointed(i)).collect();
        Self::build(profile, kept, ckpt)
    }

    /// Build from a tensor-granular plan: block `i` keeps
    /// `act_i − dropped_i` internal bytes. O(L).
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when `plan` and `profile` disagree on block count.
    pub fn from_fine(profile: &ModelProfile, plan: &FinePlan) -> Self {
        assert_eq!(profile.blocks.len(), plan.len(), "plan/model size mismatch");
        let kept: Vec<usize> = profile
            .blocks
            .iter()
            .zip(&plan.dropped_bytes)
            .map(|(b, &d)| b.act_bytes - d.min(b.act_bytes))
            .collect();
        let ckpt = kept
            .iter()
            .zip(profile.blocks.iter())
            .map(|(&k, b)| k == 0 && b.act_bytes > 0)
            .collect();
        Self::build(profile, kept, ckpt)
    }

    fn build(profile: &ModelProfile, kept: Vec<usize>, ckpt: Vec<bool>) -> Self {
        let base = profile.const_bytes + profile.input_bytes;
        let mut values = Vec::with_capacity(profile.blocks.len());
        let mut s = 0i64; // S(i): prefix of kept + out
        for (b, &k) in profile.blocks.iter().zip(&kept) {
            let m = (b.act_bytes + 2 * b.out_bytes + b.in_bytes) as i64;
            values.push(s + m);
            s += (k + b.out_bytes) as i64;
        }
        ResidencyModel {
            base,
            act: profile.blocks.iter().map(|b| b.act_bytes).collect(),
            fwd_flops: profile.blocks.iter().map(|b| b.fwd_flops).collect(),
            kept,
            ckpt,
            tree: MaxAddTree::build(&values),
            journal: Vec::new(),
        }
    }

    /// Number of blocks covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.act.len()
    }

    /// True when covering zero blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.act.is_empty()
    }

    /// Exact peak resident bytes for the current state. O(1).
    #[must_use]
    pub fn peak(&self) -> usize {
        if self.is_empty() {
            return self.base;
        }
        let m = self.tree.global_max();
        debug_assert!(m >= 0, "residency values are sums of byte counts");
        self.base + m as usize
    }

    /// Whether the current state fits under `budget` bytes. O(1).
    #[must_use]
    pub fn fits(&self, budget: usize) -> bool {
        self.peak() <= budget
    }

    /// Whether block `i` is checkpointed.
    #[must_use]
    pub fn is_checkpointed(&self, i: usize) -> bool {
        self.ckpt[i]
    }

    /// Internal bytes block `i` currently keeps resident.
    #[must_use]
    pub fn kept_bytes(&self, i: usize) -> usize {
        self.kept[i]
    }

    /// Internal bytes block `i` currently drops (recomputed in backward).
    #[must_use]
    pub fn dropped_bytes(&self, i: usize) -> usize {
        self.act[i] - self.kept[i]
    }

    /// Number of checkpointed blocks.
    #[must_use]
    pub fn count_checkpointed(&self) -> usize {
        self.ckpt.iter().filter(|&&c| c).count()
    }

    /// Exact block-granular recompute FLOPs: the sum of `fwd_flops` over
    /// checkpointed blocks, recomputed from scratch (O(L)) so repeated flips
    /// can never accumulate floating-point residue.
    #[must_use]
    pub fn recompute_flops(&self) -> f64 {
        self.ckpt
            .iter()
            .zip(&self.fwd_flops)
            .filter_map(|(&c, &f)| c.then_some(f))
            .sum()
    }

    /// Extract the current block-granular plan. O(L).
    #[must_use]
    pub fn to_plan(&self) -> CheckpointPlan {
        let mut plan = CheckpointPlan::none(self.len());
        for (i, &c) in self.ckpt.iter().enumerate() {
            if c {
                plan.set(i, true);
            }
        }
        plan
    }

    /// Core mutation: set block `i`'s kept bytes and checkpoint bit,
    /// journaling the previous state. O(log L).
    fn mutate(&mut self, i: usize, new_kept: usize, new_ckpt: bool) {
        self.journal.push(JournalEntry {
            block: i,
            prev_kept: self.kept[i],
            prev_ckpt: self.ckpt[i],
        });
        self.apply_state(i, new_kept, new_ckpt);
    }

    fn apply_state(&mut self, i: usize, new_kept: usize, new_ckpt: bool) {
        let delta = new_kept as i64 - self.kept[i] as i64;
        self.kept[i] = new_kept;
        self.ckpt[i] = new_ckpt;
        // S(j) shifts by delta for every j > i.
        self.tree.suffix_add(i + 1, delta);
    }

    /// Peak if block `i` kept `new_kept` internal bytes (clamped to
    /// `act_i`), **without mutating anything**: one O(log L) split-max
    /// descent, no journal entry, no undo. Candidate loops that reject most
    /// probes (prune/sweep passes) should ask this first and only mutate on
    /// accept — a rejected probe then costs one read-only descent instead of
    /// a mutate + undo pair.
    #[must_use]
    pub fn peak_if_kept(&self, i: usize, new_kept: usize) -> usize {
        let delta = new_kept.min(self.act[i]) as i64 - self.kept[i] as i64;
        if delta == 0 || i + 1 >= self.len() {
            // Own-bit independence: an empty suffix can't move the peak.
            return self.peak();
        }
        let (left, right) = self.tree.split_max(i + 1);
        let m = left.max(right + delta);
        debug_assert!(m >= 0, "residency values are sums of byte counts");
        self.base + m as usize
    }

    /// Peak if block `i`'s checkpoint bit were `on`. Non-mutating, O(log L).
    #[must_use]
    pub fn peak_if_checkpointed(&self, i: usize, on: bool) -> usize {
        self.peak_if_kept(i, if on { 0 } else { self.act[i] })
    }

    /// Peak if block `i` dropped `dropped` internal bytes (clamped to
    /// `act_i`). Non-mutating, O(log L).
    #[must_use]
    pub fn peak_if_dropped(&self, i: usize, dropped: usize) -> usize {
        self.peak_if_kept(i, self.act[i] - dropped.min(self.act[i]))
    }

    /// Toggle block `i`'s checkpoint bit. O(log L).
    pub fn flip(&mut self, i: usize) {
        let on = !self.ckpt[i];
        self.set_checkpointed(i, on);
    }

    /// Set block `i`'s checkpoint bit (no-ops are still journaled so every
    /// call pairs with exactly one [`undo`](Self::undo)). O(log L).
    pub fn set_checkpointed(&mut self, i: usize, on: bool) {
        let new_kept = if on { 0 } else { self.act[i] };
        self.mutate(i, new_kept, on);
    }

    /// Set block `i`'s dropped internal bytes (clamped to `act_i`) for
    /// tensor-granular plans; the checkpoint bit tracks `kept == 0`.
    /// O(log L).
    pub fn set_dropped(&mut self, i: usize, dropped: usize) {
        let d = dropped.min(self.act[i]);
        let new_kept = self.act[i] - d;
        let new_ckpt = new_kept == 0 && self.act[i] > 0;
        self.mutate(i, new_kept, new_ckpt);
    }

    /// Apply a batch of checkpoint-bit assignments; one journal entry per
    /// element, so the whole batch can be rolled back with
    /// [`undo_to`](Self::undo_to). O(k log L).
    pub fn apply_batch(&mut self, flips: &[(usize, bool)]) {
        for &(i, on) in flips {
            self.set_checkpointed(i, on);
        }
    }

    /// Savepoint for [`undo_to`](Self::undo_to).
    #[must_use]
    pub fn mark(&self) -> Mark {
        Mark(self.journal.len())
    }

    /// Undo the most recent mutation. Returns `false` when the journal is
    /// empty.
    pub fn undo(&mut self) -> bool {
        match self.journal.pop() {
            Some(e) => {
                self.apply_state(e.block, e.prev_kept, e.prev_ckpt);
                true
            }
            None => false,
        }
    }

    /// Roll back every mutation made after `mark` (most recent first).
    ///
    /// # Panics
    /// Panics when `mark` lies beyond the current journal (i.e. it was
    /// already rolled over by an earlier `undo_to`).
    pub fn undo_to(&mut self, mark: Mark) {
        assert!(
            mark.0 <= self.journal.len(),
            "mark {} beyond journal length {}",
            mark.0,
            self.journal.len()
        );
        while self.journal.len() > mark.0 {
            self.undo();
        }
    }

    /// Drop the undo journal (mutations stay applied); useful before a long
    /// candidate loop that manages its own reverts.
    pub fn commit(&mut self) {
        self.journal.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_model::{peak_bytes_fine_reference, peak_bytes_reference};
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    fn bert_profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn matches_reference_for_structured_plans() {
        let p = bert_profile(200);
        let n = p.blocks.len();
        for plan in [
            CheckpointPlan::none(n),
            CheckpointPlan::all(n),
            CheckpointPlan::from_indices(n, &[1, 4, 9]).unwrap(),
        ] {
            let m = ResidencyModel::from_plan(&p, &plan);
            assert_eq!(m.peak(), peak_bytes_reference(&p, &plan), "{plan}");
        }
    }

    #[test]
    fn flip_tracks_reference_walk() {
        let p = bert_profile(160);
        let n = p.blocks.len();
        let mut plan = CheckpointPlan::none(n);
        let mut m = ResidencyModel::from_plan(&p, &plan);
        for i in [3usize, 7, 1, 3, 12, 0, 3] {
            m.flip(i);
            plan.set(i, !plan.is_checkpointed(i));
            assert_eq!(m.peak(), peak_bytes_reference(&p, &plan), "after flip {i}");
            assert_eq!(m.to_plan(), plan);
        }
    }

    #[test]
    fn flipping_last_block_never_changes_peak() {
        // Fig 9, structurally: the last block's bit touches an empty suffix.
        let p = bert_profile(256);
        let n = p.blocks.len();
        let mut m = ResidencyModel::from_plan(&p, &CheckpointPlan::none(n));
        let before = m.peak();
        m.flip(n - 1);
        assert_eq!(m.peak(), before);
    }

    #[test]
    fn undo_restores_peak_and_plan() {
        let p = bert_profile(128);
        let n = p.blocks.len();
        let mut m = ResidencyModel::from_plan(&p, &CheckpointPlan::none(n));
        let p0 = m.peak();
        let mark = m.mark();
        m.flip(2);
        m.flip(5);
        m.set_dropped(7, 1 << 20);
        assert_ne!(m.peak(), p0);
        m.undo_to(mark);
        assert_eq!(m.peak(), p0);
        assert_eq!(m.to_plan(), CheckpointPlan::none(n));
        assert!(!m.undo(), "journal drained");
    }

    #[test]
    fn fine_mode_tracks_reference_walk() {
        let p = bert_profile(192);
        let n = p.blocks.len();
        let mut fine = FinePlan::none(n);
        let mut m = ResidencyModel::from_fine(&p, &fine);
        for (i, d) in [(1usize, 4 << 20), (4, 1 << 30), (9, 123_456), (1, 0)] {
            fine.dropped_bytes[i] = d;
            m.set_dropped(i, d);
            assert_eq!(m.peak(), peak_bytes_fine_reference(&p, &fine));
        }
    }

    #[test]
    fn recompute_flops_is_exact() {
        let p = bert_profile(100);
        let n = p.blocks.len();
        let mut m = ResidencyModel::from_plan(&p, &CheckpointPlan::none(n));
        m.set_checkpointed(2, true);
        m.set_checkpointed(6, true);
        let want: f64 = p.blocks[2].fwd_flops + p.blocks[6].fwd_flops;
        assert_eq!(m.recompute_flops(), want);
        m.set_checkpointed(2, false);
        assert_eq!(m.recompute_flops(), p.blocks[6].fwd_flops);
    }

    #[test]
    fn empty_model_peaks_at_base() {
        let mut p = bert_profile(64);
        p.blocks.clear();
        let m = ResidencyModel::from_plan(&p, &CheckpointPlan::none(0));
        assert_eq!(m.peak(), p.const_bytes + p.input_bytes);
    }

    #[test]
    fn batch_apply_and_commit() {
        let p = bert_profile(96);
        let n = p.blocks.len();
        let mut m = ResidencyModel::from_plan(&p, &CheckpointPlan::none(n));
        m.apply_batch(&[(1, true), (2, true), (3, true)]);
        assert_eq!(m.count_checkpointed(), 3);
        m.commit();
        assert!(!m.undo(), "commit clears the journal");
        assert_eq!(m.count_checkpointed(), 3, "mutations survive commit");
    }
}
