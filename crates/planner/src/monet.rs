//! *MONeT*-style planner (Shah et al., ICLR'21): offline joint optimisation
//! at **tensor** granularity.
//!
//! MONeT's MILP decides per-tensor whether to keep or recompute, giving it a
//! strictly finer search space than layer/block planners; the price is
//! hours-long solving. Our stand-in enumerates every saved tensor inside
//! every block as a drop candidate, seeds greedily by bytes-per-FLOP, and
//! runs prune/swap local search — the "5 % within optimal after 8 h" regime
//! of the paper's §VI-A compressed into milliseconds by the small candidate
//! count at simulator granularity.

use crate::memory_model::FinePlan;
use crate::{Directive, Granularity, MemoryPolicy, PlanTiming, PlannerMeta, ResidencyModel};
use mimose_models::ModelProfile;
use std::time::Instant;

/// One drop candidate: a saved tensor inside a block.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    block: usize,
    bytes: usize,
    flops: f64,
}

/// Static tensor-granular planner (MONeT stand-in).
#[derive(Debug, Clone)]
pub struct MonetPolicy {
    budget: usize,
    plan: FinePlan,
    feasible: bool,
    solve_time_ns: u64,
}

/// Apply or revert one drop candidate, keeping the fine plan (the source of
/// truth for recompute FLOPs) and the residency engine (the O(log L) peak
/// oracle) in lockstep.
fn apply(plan: &mut FinePlan, model: &mut ResidencyModel, c: &Candidate, on: bool) {
    if on {
        plan.dropped_bytes[c.block] += c.bytes;
        plan.recompute_flops[c.block] += c.flops;
    } else {
        plan.dropped_bytes[c.block] -= c.bytes;
        // Clamp: repeated add/subtract of the same candidate can leave a
        // tiny negative rounding residue where an exact zero is meant.
        plan.recompute_flops[c.block] = (plan.recompute_flops[c.block] - c.flops).max(0.0);
    }
    model.set_dropped(c.block, plan.dropped_bytes[c.block]);
}

impl MonetPolicy {
    /// Solve offline against `reference` under `budget` bytes.
    #[must_use]
    pub fn plan_offline(reference: &ModelProfile, budget: usize) -> Self {
        let t0 = Instant::now();
        let n = reference.blocks.len();
        let mut candidates: Vec<Candidate> = Vec::new();
        for (bi, b) in reference.blocks.iter().enumerate() {
            for t in &b.tensors {
                candidates.push(Candidate {
                    block: bi,
                    bytes: t.bytes,
                    // Recomputing one tensor inside a block re-runs the
                    // producing op; upstream ops inside the block may also
                    // rerun, folded into a 1.3x locality factor.
                    flops: t.fwd_flops * 1.3,
                });
            }
        }
        let mut plan = FinePlan::none(n);
        let mut model = ResidencyModel::from_fine(reference, &plan);
        let mut selected = vec![false; candidates.len()];
        let mut feasible = model.fits(budget);
        if !feasible {
            // Greedy by efficiency (keys cached: the comparator runs
            // O(C log C) times and a division per call adds up).
            let eff: Vec<f64> = candidates
                .iter()
                .map(|c| c.bytes as f64 / c.flops.max(1.0))
                .collect();
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by(|&a, &b| eff[b].total_cmp(&eff[a]));
            for &ci in &order {
                apply(&mut plan, &mut model, &candidates[ci], true);
                selected[ci] = true;
                if model.fits(budget) {
                    feasible = true;
                    break;
                }
            }
            if feasible {
                // Prune pass: drop selected candidates (most expensive first)
                // that are no longer needed.
                let mut sel: Vec<usize> = (0..candidates.len()).filter(|&i| selected[i]).collect();
                sel.sort_by(|&a, &b| candidates[b].flops.total_cmp(&candidates[a].flops));
                for &ci in &sel {
                    let c = &candidates[ci];
                    // Non-mutating what-if first: a rejected probe costs one
                    // read-only descent instead of a mutate + revert pair.
                    let without = plan.dropped_bytes[c.block] - c.bytes;
                    if model.peak_if_dropped(c.block, without) <= budget {
                        apply(&mut plan, &mut model, c, false);
                        selected[ci] = false;
                    }
                }
            }
        }
        // A block's recompute never exceeds its own forward pass (the 1.3x
        // locality factor applies per tensor, not to a full-block replay).
        for (i, b) in reference.blocks.iter().enumerate() {
            plan.recompute_flops[i] = plan.recompute_flops[i].min(b.fwd_flops * 1.05);
        }
        MonetPolicy {
            budget,
            plan,
            feasible,
            solve_time_ns: t0.elapsed().as_nanos() as u64,
        }
    }

    /// Whether the reference input fits under the budget.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// The static tensor-granular plan.
    #[must_use]
    pub fn plan(&self) -> &FinePlan {
        &self.plan
    }

    /// Wall-clock solve time (ns).
    #[must_use]
    pub fn solve_time_ns(&self) -> u64 {
        self.solve_time_ns
    }
}

impl MemoryPolicy for MonetPolicy {
    fn meta(&self) -> PlannerMeta {
        PlannerMeta {
            name: "MONeT",
            swapping: false,
            checkpointing: true,
            dynamic_input: false,
            dynamic_graph: false,
            frag_avoidance: "x",
            granularity: Granularity::Tensor,
            timing: PlanTiming::Offline,
            search_space: "holistic",
            search_algorithm: "MILP",
            solving_time: "hours",
        }
    }

    fn budget_bytes(&self) -> usize {
        self.budget
    }

    fn begin_iteration(&mut self, _iter: usize, _profile: &ModelProfile) -> Directive {
        Directive::RunFine(self.plan.clone())
    }

    fn predicted_peak_bytes(&self, profile: &ModelProfile) -> Option<usize> {
        (self.plan.len() == profile.blocks.len())
            .then(|| crate::memory_model::peak_bytes_fine(profile, &self.plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_model::{peak_bytes_fine, recompute_flops};
    use crate::CheckmatePolicy;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    fn profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn plan_fits_reference() {
        let p = profile(300);
        let budget = 5usize << 30;
        let pol = MonetPolicy::plan_offline(&p, budget);
        assert!(pol.is_feasible());
        assert!(peak_bytes_fine(&p, pol.plan()) <= budget);
    }

    #[test]
    fn finer_granularity_recomputes_no_more_than_checkmate() {
        let p = profile(300);
        for budget in [4usize << 30, 5 << 30, 6 << 30] {
            let mo = MonetPolicy::plan_offline(&p, budget);
            let cm = CheckmatePolicy::plan_offline(&p, budget);
            assert!(mo.is_feasible() && cm.is_feasible());
            let mo_cost = mo.plan().total_recompute_flops();
            let cm_cost = recompute_flops(&p, cm.plan()) * 1.3; // same locality factor
            assert!(
                mo_cost <= cm_cost + 1.0,
                "budget {}: monet {} > checkmate {}",
                budget >> 30,
                mo_cost,
                cm_cost
            );
        }
    }

    #[test]
    fn loose_budget_drops_nothing() {
        let p = profile(64);
        let pol = MonetPolicy::plan_offline(&p, 16usize << 30);
        assert_eq!(pol.plan().total_recompute_flops(), 0.0);
    }
}
