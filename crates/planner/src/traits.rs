//! Planner interfaces: the per-iteration policy hook the executor drives,
//! plus the Table I feature metadata.

use crate::{CheckpointPlan, RecoveryEvent};
use mimose_models::{ModelInput, ModelProfile};

/// Plan granularity (Table I row "Granularity").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Whole checkpointable blocks (Mimose).
    Block,
    /// Individual layers (Sublinear, Checkmate).
    Layer,
    /// Individual tensors (DTR, MONeT).
    Tensor,
}

/// When the plan is generated (Table I row "Timing for generating plan").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanTiming {
    /// Before training starts.
    Offline,
    /// During training.
    Runtime,
}

/// Table I feature row for one planner.
#[derive(Debug, Clone)]
pub struct PlannerMeta {
    /// Planner name.
    pub name: &'static str,
    /// Uses swapping.
    pub swapping: bool,
    /// Uses checkpointing.
    pub checkpointing: bool,
    /// Adapts to dynamic input sizes.
    pub dynamic_input: bool,
    /// Supports dynamic graphs.
    pub dynamic_graph: bool,
    /// Memory-fragmentation avoidance description.
    pub frag_avoidance: &'static str,
    /// Planning granularity.
    pub granularity: Granularity,
    /// Plan-generation timing.
    pub timing: PlanTiming,
    /// Search space description.
    pub search_space: &'static str,
    /// Search algorithm description.
    pub search_algorithm: &'static str,
    /// Typical solving time description.
    pub solving_time: &'static str,
}

/// What the executor should do this iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// Run the block engine under this plan.
    RunPlan(CheckpointPlan),
    /// Run the block engine under a tensor-granular plan (MONeT).
    RunFine(crate::memory_model::FinePlan),
    /// Run the block engine under a hybrid swap/recompute plan (Capuchin).
    RunHybrid(crate::capuchin::HybridPlan),
    /// Run Mimose's shuttling collection iteration: every block forwards
    /// twice and per-block memory/time are measured. The embedded plan (all
    /// blocks checkpointed) bounds memory like *Sublinear* does (§IV-B).
    Shuttle(CheckpointPlan),
    /// Run the tensor engine with DTR-style reactive eviction.
    DtrDynamic,
}

/// Per-block measurement produced by a shuttle iteration.
#[derive(Debug, Clone, Copy)]
pub struct BlockObservation {
    /// Global block index.
    pub index: usize,
    /// Internal activation bytes measured for this block.
    pub act_bytes: usize,
    /// Output bytes.
    pub out_bytes: usize,
    /// Input bytes.
    pub in_bytes: usize,
    /// Forward computation time (ns).
    pub fwd_ns: u64,
}

/// End-of-iteration feedback delivered to the policy.
#[derive(Debug, Clone)]
pub struct IterationObservation {
    /// Iteration number.
    pub iter: usize,
    /// The iteration's collated input.
    pub input: ModelInput,
    /// The paper's scalar input size.
    pub input_size: usize,
    /// Per-block measurements (only present after a shuttle iteration).
    pub blocks: Option<Vec<BlockObservation>>,
    /// Observed peak resident bytes.
    pub peak_bytes: usize,
    /// Whether the iteration hit an unrecoverable OOM.
    pub oom: bool,
    /// OOM-recovery actions the executor took this iteration (empty on the
    /// happy path). Policies can use `Restart`/`Fallback` events to plan
    /// more conservatively.
    pub recovery: Vec<RecoveryEvent>,
}

/// A memory policy drives checkpointing decisions across a training run.
///
/// The executor calls [`MemoryPolicy::begin_iteration`] at the start of each
/// forward pass (the red arrow in Fig 2 for Mimose) and
/// [`MemoryPolicy::end_iteration`] after the optimizer step.
///
/// Policies are `Send` so sessions can be dispatched across scheduler
/// threads; every implementor is plain data (plans, samples, counters).
pub trait MemoryPolicy: Send {
    /// Table I metadata.
    fn meta(&self) -> PlannerMeta;

    /// The memory budget this policy was configured with, in bytes.
    fn budget_bytes(&self) -> usize;

    /// Decide what to do for the upcoming iteration.
    ///
    /// `profile` is the ground-truth profile the simulator executes; honest
    /// runtime policies (Mimose) must consult only `profile.input` /
    /// `profile.input_size` and structural facts (block count), relying on
    /// their own measurements for memory — static planners bake in plans
    /// computed offline from a worst-case profile they were given at
    /// construction.
    fn begin_iteration(&mut self, iter: usize, profile: &ModelProfile) -> Directive;

    /// Receive end-of-iteration measurements.
    fn end_iteration(&mut self, _obs: &IterationObservation) {}

    /// Planning overhead (ns) the policy spent in `begin_iteration` this
    /// iteration, to be charged to the virtual clock by the executor.
    fn last_plan_overhead_ns(&self) -> u64 {
        0
    }

    /// The peak resident bytes this policy expects an iteration over
    /// `profile` to reach, before running it — the admission-control hook
    /// the cluster scheduler queries to decide whether a job's next
    /// iteration fits a device. `None` means the policy cannot predict
    /// (admission then falls back to the no-checkpoint peak).
    ///
    /// Predictions are *advisory*: they must never be required to match the
    /// executed peak exactly (admission accuracy is itself a reported
    /// metric), but static planners return their plan's analytic peak and
    /// budget-capped policies their budget, so honest predictions are cheap.
    fn predicted_peak_bytes(&self, _profile: &ModelProfile) -> Option<usize> {
        None
    }

    /// How this policy's iterations were served across the planning-tier
    /// ladder (certified hit → uncertified hit → repair → cold solve), for
    /// policies that plan at runtime. `None` (the default) means the policy
    /// has no tiered planner — static planners solve once at construction.
    /// The cluster scheduler snapshots this at job completion for the
    /// fleet report.
    fn plan_tier_stats(&self) -> Option<PlanTierStats> {
        None
    }
}

/// Snapshot of a runtime planner's tier ladder counters — how many
/// iterations each rung served. The rungs are disjoint: an iteration is
/// counted in exactly one of the four.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanTierStats {
    /// Bucket hits served off a safety certificate (O(1), zero solves).
    pub certified_hits: u64,
    /// Bucket hits served from uncertified entries (paid a revalidation).
    pub cache_hits: u64,
    /// Bucket misses served by incremental repair of a neighboring
    /// bucket's plan.
    pub repaired_plans: u64,
    /// Bucket misses that required a cold scheduler solve.
    pub cold_solves: u64,
}

impl PlanTierStats {
    /// Total planned (responsive) iterations across all four rungs.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.certified_hits + self.cache_hits + self.repaired_plans + self.cold_solves
    }
}

/// Helper: the collated input of a profile (convenience for policies).
#[must_use]
pub fn input_of(profile: &ModelProfile) -> ModelInput {
    profile.input
}
