//! Analytic peak-memory and recompute-cost model of one training iteration
//! under a checkpoint plan.
//!
//! This is the arithmetic twin of the executor's block engine
//! (`mimose-exec`): both walk the same forward/backward timeline, so the
//! planner's budget checks agree with what the simulated allocator will
//! observe (integration tests cross-validate the two). Keeping it allocator-
//! free makes it cheap enough for Mimose's sub-millisecond planning path.

use crate::CheckpointPlan;
use mimose_models::ModelProfile;

/// Peak resident bytes of one iteration executed under `plan`.
///
/// ```
/// use mimose_models::builders::{bert_base, BertHead};
/// use mimose_models::ModelInput;
/// use mimose_planner::memory_model::peak_bytes;
/// use mimose_planner::CheckpointPlan;
///
/// let model = bert_base(BertHead::Classification { labels: 2 });
/// let profile = model.profile(&ModelInput::tokens(32, 128)).unwrap();
/// let n = profile.blocks.len();
/// let none = peak_bytes(&profile, &CheckpointPlan::none(n));
/// let all = peak_bytes(&profile, &CheckpointPlan::all(n));
/// assert!(all < none, "checkpointing must lower the peak");
/// ```
///
/// Timeline model:
/// * forward block *i*: its working set (`act + out`) lives on top of the
///   running residency; afterwards a checkpointed block retains only its
///   output, an uncheckpointed one retains internals + output;
/// * backward block *i* (reverse order): a checkpointed block first
///   recomputes its internals (residency grows by `act`), then backward for
///   either kind transiently needs the output gradient (`out`) and the input
///   gradient (`in`); afterwards internals + output are freed.
///
/// Implemented with the closed-form suffix-delta formulation shared with
/// [`crate::ResidencyModel`] (see `docs/ALGORITHMS.md` §Residency engine):
/// the backward candidate `S(i) + act_i + 2·out_i + in_i` dominates every
/// other candidate at block `i` and is independent of block `i`'s own bit,
/// so one forward sweep suffices. [`peak_bytes_reference`] keeps the
/// original two-pass walk as the differential-test oracle.
#[must_use]
///
/// # Panics
///
/// Panics when `plan` and `profile` disagree on block count.
pub fn peak_bytes(profile: &ModelProfile, plan: &CheckpointPlan) -> usize {
    assert_eq!(profile.blocks.len(), plan.len(), "plan/model size mismatch");
    let mut s = profile.const_bytes + profile.input_bytes; // base + S(i)
    let mut peak = s;
    for (i, b) in profile.blocks.iter().enumerate() {
        peak = peak.max(s + b.act_bytes + 2 * b.out_bytes + b.in_bytes);
        s += b.out_bytes;
        if !plan.is_checkpointed(i) {
            s += b.act_bytes;
        }
    }
    peak
}

/// The original two-pass timeline walk of [`peak_bytes`], kept verbatim as
/// the reference oracle for the differential property tests that pin the
/// incremental [`crate::ResidencyModel`] (and the closed-form rewrite) to
/// the executor-validated semantics.
#[must_use]
///
/// # Panics
///
/// Panics when `plan` and `profile` disagree on block count.
pub fn peak_bytes_reference(profile: &ModelProfile, plan: &CheckpointPlan) -> usize {
    assert_eq!(profile.blocks.len(), plan.len(), "plan/model size mismatch");
    let mut resident = profile.const_bytes + profile.input_bytes;
    let mut peak = resident;

    // Forward pass.
    for (i, b) in profile.blocks.iter().enumerate() {
        peak = peak.max(resident + b.act_bytes + b.out_bytes);
        if plan.is_checkpointed(i) {
            resident += b.out_bytes;
        } else {
            resident += b.act_bytes + b.out_bytes;
        }
    }
    // Backward pass.
    for (i, b) in profile.blocks.iter().enumerate().rev() {
        if plan.is_checkpointed(i) {
            // Recompute internals, then they stay for the backward step.
            resident += b.act_bytes;
        }
        // Output gradient + input gradient are transient extras.
        peak = peak.max(resident + b.out_bytes + b.in_bytes);
        resident -= b.act_bytes + b.out_bytes;
    }
    peak
}

/// Predicted resident bytes at every block boundary of one iteration under
/// `plan` — the full curve whose maximum is [`peak_bytes`].
///
/// The curve has `1 + 2n` points for an `n`-block profile:
/// * point `0`: after the constant footprint + input tensor are resident;
/// * points `1..=n`: after forward block `i-1` finishes (internals dropped
///   if checkpointed, output retained);
/// * points `n+1..=2n`: after backward block `n - (k - n)` finishes (its
///   internals, output, and gradient transients all released).
///
/// The executor's shadow checker (`mimose-exec`, enabled under
/// `debug_assertions` or `MIMOSE_SHADOW_CHECK=1`) compares the allocator's
/// live-byte count against this curve at every boundary, so the analytic
/// model and the engine cannot silently drift apart.
#[must_use]
///
/// # Panics
///
/// Panics when `plan` and `profile` disagree on block count.
pub fn resident_curve(profile: &ModelProfile, plan: &CheckpointPlan) -> Vec<usize> {
    assert_eq!(profile.blocks.len(), plan.len(), "plan/model size mismatch");
    let n = profile.blocks.len();
    let mut resident = profile.const_bytes + profile.input_bytes;
    let mut curve = Vec::with_capacity(1 + 2 * n);
    curve.push(resident);
    for (i, b) in profile.blocks.iter().enumerate() {
        if plan.is_checkpointed(i) {
            resident += b.out_bytes;
        } else {
            resident += b.act_bytes + b.out_bytes;
        }
        curve.push(resident);
    }
    for (i, b) in profile.blocks.iter().enumerate().rev() {
        if plan.is_checkpointed(i) {
            resident += b.act_bytes; // rematerialised, then released below
        }
        resident -= b.act_bytes + b.out_bytes;
        curve.push(resident);
    }
    debug_assert_eq!(resident, profile.const_bytes + profile.input_bytes);
    curve
}

/// Tensor-granular plan (MONeT): per block, how many activation bytes are
/// dropped and how many FLOPs their recomputation costs. A block plan is the
/// special case `dropped == act_bytes`.
#[derive(Debug, Clone, PartialEq)]
pub struct FinePlan {
    /// Bytes dropped inside each block after its forward pass.
    pub dropped_bytes: Vec<usize>,
    /// FLOPs to recompute each block's dropped tensors in backward.
    pub recompute_flops: Vec<f64>,
}

impl FinePlan {
    /// Nothing dropped.
    #[must_use]
    pub fn none(n: usize) -> Self {
        FinePlan {
            dropped_bytes: vec![0; n],
            recompute_flops: vec![0.0; n],
        }
    }

    /// Number of blocks covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dropped_bytes.len()
    }

    /// True when covering zero blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dropped_bytes.is_empty()
    }

    /// Total recompute FLOPs.
    #[must_use]
    pub fn total_recompute_flops(&self) -> f64 {
        self.recompute_flops.iter().sum()
    }
}

/// Peak resident bytes under a tensor-granular plan. Same timeline as
/// [`peak_bytes`], but each block retains `act − dropped` internals.
///
/// Like [`peak_bytes`], this uses the closed-form suffix-delta sweep; the
/// backward step re-materialises the dropped tensors, so the dominant
/// candidate at block `i` is again `S(i) + act_i + 2·out_i + in_i` with
/// `S(i) = Σ_{j<i} (act_j − dropped_j + out_j)`. The original walk survives
/// as [`peak_bytes_fine_reference`].
#[must_use]
///
/// # Panics
///
/// Panics when `plan` and `profile` disagree on block count.
pub fn peak_bytes_fine(profile: &ModelProfile, plan: &FinePlan) -> usize {
    assert_eq!(profile.blocks.len(), plan.len(), "plan/model size mismatch");
    let mut s = profile.const_bytes + profile.input_bytes; // base + S(i)
    let mut peak = s;
    for (i, b) in profile.blocks.iter().enumerate() {
        peak = peak.max(s + b.act_bytes + 2 * b.out_bytes + b.in_bytes);
        let dropped = plan.dropped_bytes[i].min(b.act_bytes);
        s += b.act_bytes - dropped + b.out_bytes;
    }
    peak
}

/// The original two-pass walk of [`peak_bytes_fine`], kept as the
/// differential-test oracle for tensor-granular plans.
#[must_use]
///
/// # Panics
///
/// Panics when `plan` and `profile` disagree on block count.
pub fn peak_bytes_fine_reference(profile: &ModelProfile, plan: &FinePlan) -> usize {
    assert_eq!(profile.blocks.len(), plan.len(), "plan/model size mismatch");
    let mut resident = profile.const_bytes + profile.input_bytes;
    let mut peak = resident;
    for (i, b) in profile.blocks.iter().enumerate() {
        // The full working set materialises during the block's forward.
        peak = peak.max(resident + b.act_bytes + b.out_bytes);
        let dropped = plan.dropped_bytes[i].min(b.act_bytes);
        resident += b.act_bytes - dropped + b.out_bytes;
    }
    for (i, b) in profile.blocks.iter().enumerate().rev() {
        let dropped = plan.dropped_bytes[i].min(b.act_bytes);
        resident += dropped; // recomputed tensors come back
        peak = peak.max(resident + b.out_bytes + b.in_bytes);
        resident -= b.act_bytes + b.out_bytes;
    }
    peak
}

/// Extra forward FLOPs spent on recomputation under `plan`.
#[must_use]
pub fn recompute_flops(profile: &ModelProfile, plan: &CheckpointPlan) -> f64 {
    plan.indices().map(|i| profile.blocks[i].fwd_flops).sum()
}

/// Total compute FLOPs of one iteration under `plan` (forward + backward +
/// recomputation).
#[must_use]
pub fn total_flops(profile: &ModelProfile, plan: &CheckpointPlan) -> f64 {
    profile.total_fwd_flops() + profile.total_bwd_flops() + recompute_flops(profile, plan)
}

/// Whether `plan` fits `budget` under the analytic model.
#[must_use]
pub fn fits(profile: &ModelProfile, plan: &CheckpointPlan, budget: usize) -> bool {
    peak_bytes(profile, plan) <= budget
}

/// The smallest budget any plan can satisfy for this profile (everything
/// checkpointed) — the paper's lower "★" marker in Fig 10.
#[must_use]
pub fn min_feasible_budget(profile: &ModelProfile) -> usize {
    peak_bytes(profile, &CheckpointPlan::all(profile.blocks.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    fn bert_profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn no_plan_matches_profile_peak() {
        let p = bert_profile(128);
        let none = CheckpointPlan::none(p.blocks.len());
        // The analytic peak under "no checkpointing" must be at least the
        // sum-of-activations estimate (it adds transient grad buffers).
        let peak = peak_bytes(&p, &none);
        assert!(peak >= p.peak_no_checkpoint(), "{peak}");
        assert!(peak < p.peak_no_checkpoint() * 11 / 10);
    }

    #[test]
    fn checkpointing_monotonically_reduces_peak() {
        let p = bert_profile(256);
        let n = p.blocks.len();
        let mut prev = peak_bytes(&p, &CheckpointPlan::none(n));
        // Checkpoint encoders one by one from the front.
        let mut plan = CheckpointPlan::none(n);
        for i in 1..n - 1 {
            plan.set(i, true);
            let now = peak_bytes(&p, &plan);
            assert!(now <= prev, "peak rose at block {i}: {now} > {prev}");
            prev = now;
        }
    }

    #[test]
    fn checkpointing_last_encoder_is_useless() {
        // Fig 9: checkpointing the final encoder leaves peak essentially at
        // the no-checkpoint level because its recomputation happens when
        // everything else is still resident.
        let p = bert_profile(256);
        let n = p.blocks.len();
        let none = peak_bytes(&p, &CheckpointPlan::none(n));
        let last_enc = peak_bytes(&p, &CheckpointPlan::from_indices(n, &[12]).unwrap());
        let first_enc = peak_bytes(&p, &CheckpointPlan::from_indices(n, &[1]).unwrap());
        assert_eq!(last_enc, none, "last-encoder checkpoint changed peak");
        assert!(first_enc < none, "first-encoder checkpoint must help");
    }

    #[test]
    fn recompute_cost_sums_checkpointed_blocks() {
        let p = bert_profile(128);
        let n = p.blocks.len();
        let plan = CheckpointPlan::from_indices(n, &[1, 2, 3]).unwrap();
        let want: f64 = (1..=3).map(|i| p.blocks[i].fwd_flops).sum();
        assert_eq!(recompute_flops(&p, &plan), want);
        assert_eq!(recompute_flops(&p, &CheckpointPlan::none(n)), 0.0);
    }

    #[test]
    fn min_feasible_budget_is_attainable() {
        let p = bert_profile(332);
        let min = min_feasible_budget(&p);
        assert!(fits(&p, &CheckpointPlan::all(p.blocks.len()), min));
        assert!(!fits(&p, &CheckpointPlan::none(p.blocks.len()), min));
    }

    #[test]
    fn resident_curve_brackets_the_peak() {
        let p = bert_profile(160);
        let n = p.blocks.len();
        for plan in [
            CheckpointPlan::none(n),
            CheckpointPlan::all(n),
            CheckpointPlan::from_indices(n, &[1, 4, 9]).unwrap(),
        ] {
            let curve = resident_curve(&p, &plan);
            assert_eq!(curve.len(), 1 + 2 * n);
            let base = p.const_bytes + p.input_bytes;
            assert_eq!(curve[0], base);
            assert_eq!(*curve.last().unwrap(), base);
            // The curve's max can only miss the peak by transient extras
            // (block working sets / gradient buffers), never exceed it.
            let max = *curve.iter().max().unwrap();
            assert!(max <= peak_bytes(&p, &plan));
        }
    }

    #[test]
    fn closed_form_matches_reference_walk() {
        let p = bert_profile(224);
        let n = p.blocks.len();
        for plan in [
            CheckpointPlan::none(n),
            CheckpointPlan::all(n),
            CheckpointPlan::from_indices(n, &[0, 2, 5, 13]).unwrap(),
        ] {
            assert_eq!(peak_bytes(&p, &plan), peak_bytes_reference(&p, &plan));
        }
        let mut fine = FinePlan::none(n);
        fine.dropped_bytes[3] = 10 << 20;
        fine.dropped_bytes[8] = usize::MAX; // clamped to act_bytes
        assert_eq!(
            peak_bytes_fine(&p, &fine),
            peak_bytes_fine_reference(&p, &fine)
        );
    }

    #[test]
    fn peak_grows_with_input_size() {
        let n = 14;
        let plan = CheckpointPlan::none(n);
        let p1 = peak_bytes(&bert_profile(64), &plan);
        let p2 = peak_bytes(&bert_profile(256), &plan);
        assert!(p2 > p1);
    }
}
