//! *Checkmate*-style planner (Jain et al., MLSys'20): cost-optimal static
//! rematerialisation.
//!
//! Checkmate formulates tensor rematerialisation as an MILP and solves it
//! offline (up to an hour per plan). At the block granularity of this
//! simulator the same objective — minimise recomputation FLOPs subject to
//! the peak-memory budget — is solved with a greedy seed plus exhaustive
//! local search (swap/prune passes to a fixed point), our "MILP + approx."
//! stand-in. Like the original, the plan is computed for **one** reference
//! input and cannot adapt to input dynamics.

use crate::{
    CheckpointPlan, Directive, Granularity, MemoryPolicy, PlanTiming, PlannerMeta, ResidencyModel,
};
use mimose_models::ModelProfile;
use std::time::Instant;

/// Static cost-optimal planner (Checkmate stand-in).
#[derive(Debug, Clone)]
pub struct CheckmatePolicy {
    budget: usize,
    plan: CheckpointPlan,
    feasible: bool,
    solve_time_ns: u64,
}

/// Greedy seed: add blocks by bytes-per-FLOP efficiency until the plan fits.
/// Each candidate check is an O(log L) flip on the residency engine instead
/// of an O(L) timeline walk.
fn greedy_seed(reference: &ModelProfile, budget: usize, model: &mut ResidencyModel) -> bool {
    let n = reference.blocks.len();
    if model.fits(budget) {
        return true;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ea = reference.blocks[a].act_bytes as f64 / reference.blocks[a].fwd_flops.max(1.0);
        let eb = reference.blocks[b].act_bytes as f64 / reference.blocks[b].fwd_flops.max(1.0);
        eb.total_cmp(&ea)
    });
    for &i in &order {
        model.set_checkpointed(i, true);
        if model.fits(budget) {
            return true;
        }
    }
    false
}

/// Local search: prune unnecessary blocks, then try cost-reducing swaps,
/// until a fixed point. Rejected moves roll back through the engine's undo
/// journal, so every candidate costs O(log L).
fn local_search(reference: &ModelProfile, budget: usize, model: &mut ResidencyModel) {
    let n = model.len();
    loop {
        let mut improved = false;
        // Prune: drop the most expensive removable block first.
        let mut in_plan: Vec<usize> = (0..n).filter(|&i| model.is_checkpointed(i)).collect();
        in_plan.sort_by(|&a, &b| {
            reference.blocks[b]
                .fwd_flops
                .total_cmp(&reference.blocks[a].fwd_flops)
        });
        for &i in &in_plan {
            // Non-mutating what-if: a rejected probe is one read-only
            // descent, no mutate + undo pair.
            if model.peak_if_checkpointed(i, false) <= budget {
                model.set_checkpointed(i, false);
                improved = true;
            }
        }
        // Swap: replace an expensive in-plan block with a cheaper out-of-plan
        // block when the budget still holds.
        let in_plan: Vec<usize> = (0..n).filter(|&i| model.is_checkpointed(i)).collect();
        let out_plan: Vec<usize> = (0..n).filter(|&i| !model.is_checkpointed(i)).collect();
        'swap: for &i in &in_plan {
            for &j in &out_plan {
                if reference.blocks[j].fwd_flops < reference.blocks[i].fwd_flops {
                    let mark = model.mark();
                    model.set_checkpointed(i, false);
                    model.set_checkpointed(j, true);
                    if model.fits(budget) {
                        improved = true;
                        continue 'swap;
                    }
                    model.undo_to(mark);
                }
            }
        }
        if !improved {
            break;
        }
    }
}

impl CheckmatePolicy {
    /// Solve offline against `reference` (the input the static graph was
    /// exported for) under `budget` bytes.
    #[must_use]
    pub fn plan_offline(reference: &ModelProfile, budget: usize) -> Self {
        let t0 = Instant::now();
        let n = reference.blocks.len();
        let mut model = ResidencyModel::from_plan(reference, &CheckpointPlan::none(n));
        let feasible = greedy_seed(reference, budget, &mut model);
        if feasible {
            local_search(reference, budget, &mut model);
        }
        CheckmatePolicy {
            budget,
            plan: model.to_plan(),
            feasible,
            solve_time_ns: t0.elapsed().as_nanos() as u64,
        }
    }

    /// Whether the reference input fits under the budget.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// The static plan.
    #[must_use]
    pub fn plan(&self) -> &CheckpointPlan {
        &self.plan
    }

    /// Wall-clock solve time (ns).
    #[must_use]
    pub fn solve_time_ns(&self) -> u64 {
        self.solve_time_ns
    }
}

impl MemoryPolicy for CheckmatePolicy {
    fn meta(&self) -> PlannerMeta {
        PlannerMeta {
            name: "Checkmate",
            swapping: false,
            checkpointing: true,
            dynamic_input: false,
            dynamic_graph: false,
            frag_avoidance: "x",
            granularity: Granularity::Layer,
            timing: PlanTiming::Offline,
            search_space: "reduced",
            search_algorithm: "MILP+approx.",
            solving_time: "<1 hour",
        }
    }

    fn budget_bytes(&self) -> usize {
        self.budget
    }

    fn begin_iteration(&mut self, _iter: usize, _profile: &ModelProfile) -> Directive {
        Directive::RunPlan(self.plan.clone())
    }

    fn predicted_peak_bytes(&self, profile: &ModelProfile) -> Option<usize> {
        (self.plan.len() == profile.blocks.len())
            .then(|| crate::memory_model::peak_bytes(profile, &self.plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_model::{peak_bytes, recompute_flops};
    use crate::SublinearPolicy;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    fn profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn plan_fits_reference() {
        let p = profile(300);
        let budget = 5 << 30;
        let pol = CheckmatePolicy::plan_offline(&p, budget);
        assert!(pol.is_feasible());
        assert!(peak_bytes(&p, pol.plan()) <= budget);
    }

    #[test]
    fn at_least_as_cheap_as_sublinear() {
        // The cost-aware search must never recompute more than the
        // byte-greedy Sublinear plan under the same budget.
        let p = profile(300);
        for budget in [4usize << 30, 5 << 30, 6 << 30] {
            let cm = CheckmatePolicy::plan_offline(&p, budget);
            let sl = SublinearPolicy::plan_offline(&p, budget);
            assert!(cm.is_feasible() && sl.is_feasible());
            let c_cost = recompute_flops(&p, cm.plan());
            let s_cost = recompute_flops(&p, sl.plan());
            assert!(
                c_cost <= s_cost + 1.0,
                "budget {}: checkmate {} > sublinear {}",
                budget >> 30,
                c_cost,
                s_cost
            );
        }
    }

    #[test]
    fn loose_budget_needs_no_checkpointing() {
        let p = profile(64);
        let pol = CheckmatePolicy::plan_offline(&p, 16 << 30);
        assert_eq!(pol.plan().count(), 0);
    }

    #[test]
    fn infeasible_budget_flagged() {
        let p = profile(300);
        let pol = CheckmatePolicy::plan_offline(&p, 1 << 30);
        assert!(!pol.is_feasible());
    }
}
