//! *Capuchin*-style hybrid planner (Peng et al., ASPLOS'20): per-block
//! choice between **recomputation** and **swapping** to host memory.
//!
//! Capuchin passively profiles the first iterations, then greedily assigns
//! each evictable tensor the cheaper of (a) recompute on demand and
//! (b) swap out over PCIe with best-effort overlap. This block-granularity
//! stand-in makes the same choice per block using the device's PCIe model:
//! a block is swapped when its non-overlapped transfer time beats its
//! recompute time, and blocks are selected (cheapest effective cost per
//! byte first) until the reference profile fits the budget. Not part of the
//! paper's Fig 10 comparison (which is checkpointing-only); provided for
//! the Table I taxonomy and the swap-vs-recompute crossover extension
//! experiment.

use crate::memory_model::peak_bytes;
use crate::{
    CheckpointPlan, Directive, Granularity, MemoryPolicy, PlanTiming, PlannerMeta, ResidencyModel,
};
use mimose_models::ModelProfile;
use mimose_simgpu::DeviceProfile;

/// Per-block action of a hybrid plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockAction {
    /// Keep activations resident.
    Keep,
    /// Drop + recompute in backward (checkpointing).
    Recompute,
    /// Swap to host after forward, prefetch before backward.
    Swap,
}

/// A hybrid checkpoint/swap plan over a model's blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridPlan {
    /// Action per block, indexed by global block index.
    pub actions: Vec<BlockAction>,
}

impl HybridPlan {
    /// All-keep plan over `n` blocks.
    #[must_use]
    pub fn keep_all(n: usize) -> Self {
        HybridPlan {
            actions: vec![BlockAction::Keep; n],
        }
    }

    /// Number of blocks covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when covering zero blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The memory-equivalent checkpoint plan: both `Recompute` and `Swap`
    /// free the block's internals between forward and backward, so the
    /// peak-memory timeline is identical to a checkpoint plan.
    #[must_use]
    pub fn as_checkpoint_equivalent(&self) -> CheckpointPlan {
        let mut p = CheckpointPlan::none(self.actions.len());
        for (i, a) in self.actions.iter().enumerate() {
            if *a != BlockAction::Keep {
                p.set(i, true);
            }
        }
        p
    }

    /// Count of blocks with the given action.
    #[must_use]
    pub fn count(&self, action: BlockAction) -> usize {
        self.actions.iter().filter(|&&a| a == action).count()
    }
}

/// Peak bytes under a hybrid plan (swapped == recomputed, memory-wise).
///
/// One-shot query for callers holding only a [`HybridPlan`]; the planner's
/// candidate loop instead mutates a [`ResidencyModel`] directly, so it never
/// rebuilds the checkpoint-equivalent plan per candidate.
#[must_use]
pub fn peak_bytes_hybrid(profile: &ModelProfile, plan: &HybridPlan) -> usize {
    peak_bytes(profile, &plan.as_checkpoint_equivalent())
}

/// Hybrid swap+recompute policy.
#[derive(Debug, Clone)]
pub struct CapuchinPolicy {
    budget: usize,
    plan: HybridPlan,
    feasible: bool,
}

impl CapuchinPolicy {
    /// Plan against `reference` under `budget`, choosing per block the
    /// cheaper of swap and recompute given `dev`'s PCIe model.
    #[must_use]
    pub fn plan_offline(reference: &ModelProfile, budget: usize, dev: &DeviceProfile) -> Self {
        let n = reference.blocks.len();
        let mut plan = HybridPlan::keep_all(n);
        // Memory-wise, Swap and Recompute both free the block's internals
        // between forward and backward, so the hybrid plan is evaluated
        // directly on the residency engine: one O(log L) flip per candidate
        // instead of an O(L) checkpoint-equivalent rebuild + walk.
        let mut model = ResidencyModel::from_plan(reference, &CheckpointPlan::none(n));
        let mut feasible = model.fits(budget);
        if !feasible {
            // Per-block: effective eviction cost = min(recompute, swap).
            let costed: Vec<(usize, f64, BlockAction)> = reference
                .blocks
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let recompute_ns = dev.exec_ns(b.fwd_flops, b.fwd_bytes_moved);
                    // Swap moves the internals out and back.
                    let swap_ns = 2.0 * dev.swap_ns(b.act_bytes);
                    if swap_ns < recompute_ns {
                        (i, swap_ns, BlockAction::Swap)
                    } else {
                        (i, recompute_ns, BlockAction::Recompute)
                    }
                })
                .collect();
            // Cheapest cost per byte reclaimed first (keys cached — one
            // division per block, not per comparison).
            let eff: Vec<f64> = costed
                .iter()
                .map(|&(i, cost, _)| cost / reference.blocks[i].act_bytes.max(1) as f64)
                .collect();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| eff[a].total_cmp(&eff[b]));
            for &i in &order {
                plan.actions[i] = costed[i].2;
                model.set_checkpointed(i, true);
                if model.fits(budget) {
                    feasible = true;
                    break;
                }
            }
        }
        CapuchinPolicy {
            budget,
            plan,
            feasible,
        }
    }

    /// Whether the reference fits under the budget.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// The hybrid plan.
    #[must_use]
    pub fn plan(&self) -> &HybridPlan {
        &self.plan
    }
}

impl MemoryPolicy for CapuchinPolicy {
    fn meta(&self) -> PlannerMeta {
        PlannerMeta {
            name: "Capuchin",
            swapping: true,
            checkpointing: true,
            dynamic_input: false,
            dynamic_graph: false,
            frag_avoidance: "x",
            granularity: Granularity::Tensor,
            timing: PlanTiming::Runtime,
            search_space: "holistic",
            search_algorithm: "greedy",
            solving_time: "short",
        }
    }

    fn budget_bytes(&self) -> usize {
        self.budget
    }

    fn begin_iteration(&mut self, _iter: usize, _profile: &ModelProfile) -> Directive {
        Directive::RunHybrid(self.plan.clone())
    }

    fn predicted_peak_bytes(&self, profile: &ModelProfile) -> Option<usize> {
        (self.plan.len() == profile.blocks.len()).then(|| peak_bytes_hybrid(profile, &self.plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    fn profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn plan_fits_reference() {
        let p = profile(300);
        let dev = DeviceProfile::v100();
        let pol = CapuchinPolicy::plan_offline(&p, 5 << 30, &dev);
        assert!(pol.is_feasible());
        assert!(peak_bytes_hybrid(&p, pol.plan()) <= 5 << 30);
    }

    #[test]
    fn fast_pcie_prefers_swapping() {
        let p = profile(300);
        let mut fast = DeviceProfile::v100();
        fast.pcie_bytes_per_sec = 1e12; // NVLink-class
        fast.swap_overlap = 0.9;
        let pol = CapuchinPolicy::plan_offline(&p, 4 << 30, &fast);
        assert!(pol.plan().count(BlockAction::Swap) > pol.plan().count(BlockAction::Recompute));
    }

    #[test]
    fn slow_pcie_prefers_recompute() {
        let p = profile(300);
        let mut slow = DeviceProfile::v100();
        slow.pcie_bytes_per_sec = 1e9; // congested PCIe
        slow.swap_overlap = 0.0;
        let pol = CapuchinPolicy::plan_offline(&p, 4 << 30, &slow);
        assert!(pol.plan().count(BlockAction::Recompute) > pol.plan().count(BlockAction::Swap));
    }

    #[test]
    fn hybrid_peak_equals_checkpoint_equivalent() {
        let p = profile(200);
        let n = p.blocks.len();
        let mut plan = HybridPlan::keep_all(n);
        plan.actions[1] = BlockAction::Swap;
        plan.actions[2] = BlockAction::Recompute;
        let eq = plan.as_checkpoint_equivalent();
        assert_eq!(eq.count(), 2);
        assert_eq!(peak_bytes_hybrid(&p, &plan), peak_bytes(&p, &eq));
    }
}
