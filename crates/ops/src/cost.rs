//! FLOP and byte cost model for every primitive operator.
//!
//! The simulator's virtual clock converts these into time via a roofline
//! model (see `mimose-simgpu::DeviceProfile`). Absolute accuracy is not the
//! goal — the *relative* cost of recomputing one block versus another is what
//! every checkpointing planner in the paper consumes.

use crate::OpKind;
use mimose_tensor::{DType, TensorMeta};

/// Cost summary of one operator application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Forward floating-point operations.
    pub fwd_flops: f64,
    /// Backward floating-point operations.
    pub bwd_flops: f64,
    /// Bytes read + written in the forward pass (roofline memory term).
    pub fwd_bytes_moved: usize,
    /// Activation bytes that must stay resident until this op's backward
    /// runs (what checkpointing reclaims).
    pub saved_bytes: usize,
}

impl OpCost {
    /// Zero-cost marker used for view operators.
    pub const ZERO: OpCost = OpCost {
        fwd_flops: 0.0,
        bwd_flops: 0.0,
        fwd_bytes_moved: 0,
        saved_bytes: 0,
    };
}

impl OpKind {
    /// Bytes of the compact forward mask this op stashes for backward when
    /// the full output is elided ([`BackwardNeeds::Mask`]): dropout keeps a
    /// byte mask, max-pool keeps argmax indices. Zero for everything else.
    ///
    /// Mirrors the mask term folded into [`OpKind::cost`]'s `saved_bytes`.
    ///
    /// [`BackwardNeeds::Mask`]: crate::BackwardNeeds::Mask
    #[must_use]
    pub fn stash_mask_bytes(&self, output: TensorMeta) -> usize {
        match self {
            OpKind::Dropout { .. } => output.elems() * DType::U8.size_bytes(),
            OpKind::MaxPool2d { .. } => output.elems() * DType::I64.size_bytes() / 2,
            _ => 0,
        }
    }

    /// Compute the cost of applying this operator to `inputs`, producing
    /// `output` (as returned by [`OpKind::infer`]).
    #[must_use]
    pub fn cost(&self, inputs: &[TensorMeta], output: TensorMeta) -> OpCost {
        use OpKind::*;
        if self.is_view() {
            return OpCost::ZERO;
        }
        let in_bytes: usize = inputs.iter().map(|t| t.bytes()).sum();
        let out_elems = output.elems() as f64;
        let out_bytes = output.bytes();
        let moved = in_bytes + out_bytes;

        // Forward FLOPs per operator family.
        let fwd = match self {
            Relu | Sigmoid | Scale | MaskedFill => out_elems,
            Tanh | Gelu => 8.0 * out_elems, // transcendental approximations
            Add | Mul | Dropout { .. } => out_elems,
            Softmax => 5.0 * out_elems, // max, sub, exp, sum, div
            AdaptiveAvgPool2d { .. } => inputs[0].elems() as f64,
            ClsSelect => 0.0,
            LossReduce => 4.0 * inputs[0].elems() as f64,
            Linear {
                in_features,
                out_features,
                ..
            }
            | TiedLinear {
                in_features,
                out_features,
            } => {
                let rows = inputs[0].elems() as f64 / *in_features as f64;
                2.0 * rows * (*in_features as f64) * (*out_features as f64)
            }
            MatMul => {
                // [.., m, k] x [.., k, n]: 2*batch*m*k*n
                let k = inputs[0].shape.back(0) as f64;
                2.0 * out_elems * k
            }
            Conv2d { in_c, kernel, .. } => {
                2.0 * out_elems * (*in_c as f64) * (*kernel as f64) * (*kernel as f64)
            }
            MaxPool2d { kernel, .. } | AvgPool2d { kernel, .. } => {
                out_elems * (*kernel as f64) * (*kernel as f64)
            }
            ConcatLast | ZeroPad2d { .. } => out_elems, // pure data movement
            LayerNorm { .. } => 8.0 * out_elems,
            BatchNorm2d { .. } => 5.0 * out_elems,
            Embedding { .. } => out_elems, // gather traffic dominates
            Reshape(_) | TransposeLast2 => 0.0,
        };

        // Backward work: elementwise ops re-traverse once; reduction ops do
        // roughly twice the forward work (grad wrt input + grad wrt weight).
        let bwd = match self.category() {
            crate::OpCategory::Elementwise => fwd,
            crate::OpCategory::FixedOutput => fwd,
            crate::OpCategory::ImplicitReduction | crate::OpCategory::Structure => 2.0 * fwd,
            crate::OpCategory::View => 0.0,
        };

        // Activation bytes retained for backward. PyTorch semantics: the
        // op's output (or input, depending on the op) is stashed in the
        // autograd graph. We charge the output, plus a byte mask for dropout.
        let saved = match self {
            LossReduce | ClsSelect => 0,
            Dropout { .. } => out_bytes + output.elems() * DType::U8.size_bytes(),
            MaxPool2d { .. } => out_bytes + output.elems() * DType::I64.size_bytes() / 2,
            _ => out_bytes,
        };

        OpCost {
            fwd_flops: fwd,
            bwd_flops: bwd,
            fwd_bytes_moved: moved,
            saved_bytes: saved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_tensor::Shape;

    fn t(dims: &[usize]) -> TensorMeta {
        TensorMeta::f32(Shape::new(dims))
    }

    #[test]
    fn views_cost_nothing() {
        let x = t(&[8, 128, 768]);
        let op = OpKind::TransposeLast2;
        let out = op.infer(&[x]).unwrap();
        assert_eq!(op.cost(&[x], out), OpCost::ZERO);
    }

    #[test]
    fn linear_flops_formula() {
        let x = t(&[32, 100, 768]);
        let lin = OpKind::Linear {
            in_features: 768,
            out_features: 768,
            bias: true,
        };
        let out = lin.infer(&[x]).unwrap();
        let c = lin.cost(&[x], out);
        let expect = 2.0 * (32.0 * 100.0) * 768.0 * 768.0;
        assert!((c.fwd_flops - expect).abs() < 1.0);
        assert!((c.bwd_flops - 2.0 * expect).abs() < 1.0);
    }

    #[test]
    fn matmul_flops_quadratic_in_seq() {
        // Q·Kᵀ with [bh, s, d] x [bh, d, s]: flops = 2*bh*s*s*d — quadratic in s.
        let cost_at = |s: usize| {
            let q = t(&[96, s, 64]);
            let kt = t(&[96, 64, s]);
            let out = OpKind::MatMul.infer(&[q, kt]).unwrap();
            OpKind::MatMul.cost(&[q, kt], out).fwd_flops
        };
        let c1 = cost_at(128);
        let c2 = cost_at(256);
        assert!((c2 / c1 - 4.0).abs() < 1e-9, "ratio {}", c2 / c1);
    }

    #[test]
    fn dropout_saves_mask_extra() {
        let x = t(&[4, 4]);
        let op = OpKind::Dropout { p: 0.1 };
        let out = op.infer(&[x]).unwrap();
        let c = op.cost(&[x], out);
        assert_eq!(c.saved_bytes, 16 * 4 + 16);
    }

    #[test]
    fn saved_bytes_track_output() {
        let x = t(&[8, 100, 768]);
        let op = OpKind::Gelu;
        let out = op.infer(&[x]).unwrap();
        assert_eq!(op.cost(&[x], out).saved_bytes, out.bytes());
    }

    #[test]
    fn loss_saves_nothing() {
        let x = t(&[32, 2]);
        let out = OpKind::LossReduce.infer(&[x]).unwrap();
        assert_eq!(OpKind::LossReduce.cost(&[x], out).saved_bytes, 0);
    }
}
