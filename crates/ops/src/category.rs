//! The four operator categories of the paper (§IV-C, Fig 8).
//!
//! The taxonomy is what justifies Mimose's *lightning memory estimator*: for
//! every category the output size is at most polynomially (and in practice at
//! most quadratically) related to the iteration input size, so per-layer
//! memory can be fitted with a low-order polynomial from a handful of online
//! samples.

/// Relationship class between an operator's input and output tensor sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCategory {
    /// Output has exactly the input's size (ReLU, add, dropout, …).
    Elementwise,
    /// Output has a size fixed by the operator's attributes regardless of the
    /// input (AdaptiveAvgPool, pooler/CLS selection, loss reduction).
    FixedOutput,
    /// Operators with implicit reductions whose non-reduced output dims are
    /// hyper-parameters fixed at model-design time (Linear, GEMM, Conv,
    /// maxPool) — output size is *linearly* correlated with input size.
    ImplicitReduction,
    /// Composite structures such as attention, where intermediates like
    /// `Q·Kᵀ` are *quadratic* in the per-sample sequence length while the
    /// final output stays linear, preventing size explosion under function
    /// composition.
    Structure,
    /// Metadata-only operators (view/reshape/transpose) that neither move
    /// bytes nor save activations. Not part of the paper's taxonomy — they
    /// are invisible to the memory planner.
    View,
}

impl OpCategory {
    /// Maximum polynomial degree (in the iteration input size) of the output
    /// byte count for this category, as argued in §IV-C.
    #[must_use]
    pub const fn max_poly_degree(self) -> u32 {
        match self {
            OpCategory::FixedOutput => 0,
            OpCategory::Elementwise | OpCategory::ImplicitReduction | OpCategory::View => 1,
            OpCategory::Structure => 2,
        }
    }
}

impl std::fmt::Display for OpCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpCategory::Elementwise => "elementwise",
            OpCategory::FixedOutput => "fixed-output",
            OpCategory::ImplicitReduction => "implicit-reduction",
            OpCategory::Structure => "structure",
            OpCategory::View => "view",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_match_paper_taxonomy() {
        assert_eq!(OpCategory::FixedOutput.max_poly_degree(), 0);
        assert_eq!(OpCategory::Elementwise.max_poly_degree(), 1);
        assert_eq!(OpCategory::ImplicitReduction.max_poly_degree(), 1);
        assert_eq!(OpCategory::Structure.max_poly_degree(), 2);
    }
}
