//! Shape inference for every primitive operator.

use crate::{OpKind, ReshapeRule};
use mimose_tensor::{DType, Shape, TensorMeta};

/// Error raised when an operator is applied to incompatible inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpError {
    /// The operator received a different number of inputs than its arity.
    Arity {
        /// Operator mnemonic.
        op: &'static str,
        /// Expected input count.
        expected: usize,
        /// Observed input count.
        got: usize,
    },
    /// Input shape is incompatible with the operator's attributes.
    Shape {
        /// Operator mnemonic.
        op: &'static str,
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::Arity { op, expected, got } => {
                write!(f, "{op}: expected {expected} inputs, got {got}")
            }
            OpError::Shape { op, detail } => write!(f, "{op}: {detail}"),
        }
    }
}

impl std::error::Error for OpError {}

fn shape_err(op: &'static str, detail: impl Into<String>) -> OpError {
    OpError::Shape {
        op,
        detail: detail.into(),
    }
}

/// Compute spatial output extent of a conv/pool window.
fn window_out(extent: usize, kernel: usize, stride: usize, pad: usize) -> Option<usize> {
    let padded = extent + 2 * pad;
    if padded < kernel || stride == 0 {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

impl OpKind {
    /// Infer the output tensor metadata for the given inputs.
    pub fn infer(&self, inputs: &[TensorMeta]) -> Result<TensorMeta, OpError> {
        let op = self.mnemonic();
        if inputs.len() != self.arity() {
            return Err(OpError::Arity {
                op,
                expected: self.arity(),
                got: inputs.len(),
            });
        }
        use OpKind::*;
        match self {
            Relu | Gelu | Tanh | Sigmoid | Dropout { .. } | Scale | Softmax => Ok(inputs[0]),
            Add | Mul => {
                if inputs[0].shape != inputs[1].shape {
                    return Err(shape_err(
                        op,
                        format!("operands differ: {} vs {}", inputs[0], inputs[1]),
                    ));
                }
                Ok(inputs[0])
            }
            // The mask operand may be broadcast (e.g. [b,1,1,s]); output always
            // follows the score tensor.
            MaskedFill => Ok(inputs[0]),
            AdaptiveAvgPool2d { out_h, out_w } => {
                let s = inputs[0].shape;
                if s.rank() != 4 {
                    return Err(shape_err(op, format!("expected rank-4 input, got {s}")));
                }
                let d = s.dims();
                Ok(TensorMeta::new(
                    Shape::new(&[d[0], d[1], *out_h, *out_w]),
                    inputs[0].dtype,
                ))
            }
            ClsSelect => {
                let s = inputs[0].shape;
                if s.rank() != 3 {
                    return Err(shape_err(op, format!("expected [b,s,h], got {s}")));
                }
                let d = s.dims();
                Ok(TensorMeta::new(Shape::new(&[d[0], d[2]]), inputs[0].dtype))
            }
            LossReduce => Ok(TensorMeta::new(Shape::scalar(), DType::F32)),
            Linear {
                in_features,
                out_features,
                ..
            }
            | TiedLinear {
                in_features,
                out_features,
            } => {
                let s = inputs[0].shape;
                if s.rank() == 0 || s.back(0) != *in_features {
                    return Err(shape_err(
                        op,
                        format!("trailing dim of {s} != in_features {in_features}"),
                    ));
                }
                Ok(TensorMeta::new(s.with_last(*out_features), inputs[0].dtype))
            }
            MatMul => {
                let (a, b) = (inputs[0].shape, inputs[1].shape);
                if a.rank() < 2 || b.rank() < 2 || a.rank() != b.rank() {
                    return Err(shape_err(op, format!("ranks incompatible: {a} x {b}")));
                }
                if a.back(0) != b.back(1) {
                    return Err(shape_err(op, format!("inner dims differ: {a} x {b}")));
                }
                if a.dims()[..a.rank() - 2] != b.dims()[..b.rank() - 2] {
                    return Err(shape_err(op, format!("batch dims differ: {a} x {b}")));
                }
                let out = a.with_last(b.back(0));
                Ok(TensorMeta::new(out, inputs[0].dtype))
            }
            Conv2d {
                in_c,
                out_c,
                kernel,
                stride,
                pad,
                ..
            } => {
                let s = inputs[0].shape;
                if s.rank() != 4 || s.dims()[1] != *in_c {
                    return Err(shape_err(op, format!("expected [b,{in_c},h,w], got {s}")));
                }
                let d = s.dims();
                let oh = window_out(d[2], *kernel, *stride, *pad)
                    .ok_or_else(|| shape_err(op, format!("window too large for {s}")))?;
                let ow = window_out(d[3], *kernel, *stride, *pad)
                    .ok_or_else(|| shape_err(op, format!("window too large for {s}")))?;
                Ok(TensorMeta::new(
                    Shape::new(&[d[0], *out_c, oh, ow]),
                    inputs[0].dtype,
                ))
            }
            AvgPool2d {
                kernel,
                stride,
                pad,
            }
            | MaxPool2d {
                kernel,
                stride,
                pad,
            } => {
                let s = inputs[0].shape;
                if s.rank() != 4 {
                    return Err(shape_err(op, format!("expected rank-4 input, got {s}")));
                }
                let d = s.dims();
                let oh = window_out(d[2], *kernel, *stride, *pad)
                    .ok_or_else(|| shape_err(op, format!("window too large for {s}")))?;
                let ow = window_out(d[3], *kernel, *stride, *pad)
                    .ok_or_else(|| shape_err(op, format!("window too large for {s}")))?;
                Ok(TensorMeta::new(
                    Shape::new(&[d[0], d[1], oh, ow]),
                    inputs[0].dtype,
                ))
            }
            ConcatLast => {
                let (a, b) = (inputs[0].shape, inputs[1].shape);
                if a.rank() != b.rank() || a.rank() == 0 {
                    return Err(shape_err(op, format!("ranks differ: {a} vs {b}")));
                }
                if a.dims()[..a.rank() - 1] != b.dims()[..b.rank() - 1] {
                    return Err(shape_err(op, format!("leading dims differ: {a} vs {b}")));
                }
                Ok(TensorMeta::new(
                    a.with_last(a.back(0) + b.back(0)),
                    inputs[0].dtype,
                ))
            }
            ZeroPad2d { pad } => {
                let s = inputs[0].shape;
                if s.rank() != 4 {
                    return Err(shape_err(op, format!("expected rank-4 input, got {s}")));
                }
                let d = s.dims();
                Ok(TensorMeta::new(
                    Shape::new(&[d[0], d[1], d[2] + 2 * pad, d[3] + 2 * pad]),
                    inputs[0].dtype,
                ))
            }
            LayerNorm { features } => {
                let s = inputs[0].shape;
                if s.rank() == 0 || s.back(0) != *features {
                    return Err(shape_err(
                        op,
                        format!("trailing dim of {s} != features {features}"),
                    ));
                }
                Ok(inputs[0])
            }
            BatchNorm2d { channels } => {
                let s = inputs[0].shape;
                if s.rank() != 4 || s.dims()[1] != *channels {
                    return Err(shape_err(
                        op,
                        format!("expected [b,{channels},h,w], got {s}"),
                    ));
                }
                Ok(inputs[0])
            }
            Embedding { hidden, .. } => {
                let s = inputs[0].shape;
                if s.rank() != 2 {
                    return Err(shape_err(op, format!("expected [b,s] ids, got {s}")));
                }
                Ok(TensorMeta::new(s.push_back(*hidden), DType::F32))
            }
            Reshape(rule) => rule.infer(inputs[0], op),
            TransposeLast2 => {
                let s = inputs[0].shape;
                if s.rank() < 2 {
                    return Err(shape_err(op, format!("rank < 2: {s}")));
                }
                let mut d = s.dims().to_vec();
                let r = d.len();
                d.swap(r - 1, r - 2);
                Ok(TensorMeta::new(Shape::new(&d), inputs[0].dtype))
            }
        }
    }
}

impl ReshapeRule {
    fn infer(&self, input: TensorMeta, op: &'static str) -> Result<TensorMeta, OpError> {
        let s = input.shape;
        match self {
            ReshapeRule::SplitHeads { heads } => {
                if s.rank() != 3 {
                    return Err(shape_err(op, format!("split_heads expects [b,s,h]: {s}")));
                }
                let d = s.dims();
                if !d[2].is_multiple_of(*heads) {
                    return Err(shape_err(
                        op,
                        format!("hidden {} not divisible by heads {heads}", d[2]),
                    ));
                }
                Ok(TensorMeta::new(
                    Shape::new(&[d[0] * heads, d[1], d[2] / heads]),
                    input.dtype,
                ))
            }
            ReshapeRule::MergeHeads { heads } => {
                if s.rank() != 3 {
                    return Err(shape_err(op, format!("merge_heads expects [bh,s,d]: {s}")));
                }
                let d = s.dims();
                if !d[0].is_multiple_of(*heads) {
                    return Err(shape_err(
                        op,
                        format!("batch*heads {} not divisible by heads {heads}", d[0]),
                    ));
                }
                Ok(TensorMeta::new(
                    Shape::new(&[d[0] / heads, d[1], d[2] * heads]),
                    input.dtype,
                ))
            }
            ReshapeRule::Flatten => {
                if s.rank() < 2 {
                    return Err(shape_err(op, format!("flatten expects rank ≥ 2: {s}")));
                }
                let d = s.dims();
                let rest: usize = d[1..].iter().product();
                Ok(TensorMeta::new(Shape::new(&[d[0], rest]), input.dtype))
            }
            ReshapeRule::ToTokens => {
                if s.rank() != 4 {
                    return Err(shape_err(op, format!("to_tokens expects [b,c,h,w]: {s}")));
                }
                let d = s.dims();
                Ok(TensorMeta::new(
                    Shape::new(&[d[0], d[2] * d[3], d[1]]),
                    input.dtype,
                ))
            }
            ReshapeRule::Window { window } => {
                if s.rank() != 3 {
                    return Err(shape_err(op, format!("window expects [b,n,d]: {s}")));
                }
                let d = s.dims();
                if *window == 0 || !d[1].is_multiple_of(*window) {
                    return Err(shape_err(
                        op,
                        format!("tokens {} not divisible by window {window}", d[1]),
                    ));
                }
                Ok(TensorMeta::new(
                    Shape::new(&[d[0], d[1] / window, *window, d[2]]),
                    input.dtype,
                ))
            }
            ReshapeRule::Unwindow => {
                if s.rank() != 4 {
                    return Err(shape_err(op, format!("unwindow expects [b,k,w,d]: {s}")));
                }
                let d = s.dims();
                Ok(TensorMeta::new(
                    Shape::new(&[d[0], d[1] * d[2], d[3]]),
                    input.dtype,
                ))
            }
            ReshapeRule::SplitHeads4 { heads } => {
                if s.rank() != 4 {
                    return Err(shape_err(
                        op,
                        format!("split_heads4 expects [b,k,w,d]: {s}"),
                    ));
                }
                let d = s.dims();
                if !d[3].is_multiple_of(*heads) {
                    return Err(shape_err(
                        op,
                        format!("dim {} not divisible by heads {heads}", d[3]),
                    ));
                }
                Ok(TensorMeta::new(
                    Shape::new(&[d[0], d[1] * heads, d[2], d[3] / heads]),
                    input.dtype,
                ))
            }
            ReshapeRule::MergeHeads4 { heads } => {
                if s.rank() != 4 {
                    return Err(shape_err(
                        op,
                        format!("merge_heads4 expects [b,kh,w,dh]: {s}"),
                    ));
                }
                let d = s.dims();
                if !d[1].is_multiple_of(*heads) {
                    return Err(shape_err(
                        op,
                        format!("dim {} not divisible by heads {heads}", d[1]),
                    ));
                }
                Ok(TensorMeta::new(
                    Shape::new(&[d[0], d[1] / heads, d[2], d[3] * heads]),
                    input.dtype,
                ))
            }
            ReshapeRule::Merge2x2 => {
                if s.rank() != 3 {
                    return Err(shape_err(op, format!("merge2x2 expects [b,n,d]: {s}")));
                }
                let d = s.dims();
                if !d[1].is_multiple_of(4) {
                    return Err(shape_err(op, format!("tokens {} not divisible by 4", d[1])));
                }
                Ok(TensorMeta::new(
                    Shape::new(&[d[0], d[1] / 4, 4 * d[2]]),
                    input.dtype,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: &[usize]) -> TensorMeta {
        TensorMeta::f32(Shape::new(dims))
    }

    #[test]
    fn elementwise_preserves_shape() {
        let x = t(&[8, 128, 768]);
        assert_eq!(OpKind::Relu.infer(&[x]).unwrap(), x);
        assert_eq!(OpKind::Softmax.infer(&[x]).unwrap(), x);
    }

    #[test]
    fn add_requires_same_shapes() {
        let a = t(&[2, 3]);
        let b = t(&[2, 4]);
        assert!(OpKind::Add.infer(&[a, a]).is_ok());
        assert!(matches!(
            OpKind::Add.infer(&[a, b]),
            Err(OpError::Shape { .. })
        ));
    }

    #[test]
    fn arity_checked() {
        let a = t(&[2, 3]);
        assert!(matches!(
            OpKind::Add.infer(&[a]),
            Err(OpError::Arity {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn linear_replaces_trailing_dim() {
        let x = t(&[8, 128, 768]);
        let lin = OpKind::Linear {
            in_features: 768,
            out_features: 3072,
            bias: true,
        };
        assert_eq!(lin.infer(&[x]).unwrap().shape.dims(), &[8, 128, 3072]);
        let bad = t(&[8, 128, 512]);
        assert!(lin.infer(&[bad]).is_err());
    }

    #[test]
    fn matmul_contracts_inner_dim() {
        let a = t(&[96, 128, 64]);
        let b = t(&[96, 64, 128]);
        let out = OpKind::MatMul.infer(&[a, b]).unwrap();
        assert_eq!(out.shape.dims(), &[96, 128, 128]);
        // Mismatched inner dim rejected.
        let c = t(&[96, 32, 128]);
        assert!(OpKind::MatMul.infer(&[a, c]).is_err());
    }

    #[test]
    fn conv_spatial_arithmetic() {
        let x = t(&[8, 3, 224, 224]);
        let conv = OpKind::Conv2d {
            in_c: 3,
            out_c: 64,
            kernel: 7,
            stride: 2,
            pad: 3,
            bias: false,
        };
        let out = conv.infer(&[x]).unwrap();
        assert_eq!(out.shape.dims(), &[8, 64, 112, 112]);
    }

    #[test]
    fn maxpool_halves_resolution() {
        let x = t(&[8, 64, 112, 112]);
        let mp = OpKind::MaxPool2d {
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        assert_eq!(mp.infer(&[x]).unwrap().shape.dims(), &[8, 64, 56, 56]);
    }

    #[test]
    fn embedding_maps_ids_to_vectors() {
        let ids = TensorMeta::new(Shape::new(&[8, 128]), DType::I64);
        let emb = OpKind::Embedding {
            vocab: 30522,
            hidden: 768,
        };
        let out = emb.infer(&[ids]).unwrap();
        assert_eq!(out.shape.dims(), &[8, 128, 768]);
        assert_eq!(out.dtype, DType::F32);
    }

    #[test]
    fn adaptive_pool_fixes_output() {
        let small = t(&[8, 512, 7, 7]);
        let big = t(&[8, 512, 28, 28]);
        let pool = OpKind::AdaptiveAvgPool2d { out_h: 1, out_w: 1 };
        assert_eq!(pool.infer(&[small]).unwrap().shape.dims(), &[8, 512, 1, 1]);
        assert_eq!(pool.infer(&[big]).unwrap().shape.dims(), &[8, 512, 1, 1]);
    }

    #[test]
    fn split_merge_heads_roundtrip() {
        let x = t(&[8, 128, 768]);
        let split = OpKind::Reshape(ReshapeRule::SplitHeads { heads: 12 });
        let merged = OpKind::Reshape(ReshapeRule::MergeHeads { heads: 12 });
        let mid = split.infer(&[x]).unwrap();
        assert_eq!(mid.shape.dims(), &[96, 128, 64]);
        let back = merged.infer(&[mid]).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn transpose_swaps_trailing_dims() {
        let x = t(&[96, 128, 64]);
        let out = OpKind::TransposeLast2.infer(&[x]).unwrap();
        assert_eq!(out.shape.dims(), &[96, 64, 128]);
    }

    #[test]
    fn loss_is_scalar() {
        let x = t(&[32, 2]);
        let out = OpKind::LossReduce.infer(&[x]).unwrap();
        assert_eq!(out.shape.rank(), 0);
    }

    #[test]
    fn cls_select_drops_sequence() {
        let x = t(&[16, 75, 768]);
        let out = OpKind::ClsSelect.infer(&[x]).unwrap();
        assert_eq!(out.shape.dims(), &[16, 768]);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use mimose_tensor::Shape;

    fn t(dims: &[usize]) -> TensorMeta {
        TensorMeta::f32(Shape::new(dims))
    }

    #[test]
    fn avg_pool_matches_max_pool_shapes() {
        let x = t(&[8, 64, 112, 112]);
        let avg = OpKind::AvgPool2d {
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        assert_eq!(avg.infer(&[x]).unwrap().shape.dims(), &[8, 64, 56, 56]);
    }

    #[test]
    fn concat_adds_trailing_dims() {
        let a = t(&[4, 10, 32]);
        let b = t(&[4, 10, 64]);
        let out = OpKind::ConcatLast.infer(&[a, b]).unwrap();
        assert_eq!(out.shape.dims(), &[4, 10, 96]);
        let bad = t(&[4, 11, 64]);
        assert!(OpKind::ConcatLast.infer(&[a, bad]).is_err());
    }

    #[test]
    fn zero_pad_grows_spatial_dims() {
        let x = t(&[2, 3, 30, 40]);
        let out = OpKind::ZeroPad2d { pad: 3 }.infer(&[x]).unwrap();
        assert_eq!(out.shape.dims(), &[2, 3, 36, 46]);
    }

    #[test]
    fn new_ops_have_costs() {
        let a = t(&[4, 10, 32]);
        let b = t(&[4, 10, 64]);
        let out = OpKind::ConcatLast.infer(&[a, b]).unwrap();
        let c = OpKind::ConcatLast.cost(&[a, b], out);
        assert!(c.fwd_flops > 0.0);
        assert_eq!(c.saved_bytes, out.bytes());
    }
}
