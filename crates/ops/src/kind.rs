//! Primitive operator definitions.

use crate::OpCategory;

/// A primitive operator with its design-time attributes.
///
/// Attributes such as hidden sizes, channel counts, kernel/stride/padding are
/// "specially fixed" at model-design time (paper §IV-C); only the data-dependent
/// dimensions (batch, sequence length, image height/width) vary across
/// iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpKind {
    // --- Elementwise ----------------------------------------------------
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (BERT family activations).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Sigmoid.
    Sigmoid,
    /// Elementwise addition of two same-shaped tensors (residual links).
    Add,
    /// Elementwise multiplication (gating).
    Mul,
    /// Dropout with keep-probability bookkeeping; saves a byte mask.
    Dropout {
        /// Drop probability (affects nothing but documentation; the mask is
        /// saved regardless).
        p: f32,
    },
    /// Scale by a scalar (the 1/√d in attention).
    Scale,
    /// Additive attention masking (scores + mask).
    MaskedFill,
    /// Row-wise softmax over the last dimension (output saved for backward).
    Softmax,

    // --- Fixed output ----------------------------------------------------
    /// Adaptive average pooling to a fixed spatial size.
    AdaptiveAvgPool2d {
        /// Output height.
        out_h: usize,
        /// Output width.
        out_w: usize,
    },
    /// Select the first (CLS) token: `[b, s, h] -> [b, h]`.
    ClsSelect,
    /// Reduce to a scalar training loss.
    LossReduce,

    // --- Implicit reduction ----------------------------------------------
    /// Fully connected layer `[.., in] -> [.., out]`.
    Linear {
        /// Input feature size (fixed hyper-parameter).
        in_features: usize,
        /// Output feature size (fixed hyper-parameter).
        out_features: usize,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Weight-tied fully connected layer (e.g. a T5/GPT LM head sharing the
    /// embedding matrix): computes like `Linear` but owns no parameters.
    TiedLinear {
        /// Input feature size.
        in_features: usize,
        /// Output feature size.
        out_features: usize,
    },
    /// Batched matrix multiply of two inputs `[.., m, k] x [.., k, n]`.
    MatMul,
    /// 2-D convolution.
    Conv2d {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// 2-D average pooling.
    AvgPool2d {
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Concatenate two tensors along the trailing dimension.
    ConcatLast,
    /// Zero-pad the spatial dims of `[b, c, h, w]`.
    ZeroPad2d {
        /// Padding added on each side.
        pad: usize,
    },
    /// 2-D max pooling.
    MaxPool2d {
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Layer normalisation over the trailing feature dimension.
    LayerNorm {
        /// Normalised feature size.
        features: usize,
    },
    /// Batch normalisation over channels of `[b, c, h, w]`.
    BatchNorm2d {
        /// Channel count.
        channels: usize,
    },
    /// Token embedding lookup `[b, s] (i64) -> [b, s, h]`.
    Embedding {
        /// Vocabulary size (parameter count contributor only).
        vocab: usize,
        /// Embedding width.
        hidden: usize,
    },

    // --- Views -----------------------------------------------------------
    /// Metadata-only reshape to an explicit target described by a transform.
    Reshape(ReshapeRule),
    /// Metadata-only transpose of the last two dimensions.
    TransposeLast2,
}

/// Reshape rules used by the model builders. Kept closed-form (rather than a
/// target shape) so the same graph works for any input size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReshapeRule {
    /// `[b, s, h] -> [b, s, heads, h/heads] -> [b, heads, s, h/heads]`
    /// collapsed to `[b*heads, s, h/heads]` for batched attention matmuls.
    SplitHeads {
        /// Number of attention heads.
        heads: usize,
    },
    /// Inverse of `SplitHeads`: `[b*heads, s, d] -> [b, s, heads*d]`.
    MergeHeads {
        /// Number of attention heads.
        heads: usize,
    },
    /// `[b, c, h, w] -> [b, c*h*w]` (flatten before a classifier head).
    Flatten,
    /// `[b, c, h, w] -> [b, h*w, c]` (patch embedding output to tokens).
    ToTokens,
    /// `[b, n, d] -> [b, n/w, w, d]` window partition (Swin attention).
    Window {
        /// Tokens per window.
        window: usize,
    },
    /// Inverse of `Window`: `[b, k, w, d] -> [b, k*w, d]`.
    Unwindow,
    /// Head split inside windows: `[b, k, w, d] -> [b, k*heads, w, d/heads]`.
    SplitHeads4 {
        /// Number of attention heads.
        heads: usize,
    },
    /// Inverse of `SplitHeads4`: `[b, kh, w, dh] -> [b, kh/heads, w, dh*heads]`.
    MergeHeads4 {
        /// Number of attention heads.
        heads: usize,
    },
    /// 2x2 patch merging concat: `[b, n, d] -> [b, n/4, 4d]` (followed by a
    /// Linear 4d -> 2d in Swin's patch-merging layer).
    Merge2x2,
}

/// What an operator's backward pass needs of the operator's **own output**.
///
/// This is the autograd-liveness fact the graph optimization passes consult
/// (`mimose-models::optimize`): if an op's backward can be computed without
/// its full-precision output (and no consumer reads the tensor in *its*
/// backward, see [`OpKind::backward_needs_input`]), the per-node activation
/// stash can be elided or shrunk to a mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackwardNeeds {
    /// Backward is a pure function of the incoming gradient (e.g. `Add`,
    /// `Scale`); nothing of this op's output need stay resident.
    Nothing,
    /// Backward needs only a compact mask derived during forward (dropout's
    /// keep mask, max-pool's argmax indices), not the full output tensor.
    Mask,
    /// Backward re-reads the full output tensor (`Relu` sign test, sigmoid /
    /// tanh / softmax derivative-from-output identities).
    Output,
}

impl OpKind {
    /// What this operator's backward needs of its own output.
    ///
    /// `Output` for ops whose derivative is conventionally computed from the
    /// forward output; `Mask` for ops that stash a compact index/keep mask;
    /// `Nothing` for ops whose backward only touches the incoming gradient
    /// (or reads their *inputs*, which is tracked separately by
    /// [`OpKind::backward_needs_input`]).
    #[must_use]
    pub const fn backward_needs(&self) -> BackwardNeeds {
        use OpKind::*;
        match self {
            Relu | Sigmoid | Tanh | Softmax => BackwardNeeds::Output,
            Dropout { .. } | MaxPool2d { .. } => BackwardNeeds::Mask,
            _ => BackwardNeeds::Nothing,
        }
    }

    /// Whether this operator's backward re-reads the value of operand
    /// `operand_idx` (PyTorch `save_for_backward` semantics on inputs).
    ///
    /// A producer's output may only be released early if **no** consumer
    /// answers `true` for the operand slot that references it: e.g. `Gelu`
    /// and `Linear` stash their input, so whatever feeds them must stay
    /// resident even if that producer itself needs nothing.
    #[must_use]
    pub const fn backward_needs_input(&self, operand_idx: usize) -> bool {
        use OpKind::*;
        match self {
            // d/dx gelu(x) is a function of x; matmul-family grads multiply
            // by the other operand, and weight grads need the input; norms
            // need the input to re-derive statistics; embedding backward
            // scatters along the saved indices; the loss re-reads logits.
            Gelu
            | Linear { .. }
            | TiedLinear { .. }
            | Conv2d { .. }
            | LayerNorm { .. }
            | BatchNorm2d { .. }
            | Embedding { .. }
            | LossReduce => true,
            // Both matmul/mul grads need the *other* operand — since either
            // slot is "the other" for one of the two grads, both are read.
            MatMul | Mul => true,
            // scores grad passes through the fill untouched; the mask
            // operand is re-read to know where.
            MaskedFill => operand_idx == 1,
            _ => false,
        }
    }
}

impl OpKind {
    /// The paper's category for this operator.
    #[must_use]
    pub const fn category(&self) -> OpCategory {
        use OpKind::*;
        match self {
            Relu
            | Gelu
            | Tanh
            | Sigmoid
            | Add
            | Mul
            | Dropout { .. }
            | Scale
            | MaskedFill
            | Softmax => OpCategory::Elementwise,
            AdaptiveAvgPool2d { .. } | ClsSelect | LossReduce => OpCategory::FixedOutput,
            Linear { .. }
            | TiedLinear { .. }
            | MatMul
            | Conv2d { .. }
            | MaxPool2d { .. }
            | AvgPool2d { .. }
            | LayerNorm { .. }
            | BatchNorm2d { .. }
            | Embedding { .. }
            | ConcatLast
            | ZeroPad2d { .. } => OpCategory::ImplicitReduction,
            Reshape(_) | TransposeLast2 => OpCategory::View,
        }
    }

    /// Number of tensor inputs this operator consumes.
    #[must_use]
    pub const fn arity(&self) -> usize {
        use OpKind::*;
        match self {
            Add | Mul | MaskedFill | MatMul | ConcatLast => 2,
            _ => 1,
        }
    }

    /// Learnable parameter count contributed by this operator.
    #[must_use]
    pub fn param_count(&self) -> usize {
        use OpKind::*;
        match self {
            Linear {
                in_features,
                out_features,
                bias,
            } => in_features * out_features + if *bias { *out_features } else { 0 },
            Conv2d {
                in_c,
                out_c,
                kernel,
                bias,
                ..
            } => in_c * out_c * kernel * kernel + if *bias { *out_c } else { 0 },
            LayerNorm { features } => 2 * features,
            BatchNorm2d { channels } => 2 * channels,
            Embedding { vocab, hidden } => vocab * hidden,
            _ => 0,
        }
    }

    /// True for metadata-only operators that neither compute nor save bytes.
    #[must_use]
    pub const fn is_view(&self) -> bool {
        matches!(self, OpKind::Reshape(_) | OpKind::TransposeLast2)
    }

    /// Short printable mnemonic.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        use OpKind::*;
        match self {
            Relu => "relu",
            Gelu => "gelu",
            Tanh => "tanh",
            Sigmoid => "sigmoid",
            Add => "add",
            Mul => "mul",
            Dropout { .. } => "dropout",
            Scale => "scale",
            MaskedFill => "masked_fill",
            Softmax => "softmax",
            AdaptiveAvgPool2d { .. } => "adaptive_avg_pool2d",
            ClsSelect => "cls_select",
            LossReduce => "loss",
            Linear { .. } => "linear",
            TiedLinear { .. } => "tied_linear",
            MatMul => "matmul",
            Conv2d { .. } => "conv2d",
            MaxPool2d { .. } => "max_pool2d",
            AvgPool2d { .. } => "avg_pool2d",
            ConcatLast => "concat",
            ZeroPad2d { .. } => "zero_pad2d",
            LayerNorm { .. } => "layer_norm",
            BatchNorm2d { .. } => "batch_norm2d",
            Embedding { .. } => "embedding",
            Reshape(_) => "reshape",
            TransposeLast2 => "transpose",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_cover_taxonomy() {
        assert_eq!(OpKind::Relu.category(), OpCategory::Elementwise);
        assert_eq!(
            OpKind::AdaptiveAvgPool2d { out_h: 1, out_w: 1 }.category(),
            OpCategory::FixedOutput
        );
        assert_eq!(
            OpKind::Linear {
                in_features: 8,
                out_features: 8,
                bias: true
            }
            .category(),
            OpCategory::ImplicitReduction
        );
        assert_eq!(
            OpKind::Reshape(ReshapeRule::Flatten).category(),
            OpCategory::View
        );
    }

    #[test]
    fn arity_of_binary_ops() {
        assert_eq!(OpKind::Add.arity(), 2);
        assert_eq!(OpKind::MatMul.arity(), 2);
        assert_eq!(OpKind::Softmax.arity(), 1);
    }

    #[test]
    fn param_counts() {
        let lin = OpKind::Linear {
            in_features: 768,
            out_features: 3072,
            bias: true,
        };
        assert_eq!(lin.param_count(), 768 * 3072 + 3072);
        let conv = OpKind::Conv2d {
            in_c: 3,
            out_c: 64,
            kernel: 7,
            stride: 2,
            pad: 3,
            bias: false,
        };
        assert_eq!(conv.param_count(), 3 * 64 * 49);
        assert_eq!(OpKind::Relu.param_count(), 0);
        assert_eq!(
            OpKind::Embedding {
                vocab: 100,
                hidden: 8
            }
            .param_count(),
            800
        );
    }

    #[test]
    fn backward_needs_taxonomy() {
        assert_eq!(OpKind::Relu.backward_needs(), BackwardNeeds::Output);
        assert_eq!(OpKind::Softmax.backward_needs(), BackwardNeeds::Output);
        assert_eq!(
            OpKind::Dropout { p: 0.1 }.backward_needs(),
            BackwardNeeds::Mask
        );
        assert_eq!(
            OpKind::MaxPool2d {
                kernel: 3,
                stride: 2,
                pad: 1
            }
            .backward_needs(),
            BackwardNeeds::Mask
        );
        // Gelu recomputes from its *input*, so its own output is free.
        assert_eq!(OpKind::Gelu.backward_needs(), BackwardNeeds::Nothing);
        assert_eq!(OpKind::Add.backward_needs(), BackwardNeeds::Nothing);
        assert_eq!(
            OpKind::TransposeLast2.backward_needs(),
            BackwardNeeds::Nothing
        );
    }

    #[test]
    fn backward_input_reads() {
        assert!(OpKind::Gelu.backward_needs_input(0));
        assert!(OpKind::MatMul.backward_needs_input(0));
        assert!(OpKind::MatMul.backward_needs_input(1));
        assert!(OpKind::LayerNorm { features: 8 }.backward_needs_input(0));
        assert!(!OpKind::Relu.backward_needs_input(0));
        assert!(!OpKind::Add.backward_needs_input(0));
        assert!(!OpKind::Dropout { p: 0.1 }.backward_needs_input(0));
        assert!(!OpKind::MaskedFill.backward_needs_input(0));
        assert!(OpKind::MaskedFill.backward_needs_input(1));
    }

    #[test]
    fn views_are_views() {
        assert!(OpKind::TransposeLast2.is_view());
        assert!(OpKind::Reshape(ReshapeRule::SplitHeads { heads: 12 }).is_view());
        assert!(!OpKind::Softmax.is_view());
    }
}
