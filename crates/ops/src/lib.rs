//! # mimose-ops
//!
//! Operator definitions for the Mimose training simulator: the paper's four
//! operator categories (§IV-C, Fig 8), shape-inference rules, and a
//! FLOP/byte cost model that the checkpointing planners consume.

#![warn(missing_docs)]

mod category;
mod cost;
mod infer;
mod kind;

pub use category::OpCategory;
pub use cost::OpCost;
pub use infer::OpError;
pub use kind::{BackwardNeeds, OpKind, ReshapeRule};
