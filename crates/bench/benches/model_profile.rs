//! Cost of computing a model profile (shape inference + cost model) — this
//! runs once per simulated iteration, so it must stay cheap.

use mimose_bench::harness::Criterion;
use mimose_bench::tc_bert_model;
use mimose_bench::{criterion_group, criterion_main};
use mimose_models::builders::{resnet50_od, t5_base};
use mimose_models::ModelInput;
use std::hint::black_box;

fn bench_profiles(c: &mut Criterion) {
    let bert = tc_bert_model();
    let t5 = t5_base();
    let r50 = resnet50_od();
    let mut g = c.benchmark_group("model_profile");
    g.bench_function("bert_base", |b| {
        b.iter(|| {
            black_box(
                bert.profile(black_box(&ModelInput::tokens(32, 200)))
                    .unwrap(),
            )
        })
    });
    g.bench_function("t5_base", |b| {
        b.iter(|| black_box(t5.profile(black_box(&ModelInput::tokens(8, 180))).unwrap()))
    });
    g.bench_function("resnet50_od", |b| {
        b.iter(|| {
            black_box(
                r50.profile(black_box(&ModelInput::image(8, 800, 1216)))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_profiles);
criterion_main!(benches);
