//! Arena allocator throughput: the simulated caching-allocator fast path.

use mimose_bench::harness::{BatchSize, Criterion};
use mimose_bench::{criterion_group, criterion_main};
use mimose_simgpu::Arena;
use std::hint::black_box;

fn bench_alloc_free(c: &mut Criterion) {
    c.bench_function("arena_alloc_free_cycle", |b| {
        b.iter_batched_ref(
            || Arena::new(1 << 30),
            |arena| {
                let id = arena.alloc(black_box(96 << 10)).unwrap();
                arena.free(id);
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("arena_iteration_pattern", |b| {
        // A BERT-like pattern: ~180 tensor allocs, half freed mid-way
        // (checkpointing), then everything released in reverse.
        b.iter_batched_ref(
            || Arena::new(8 << 30),
            |arena| {
                let mut live = Vec::with_capacity(180);
                for i in 0..180usize {
                    let sz = 512 << 10 | (i << 9);
                    let id = arena.alloc(sz).unwrap();
                    if i % 2 == 0 {
                        arena.free(id);
                    } else {
                        live.push(id);
                    }
                }
                for id in live.into_iter().rev() {
                    arena.free(id);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_alloc_free, mimose_bench::suites::arena_suite);
criterion_main!(benches);
