//! Table I "solving time" row: offline solve cost of the static planners.

use mimose_bench::harness::Criterion;
use mimose_bench::tc_bert_profile;
use mimose_bench::{criterion_group, criterion_main};
use mimose_planner::{CheckmatePolicy, MonetPolicy, SublinearPolicy};
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let worst = tc_bert_profile(332);
    let budget = 5usize << 30;
    let mut g = c.benchmark_group("offline_solve_tc_bert");
    g.bench_function("sublinear", |b| {
        b.iter(|| black_box(SublinearPolicy::plan_offline(black_box(&worst), budget)))
    });
    g.bench_function("checkmate", |b| {
        b.iter(|| black_box(CheckmatePolicy::plan_offline(black_box(&worst), budget)))
    });
    g.bench_function("monet", |b| {
        b.iter(|| black_box(MonetPolicy::plan_offline(black_box(&worst), budget)))
    });
    g.finish();
}

criterion_group!(benches, bench_solvers, mimose_bench::suites::planner_suite);
criterion_main!(benches);
