//! Serving-mode (event-driven) scheduler throughput: wall-clock cost of
//! the discrete-event loop dispatching the mixed workload under Poisson
//! arrivals, at the canonical pool size and under overload with a bounded
//! queue. The virtual-time SLO record (tail latencies, goodput, shed rate)
//! is written by `exp serve --gate` as `BENCH_serve.json`; this suite
//! measures what the event queue itself costs the host.

use mimose_bench::harness::{BenchMeta, Criterion};
use mimose_bench::{criterion_group, criterion_main};
use mimose_cluster::{ArrivalProcess, Cluster, DevicePool, Mode, Workload};
use std::hint::black_box;

fn bench_serve(c: &mut Criterion) {
    let iters = 2;
    let ops = (Workload::mixed(iters).len() * iters) as u64;
    let meta = BenchMeta {
        blocks: None,
        ops_per_iter: Some(ops),
    };
    let mut g = c.benchmark_group("cluster_serving");
    g.bench_function_with("poisson_2dev", meta, |b| {
        b.iter(|| {
            let outcome = Cluster::builder()
                .devices(DevicePool::v100(2))
                .workload(Workload::mixed(iters))
                .mode(Mode::EventDriven)
                .arrivals(ArrivalProcess::poisson(400_000, 42))
                .run()
                .expect("serving run");
            black_box(outcome)
        })
    });
    let overload_ops = (Workload::scaled(iters, 64).len() * iters) as u64;
    let overload_meta = BenchMeta {
        blocks: None,
        ops_per_iter: Some(overload_ops),
    };
    g.bench_function_with("overload_64job_4dev", overload_meta, |b| {
        b.iter(|| {
            let outcome = Cluster::builder()
                .devices(DevicePool::v100(4))
                .workload(Workload::scaled(iters, 64))
                .mode(Mode::EventDriven)
                .arrivals(ArrivalProcess::poisson(200_000, 7))
                .queue_limit(Some(16))
                .run()
                .expect("overload run");
            black_box(outcome)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
