//! Cost of the graph optimization pass pipeline. The pipeline runs once
//! per model at session construction — not per iteration — but it sits
//! on every startup path (and on every job submission in the fleet
//! scheduler), so its wall time must stay in the sub-millisecond range
//! the `graph --gate` record (`BENCH_graph.json`) pins.
//!
//! The second group measures what the pipeline buys at profile time: the
//! annotation-aware profile must cost the same as the raw one (the
//! annotations are a table lookup per node, not extra analysis).

use mimose_bench::harness::Criterion;
use mimose_bench::tc_bert_model;
use mimose_bench::{criterion_group, criterion_main};
use mimose_models::builders::{resnet50_od, t5_base};
use mimose_models::ModelInput;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_optimize");
    g.bench_function("bert_base", |b| {
        b.iter(|| black_box(black_box(tc_bert_model()).optimize()))
    });
    g.bench_function("t5_base", |b| {
        b.iter(|| black_box(black_box(t5_base()).optimize()))
    });
    g.bench_function("resnet50_od", |b| {
        b.iter(|| black_box(black_box(resnet50_od()).optimize()))
    });
    g.finish();

    let raw = tc_bert_model();
    let opt = tc_bert_model().optimize();
    let input = ModelInput::tokens(32, 200);
    let mut g = c.benchmark_group("graph_profile");
    g.bench_function("raw", |b| {
        b.iter(|| black_box(raw.profile(black_box(&input)).unwrap()))
    });
    g.bench_function("annotated", |b| {
        b.iter(|| black_box(opt.profile(black_box(&input)).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
