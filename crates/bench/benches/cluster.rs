//! Fleet-scheduler throughput vs device count: wall-clock cost of
//! scheduling the eight-job mixed workload over 1/2/4 V100s, serial rounds
//! vs one scoped thread per busy device. The virtual-time scaling record
//! (makespan, utilization per pool size) is written by `exp cluster --gate`
//! as `BENCH_cluster.json`; this suite measures what the scheduler itself
//! costs the host.

use mimose_bench::harness::{BenchMeta, Criterion};
use mimose_bench::{criterion_group, criterion_main};
use mimose_cluster::{Cluster, DevicePool, Workload};
use std::hint::black_box;

fn bench_cluster(c: &mut Criterion) {
    let iters = 2;
    let ops = (Workload::mixed(iters).len() * iters) as u64;
    let meta = BenchMeta {
        blocks: None,
        ops_per_iter: Some(ops),
    };
    let mut g = c.benchmark_group("cluster_mixed");
    for devices in [1usize, 2, 4] {
        g.bench_function_with(&format!("serial_{devices}dev"), meta, |b| {
            b.iter(|| {
                let outcome = Cluster::builder()
                    .devices(DevicePool::v100(devices))
                    .workload(Workload::mixed(iters))
                    .threads(1)
                    .run()
                    .expect("canonical workload runs");
                black_box(outcome)
            })
        });
    }
    g.bench_function_with("threaded_4dev", meta, |b| {
        b.iter(|| {
            let outcome = Cluster::builder()
                .devices(DevicePool::v100(4))
                .workload(Workload::mixed(iters))
                .threads(4)
                .run()
                .expect("canonical workload runs");
            black_box(outcome)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
