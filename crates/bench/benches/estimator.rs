//! Table IV/V latency columns: fit and predict per regressor family.

use mimose_bench::harness::{BatchSize, Criterion};
use mimose_bench::{criterion_group, criterion_main};
use mimose_bench::{shuttle_samples, TEN_SEQS};
use mimose_estimator::{
    DecisionTreeRegressor, GbtRegressor, PolynomialRegressor, Regressor, SvrRegressor,
};
use std::hint::black_box;

fn bench_fit(c: &mut Criterion) {
    let (xs, per_block) = shuttle_samples(&TEN_SEQS);
    let ys = &per_block[1]; // one encoder block
    let mut g = c.benchmark_group("fit_10_samples");
    g.bench_function("poly_n1", |b| {
        b.iter_batched(
            || PolynomialRegressor::new(1),
            |mut m| m.fit(&xs, ys).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("poly_n2", |b| {
        b.iter_batched(
            || PolynomialRegressor::new(2),
            |mut m| m.fit(&xs, ys).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("svr", |b| {
        b.iter_batched(
            SvrRegressor::default_params,
            |mut m| m.fit(&xs, ys).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("decision_tree", |b| {
        b.iter_batched(
            DecisionTreeRegressor::default_params,
            |mut m| m.fit(&xs, ys).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("xgboost", |b| {
        b.iter_batched(
            GbtRegressor::default_params,
            |mut m| m.fit(&xs, ys).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (xs, per_block) = shuttle_samples(&TEN_SEQS);
    let ys = &per_block[1];
    let mut poly = PolynomialRegressor::new(2);
    poly.fit(&xs, ys).unwrap();
    let mut svr = SvrRegressor::default_params();
    svr.fit(&xs, ys).unwrap();
    let mut tree = DecisionTreeRegressor::default_params();
    tree.fit(&xs, ys).unwrap();
    let mut gbt = GbtRegressor::default_params();
    gbt.fit(&xs, ys).unwrap();
    let x = 32.0 * 222.0;
    let mut g = c.benchmark_group("predict_one");
    g.bench_function("poly_n2", |b| {
        b.iter(|| black_box(poly.predict(black_box(x))))
    });
    g.bench_function("svr", |b| b.iter(|| black_box(svr.predict(black_box(x)))));
    g.bench_function("decision_tree", |b| {
        b.iter(|| black_box(tree.predict(black_box(x))))
    });
    g.bench_function("xgboost", |b| {
        b.iter(|| black_box(gbt.predict(black_box(x))))
    });
    g.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
