//! Table III's sub-millisecond claim: Algorithm 1 plan generation, the
//! knapsack alternative, and the plan-cache hit path.

use mimose_bench::harness::Criterion;
use mimose_bench::tc_bert_profile;
use mimose_bench::{criterion_group, criterion_main};
use mimose_core::{GreedyBucketScheduler, KnapsackScheduler, PlanCache, Scheduler};
use mimose_planner::CheckpointPlan;
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let profile = tc_bert_profile(260);
    let budget = 5usize << 30;
    let greedy = GreedyBucketScheduler::new(0.10);
    let knapsack = KnapsackScheduler;
    let mut g = c.benchmark_group("schedule_tc_bert_seq260");
    g.bench_function("greedy_bucket", |b| {
        b.iter(|| black_box(greedy.schedule(black_box(&profile), budget)))
    });
    g.bench_function("knapsack", |b| {
        b.iter(|| black_box(knapsack.schedule(black_box(&profile), budget)))
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut cache = PlanCache::new(0.04);
    for i in 1..40usize {
        cache.insert(i * 500, 6 << 30, CheckpointPlan::all(14));
    }
    c.bench_function("plan_cache_hit", |b| {
        b.iter(|| black_box(cache.get(black_box(7_013), 6 << 30)))
    });
}

criterion_group!(benches, bench_schedulers, bench_cache);
criterion_main!(benches);
