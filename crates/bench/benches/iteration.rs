//! End-to-end single-iteration cost per planner — a micro-slice of Fig 10.

use mimose_bench::harness::Criterion;
use mimose_bench::tc_bert_profile;
use mimose_bench::{criterion_group, criterion_main};
use mimose_exec::{BlockIteration, DtrIteration};
use mimose_planner::{CheckpointPlan, SublinearPolicy};
use mimose_simgpu::DeviceProfile;
use std::hint::black_box;

fn bench_iteration(c: &mut Criterion) {
    let profile = tc_bert_profile(200);
    let dev = DeviceProfile::v100();
    let n = profile.blocks.len();
    let none = CheckpointPlan::none(n);
    let sub = SublinearPolicy::plan_offline(&tc_bert_profile(332), 5 << 30)
        .plan()
        .clone();
    let mut g = c.benchmark_group("simulate_one_iteration");
    g.bench_function("baseline_plan", |b| {
        b.iter(|| {
            black_box(
                BlockIteration::plan(black_box(&profile), &none)
                    .device(&dev)
                    .capacity(16 << 30)
                    .run(),
            )
        })
    });
    g.bench_function("sublinear_plan", |b| {
        b.iter(|| {
            black_box(
                BlockIteration::plan(black_box(&profile), &sub)
                    .device(&dev)
                    .capacity(16 << 30)
                    .run(),
            )
        })
    });
    g.bench_function("shuttle", |b| {
        b.iter(|| {
            black_box(
                BlockIteration::shuttle(black_box(&profile))
                    .device(&dev)
                    .capacity(16 << 30)
                    .run(),
            )
        })
    });
    // Same work as `sublinear_plan` but with the full ExecEvent stream
    // recorded — the delta is the cost of event sourcing itself.
    g.bench_function("sublinear_plan_recorded", |b| {
        b.iter(|| {
            black_box(
                BlockIteration::plan(black_box(&profile), &sub)
                    .device(&dev)
                    .capacity(16 << 30)
                    .run_recorded(),
            )
        })
    });
    g.bench_function("dtr", |b| {
        b.iter(|| {
            black_box(
                DtrIteration::new(black_box(&profile), 5 << 30)
                    .device(&dev)
                    .capacity(16 << 30)
                    .run(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
