//! Before/after benchmark suites for the planning hot path and the arena.
//!
//! The "before" side of each pair is a **frozen copy** of the
//! pre-optimisation algorithm (the seed's O(L) peak-walk planners and the
//! linear-scan arena), kept here — and only here — so the speedup of the
//! incremental residency engine and the size-indexed free list stays
//! measurable after the production code moved on. The frozen copies are
//! driven by the `*_reference` peak walks, which are themselves the
//! differential-test oracles, so "before" also doubles as a correctness
//! cross-check: before and after must produce plans with identical peaks.

use crate::harness::{BatchSize, BenchMeta, Criterion};
use crate::synthetic_profile;
use mimose_core::{repair_plan, GreedyBucketScheduler, KnapsackScheduler, RepairConfig, Scheduler};
use mimose_exec::BlockIteration;
use mimose_models::{BlockProfile, ModelInput, ModelProfile};
use mimose_planner::memory_model::peak_bytes;
use mimose_planner::{CheckmatePolicy, CheckpointPlan, MonetPolicy};
use mimose_runtime::{EventLog, NullRecorder, Recorder, RingRecorder};
use mimose_simgpu::{AllocPolicy, Arena, DeviceProfile};
use mimose_verify::{certify, plan_hash, SizeBucket};
use std::hint::black_box;

/// Frozen pre-optimisation algorithms (see module docs).
pub mod baseline {
    use mimose_models::ModelProfile;
    use mimose_planner::memory_model::{peak_bytes_fine_reference, peak_bytes_reference, FinePlan};
    use mimose_planner::CheckpointPlan;
    use std::collections::BTreeMap;

    /// Seed-version bucket construction (unchanged in production; copied so
    /// the frozen scheduler is self-contained).
    fn build_buckets(est_mem: &[usize], tolerance: f64) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..est_mem.len()).collect();
        order.sort_by(|&a, &b| est_mem[b].cmp(&est_mem[a]));
        let mut buckets: Vec<Vec<usize>> = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let head = order[i];
            let head_mem = est_mem[head] as f64;
            let mut bucket = vec![head];
            let mut j = i + 1;
            while j < order.len() && est_mem[order[j]] as f64 > head_mem * (1.0 - tolerance) {
                bucket.push(order[j]);
                j += 1;
            }
            bucket.sort_unstable();
            buckets.push(bucket);
            i = j;
        }
        buckets
    }

    /// Seed-version greedy bucket scheduler: scalar excess bookkeeping with
    /// an O(L) peak walk per verification step and O(B) bucket scans plus
    /// `Vec::remove(0)` per selection.
    #[must_use]
    pub fn greedy_bucket(est: &ModelProfile, budget: usize, tolerance: f64) -> CheckpointPlan {
        let n = est.blocks.len();
        let mut plan = CheckpointPlan::none(n);
        if peak_bytes_reference(est, &plan) <= budget {
            return plan;
        }
        let est_mem: Vec<usize> = est.blocks.iter().map(|b| b.act_bytes).collect();
        let mut buckets = build_buckets(&est_mem, tolerance);
        let total: usize = peak_bytes_reference(est, &plan);
        let mut excess = total as i64 - budget as i64;
        while excess > 0 {
            let candidate = buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| !b.is_empty())
                .filter(|(_, b)| est_mem[b[0]] as i64 >= excess)
                .min_by_key(|(_, b)| est_mem[b[0]]);
            let bi = match candidate {
                Some((bi, _)) => bi,
                None => {
                    match buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| !b.is_empty())
                        .max_by_key(|(_, b)| est_mem[b[0]])
                    {
                        Some((bi, _)) => bi,
                        None => break,
                    }
                }
            };
            let l = buckets[bi].remove(0);
            plan.set(l, true);
            excess -= est_mem[l] as i64;
        }
        while peak_bytes_reference(est, &plan) > budget {
            let next = buckets
                .iter_mut()
                .filter(|b| !b.is_empty())
                .max_by_key(|b| est_mem[b[0]]);
            match next {
                Some(b) => {
                    let l = b.remove(0);
                    plan.set(l, true);
                }
                None => break,
            }
        }
        plan
    }

    /// Seed-version knapsack scheduler: one O(L) peak walk per candidate.
    #[must_use]
    pub fn knapsack(est: &ModelProfile, budget: usize) -> CheckpointPlan {
        let n = est.blocks.len();
        let plan = CheckpointPlan::none(n);
        if peak_bytes_reference(est, &plan) <= budget {
            return plan;
        }
        let mut plan = CheckpointPlan::all(n);
        for i in (0..n).rev() {
            plan.set(i, false);
            if peak_bytes_reference(est, &plan) > budget {
                plan.set(i, true);
            }
        }
        plan
    }

    /// Seed-version MONeT greedy + prune: one O(L) fine peak walk per
    /// candidate evaluation.
    #[must_use]
    pub fn monet(reference: &ModelProfile, budget: usize) -> FinePlan {
        struct Candidate {
            block: usize,
            bytes: usize,
            flops: f64,
        }
        fn apply(plan: &mut FinePlan, c: &Candidate, on: bool) {
            if on {
                plan.dropped_bytes[c.block] += c.bytes;
                plan.recompute_flops[c.block] += c.flops;
            } else {
                plan.dropped_bytes[c.block] -= c.bytes;
                plan.recompute_flops[c.block] = (plan.recompute_flops[c.block] - c.flops).max(0.0);
            }
        }
        let n = reference.blocks.len();
        let mut candidates: Vec<Candidate> = Vec::new();
        for (bi, b) in reference.blocks.iter().enumerate() {
            for t in &b.tensors {
                candidates.push(Candidate {
                    block: bi,
                    bytes: t.bytes,
                    flops: t.fwd_flops * 1.3,
                });
            }
        }
        let mut plan = FinePlan::none(n);
        let mut selected = vec![false; candidates.len()];
        let mut feasible = peak_bytes_fine_reference(reference, &plan) <= budget;
        if !feasible {
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by(|&a, &b| {
                let ea = candidates[a].bytes as f64 / candidates[a].flops.max(1.0);
                let eb = candidates[b].bytes as f64 / candidates[b].flops.max(1.0);
                eb.total_cmp(&ea)
            });
            for &ci in &order {
                apply(&mut plan, &candidates[ci], true);
                selected[ci] = true;
                if peak_bytes_fine_reference(reference, &plan) <= budget {
                    feasible = true;
                    break;
                }
            }
            if feasible {
                let mut sel: Vec<usize> = (0..candidates.len()).filter(|&i| selected[i]).collect();
                sel.sort_by(|&a, &b| candidates[b].flops.total_cmp(&candidates[a].flops));
                for &ci in &sel {
                    apply(&mut plan, &candidates[ci], false);
                    if peak_bytes_fine_reference(reference, &plan) <= budget {
                        selected[ci] = false;
                    } else {
                        apply(&mut plan, &candidates[ci], true);
                    }
                }
            }
        }
        for (i, b) in reference.blocks.iter().enumerate() {
            plan.recompute_flops[i] = plan.recompute_flops[i].min(b.fwd_flops * 1.05);
        }
        plan
    }

    /// Seed-version arena: single address-ordered free list, linear-scan fit
    /// selection, and — the dominant cost — an O(n) `largest_free` scan run
    /// twice per successful allocation for the fragmentation watermarks.
    /// Trimmed of tracing; the allocation/free cost structure is intact.
    pub struct LinearArena {
        capacity: usize,
        best_fit: bool,
        free: BTreeMap<usize, usize>,
        live: BTreeMap<u64, (usize, usize)>,
        next_id: u64,
        used: usize,
        peak_frag: usize,
        peak_footprint: usize,
    }

    impl LinearArena {
        const ALIGN: usize = 512;

        /// Arena of `capacity` bytes; `best_fit` selects the fit policy.
        #[must_use]
        pub fn new(capacity: usize, best_fit: bool) -> Self {
            let mut free = BTreeMap::new();
            if capacity > 0 {
                free.insert(0, capacity);
            }
            LinearArena {
                capacity,
                best_fit,
                free,
                live: BTreeMap::new(),
                next_id: 0,
                used: 0,
                peak_frag: 0,
                peak_footprint: 0,
            }
        }

        fn aligned(bytes: usize) -> usize {
            ((bytes + Self::ALIGN - 1) & !(Self::ALIGN - 1)).max(Self::ALIGN)
        }

        fn largest_free(&self) -> usize {
            self.free.values().copied().max().unwrap_or(0)
        }

        fn fragmentation_bytes(&self) -> usize {
            (self.capacity - self.used) - self.largest_free()
        }

        /// Allocate; `None` on OOM.
        pub fn alloc(&mut self, bytes: usize) -> Option<u64> {
            let need = Self::aligned(bytes);
            let slot = if self.best_fit {
                self.free
                    .iter()
                    .filter(|(_, &len)| len >= need)
                    .min_by_key(|(&addr, &len)| (len, addr))
                    .map(|(&addr, &len)| (addr, len))
            } else {
                self.free
                    .iter()
                    .find(|(_, &len)| len >= need)
                    .map(|(&addr, &len)| (addr, len))
            };
            let (addr, len) = slot?;
            self.free.remove(&addr);
            if len > need {
                self.free.insert(addr + need, len - need);
            }
            let id = self.next_id;
            self.next_id += 1;
            self.live.insert(id, (addr, need));
            self.used += need;
            self.peak_frag = self.peak_frag.max(self.fragmentation_bytes());
            self.peak_footprint = self
                .peak_footprint
                .max(self.used + self.fragmentation_bytes());
            Some(id)
        }

        /// Free a live allocation.
        ///
        /// # Panics
        ///
        /// Panics when `id` is not live.
        pub fn free(&mut self, id: u64) {
            let (addr, len) = self.live.remove(&id).expect("live id");
            self.used -= len;
            let mut start = addr;
            let mut length = len;
            if let Some((&paddr, &plen)) = self.free.range(..addr).next_back() {
                if paddr + plen == addr {
                    self.free.remove(&paddr);
                    start = paddr;
                    length += plen;
                }
            }
            if let Some((&naddr, &nlen)) = self.free.range(addr + len..).next() {
                if addr + len == naddr {
                    self.free.remove(&naddr);
                    length += nlen;
                }
            }
            self.free.insert(start, length);
            self.peak_footprint = self
                .peak_footprint
                .max(self.used + self.fragmentation_bytes());
        }
    }
}

/// Pick a budget just above the all-checkpointed floor — Mimose's operating
/// regime (the paper evaluates near the minimum feasible budget). On the
/// spiked synthetic profile this makes the attention spike the binding
/// peak, so feasibility hinges on the small early blocks the greedy order
/// ranks last, and the planners' feasibility oracle becomes the hot path.
fn tight_budget(p: &ModelProfile) -> usize {
    let n = p.blocks.len();
    let hi = peak_bytes(p, &CheckpointPlan::none(n));
    let lo = peak_bytes(p, &CheckpointPlan::all(n));
    lo + (hi - lo) / 256
}

/// Planner hot-path suite: before/after pairs at 512- and 1024-block
/// synthetic profiles (the scales where the O(L) walk per candidate
/// dominates; the ratio roughly doubles from 512 to 1024 because the
/// "before" solvers are O(L²)).
pub fn planner_suite(c: &mut Criterion) {
    planner_group(c, 512);
    planner_group(c, 1024);
}

fn planner_group(c: &mut Criterion, l: usize) {
    let p = synthetic_profile(l);
    let budget = tight_budget(&p);
    let meta = BenchMeta {
        blocks: Some(l),
        ops_per_iter: None,
    };

    // Sanity: before and after must agree on plan quality (equal peaks are
    // not guaranteed — selection order can differ once est_mem ties — but
    // both must be feasible).
    assert!(
        peak_bytes(&p, &baseline::greedy_bucket(&p, budget, 0.10)) <= budget,
        "frozen greedy baseline produced an infeasible plan"
    );
    assert!(
        peak_bytes(&p, &GreedyBucketScheduler::new(0.10).schedule(&p, budget)) <= budget,
        "production greedy produced an infeasible plan"
    );

    let mut g = c.benchmark_group(&format!("planner_solve_synthetic_{l}"));
    g.bench_function_with("greedy_before", meta, |b| {
        b.iter(|| black_box(baseline::greedy_bucket(black_box(&p), budget, 0.10)))
    });
    g.bench_function_with("greedy_after", meta, |b| {
        let s = GreedyBucketScheduler::new(0.10);
        b.iter(|| black_box(s.schedule(black_box(&p), budget)))
    });
    g.bench_function_with("knapsack_before", meta, |b| {
        b.iter(|| black_box(baseline::knapsack(black_box(&p), budget)))
    });
    g.bench_function_with("knapsack_after", meta, |b| {
        let s = KnapsackScheduler;
        b.iter(|| black_box(s.schedule(black_box(&p), budget)))
    });
    g.bench_function_with("monet_before", meta, |b| {
        b.iter(|| black_box(baseline::monet(black_box(&p), budget)))
    });
    g.bench_function_with("monet_after", meta, |b| {
        b.iter(|| black_box(MonetPolicy::plan_offline(black_box(&p), budget)))
    });
    // The seed checkmate is O(L^3)-ish at these scales — minutes per solve —
    // so only the rewired planner is benched.
    g.bench_function_with("checkmate_after", meta, |b| {
        b.iter(|| black_box(CheckmatePolicy::plan_offline(black_box(&p), budget)))
    });
    // The certificate check a certified plan-cache bucket hit performs in
    // place of a planner re-solve: covers + fits + hash compare. Its cost
    // is the whole point of insert-time certification — it must sit orders
    // of magnitude under the greedy solve it replaces.
    let plan = GreedyBucketScheduler::new(0.10).schedule(&p, budget);
    let cert = certify(
        std::slice::from_ref(&p),
        &plan,
        SizeBucket::new(p.input_size, p.input_size),
        budget,
    )
    .expect("feasible plan certifies");
    let hash = plan_hash(&plan);
    g.bench_function_with("certificate_check_hit", meta, |b| {
        b.iter(|| {
            black_box(
                cert.covers(black_box(p.input_size))
                    && cert.fits(black_box(budget))
                    && cert.matches_hash(black_box(hash)),
            )
        })
    });
    // The ladder's middle rung on a bucket miss: repair the neighboring
    // bucket's cached plan (a handful of residency flips against the
    // incremental model) versus `cold_miss`, the bottom rung's full greedy
    // re-solve on the same profile. The acceptance criterion pins repair
    // ≥10× under cold at L = 1024. The scenario runs on the uniform-
    // intensity stack rather than the spiked profile: repair's quality
    // gate proves its result against the covering lower bound, and on the
    // adversarial spike that bound is ~20 % below what any integral plan
    // can reach, so the policy (correctly) refuses the rung there and
    // falls back cold. Uniform transformer stacks — the common case the
    // cache ladder exists for — are where the middle rung engages.
    let up = uniform_profile(l);
    let ubudget = near_floor_budget(&up, 1024);
    let donor_p = scaled_profile(&up, 100, 105); // ~5 % smaller neighbor bucket
    let donor =
        GreedyBucketScheduler::new(0.10).schedule(&donor_p, near_floor_budget(&donor_p, 1024));
    let repair_cfg = RepairConfig::default();
    assert!(
        repair_plan(&up, &donor, ubudget, &repair_cfg).is_some(),
        "repair bench scenario must actually take the repair rung"
    );
    g.bench_function_with("repair_hit", meta, |b| {
        b.iter(|| {
            black_box(repair_plan(
                black_box(&up),
                black_box(&donor),
                ubudget,
                &repair_cfg,
            ))
        })
    });
    g.bench_function_with("cold_miss", meta, |b| {
        let s = GreedyBucketScheduler::new(0.10);
        b.iter(|| black_box(s.schedule(black_box(&up), ubudget)))
    });
    g.finish();
}

/// A budget `1/denom` of the way up from the all-checkpointed floor — the
/// near-minimum operating regime, parameterized so the repair scenario can
/// leave the trim pass a realistic margin.
fn near_floor_budget(p: &ModelProfile, denom: usize) -> usize {
    let n = p.blocks.len();
    let hi = peak_bytes(p, &CheckpointPlan::none(n));
    let lo = peak_bytes(p, &CheckpointPlan::all(n));
    lo + (hi - lo) / denom
}

/// A uniform transformer stack: every block shares one arithmetic
/// intensity (flops per activation byte), as identical decoder layers do.
/// On this shape the covering lower bound is tight, so the repair quality
/// gate engages — the scenario the plan-cache ladder is built for.
fn uniform_profile(l: usize) -> ModelProfile {
    let blocks = (0..l)
        .map(|i| {
            let act = (8usize << 20) + (i % 7) * (1 << 20); // 8–14 MiB
            BlockProfile {
                name: format!("layer{i}"),
                stage: 0,
                index: i,
                act_bytes: act,
                out_bytes: 4 << 20,
                in_bytes: 4 << 20,
                fwd_flops: act as f64 * 128.0,
                bwd_flops: act as f64 * 256.0,
                fwd_bytes_moved: act + (8 << 20),
                tensors: Vec::new(),
            }
        })
        .collect();
    ModelProfile {
        model: "uniform".into(),
        input: ModelInput::tokens(8, 2048),
        input_size: 2048,
        blocks,
        const_bytes: 2 << 30,
        param_count: 0,
        input_bytes: 8 << 20,
    }
}

/// The neighbor-bucket profile a repair starts from: every size-dependent
/// tensor field scaled by `num/den`, the way the estimator's fitted
/// polynomials move between adjacent buckets.
fn scaled_profile(p: &ModelProfile, num: usize, den: usize) -> ModelProfile {
    let mut q = p.clone();
    for b in &mut q.blocks {
        b.act_bytes = b.act_bytes * num / den;
        b.out_bytes = b.out_bytes * num / den;
        b.in_bytes = b.in_bytes * num / den;
        b.fwd_flops = b.fwd_flops * num as f64 / den as f64;
        b.fwd_bytes_moved = b.fwd_bytes_moved * num / den;
    }
    q.input_size = p.input_size * num / den;
    q
}

/// Recorded-iteration suite: one block-engine iteration (TC-Bert, seq 200,
/// alternating plan) driven through [`BlockIteration::run_into`] with each
/// recorder, plus the isolated per-event record cost on the captured
/// stream. The simulated engine does only ~100 ns of bookkeeping per
/// event, so even `EventLog`'s raw push shows up at ~10 %; CI bounds the
/// ring at 1.5× null (see the recorder-overhead step in ci.yml), and the
/// `runtime_record_cost` group carries the exact per-event numbers.
///
/// # Panics
/// Panics only if the fixture plan indices fall out of range for the
/// profile (impossible for the pinned TC-Bert shape).
pub fn runtime_suite(c: &mut Criterion) {
    let p = crate::tc_bert_profile(200);
    let n = p.blocks.len();
    let plan = CheckpointPlan::from_indices(n, &[1, 3, 5, 7, 9]).expect("indices in range");
    let dev = DeviceProfile::v100();
    let cap = 64usize << 30;
    let meta = BenchMeta {
        blocks: Some(n),
        ops_per_iter: None,
    };
    let mut g = c.benchmark_group("runtime_recorded_iteration");
    g.bench_function_with("null", meta, |b| {
        let mut rec = NullRecorder;
        b.iter(|| {
            black_box(
                BlockIteration::plan(&p, &plan)
                    .device(&dev)
                    .capacity(cap)
                    .run_into(&mut rec),
            )
        })
    });
    g.bench_function_with("event_log", meta, |b| {
        let mut log = EventLog::new();
        b.iter(|| {
            log.events.clear();
            black_box(
                BlockIteration::plan(&p, &plan)
                    .device(&dev)
                    .capacity(cap)
                    .run_into(&mut log),
            )
        })
    });
    g.bench_function_with("ring", meta, |b| {
        let mut ring = RingRecorder::for_blocks(n);
        b.iter(|| {
            ring.clear();
            black_box(
                BlockIteration::plan(&p, &plan)
                    .device(&dev)
                    .capacity(cap)
                    .run_into(&mut ring),
            )
        })
    });
    g.finish();

    // Pure record cost, isolated from the engine: replay the captured
    // per-iteration stream into each recorder. `ops_per_iter` makes the
    // JSON's per-event cost exact (the in-situ numbers above fold the
    // engine's own ~100 ns/event of bookkeeping into the denominator).
    let mut log = EventLog::new();
    let _ = BlockIteration::plan(&p, &plan)
        .device(&dev)
        .capacity(cap)
        .run_into(&mut log);
    let stream = log.events;
    let ops = BenchMeta {
        blocks: Some(n),
        ops_per_iter: Some(stream.len() as u64),
    };
    let mut g = c.benchmark_group("runtime_record_cost");
    g.bench_function_with("event_log", ops, |b| {
        let mut log = EventLog::new();
        b.iter(|| {
            log.events.clear();
            for ev in &stream {
                log.record(black_box(ev));
            }
            black_box(log.events.len())
        })
    });
    g.bench_function_with("ring", ops, |b| {
        let mut ring = RingRecorder::for_blocks(n);
        b.iter(|| {
            ring.clear();
            for ev in &stream {
                ring.record(black_box(ev));
            }
            black_box(ring.len_bytes())
        })
    });
    g.finish();
}

/// Number of allocator calls `frag_heavy` makes (for ops/sec reporting).
pub const FRAG_HEAVY_OPS: u64 = {
    // Phase 1: 768 allocs; phase 2: 384 frees; phase 3: 512 allocs;
    // phase 4: 384 + 512 frees.
    768 + 384 + 512 + 384 + 512
};

/// Arena surface the fragmentation workload drives (one impl per side of
/// the before/after pair).
trait BenchArena {
    type Id;
    fn try_alloc(&mut self, bytes: usize) -> Option<Self::Id>;
    fn release(&mut self, id: Self::Id);
}

impl BenchArena for baseline::LinearArena {
    type Id = u64;
    fn try_alloc(&mut self, bytes: usize) -> Option<u64> {
        self.alloc(bytes)
    }
    fn release(&mut self, id: u64) {
        self.free(id)
    }
}

impl BenchArena for Arena {
    type Id = mimose_simgpu::AllocId;
    fn try_alloc(&mut self, bytes: usize) -> Option<Self::Id> {
        self.alloc(bytes).ok()
    }
    fn release(&mut self, id: Self::Id) {
        self.free(id)
    }
}

/// Fragmentation-heavy allocator workload, generic over the arena: a broad
/// carve phase, a hole-punching phase that leaves ~384 free ranges, a
/// small-object phase that must hunt through those holes, then a full
/// teardown. Deterministic sizes (index arithmetic, no RNG).
fn frag_heavy<A: BenchArena>(a: &mut A) {
    let mut live: Vec<Option<A::Id>> = Vec::with_capacity(768);
    // Phase 1: 768 varied allocations (~4 KiB .. ~768 KiB).
    for i in 0..768usize {
        let sz = 4096 + (i * 7919) % (768 << 10);
        live.push(Some(a.try_alloc(sz).expect("phase 1 fits")));
    }
    // Phase 2: free every other one — ~384 non-adjacent holes.
    for slot in live.iter_mut().step_by(2) {
        a.release(slot.take().expect("live"));
    }
    // Phase 3: 512 small allocations that must search the hole field.
    let mut small: Vec<A::Id> = Vec::with_capacity(512);
    for i in 0..512usize {
        let sz = 1024 + (i * 104_729) % (12 << 10);
        small.push(a.try_alloc(sz).expect("phase 3 fits"));
    }
    // Phase 4: tear down everything still live.
    for slot in live.iter_mut() {
        if let Some(id) = slot.take() {
            a.release(id);
        }
    }
    for id in small {
        a.release(id);
    }
}

/// Arena suite: frozen linear-scan arena vs the size-indexed arena on the
/// fragmentation-heavy workload, both fit policies.
pub fn arena_suite(c: &mut Criterion) {
    const CAP: usize = 1 << 30;
    let meta = BenchMeta {
        blocks: None,
        ops_per_iter: Some(FRAG_HEAVY_OPS),
    };
    let mut g = c.benchmark_group("arena_frag_heavy");
    g.bench_function_with("first_fit_before", meta, |b| {
        b.iter_batched_ref(
            || baseline::LinearArena::new(CAP, false),
            frag_heavy,
            BatchSize::SmallInput,
        )
    });
    g.bench_function_with("first_fit_after", meta, |b| {
        b.iter_batched_ref(
            || Arena::with_policy(CAP, AllocPolicy::FirstFit),
            frag_heavy,
            BatchSize::SmallInput,
        )
    });
    g.bench_function_with("best_fit_before", meta, |b| {
        b.iter_batched_ref(
            || baseline::LinearArena::new(CAP, true),
            frag_heavy,
            BatchSize::SmallInput,
        )
    });
    g.bench_function_with("best_fit_after", meta, |b| {
        b.iter_batched_ref(
            || Arena::with_policy(CAP, AllocPolicy::BestFit),
            frag_heavy,
            BatchSize::SmallInput,
        )
    });
    g.finish();
}
