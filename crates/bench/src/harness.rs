//! Minimal benchmark harness exposing the slice of the Criterion API the
//! bench targets use (`bench_function`, `benchmark_group`, `iter`,
//! `iter_batched[_ref]`). Criterion itself is unavailable in the offline
//! build environment; this harness keeps the targets runnable and prints
//! median ns/iter per benchmark.

use std::time::{Duration, Instant};

/// Batch-size hint (accepted for API compatibility; batches are per-call).
#[derive(Debug, Clone, Copy, Default)]
pub enum BatchSize {
    /// Small per-iteration state.
    #[default]
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by the `iter*` methods.
    ns_per_iter: f64,
}

const WARMUP_ITERS: usize = 3;
const MAX_SAMPLES: usize = 101;
const SAMPLE_BUDGET: Duration = Duration::from_millis(300);

impl Bencher {
    fn measure<F: FnMut() -> Duration>(&mut self, mut one: F) {
        for _ in 0..WARMUP_ITERS {
            let _ = one();
        }
        let started = Instant::now();
        let mut samples = Vec::with_capacity(MAX_SAMPLES);
        while samples.len() < MAX_SAMPLES && started.elapsed() < SAMPLE_BUDGET {
            samples.push(one().as_nanos() as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Time `routine` directly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            t0.elapsed()
        });
    }

    /// Time `routine` on a fresh value from `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.measure(|| {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            t0.elapsed()
        });
    }

    /// Time `routine` on a mutable reference to a fresh value from `setup`.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        self.measure(|| {
            let mut input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(&mut input));
            t0.elapsed()
        });
    }
}

/// Result line for one benchmark.
struct Entry {
    name: String,
    ns_per_iter: f64,
}

/// Benchmark registry + runner.
#[derive(Default)]
pub struct Criterion {
    entries: Vec<Entry>,
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        self.entries.push(Entry {
            name: name.to_string(),
            ns_per_iter: b.ns_per_iter,
        });
        self
    }

    /// Open a named group; member benchmarks are prefixed with the group name.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.to_string(),
        }
    }

    /// Print all collected measurements.
    pub fn report(&self) {
        for e in &self.entries {
            println!("{:<48} {:>14.0} ns/iter", e.name, e.ns_per_iter);
        }
    }
}

/// Group handle mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        self.c.bench_function(&full, f);
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Entry point running one or more groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
            c.report();
        }
    };
}
