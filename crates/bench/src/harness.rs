//! Minimal benchmark harness exposing the slice of the Criterion API the
//! bench targets use (`bench_function`, `benchmark_group`, `iter`,
//! `iter_batched[_ref]`). Criterion itself is unavailable in the offline
//! build environment; this harness keeps the targets runnable and prints
//! median ns/iter per benchmark.
//!
//! Beyond the Criterion surface, the harness emits machine-readable results:
//! [`Criterion::write_json`] dumps every measurement (with optional
//! [`BenchMeta`] — problem size in blocks, allocator ops per iteration) as a
//! hand-rolled JSON document, and `criterion_main!` honours two env vars:
//! `MIMOSE_BENCH_JSON=<path>` writes the JSON there, and
//! `MIMOSE_BENCH_SMOKE=1` shrinks sampling to a fast smoke run so CI can
//! exercise every bench target without paying full measurement cost.

use std::io::Write;
use std::path::Path;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// True when `MIMOSE_BENCH_SMOKE` is set (non-empty, not `0`): benches run
/// with minimal sampling, checking only that the code paths work.
pub fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| {
        std::env::var("MIMOSE_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// Optional per-benchmark metadata carried into the JSON report.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchMeta {
    /// Problem size in model blocks (planner/scheduler benches).
    pub blocks: Option<usize>,
    /// Allocator (or other) operations performed per iteration; the report
    /// derives ops/sec from this and the median iteration time.
    pub ops_per_iter: Option<u64>,
}

/// Batch-size hint (accepted for API compatibility; batches are per-call).
#[derive(Debug, Clone, Copy, Default)]
pub enum BatchSize {
    /// Small per-iteration state.
    #[default]
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by the `iter*` methods.
    ns_per_iter: f64,
}

const WARMUP_ITERS: usize = 3;
const MAX_SAMPLES: usize = 101;
const SAMPLE_BUDGET: Duration = Duration::from_millis(300);

impl Bencher {
    fn measure<F: FnMut() -> Duration>(&mut self, mut one: F) {
        let (warmup, max_samples, budget) = if smoke_mode() {
            (0, 3, Duration::from_millis(20))
        } else {
            (WARMUP_ITERS, MAX_SAMPLES, SAMPLE_BUDGET)
        };
        for _ in 0..warmup {
            let _ = one();
        }
        let started = Instant::now();
        let mut samples = Vec::with_capacity(max_samples);
        while samples.len() < max_samples && (samples.is_empty() || started.elapsed() < budget) {
            samples.push(one().as_nanos() as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Time `routine` directly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            t0.elapsed()
        });
    }

    /// Time `routine` on a fresh value from `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.measure(|| {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            t0.elapsed()
        });
    }

    /// Time `routine` on a mutable reference to a fresh value from `setup`.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        self.measure(|| {
            let mut input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(&mut input));
            t0.elapsed()
        });
    }
}

/// Result line for one benchmark.
struct Entry {
    name: String,
    ns_per_iter: f64,
    meta: BenchMeta,
}

/// Benchmark registry + runner.
#[derive(Default)]
pub struct Criterion {
    entries: Vec<Entry>,
}

/// Escape a string for a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.bench_function_with(name, BenchMeta::default(), f)
    }

    /// Run one named benchmark carrying metadata into the JSON report.
    pub fn bench_function_with<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        meta: BenchMeta,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        self.entries.push(Entry {
            name: name.to_string(),
            ns_per_iter: b.ns_per_iter,
            meta,
        });
        self
    }

    /// Open a named group; member benchmarks are prefixed with the group name.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.to_string(),
        }
    }

    /// Print all collected measurements.
    pub fn report(&self) {
        for e in &self.entries {
            println!("{:<48} {:>14.0} ns/iter", e.name, e.ns_per_iter);
        }
    }

    /// Serialise all measurements as a JSON document (no external deps, so
    /// the document is hand-rolled): suite name plus one record per bench
    /// with the median iteration time and any metadata.
    #[must_use]
    pub fn to_json(&self, suite: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", json_escape(suite)));
        out.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
        out.push_str("  \"results\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": \"{}\"", json_escape(&e.name)));
            out.push_str(&format!(", \"median_ns\": {:.1}", e.ns_per_iter));
            if let Some(blocks) = e.meta.blocks {
                out.push_str(&format!(", \"blocks\": {blocks}"));
            }
            if let Some(ops) = e.meta.ops_per_iter {
                out.push_str(&format!(", \"ops_per_iter\": {ops}"));
                if e.ns_per_iter > 0.0 {
                    out.push_str(&format!(
                        ", \"ops_per_sec\": {:.1}",
                        ops as f64 / (e.ns_per_iter * 1e-9)
                    ));
                }
            }
            out.push('}');
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON report to `path`.
    pub fn write_json(&self, suite: &str, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json(suite).as_bytes())
    }
}

/// Group handle mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.bench_function_with(name, BenchMeta::default(), f)
    }

    /// Run one benchmark inside the group, carrying metadata into the
    /// JSON report.
    pub fn bench_function_with<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        meta: BenchMeta,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        self.c.bench_function_with(&full, meta, f);
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Entry point running one or more groups, mirroring
/// `criterion::criterion_main!`. When `MIMOSE_BENCH_JSON=<path>` is set,
/// the measurements are also written there as JSON (suite = crate name).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
            c.report();
            if let Ok(path) = std::env::var("MIMOSE_BENCH_JSON") {
                if !path.is_empty() {
                    c.write_json(env!("CARGO_CRATE_NAME"), std::path::Path::new(&path))
                        .expect("write bench JSON");
                    eprintln!("bench JSON written to {path}");
                }
            }
        }
    };
}
