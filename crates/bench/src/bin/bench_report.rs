//! Runs the planner, arena, and recorded-iteration suites and writes
//! `BENCH_planner.json` + `BENCH_arena.json` + `BENCH_runtime.json` at the
//! repository root — the machine-readable record the acceptance criteria
//! (and future regression tracking) read.
//! `cargo run --release -p mimose-bench --bin bench_report`.
//!
//! Pass suite names (`planner`, `arena`, `runtime`) to regenerate a subset
//! — useful when one suite caught machine-load noise and the others are
//! fine: `cargo run --release -p mimose-bench --bin bench_report -- runtime`.

use mimose_bench::harness::Criterion;
use mimose_bench::suites::{arena_suite, planner_suite, runtime_suite};
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let selected: Vec<String> = std::env::args().skip(1).collect();
    let wants = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);

    for (name, suite) in [
        ("planner", planner_suite as fn(&mut Criterion)),
        ("arena", arena_suite),
        ("runtime", runtime_suite),
    ] {
        if !wants(name) {
            continue;
        }
        let mut c = Criterion::default();
        suite(&mut c);
        c.report();
        let path = root.join(format!("BENCH_{name}.json"));
        c.write_json(name, &path)
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}
