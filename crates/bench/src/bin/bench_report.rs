//! Runs the planner and arena before/after suites and writes
//! `BENCH_planner.json` + `BENCH_arena.json` at the repository root — the
//! machine-readable record the acceptance criteria (and future regression
//! tracking) read. `cargo run --release -p mimose-bench --bin bench_report`.

use mimose_bench::harness::Criterion;
use mimose_bench::suites::{arena_suite, planner_suite};
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");

    let mut planner = Criterion::default();
    planner_suite(&mut planner);
    planner.report();
    let planner_path = root.join("BENCH_planner.json");
    planner
        .write_json("planner", &planner_path)
        .expect("write BENCH_planner.json");
    eprintln!("wrote {}", planner_path.display());

    let mut arena = Criterion::default();
    arena_suite(&mut arena);
    arena.report();
    let arena_path = root.join("BENCH_arena.json");
    arena
        .write_json("arena", &arena_path)
        .expect("write BENCH_arena.json");
    eprintln!("wrote {}", arena_path.display());
}
