//! # mimose-bench
//!
//! Criterion benchmarks for the latency-sensitive claims of the paper:
//! estimator fit/predict (Tables IV/V), scheduler plan generation
//! (Table III's sub-millisecond claim), static-planner solve times
//! (Table I), allocator throughput, and end-to-end iteration cost per
//! planner (a micro-slice of Fig 10). Shared fixtures live here.

#![warn(missing_docs)]

pub mod harness;
pub mod suites;

use mimose_models::builders::{bert_base, BertHead};
use mimose_models::{BlockProfile, ModelGraph, ModelInput, ModelProfile, TensorRecord};
use mimose_ops::OpCategory;

/// BERT-base with the TC-Bert classification head (the Table IV model).
#[must_use]
pub fn tc_bert_model() -> ModelGraph {
    bert_base(BertHead::Classification { labels: 2 })
}

/// Profile of TC-Bert at the given sequence length (batch 32).
#[must_use]
///
/// # Panics
///
/// Panics when the synthetic input fails to profile.
pub fn tc_bert_profile(seq: usize) -> ModelProfile {
    tc_bert_model()
        .profile(&ModelInput::tokens(32, seq))
        .expect("validates")
}

/// Shuttle-style training data: (input sizes, per-block act+out bytes).
#[must_use]
///
/// # Panics
///
/// Panics when a synthetic input fails to profile.
pub fn shuttle_samples(seqs: &[usize]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let model = tc_bert_model();
    let mut xs = Vec::new();
    let mut per_block: Vec<Vec<f64>> = Vec::new();
    for &s in seqs {
        let p = model
            .profile(&ModelInput::tokens(32, s))
            .expect("validates");
        if per_block.is_empty() {
            per_block = vec![Vec::new(); p.blocks.len()];
        }
        xs.push(p.input_size as f64);
        for (bi, b) in p.blocks.iter().enumerate() {
            per_block[bi].push((b.act_bytes + b.out_bytes) as f64);
        }
    }
    (xs, per_block)
}

/// The ten collection sizes used across the benches.
pub const TEN_SEQS: [usize; 10] = [40, 60, 80, 100, 120, 150, 180, 220, 260, 300];

/// Deterministic synthetic profile with `l` blocks — the scale knob for the
/// planner hot-path benches (the BERT builders top out at a few dozen
/// blocks; the residency engine's O(log L) advantage needs hundreds).
///
/// The shape is adversarial for scalar excess bookkeeping, in the way real
/// long-sequence transformers are: activation sizes ramp upward along the
/// timeline (big decoder blocks late), and one **attention-spike block** at
/// `l/8` holds a huge materialised score matrix. Under a tight budget the
/// peak sits at the spike, and by the suffix-delta independence property
/// (Fig 9: a block's own bit never changes its own peak candidate) no
/// late-block checkpoint can lower it — only the small early blocks can.
/// Greedy planners rank those last, so they lean hard on their feasibility
/// oracle: one O(L) timeline re-walk per probe in the seed code, one
/// O(log L) flip on the residency engine. Each block carries 4 tensor
/// records so tensor-granular planners (MONeT) get `4·l` drop candidates.
#[must_use]
pub fn synthetic_profile(l: usize) -> ModelProfile {
    let spike = l / 8;
    let blocks: Vec<BlockProfile> = (0..l)
        .map(|i| {
            // 2 → 31 MiB ramp with KiB-scale jitter to break exact ties;
            // the spike block materialises a ~4 GiB attention score matrix.
            let act_bytes = if i == spike {
                4 << 30
            } else {
                ((2 + (29 * i) / l.max(1)) << 20) + (((i * 7919) % 17) << 10)
            };
            let out_bytes = (1 << 20) + (((i * 104_729) % 3) << 19);
            let in_bytes = out_bytes;
            let fwd_flops = 1e9 + (i % 17) as f64 * 1e8;
            let tensors = (0..4)
                .map(|t| TensorRecord {
                    bytes: act_bytes / 4 + (t * 4096),
                    fwd_flops: fwd_flops / 4.0,
                    category: OpCategory::ImplicitReduction,
                })
                .collect();
            BlockProfile {
                name: format!("syn{i}"),
                stage: 0,
                index: i,
                act_bytes,
                out_bytes,
                in_bytes,
                fwd_flops,
                bwd_flops: 2.0 * fwd_flops,
                fwd_bytes_moved: act_bytes / 2,
                tensors,
            }
        })
        .collect();
    ModelProfile {
        model: format!("synthetic-{l}"),
        input: ModelInput::tokens(1, l),
        input_size: l,
        blocks,
        const_bytes: 2 << 30,
        param_count: 0,
        input_bytes: 8 << 20,
    }
}
