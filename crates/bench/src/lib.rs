//! # mimose-bench
//!
//! Criterion benchmarks for the latency-sensitive claims of the paper:
//! estimator fit/predict (Tables IV/V), scheduler plan generation
//! (Table III's sub-millisecond claim), static-planner solve times
//! (Table I), allocator throughput, and end-to-end iteration cost per
//! planner (a micro-slice of Fig 10). Shared fixtures live here.

#![warn(missing_docs)]

pub mod harness;

use mimose_models::builders::{bert_base, BertHead};
use mimose_models::{ModelGraph, ModelInput, ModelProfile};

/// BERT-base with the TC-Bert classification head (the Table IV model).
pub fn tc_bert_model() -> ModelGraph {
    bert_base(BertHead::Classification { labels: 2 })
}

/// Profile of TC-Bert at the given sequence length (batch 32).
pub fn tc_bert_profile(seq: usize) -> ModelProfile {
    tc_bert_model()
        .profile(&ModelInput::tokens(32, seq))
        .expect("validates")
}

/// Shuttle-style training data: (input sizes, per-block act+out bytes).
pub fn shuttle_samples(seqs: &[usize]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let model = tc_bert_model();
    let mut xs = Vec::new();
    let mut per_block: Vec<Vec<f64>> = Vec::new();
    for &s in seqs {
        let p = model
            .profile(&ModelInput::tokens(32, s))
            .expect("validates");
        if per_block.is_empty() {
            per_block = vec![Vec::new(); p.blocks.len()];
        }
        xs.push(p.input_size as f64);
        for (bi, b) in p.blocks.iter().enumerate() {
            per_block[bi].push((b.act_bytes + b.out_bytes) as f64);
        }
    }
    (xs, per_block)
}

/// The ten collection sizes used across the benches.
pub const TEN_SEQS: [usize; 10] = [40, 60, 80, 100, 120, 150, 180, 220, 260, 300];
