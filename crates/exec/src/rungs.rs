//! The block engine's materialization policy: the inline rungs of the
//! OOM-recovery ladder (arena coalesce-and-retry, then in-place plan
//! demotion) expressed against the shared [`EngineCore`].
//!
//! This is the whole of what makes the block engine's response to memory
//! pressure different from the DTR engine's — the timeline in
//! [`crate::block_engine`] is policy-free. Escalation past these rungs
//! (restart with a denser plan, fallback to full checkpointing) is the
//! driver's job ([`crate::recovery`]), not the policy's.

use crate::recovery::RecoveryConfig;
use mimose_models::ModelProfile;
use mimose_planner::{CheckpointPlan, RecoveryEvent, RecoveryRung};
use mimose_runtime::{
    align_up, AllocFail, AllocSite, EngineCore, ExecEvent, LiveBlock, MaterializationPolicy,
};
use mimose_simgpu::OomError;

/// The plan a demotion-mutable working copy currently expresses.
pub(crate) fn plan_of(w: &[bool]) -> CheckpointPlan {
    let mut plan = CheckpointPlan::none(w.len());
    for (j, &c) in w.iter().enumerate() {
        plan.set(j, c);
    }
    plan
}

/// Inline recovery rungs plus the live-block table the demotion rung evicts
/// from. Without a [`RecoveryConfig`] every relief request is declined and
/// the arena error surfaces unchanged (legacy report-and-die behaviour).
pub(crate) struct BlockRungPolicy<'a> {
    pub profile: &'a ModelProfile,
    pub recovery: Option<&'a RecoveryConfig>,
    /// 0-based attempt number stamped on recovery events.
    pub attempt: usize,
    /// Cumulative budget shrink stamped on recovery events.
    pub shrink: f64,
    /// Checkpoint count of the plan as given, for stamping recovery events
    /// when no demotion working copy exists (demotion disabled or non-Plan
    /// mode) — keeps the chain's counts consistent with the driver's
    /// restart/fallback events.
    pub base_ckpt: usize,
    /// Demotion-mutable checkpoint plan (Plan mode under recovery only).
    pub working: Option<Vec<bool>>,
    pub live: Vec<LiveBlock>,
    pub dropped_units: usize,
    pub events: Vec<RecoveryEvent>,
}

impl BlockRungPolicy<'_> {
    fn ckpt_now(&self) -> usize {
        self.working
            .as_ref()
            .map_or(self.base_ckpt, |w| w.iter().filter(|&&c| c).count())
    }

    /// Expose the post-demotion plan only when demotion actually fired.
    pub fn demoted_plan(&self) -> Option<CheckpointPlan> {
        if self.events.iter().any(|e| e.rung == RecoveryRung::Demotion) {
            self.working.as_deref().map(plan_of)
        } else {
            None
        }
    }
}

impl MaterializationPolicy for BlockRungPolicy<'_> {
    fn relieve(
        &mut self,
        core: &mut EngineCore<'_>,
        err: &OomError,
        bytes: usize,
        site: &AllocSite,
    ) -> Result<bool, AllocFail> {
        let Some(cfg) = self.recovery else {
            return Ok(false);
        };
        if self.events.len() >= cfg.max_inline_events {
            return Ok(false);
        }

        // Rung 1 — coalesce-and-retry. Fires on fragmentation failures
        // (enough total bytes, no contiguous range) and on injected
        // spurious failures, which report the arena's true free space.
        // Termination: after a compact, fragmentation is zero, so a real
        // re-failure must be genuine exhaustion (escalates to rung 2); an
        // injected re-failure consumes one of the finitely many armed
        // ordinals. The copy cost of the slide is charged to the clock.
        if cfg.compact && err.is_fragmentation() {
            let frag_before = core.arena.fragmentation_bytes();
            let ckpt = self.ckpt_now();
            let moved = core.compact();
            let cost = core.dev.exec_ns(0.0, 2 * moved) as u64;
            core.charge_recovery(cost);
            let ev = RecoveryEvent {
                rung: RecoveryRung::CoalesceRetry,
                attempt: self.attempt,
                phase: site.phase,
                requested: err.requested,
                ckpt_before: ckpt,
                ckpt_after: ckpt,
                shrink_factor: self.shrink,
                time_cost_ns: cost,
                freed_bytes: frag_before,
            };
            core.emit(&ExecEvent::Recovery(ev.clone()));
            self.events.push(ev);
            return Ok(true);
        }

        // Rung 2 — in-place demotion (Plan mode only). Evict the internals
        // of kept blocks that are not currently executing (earliest index
        // first — their recompute is cheapest to schedule in backward) until
        // enough total bytes are free; contiguity, if still lacking, is rung
        // 1's job on the next round. In the forward pass, additionally mark
        // the largest-activation future kept block checkpointed so upcoming
        // blocks shed pressure before allocating it.
        if cfg.demote {
            if let Some(w) = self.working.as_mut() {
                let need = align_up(bytes);
                let before = w.iter().filter(|&&c| c).count();
                let mut freed = 0usize;
                let mut demoted = 0usize;
                // Indexing on purpose: the loop walks `w` and `self.live` in
                // lockstep and compares against the cursor position.
                #[allow(clippy::needless_range_loop)]
                for j in 0..self.live.len() {
                    if core.arena.free_bytes() >= need {
                        break;
                    }
                    if Some(j) == site.cursor || w[j] || self.live[j].tensor_ids.is_empty() {
                        continue;
                    }
                    for id in self.live[j].tensor_ids.drain(..) {
                        if let Some(sz) = core.arena.size_of(id) {
                            freed += sz;
                        }
                        core.free(id);
                    }
                    w[j] = true;
                    demoted += 1;
                    self.dropped_units += 1;
                }
                if site.in_forward {
                    let future = site.cursor.map_or(0, |c| c + 1).max(self.live.len());
                    let victim = (future..w.len())
                        .filter(|&j| !w[j])
                        .max_by_key(|&j| self.profile.blocks[j].act_bytes);
                    if let Some(j) = victim {
                        w[j] = true;
                        demoted += 1;
                    }
                }
                if demoted > 0 {
                    let after = w.iter().filter(|&&c| c).count();
                    let ev = RecoveryEvent {
                        rung: RecoveryRung::Demotion,
                        attempt: self.attempt,
                        phase: site.phase,
                        requested: err.requested,
                        ckpt_before: before,
                        ckpt_after: after,
                        shrink_factor: self.shrink,
                        time_cost_ns: 0, // cost surfaces later as recompute
                        freed_bytes: freed,
                    };
                    core.emit(&ExecEvent::Recovery(ev.clone()));
                    self.events.push(ev);
                    // The stream carries the new plan; the teed shadow
                    // checker (and any auditor) rebases from it.
                    core.emit(&ExecEvent::PlanApplied { plan: plan_of(w) });
                    return Ok(true);
                }
            }
        }

        Ok(false)
    }
}
