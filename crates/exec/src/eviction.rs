//! DTR's eviction-driven materialization policy: the slot table, the
//! logical budget, the h-DTR victim search, and the uniformly charged
//! per-tensor metadata maintenance.
//!
//! This is the DTR counterpart of [`crate::rungs`]: everything that makes
//! the tensor engine *DTR* lives here as a
//! [`MaterializationPolicy`], while `dtr_engine` only walks the iteration
//! timeline over the shared [`EngineCore`].

use mimose_planner::h_dtr;
use mimose_runtime::{policy_alloc, AllocFail, AllocSite, EngineCore, MaterializationPolicy};
use mimose_simgpu::{AllocId, OomError};

/// One saved tensor in DTR's runtime metadata table.
pub(crate) struct Slot {
    /// Arena block when resident; `None` while evicted.
    pub alloc: Option<AllocId>,
    pub bytes: usize,
    /// Cost to rematerialise (the tensor's own producing op).
    pub compute_ns: f64,
    pub last_access: u64,
    /// Pinned slots are never evicted (their block is executing).
    pub pinned: bool,
    /// Dead slots are finished with (backward consumed them).
    pub dead: bool,
}

pub(crate) struct DtrEvictionPolicy {
    pub budget: usize,
    pub slots: Vec<Slot>,
    pub evictions: usize,
}

impl DtrEvictionPolicy {
    pub fn new(budget: usize) -> Self {
        DtrEvictionPolicy {
            budget,
            slots: Vec::new(),
            evictions: 0,
        }
    }

    /// Per-tensor metadata maintenance, charged uniformly on every slot
    /// touch: creation, access (hit or miss) and eviction. The paper
    /// measures this at ~26 % of iteration time on average (Fig 5).
    fn touch(&self, core: &mut EngineCore<'_>) {
        let ns = core.dev.dtr_meta_ns_per_tensor as u64;
        core.charge_bookkeeping(ns);
    }

    /// Register a new (pinned, not-yet-allocated) slot for a tensor.
    pub fn new_slot(&mut self, core: &mut EngineCore<'_>, bytes: usize, compute_ns: f64) -> usize {
        self.touch(core);
        self.slots.push(Slot {
            alloc: None,
            bytes,
            compute_ns,
            last_access: core.now_ns(),
            pinned: true, // pinned while its block executes
            dead: false,
        });
        self.slots.len() - 1
    }

    /// Allocate slot `i`'s bytes (evicting as needed) and make it resident.
    pub fn fill(
        &mut self,
        core: &mut EngineCore<'_>,
        i: usize,
        site: &AllocSite,
    ) -> Result<(), AllocFail> {
        let id = policy_alloc(core, self, self.slots[i].bytes, site)?;
        let s = &mut self.slots[i];
        s.alloc = Some(id);
        s.last_access = core.now_ns();
        Ok(())
    }

    /// Ensure slot `i` is resident, rematerialising if evicted. Every call
    /// is a slot touch and pays the metadata charge, hit or miss.
    pub fn materialize(
        &mut self,
        core: &mut EngineCore<'_>,
        i: usize,
        site: &AllocSite,
    ) -> Result<(), AllocFail> {
        self.touch(core);
        if self.slots[i].alloc.is_some() {
            self.slots[i].last_access = core.now_ns();
            return Ok(());
        }
        core.charge_recompute(self.slots[i].compute_ns);
        self.fill(core, i, site)
    }

    /// Evict the single live, unpinned tensor with the smallest h-DTR score,
    /// charging the linear search over all candidates (and the metadata
    /// update for the evicted slot).
    fn evict_one(&mut self, core: &mut EngineCore<'_>, requested: usize) -> Result<(), AllocFail> {
        let now = core.now_ns();
        let mut victim: Option<(usize, f64)> = None;
        let mut candidates = 0usize;
        for (i, s) in self.slots.iter().enumerate() {
            if s.alloc.is_none() || s.pinned || s.dead {
                continue;
            }
            candidates += 1;
            let h = h_dtr(s.compute_ns, s.bytes, now.saturating_sub(s.last_access));
            if victim.is_none_or(|(_, best)| h < best) {
                victim = Some((i, h));
            }
        }
        let search_ns = (candidates as f64 * core.dev.dtr_search_ns_per_tensor) as u64;
        core.charge_planning(search_ns);
        match victim {
            Some((i, _)) => {
                if let Some(id) = self.slots[i].alloc.take() {
                    core.free(id);
                }
                self.evictions += 1;
                self.touch(core);
                Ok(())
            }
            None => Err(AllocFail::NoVictim { requested }),
        }
    }

    /// Live bytes according to the slot table (the shadow checker compares
    /// this against the stream-folded arena count).
    pub fn live_slot_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.alloc.is_some())
            .map(|s| s.bytes)
            .sum()
    }
}

impl MaterializationPolicy for DtrEvictionPolicy {
    /// Evict until `bytes` more fit under the logical budget.
    fn prepare(
        &mut self,
        core: &mut EngineCore<'_>,
        bytes: usize,
        _site: &AllocSite,
    ) -> Result<(), AllocFail> {
        while core.arena.used_bytes() + bytes > self.budget {
            self.evict_one(core, bytes)?;
        }
        Ok(())
    }

    /// Device-level fragmentation under the budget: evict one more & retry.
    fn relieve(
        &mut self,
        core: &mut EngineCore<'_>,
        _err: &OomError,
        bytes: usize,
        _site: &AllocSite,
    ) -> Result<bool, AllocFail> {
        self.evict_one(core, bytes)?;
        Ok(true)
    }
}
