//! Block-granularity iteration engine: simulates one forward/backward pass
//! under a checkpoint plan (or a shuttle-collection iteration) against the
//! arena allocator and the virtual clock.
//!
//! The allocation timeline deliberately mirrors
//! `mimose_planner::memory_model::peak_bytes` step for step, so planner
//! budget checks and executor measurements agree (cross-validated in the
//! integration tests).
//!
//! Allocation failure is no longer terminal: when a [`RecoveryConfig`] is
//! supplied (see [`crate::recovery`]), every allocation site climbs the
//! inline rungs of the OOM-recovery ladder — arena coalesce-and-retry, then
//! in-place plan demotion — before giving up and letting the restart driver
//! escalate. Without a config (the default entry points) the engine behaves
//! exactly as before: any `OomError` becomes a terminal `OomReport`.

use crate::recovery::RecoveryConfig;
use crate::report::{IterationReport, OomReport, TimeBreakdown};
use mimose_chaos::IterationFaults;
use mimose_models::{BlockProfile, ModelProfile};
use mimose_planner::memory_model::FinePlan;
use mimose_planner::{
    BlockAction, BlockObservation, CheckpointPlan, HybridPlan, RecoveryEvent, RecoveryRung,
};
use mimose_simgpu::{AllocId, Arena, ArenaStats, DeviceProfile, OomError, TraceEvent, ARENA_ALIGN};

/// How to run the iteration.
#[derive(Debug, Clone)]
pub enum BlockMode<'a> {
    /// Normal execution under a block plan.
    Plan(&'a CheckpointPlan),
    /// Tensor-granular plan (MONeT).
    Fine(&'a FinePlan),
    /// Hybrid swap/recompute plan (Capuchin).
    Hybrid(&'a HybridPlan),
    /// Mimose's shuttle-collection iteration: every block forwards twice and
    /// per-block measurements are returned.
    Shuttle,
}

/// Outcome of a block-engine iteration.
pub struct BlockRun {
    /// The measurement report.
    pub report: IterationReport,
    /// Per-block observations (only for shuttle iterations).
    pub observations: Option<Vec<BlockObservation>>,
    /// The effective checkpoint plan after in-iteration demotion, if the
    /// recovery ladder demoted any blocks (Plan mode only). The restart
    /// driver grows its next plan from here so demotion stays monotone
    /// across attempts.
    pub demoted_plan: Option<CheckpointPlan>,
}

/// Per-attempt knobs threaded through the engine (crate-internal; the
/// public wrappers fill in the defaults).
pub(crate) struct EngineOpts<'a> {
    /// Record arena trace events.
    pub trace: bool,
    /// 0-based attempt number stamped on recovery events.
    pub attempt: usize,
    /// Cumulative budget shrink stamped on recovery events.
    pub shrink: f64,
    /// Inline recovery rungs; `None` = legacy report-and-die behaviour.
    pub recovery: Option<&'a RecoveryConfig>,
    /// Faults to inject into this attempt; `None` = clean run.
    pub faults: Option<&'a IterationFaults>,
}

impl Default for EngineOpts<'static> {
    fn default() -> Self {
        EngineOpts {
            trace: false,
            attempt: 0,
            shrink: 1.0,
            recovery: None,
            faults: None,
        }
    }
}

#[inline]
fn align_up(bytes: usize) -> usize {
    ((bytes + ARENA_ALIGN - 1) & !(ARENA_ALIGN - 1)).max(ARENA_ALIGN)
}

/// Run one iteration at block granularity.
///
/// `capacity` is the arena size (the budget for budget-enforcing policies,
/// or the device size for the baseline); `planning_ns` is the policy's plan
/// generation time to charge to the clock.
pub fn run_block_iteration(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
) -> BlockRun {
    run_block_iteration_impl(
        profile,
        mode,
        capacity,
        dev,
        iter,
        planning_ns,
        &EngineOpts::default(),
    )
    .0
}

/// Like [`run_block_iteration`], but with arena event tracing enabled:
/// additionally returns the full [`TraceEvent`] log and the arena's final
/// statistics, ready for `mimose_audit::audit_trace`.
pub fn run_block_iteration_traced(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
) -> (BlockRun, Vec<TraceEvent>, ArenaStats) {
    let opts = EngineOpts {
        trace: true,
        ..EngineOpts::default()
    };
    let (run, mut arena) =
        run_block_iteration_impl(profile, mode, capacity, dev, iter, planning_ns, &opts);
    let trace = arena.take_trace();
    let stats = arena.stats();
    (run, trace, stats)
}

/// Whether block `i` runs checkpointed, consulting the demotion-mutable
/// working plan when one exists (Plan mode under recovery).
fn is_ckpt_of(mode: &BlockMode<'_>, working: &Option<Vec<bool>>, i: usize) -> bool {
    if let Some(w) = working {
        return w[i];
    }
    match mode {
        BlockMode::Plan(p) => p.is_checkpointed(i),
        BlockMode::Fine(_) => false, // handled via dropped sets
        BlockMode::Hybrid(h) => h.actions[i] == BlockAction::Recompute,
        BlockMode::Shuttle => true,
    }
}

/// Everything the inline recovery rungs need to mutate at an allocation
/// site. Bundled so the alloc helper stays callable from every phase of the
/// iteration without threading ten arguments through each call.
struct RungCtx<'a, 'b> {
    profile: &'a ModelProfile,
    dev: &'a DeviceProfile,
    opts: &'a EngineOpts<'a>,
    time: &'b mut TimeBreakdown,
    events: &'b mut Vec<RecoveryEvent>,
    /// Demotion-mutable checkpoint plan (Plan mode under recovery only).
    working: &'b mut Option<Vec<bool>>,
    /// Checkpoint count of the plan as given, for stamping recovery events
    /// when no demotion working copy exists (demotion disabled or non-Plan
    /// mode) — keeps the chain's counts consistent with the driver's
    /// restart/fallback events.
    base_ckpt: usize,
    live: &'b mut Vec<LiveBlock>,
    dropped_units: &'b mut usize,
    shadow: &'b mut Option<crate::shadow::ShadowChecker>,
}

/// Allocate with the inline recovery rungs: coalesce-and-retry on
/// fragmentation (which also absorbs injected spurious failures), then
/// in-place plan demotion. Returns the original error once the rungs are
/// exhausted or disabled — escalation to restart/fallback is the driver's
/// job, not the engine's.
///
/// `cursor` is the block currently executing (`None` before the forward
/// pass); its tensors are in use and are never demoted. `in_forward`
/// additionally allows marking a future block checkpointed to shed upcoming
/// pressure.
fn alloc_recovering(
    arena: &mut Arena,
    bytes: usize,
    phase: &'static str,
    cursor: Option<usize>,
    in_forward: bool,
    ctx: &mut RungCtx<'_, '_>,
) -> Result<AllocId, OomError> {
    loop {
        let err = match arena.alloc(bytes) {
            Ok(id) => return Ok(id),
            Err(e) => e,
        };
        let Some(cfg) = ctx.opts.recovery else {
            return Err(err);
        };
        if ctx.events.len() >= cfg.max_inline_events {
            return Err(err);
        }
        let base = ctx.base_ckpt;
        let ckpt_now = move |w: &Option<Vec<bool>>| {
            w.as_ref()
                .map_or(base, |w| w.iter().filter(|&&c| c).count())
        };

        // Rung 1 — coalesce-and-retry. Fires on fragmentation failures
        // (enough total bytes, no contiguous range) and on injected
        // spurious failures, which report the arena's true free space.
        // Termination: after a compact, fragmentation is zero, so a real
        // re-failure must be genuine exhaustion (escalates to rung 2); an
        // injected re-failure consumes one of the finitely many armed
        // ordinals. The copy cost of the slide is charged to the clock.
        if cfg.compact && err.is_fragmentation() {
            let frag_before = arena.fragmentation_bytes();
            let ckpt = ckpt_now(ctx.working);
            let moved = arena.compact();
            let cost = ctx.dev.exec_ns(0.0, 2 * moved) as u64;
            ctx.time.recovery_ns += cost;
            ctx.events.push(RecoveryEvent {
                rung: RecoveryRung::CoalesceRetry,
                attempt: ctx.opts.attempt,
                phase,
                requested: err.requested,
                ckpt_before: ckpt,
                ckpt_after: ckpt,
                shrink_factor: ctx.opts.shrink,
                time_cost_ns: cost,
                freed_bytes: frag_before,
            });
            continue;
        }

        // Rung 2 — in-place demotion (Plan mode only). Evict the internals
        // of kept blocks that are not currently executing (earliest index
        // first — their recompute is cheapest to schedule in backward) until
        // enough total bytes are free; contiguity, if still lacking, is rung
        // 1's job on the next round. In the forward pass, additionally mark
        // the largest-activation future kept block checkpointed so upcoming
        // blocks shed pressure before allocating it.
        if cfg.demote {
            if let Some(w) = ctx.working.as_mut() {
                let need = align_up(bytes);
                let before = w.iter().filter(|&&c| c).count();
                let mut freed = 0usize;
                let mut demoted = 0usize;
                // Indexing on purpose: the loop walks `w` and `ctx.live` in
                // lockstep and compares against the cursor position.
                #[allow(clippy::needless_range_loop)]
                for j in 0..ctx.live.len() {
                    if arena.free_bytes() >= need {
                        break;
                    }
                    if Some(j) == cursor || w[j] || ctx.live[j].tensor_ids.is_empty() {
                        continue;
                    }
                    for id in ctx.live[j].tensor_ids.drain(..) {
                        freed += arena.size_of(id).expect("live internals");
                        arena.free(id);
                    }
                    w[j] = true;
                    demoted += 1;
                    *ctx.dropped_units += 1;
                }
                if in_forward {
                    let future = cursor.map_or(0, |c| c + 1).max(ctx.live.len());
                    let victim = (future..w.len())
                        .filter(|&j| !w[j])
                        .max_by_key(|&j| ctx.profile.blocks[j].act_bytes);
                    if let Some(j) = victim {
                        w[j] = true;
                        demoted += 1;
                    }
                }
                if demoted > 0 {
                    let after = w.iter().filter(|&&c| c).count();
                    ctx.events.push(RecoveryEvent {
                        rung: RecoveryRung::Demotion,
                        attempt: ctx.opts.attempt,
                        phase,
                        requested: err.requested,
                        ckpt_before: before,
                        ckpt_after: after,
                        shrink_factor: ctx.opts.shrink,
                        time_cost_ns: 0, // cost surfaces later as recompute
                        freed_bytes: freed,
                    });
                    if let Some(s) = ctx.shadow.as_mut() {
                        let mut plan = CheckpointPlan::none(w.len());
                        for (j, &c) in w.iter().enumerate() {
                            plan.set(j, c);
                        }
                        s.rebase(ctx.profile, &plan);
                    }
                    continue;
                }
            }
        }

        return Err(err);
    }
}

struct LiveBlock {
    tensor_ids: Vec<AllocId>,
    out_id: Option<AllocId>,
    /// Bytes of internals currently dropped (for fine plans).
    dropped: Vec<usize>, // indices into profile tensors
}

pub(crate) fn run_block_iteration_impl(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
    opts: &EngineOpts<'_>,
) -> (BlockRun, Arena) {
    let mut arena = Arena::new(capacity);
    if opts.trace {
        arena.set_tracing(true);
    }
    if let Some(f) = opts.faults {
        if !f.fail_allocs.is_empty() {
            arena.set_spurious_failures(&f.fail_allocs);
        }
    }
    // Recompute-latency spike factor (chaos); 1.0 leaves charges bit-exact.
    let rf = opts.faults.map_or(1.0, |f| f.recompute_factor);
    let mut time = TimeBreakdown {
        planning_ns,
        ..Default::default()
    };
    let shuttle = matches!(mode, BlockMode::Shuttle);
    let n = profile.blocks.len();

    // Demotion-mutable working copy of the plan (Plan mode under recovery).
    let mut working: Option<Vec<bool>> = match (&mode, opts.recovery) {
        (BlockMode::Plan(p), Some(cfg)) if cfg.demote => {
            Some((0..n).map(|i| p.is_checkpointed(i)).collect())
        }
        _ => None,
    };
    let base_ckpt = match &mode {
        BlockMode::Plan(p) => p.count(),
        BlockMode::Hybrid(h) => h
            .actions
            .iter()
            .filter(|a| **a == BlockAction::Recompute)
            .count(),
        _ => 0,
    };
    let mut events: Vec<RecoveryEvent> = Vec::new();

    let finish = |arena: Arena,
                  time: TimeBreakdown,
                  oom: Option<OomReport>,
                  dropped,
                  events: Vec<RecoveryEvent>,
                  working: Option<Vec<bool>>| {
        let stats = arena.stats();
        let mut time = time;
        time.allocator_ns += ((stats.allocs + stats.frees) as f64 * dev.alloc_ns) as u64;
        // Expose the post-demotion plan only when demotion actually fired.
        let demoted_plan = if events.iter().any(|e| e.rung == RecoveryRung::Demotion) {
            working.map(|w| {
                let mut plan = CheckpointPlan::none(w.len());
                for (j, &c) in w.iter().enumerate() {
                    plan.set(j, c);
                }
                plan
            })
        } else {
            None
        };
        let run = BlockRun {
            report: IterationReport {
                iter,
                input: profile.input,
                input_size: profile.input_size,
                time,
                peak_bytes: stats.peak_used,
                peak_extent: stats.peak_extent.max(stats.peak_footprint),
                frag_bytes: stats.peak_frag,
                dropped_units: dropped,
                shuttle,
                oom,
                recovery: events,
            },
            observations: None,
            demoted_plan,
        };
        (run, arena)
    };

    // Shadow checking (debug builds / MIMOSE_SHADOW_CHECK=1): cross-validate
    // the arena's live bytes against the analytic model's residency curve at
    // every block boundary. Fine plans are excluded — the engine drops whole
    // tensors until the planned byte count is covered, deliberately
    // overshooting the analytic figure. Hybrid swap blocks free internals
    // exactly like recompute blocks, so both map to "checkpointed".
    let mut shadow = if crate::shadow::shadow_check_enabled() {
        let plan = match &mode {
            BlockMode::Plan(p) => Some((*p).clone()),
            BlockMode::Shuttle => Some(CheckpointPlan::all(n)),
            BlockMode::Hybrid(h) => {
                let mut pl = CheckpointPlan::none(n);
                for (i, a) in h.actions.iter().enumerate() {
                    pl.set(i, *a != BlockAction::Keep);
                }
                Some(pl)
            }
            BlockMode::Fine(_) => None,
        };
        plan.map(|pl| crate::shadow::ShadowChecker::new(profile, &pl))
    } else {
        None
    };

    let mut live: Vec<LiveBlock> = Vec::with_capacity(n);
    let mut observations: Vec<BlockObservation> = Vec::with_capacity(if shuttle { n } else { 0 });
    let mut dropped_units = 0usize;

    // Constant footprint + input tensor.
    {
        let mut ctx = RungCtx {
            profile,
            dev,
            opts,
            time: &mut time,
            events: &mut events,
            working: &mut working,

            base_ckpt,
            live: &mut live,
            dropped_units: &mut dropped_units,
            shadow: &mut shadow,
        };
        if let Err(e) = alloc_recovering(
            &mut arena,
            profile.const_bytes,
            "const",
            None,
            false,
            &mut ctx,
        ) {
            let report = OomReport::from_error(&e, "const");
            return finish(arena, time, Some(report), 0, events, working);
        }
        if let Err(e) = alloc_recovering(
            &mut arena,
            profile.input_bytes,
            "input",
            None,
            false,
            &mut ctx,
        ) {
            let report = OomReport::from_error(&e, "input");
            return finish(arena, time, Some(report), 0, events, working);
        }
    }
    if let Some(s) = &mut shadow {
        s.check(&arena, "init");
    }

    let is_swap = |i: usize| -> bool {
        matches!(&mode, BlockMode::Hybrid(h) if h.actions[i] == BlockAction::Swap)
    };
    // For fine plans: which tensor indices to drop per block. Matches the
    // MONeT solver's selection order (bytes-per-recompute-FLOP efficiency,
    // best first) until the planned byte count is covered.
    let fine_drops = |b: &BlockProfile, planned: usize| -> Vec<usize> {
        if planned == 0 {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..b.tensors.len()).collect();
        order.sort_by(|&x, &y| {
            let ex = b.tensors[x].bytes as f64 / b.tensors[x].fwd_flops.max(1.0);
            let ey = b.tensors[y].bytes as f64 / b.tensors[y].fwd_flops.max(1.0);
            ey.total_cmp(&ex)
        });
        let mut acc = 0usize;
        let mut out = Vec::new();
        for i in order {
            if acc >= planned {
                break;
            }
            acc += b.tensors[i].bytes;
            out.push(i);
        }
        out
    };

    // ---------------- forward ----------------
    for (i, b) in profile.blocks.iter().enumerate() {
        let fwd_ns = dev.exec_ns(b.fwd_flops, b.fwd_bytes_moved);
        time.compute_ns += fwd_ns as u64;
        if shuttle {
            // The second forward of the shuttling collector (§IV-B).
            time.recompute_ns += (fwd_ns * rf) as u64;
        }
        // Materialise internals + output.
        let mut ids = Vec::with_capacity(b.tensors.len());
        let forward_alloc = |arena: &mut Arena,
                             bytes: usize,
                             time: &mut TimeBreakdown,
                             events: &mut Vec<RecoveryEvent>,
                             working: &mut Option<Vec<bool>>,
                             live: &mut Vec<LiveBlock>,
                             dropped_units: &mut usize,
                             shadow: &mut Option<crate::shadow::ShadowChecker>|
         -> Result<AllocId, OomError> {
            let mut ctx = RungCtx {
                profile,
                dev,
                opts,
                time,
                events,
                working,
                live,
                dropped_units,
                base_ckpt,
                shadow,
            };
            alloc_recovering(arena, bytes, "forward", Some(i), true, &mut ctx)
        };
        for t in &b.tensors {
            match forward_alloc(
                &mut arena,
                t.bytes,
                &mut time,
                &mut events,
                &mut working,
                &mut live,
                &mut dropped_units,
                &mut shadow,
            ) {
                Ok(id) => ids.push(id),
                Err(e) => {
                    let report = OomReport::from_error(&e, "forward");
                    return finish(arena, time, Some(report), dropped_units, events, working);
                }
            }
        }
        let out_id = match forward_alloc(
            &mut arena,
            b.out_bytes,
            &mut time,
            &mut events,
            &mut working,
            &mut live,
            &mut dropped_units,
            &mut shadow,
        ) {
            Ok(id) => id,
            Err(e) => {
                let report = OomReport::from_error(&e, "forward");
                return finish(arena, time, Some(report), dropped_units, events, working);
            }
        };
        if shuttle {
            observations.push(BlockObservation {
                index: i,
                act_bytes: b.act_bytes,
                out_bytes: b.out_bytes,
                in_bytes: b.in_bytes,
                fwd_ns: fwd_ns as u64,
            });
        }
        let mut lb = LiveBlock {
            tensor_ids: ids,
            out_id: Some(out_id),
            dropped: Vec::new(),
        };
        if is_ckpt_of(&mode, &working, i) || is_swap(i) {
            // Drop internals, keep the output checkpoint. A swapped block
            // additionally pays the non-overlapped swap-out transfer.
            if is_swap(i) {
                time.swap_ns += dev.swap_ns(b.act_bytes) as u64;
            }
            for id in lb.tensor_ids.drain(..) {
                arena.free(id);
            }
            if !b.tensors.is_empty() {
                dropped_units += 1;
            }
        } else if let BlockMode::Fine(fp) = &mode {
            let drops = fine_drops(b, fp.dropped_bytes[i]);
            for &ti in &drops {
                arena.free(lb.tensor_ids[ti]);
                dropped_units += 1;
            }
            // Mark dropped slots (keep ids vec aligned by replacing later).
            let drop_set: std::collections::HashSet<usize> = drops.iter().copied().collect();
            lb.tensor_ids = lb
                .tensor_ids
                .iter()
                .enumerate()
                .filter(|(ti, _)| !drop_set.contains(ti))
                .map(|(_, &id)| id)
                .collect();
            lb.dropped = drops;
        }
        live.push(lb);
        if let Some(s) = &mut shadow {
            s.check(&arena, &format!("forward '{}'", b.name));
        }
    }

    // ---------------- backward ----------------
    for (i, b) in profile.blocks.iter().enumerate().rev() {
        let backward_alloc = |arena: &mut Arena,
                              bytes: usize,
                              phase: &'static str,
                              time: &mut TimeBreakdown,
                              events: &mut Vec<RecoveryEvent>,
                              working: &mut Option<Vec<bool>>,
                              live: &mut Vec<LiveBlock>,
                              dropped_units: &mut usize,
                              shadow: &mut Option<crate::shadow::ShadowChecker>|
         -> Result<AllocId, OomError> {
            let mut ctx = RungCtx {
                profile,
                dev,
                opts,
                time,
                events,
                working,
                live,
                dropped_units,
                base_ckpt,
                shadow,
            };
            alloc_recovering(arena, bytes, phase, Some(i), false, &mut ctx)
        };
        // Rematerialise what was dropped.
        if is_ckpt_of(&mode, &working, i) || is_swap(i) {
            if is_swap(i) {
                // Prefetch back over PCIe instead of recomputing.
                time.swap_ns += dev.swap_ns(b.act_bytes) as u64;
            } else {
                let fwd_ns = dev.exec_ns(b.fwd_flops, b.fwd_bytes_moved);
                time.recompute_ns += (fwd_ns * rf) as u64;
            }
            for t in &b.tensors {
                match backward_alloc(
                    &mut arena,
                    t.bytes,
                    "recompute",
                    &mut time,
                    &mut events,
                    &mut working,
                    &mut live,
                    &mut dropped_units,
                    &mut shadow,
                ) {
                    Ok(id) => live[i].tensor_ids.push(id),
                    Err(e) => {
                        let report = OomReport::from_error(&e, "recompute");
                        return finish(arena, time, Some(report), dropped_units, events, working);
                    }
                }
            }
        } else if let BlockMode::Fine(fp) = &mode {
            if fp.dropped_bytes[i] > 0 {
                // Recompute cost follows the tensors *actually* dropped for
                // this input (a static fine plan names tensors; on smaller
                // inputs those tensors are smaller and cheaper). Each tensor
                // pays a 1.3x locality factor for re-running block-local
                // producers, but a block never recomputes more than its own
                // forward pass.
                let flops: f64 = live[i]
                    .dropped
                    .iter()
                    .map(|&ti| b.tensors[ti].fwd_flops * 1.3)
                    .sum::<f64>()
                    .min(b.fwd_flops * 1.05);
                time.recompute_ns += (dev.exec_ns(flops, 0) * rf) as u64;
                let drops = live[i].dropped.clone();
                for ti in drops {
                    match backward_alloc(
                        &mut arena,
                        b.tensors[ti].bytes,
                        "recompute",
                        &mut time,
                        &mut events,
                        &mut working,
                        &mut live,
                        &mut dropped_units,
                        &mut shadow,
                    ) {
                        Ok(id) => live[i].tensor_ids.push(id),
                        Err(e) => {
                            let report = OomReport::from_error(&e, "recompute");
                            return finish(
                                arena,
                                time,
                                Some(report),
                                dropped_units,
                                events,
                                working,
                            );
                        }
                    }
                }
            }
        }
        // Gradient transients: output grad + input grad.
        let gout = match backward_alloc(
            &mut arena,
            b.out_bytes,
            "backward",
            &mut time,
            &mut events,
            &mut working,
            &mut live,
            &mut dropped_units,
            &mut shadow,
        ) {
            Ok(id) => id,
            Err(e) => {
                let report = OomReport::from_error(&e, "backward");
                return finish(arena, time, Some(report), dropped_units, events, working);
            }
        };
        let gin = match backward_alloc(
            &mut arena,
            b.in_bytes,
            "backward",
            &mut time,
            &mut events,
            &mut working,
            &mut live,
            &mut dropped_units,
            &mut shadow,
        ) {
            Ok(id) => id,
            Err(e) => {
                let report = OomReport::from_error(&e, "backward");
                return finish(arena, time, Some(report), dropped_units, events, working);
            }
        };
        time.compute_ns += dev.exec_ns(b.bwd_flops, 2 * b.fwd_bytes_moved) as u64;
        arena.free(gout);
        arena.free(gin);
        // Release the block's activations + output.
        for id in live[i].tensor_ids.drain(..) {
            arena.free(id);
        }
        if let Some(id) = live[i].out_id.take() {
            arena.free(id);
        }
        if let Some(s) = &mut shadow {
            s.check(&arena, &format!("backward '{}'", b.name));
        }
    }

    // Optimizer step: elementwise update over all parameters.
    let p = profile.param_count as f64;
    time.compute_ns += dev.exec_ns(4.0 * p, profile.param_count * 16) as u64;

    let (mut run, arena) = finish(arena, time, None, dropped_units, events, working);
    if shuttle {
        run.observations = Some(observations);
    }
    (run, arena)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;
    use mimose_planner::memory_model::peak_bytes;

    fn profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn engine_peak_matches_analytic_model() {
        let p = profile(128);
        let dev = DeviceProfile::v100();
        for plan in [
            CheckpointPlan::none(p.blocks.len()),
            CheckpointPlan::all(p.blocks.len()),
            CheckpointPlan::from_indices(p.blocks.len(), &[1, 2, 3, 4, 5]).unwrap(),
        ] {
            let run = run_block_iteration(&p, BlockMode::Plan(&plan), 64 << 30, &dev, 0, 0);
            assert!(run.report.ok());
            let analytic = peak_bytes(&p, &plan);
            let measured = run.report.peak_bytes;
            let rel = (measured as f64 - analytic as f64).abs() / analytic as f64;
            assert!(
                rel < 0.001,
                "plan {plan}: measured {measured} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn checkpointing_reduces_peak_and_adds_recompute() {
        let p = profile(200);
        let dev = DeviceProfile::v100();
        let none = run_block_iteration(
            &p,
            BlockMode::Plan(&CheckpointPlan::none(p.blocks.len())),
            64 << 30,
            &dev,
            0,
            0,
        );
        let all = run_block_iteration(
            &p,
            BlockMode::Plan(&CheckpointPlan::all(p.blocks.len())),
            64 << 30,
            &dev,
            0,
            0,
        );
        assert!(all.report.peak_bytes < none.report.peak_bytes);
        assert_eq!(none.report.time.recompute_ns, 0);
        assert!(all.report.time.recompute_ns > 0);
        assert!(all.report.time.total_ns() > none.report.time.total_ns());
    }

    #[test]
    fn oom_reported_when_over_capacity() {
        let p = profile(300);
        let dev = DeviceProfile::v100();
        let run = run_block_iteration(
            &p,
            BlockMode::Plan(&CheckpointPlan::none(p.blocks.len())),
            3 << 30, // way below the no-checkpoint peak
            &dev,
            0,
            0,
        );
        assert!(!run.report.ok());
        assert_eq!(run.report.oom.as_ref().unwrap().phase, "forward");
        assert!(run.report.recovery.is_empty(), "no ladder without a config");
        assert!(run.demoted_plan.is_none());
    }

    #[test]
    fn shuttle_doubles_forward_time_and_measures() {
        let p = profile(128);
        let dev = DeviceProfile::v100();
        let plain = run_block_iteration(
            &p,
            BlockMode::Plan(&CheckpointPlan::all(p.blocks.len())),
            64 << 30,
            &dev,
            0,
            0,
        );
        let shuttle = run_block_iteration(&p, BlockMode::Shuttle, 64 << 30, &dev, 0, 0);
        assert!(shuttle.report.ok());
        let obs = shuttle.observations.as_ref().unwrap();
        assert_eq!(obs.len(), p.blocks.len());
        for (o, b) in obs.iter().zip(&p.blocks) {
            assert_eq!(o.act_bytes, b.act_bytes);
            assert_eq!(o.out_bytes, b.out_bytes);
            assert!(o.fwd_ns > 0);
        }
        // Shuttle recompute equals a full extra forward; its peak matches
        // the all-checkpointed plan (§IV-B: same footprint as Sublinear).
        assert_eq!(shuttle.report.peak_bytes, plain.report.peak_bytes);
        assert!(shuttle.report.time.recompute_ns >= plain.report.time.recompute_ns);
    }

    #[test]
    fn fine_plan_drops_partial_bytes() {
        let p = profile(200);
        let dev = DeviceProfile::v100();
        let n = p.blocks.len();
        let mut fine = FinePlan::none(n);
        // Drop ~half of encoder 1's internals.
        fine.dropped_bytes[1] = p.blocks[1].act_bytes / 2;
        fine.recompute_flops[1] = p.blocks[1].fwd_flops / 2.0;
        let run = run_block_iteration(&p, BlockMode::Fine(&fine), 64 << 30, &dev, 0, 0);
        assert!(run.report.ok());
        assert!(run.report.dropped_units > 0);
        assert!(run.report.time.recompute_ns > 0);
        let full = run_block_iteration(
            &p,
            BlockMode::Plan(&CheckpointPlan::none(n)),
            64 << 30,
            &dev,
            0,
            0,
        );
        assert!(run.report.peak_bytes < full.report.peak_bytes);
    }

    #[test]
    fn hybrid_swap_charges_transfer_not_recompute() {
        use mimose_planner::{BlockAction, HybridPlan};
        let p = profile(200);
        let dev = DeviceProfile::v100();
        let n = p.blocks.len();
        let mut swap_plan = HybridPlan::keep_all(n);
        swap_plan.actions[1] = BlockAction::Swap;
        let mut rec_plan = HybridPlan::keep_all(n);
        rec_plan.actions[1] = BlockAction::Recompute;

        let swap = run_block_iteration(&p, BlockMode::Hybrid(&swap_plan), 64 << 30, &dev, 0, 0);
        let rec = run_block_iteration(&p, BlockMode::Hybrid(&rec_plan), 64 << 30, &dev, 0, 0);
        assert!(swap.report.ok() && rec.report.ok());
        // Identical memory behaviour...
        assert_eq!(swap.report.peak_bytes, rec.report.peak_bytes);
        // ...different time channels.
        assert!(swap.report.time.swap_ns > 0);
        assert_eq!(swap.report.time.recompute_ns, 0);
        assert!(rec.report.time.recompute_ns > 0);
        assert_eq!(rec.report.time.swap_ns, 0);
        // Expected swap charge: out + back, non-overlapped fraction.
        let expect = 2 * dev.swap_ns(p.blocks[1].act_bytes) as u64;
        let got = swap.report.time.swap_ns;
        assert!(
            (got as i64 - expect as i64).unsigned_abs() <= 2,
            "swap charge {got} vs {expect}"
        );
    }

    #[test]
    fn planning_ns_charged_to_clock() {
        let p = profile(64);
        let dev = DeviceProfile::v100();
        let plan = CheckpointPlan::none(p.blocks.len());
        let without = run_block_iteration(&p, BlockMode::Plan(&plan), 64 << 30, &dev, 0, 0);
        let with = run_block_iteration(&p, BlockMode::Plan(&plan), 64 << 30, &dev, 0, 123_456);
        assert_eq!(
            with.report.time.total_ns(),
            without.report.time.total_ns() + 123_456
        );
    }
}
