//! Block-granularity iteration engine: simulates one forward/backward pass
//! under a checkpoint plan (or a shuttle-collection iteration) against the
//! arena allocator and the virtual clock.
//!
//! The allocation timeline deliberately mirrors
//! `mimose_planner::memory_model::peak_bytes` step for step, so planner
//! budget checks and executor measurements agree (cross-validated in the
//! integration tests).

use crate::report::{IterationReport, OomReport, TimeBreakdown};
use mimose_models::{BlockProfile, ModelProfile};
use mimose_planner::memory_model::FinePlan;
use mimose_planner::{BlockAction, BlockObservation, CheckpointPlan, HybridPlan};
use mimose_simgpu::{AllocId, Arena, ArenaStats, DeviceProfile, OomError, TraceEvent};

/// How to run the iteration.
#[derive(Debug, Clone)]
pub enum BlockMode<'a> {
    /// Normal execution under a block plan.
    Plan(&'a CheckpointPlan),
    /// Tensor-granular plan (MONeT).
    Fine(&'a FinePlan),
    /// Hybrid swap/recompute plan (Capuchin).
    Hybrid(&'a HybridPlan),
    /// Mimose's shuttle-collection iteration: every block forwards twice and
    /// per-block measurements are returned.
    Shuttle,
}

/// Outcome of a block-engine iteration.
pub struct BlockRun {
    /// The measurement report.
    pub report: IterationReport,
    /// Per-block observations (only for shuttle iterations).
    pub observations: Option<Vec<BlockObservation>>,
}

struct LiveBlock {
    tensor_ids: Vec<AllocId>,
    out_id: Option<AllocId>,
    /// Bytes of internals currently dropped (for fine plans).
    dropped: Vec<usize>, // indices into profile tensors
}

/// Run one iteration at block granularity.
///
/// `capacity` is the arena size (the budget for budget-enforcing policies,
/// or the device size for the baseline); `planning_ns` is the policy's plan
/// generation time to charge to the clock.
pub fn run_block_iteration(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
) -> BlockRun {
    run_block_iteration_impl(profile, mode, capacity, dev, iter, planning_ns, false).0
}

/// Like [`run_block_iteration`], but with arena event tracing enabled:
/// additionally returns the full [`TraceEvent`] log and the arena's final
/// statistics, ready for `mimose_audit::audit_trace`.
pub fn run_block_iteration_traced(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
) -> (BlockRun, Vec<TraceEvent>, ArenaStats) {
    let (run, mut arena) =
        run_block_iteration_impl(profile, mode, capacity, dev, iter, planning_ns, true);
    let trace = arena.take_trace();
    let stats = arena.stats();
    (run, trace, stats)
}

fn run_block_iteration_impl(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
    trace: bool,
) -> (BlockRun, Arena) {
    let mut arena = Arena::new(capacity);
    if trace {
        arena.set_tracing(true);
    }
    let mut time = TimeBreakdown {
        planning_ns,
        ..Default::default()
    };
    let shuttle = matches!(mode, BlockMode::Shuttle);
    let n = profile.blocks.len();

    let finish = |arena: Arena, time: TimeBreakdown, oom: Option<OomReport>, dropped| {
        let stats = arena.stats();
        let mut time = time;
        time.allocator_ns += ((stats.allocs + stats.frees) as f64 * dev.alloc_ns) as u64;
        let run = BlockRun {
            report: IterationReport {
                iter,
                input: profile.input,
                input_size: profile.input_size,
                time,
                peak_bytes: stats.peak_used,
                peak_extent: stats.peak_extent.max(stats.peak_footprint),
                frag_bytes: stats.peak_frag,
                dropped_units: dropped,
                shuttle,
                oom,
            },
            observations: None,
        };
        (run, arena)
    };

    let oom_report = |e: OomError, phase: &'static str| OomReport {
        requested: e.requested,
        free_bytes: e.free_bytes,
        largest_free: e.largest_free,
        phase,
    };

    // Constant footprint + input tensor.
    let Ok(_const_id) = arena.alloc(profile.const_bytes) else {
        let report = OomReport {
            requested: profile.const_bytes,
            free_bytes: arena.free_bytes(),
            largest_free: arena.largest_free(),
            phase: "const",
        };
        return finish(arena, time, Some(report), 0);
    };
    let Ok(_input_id) = arena.alloc(profile.input_bytes) else {
        let report = OomReport {
            requested: profile.input_bytes,
            free_bytes: arena.free_bytes(),
            largest_free: arena.largest_free(),
            phase: "input",
        };
        return finish(arena, time, Some(report), 0);
    };

    // Shadow checking (debug builds / MIMOSE_SHADOW_CHECK=1): cross-validate
    // the arena's live bytes against the analytic model's residency curve at
    // every block boundary. Fine plans are excluded — the engine drops whole
    // tensors until the planned byte count is covered, deliberately
    // overshooting the analytic figure. Hybrid swap blocks free internals
    // exactly like recompute blocks, so both map to "checkpointed".
    let mut shadow = if crate::shadow::shadow_check_enabled() {
        let plan = match &mode {
            BlockMode::Plan(p) => Some((*p).clone()),
            BlockMode::Shuttle => Some(CheckpointPlan::all(n)),
            BlockMode::Hybrid(h) => {
                let mut pl = CheckpointPlan::none(n);
                for (i, a) in h.actions.iter().enumerate() {
                    pl.set(i, *a != BlockAction::Keep);
                }
                Some(pl)
            }
            BlockMode::Fine(_) => None,
        };
        plan.map(|pl| crate::shadow::ShadowChecker::new(profile, &pl))
    } else {
        None
    };
    if let Some(s) = &mut shadow {
        s.check(&arena, "init");
    }

    // Decide per-block drop behaviour.
    let is_ckpt = |i: usize| -> bool {
        match &mode {
            BlockMode::Plan(p) => p.is_checkpointed(i),
            BlockMode::Fine(_) => false, // handled via dropped sets
            BlockMode::Hybrid(h) => h.actions[i] == BlockAction::Recompute,
            BlockMode::Shuttle => true,
        }
    };
    let is_swap = |i: usize| -> bool {
        matches!(&mode, BlockMode::Hybrid(h) if h.actions[i] == BlockAction::Swap)
    };
    // For fine plans: which tensor indices to drop per block. Matches the
    // MONeT solver's selection order (bytes-per-recompute-FLOP efficiency,
    // best first) until the planned byte count is covered.
    let fine_drops = |b: &BlockProfile, planned: usize| -> Vec<usize> {
        if planned == 0 {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..b.tensors.len()).collect();
        order.sort_by(|&x, &y| {
            let ex = b.tensors[x].bytes as f64 / b.tensors[x].fwd_flops.max(1.0);
            let ey = b.tensors[y].bytes as f64 / b.tensors[y].fwd_flops.max(1.0);
            ey.total_cmp(&ex)
        });
        let mut acc = 0usize;
        let mut out = Vec::new();
        for i in order {
            if acc >= planned {
                break;
            }
            acc += b.tensors[i].bytes;
            out.push(i);
        }
        out
    };

    let mut live: Vec<LiveBlock> = Vec::with_capacity(n);
    let mut observations: Vec<BlockObservation> = Vec::with_capacity(if shuttle { n } else { 0 });
    let mut dropped_units = 0usize;

    // ---------------- forward ----------------
    for (i, b) in profile.blocks.iter().enumerate() {
        let fwd_ns = dev.exec_ns(b.fwd_flops, b.fwd_bytes_moved);
        time.compute_ns += fwd_ns as u64;
        if shuttle {
            // The second forward of the shuttling collector (§IV-B).
            time.recompute_ns += fwd_ns as u64;
        }
        // Materialise internals + output.
        let mut ids = Vec::with_capacity(b.tensors.len());
        for t in &b.tensors {
            match arena.alloc(t.bytes) {
                Ok(id) => ids.push(id),
                Err(e) => {
                    return finish(arena, time, Some(oom_report(e, "forward")), dropped_units)
                }
            }
        }
        let out_id = match arena.alloc(b.out_bytes) {
            Ok(id) => id,
            Err(e) => return finish(arena, time, Some(oom_report(e, "forward")), dropped_units),
        };
        if shuttle {
            observations.push(BlockObservation {
                index: i,
                act_bytes: b.act_bytes,
                out_bytes: b.out_bytes,
                in_bytes: b.in_bytes,
                fwd_ns: fwd_ns as u64,
            });
        }
        let mut lb = LiveBlock {
            tensor_ids: ids,
            out_id: Some(out_id),
            dropped: Vec::new(),
        };
        if is_ckpt(i) || is_swap(i) {
            // Drop internals, keep the output checkpoint. A swapped block
            // additionally pays the non-overlapped swap-out transfer.
            if is_swap(i) {
                time.swap_ns += dev.swap_ns(b.act_bytes) as u64;
            }
            for id in lb.tensor_ids.drain(..) {
                arena.free(id);
            }
            if !b.tensors.is_empty() {
                dropped_units += 1;
            }
        } else if let BlockMode::Fine(fp) = &mode {
            let drops = fine_drops(b, fp.dropped_bytes[i]);
            for &ti in &drops {
                arena.free(lb.tensor_ids[ti]);
                dropped_units += 1;
            }
            // Mark dropped slots (keep ids vec aligned by replacing later).
            let drop_set: std::collections::HashSet<usize> = drops.iter().copied().collect();
            lb.tensor_ids = lb
                .tensor_ids
                .iter()
                .enumerate()
                .filter(|(ti, _)| !drop_set.contains(ti))
                .map(|(_, &id)| id)
                .collect();
            lb.dropped = drops;
        }
        live.push(lb);
        if let Some(s) = &mut shadow {
            s.check(&arena, &format!("forward '{}'", b.name));
        }
    }

    // ---------------- backward ----------------
    for (i, b) in profile.blocks.iter().enumerate().rev() {
        // Rematerialise what was dropped.
        if is_ckpt(i) || is_swap(i) {
            if is_swap(i) {
                // Prefetch back over PCIe instead of recomputing.
                time.swap_ns += dev.swap_ns(b.act_bytes) as u64;
            } else {
                let fwd_ns = dev.exec_ns(b.fwd_flops, b.fwd_bytes_moved);
                time.recompute_ns += fwd_ns as u64;
            }
            for t in &b.tensors {
                match arena.alloc(t.bytes) {
                    Ok(id) => live[i].tensor_ids.push(id),
                    Err(e) => {
                        return finish(arena, time, Some(oom_report(e, "recompute")), dropped_units)
                    }
                }
            }
        } else if let BlockMode::Fine(fp) = &mode {
            if fp.dropped_bytes[i] > 0 {
                // Recompute cost follows the tensors *actually* dropped for
                // this input (a static fine plan names tensors; on smaller
                // inputs those tensors are smaller and cheaper). Each tensor
                // pays a 1.3x locality factor for re-running block-local
                // producers, but a block never recomputes more than its own
                // forward pass.
                let flops: f64 = live[i]
                    .dropped
                    .iter()
                    .map(|&ti| b.tensors[ti].fwd_flops * 1.3)
                    .sum::<f64>()
                    .min(b.fwd_flops * 1.05);
                time.recompute_ns += dev.exec_ns(flops, 0) as u64;
                let drops = live[i].dropped.clone();
                for ti in drops {
                    match arena.alloc(b.tensors[ti].bytes) {
                        Ok(id) => live[i].tensor_ids.push(id),
                        Err(e) => {
                            return finish(
                                arena,
                                time,
                                Some(oom_report(e, "recompute")),
                                dropped_units,
                            )
                        }
                    }
                }
            }
        }
        // Gradient transients: output grad + input grad.
        let gout = match arena.alloc(b.out_bytes) {
            Ok(id) => id,
            Err(e) => return finish(arena, time, Some(oom_report(e, "backward")), dropped_units),
        };
        let gin = match arena.alloc(b.in_bytes) {
            Ok(id) => id,
            Err(e) => return finish(arena, time, Some(oom_report(e, "backward")), dropped_units),
        };
        time.compute_ns += dev.exec_ns(b.bwd_flops, 2 * b.fwd_bytes_moved) as u64;
        arena.free(gout);
        arena.free(gin);
        // Release the block's activations + output.
        for id in live[i].tensor_ids.drain(..) {
            arena.free(id);
        }
        if let Some(id) = live[i].out_id.take() {
            arena.free(id);
        }
        if let Some(s) = &mut shadow {
            s.check(&arena, &format!("backward '{}'", b.name));
        }
    }

    // Optimizer step: elementwise update over all parameters.
    let p = profile.param_count as f64;
    time.compute_ns += dev.exec_ns(4.0 * p, profile.param_count * 16) as u64;

    let (mut run, arena) = finish(arena, time, None, dropped_units);
    if shuttle {
        run.observations = Some(observations);
    }
    (run, arena)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;
    use mimose_planner::memory_model::peak_bytes;

    fn profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn engine_peak_matches_analytic_model() {
        let p = profile(128);
        let dev = DeviceProfile::v100();
        for plan in [
            CheckpointPlan::none(p.blocks.len()),
            CheckpointPlan::all(p.blocks.len()),
            CheckpointPlan::from_indices(p.blocks.len(), &[1, 2, 3, 4, 5]).unwrap(),
        ] {
            let run = run_block_iteration(&p, BlockMode::Plan(&plan), 64 << 30, &dev, 0, 0);
            assert!(run.report.ok());
            let analytic = peak_bytes(&p, &plan);
            let measured = run.report.peak_bytes;
            let rel = (measured as f64 - analytic as f64).abs() / analytic as f64;
            assert!(
                rel < 0.001,
                "plan {plan}: measured {measured} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn checkpointing_reduces_peak_and_adds_recompute() {
        let p = profile(200);
        let dev = DeviceProfile::v100();
        let none = run_block_iteration(
            &p,
            BlockMode::Plan(&CheckpointPlan::none(p.blocks.len())),
            64 << 30,
            &dev,
            0,
            0,
        );
        let all = run_block_iteration(
            &p,
            BlockMode::Plan(&CheckpointPlan::all(p.blocks.len())),
            64 << 30,
            &dev,
            0,
            0,
        );
        assert!(all.report.peak_bytes < none.report.peak_bytes);
        assert_eq!(none.report.time.recompute_ns, 0);
        assert!(all.report.time.recompute_ns > 0);
        assert!(all.report.time.total_ns() > none.report.time.total_ns());
    }

    #[test]
    fn oom_reported_when_over_capacity() {
        let p = profile(300);
        let dev = DeviceProfile::v100();
        let run = run_block_iteration(
            &p,
            BlockMode::Plan(&CheckpointPlan::none(p.blocks.len())),
            3 << 30, // way below the no-checkpoint peak
            &dev,
            0,
            0,
        );
        assert!(!run.report.ok());
        assert_eq!(run.report.oom.as_ref().unwrap().phase, "forward");
    }

    #[test]
    fn shuttle_doubles_forward_time_and_measures() {
        let p = profile(128);
        let dev = DeviceProfile::v100();
        let plain = run_block_iteration(
            &p,
            BlockMode::Plan(&CheckpointPlan::all(p.blocks.len())),
            64 << 30,
            &dev,
            0,
            0,
        );
        let shuttle = run_block_iteration(&p, BlockMode::Shuttle, 64 << 30, &dev, 0, 0);
        assert!(shuttle.report.ok());
        let obs = shuttle.observations.as_ref().unwrap();
        assert_eq!(obs.len(), p.blocks.len());
        for (o, b) in obs.iter().zip(&p.blocks) {
            assert_eq!(o.act_bytes, b.act_bytes);
            assert_eq!(o.out_bytes, b.out_bytes);
            assert!(o.fwd_ns > 0);
        }
        // Shuttle recompute equals a full extra forward; its peak matches
        // the all-checkpointed plan (§IV-B: same footprint as Sublinear).
        assert_eq!(shuttle.report.peak_bytes, plain.report.peak_bytes);
        assert!(shuttle.report.time.recompute_ns >= plain.report.time.recompute_ns);
    }

    #[test]
    fn fine_plan_drops_partial_bytes() {
        let p = profile(200);
        let dev = DeviceProfile::v100();
        let n = p.blocks.len();
        let mut fine = FinePlan::none(n);
        // Drop ~half of encoder 1's internals.
        fine.dropped_bytes[1] = p.blocks[1].act_bytes / 2;
        fine.recompute_flops[1] = p.blocks[1].fwd_flops / 2.0;
        let run = run_block_iteration(&p, BlockMode::Fine(&fine), 64 << 30, &dev, 0, 0);
        assert!(run.report.ok());
        assert!(run.report.dropped_units > 0);
        assert!(run.report.time.recompute_ns > 0);
        let full = run_block_iteration(
            &p,
            BlockMode::Plan(&CheckpointPlan::none(n)),
            64 << 30,
            &dev,
            0,
            0,
        );
        assert!(run.report.peak_bytes < full.report.peak_bytes);
    }

    #[test]
    fn hybrid_swap_charges_transfer_not_recompute() {
        use mimose_planner::{BlockAction, HybridPlan};
        let p = profile(200);
        let dev = DeviceProfile::v100();
        let n = p.blocks.len();
        let mut swap_plan = HybridPlan::keep_all(n);
        swap_plan.actions[1] = BlockAction::Swap;
        let mut rec_plan = HybridPlan::keep_all(n);
        rec_plan.actions[1] = BlockAction::Recompute;

        let swap = run_block_iteration(&p, BlockMode::Hybrid(&swap_plan), 64 << 30, &dev, 0, 0);
        let rec = run_block_iteration(&p, BlockMode::Hybrid(&rec_plan), 64 << 30, &dev, 0, 0);
        assert!(swap.report.ok() && rec.report.ok());
        // Identical memory behaviour...
        assert_eq!(swap.report.peak_bytes, rec.report.peak_bytes);
        // ...different time channels.
        assert!(swap.report.time.swap_ns > 0);
        assert_eq!(swap.report.time.recompute_ns, 0);
        assert!(rec.report.time.recompute_ns > 0);
        assert_eq!(rec.report.time.swap_ns, 0);
        // Expected swap charge: out + back, non-overlapped fraction.
        let expect = 2 * dev.swap_ns(p.blocks[1].act_bytes) as u64;
        let got = swap.report.time.swap_ns;
        assert!(
            (got as i64 - expect as i64).unsigned_abs() <= 2,
            "swap charge {got} vs {expect}"
        );
    }

    #[test]
    fn planning_ns_charged_to_clock() {
        let p = profile(64);
        let dev = DeviceProfile::v100();
        let plan = CheckpointPlan::none(p.blocks.len());
        let without = run_block_iteration(&p, BlockMode::Plan(&plan), 64 << 30, &dev, 0, 0);
        let with = run_block_iteration(&p, BlockMode::Plan(&plan), 64 << 30, &dev, 0, 123_456);
        assert_eq!(
            with.report.time.total_ns(),
            without.report.time.total_ns() + 123_456
        );
    }
}
