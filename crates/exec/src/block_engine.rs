//! Block-granularity iteration engine: simulates one forward/backward pass
//! under a checkpoint plan (or a shuttle-collection iteration) on top of the
//! shared [`EngineCore`] runtime.
//!
//! The allocation timeline deliberately mirrors
//! `mimose_planner::memory_model::peak_bytes` step for step, so planner
//! budget checks and executor measurements agree (cross-validated in the
//! integration tests).
//!
//! Everything the engine does goes through the core and is narrated to a
//! [`Recorder`] as a typed [`ExecEvent`] stream: the report folds from it,
//! the shadow checker is teed into it, and `mimose-audit` replays it. What
//! remains here is the block *timeline* plus [`BlockRungPolicy`] — the
//! inline rungs of the OOM-recovery ladder (arena coalesce-and-retry, then
//! in-place plan demotion) expressed as a
//! [`MaterializationPolicy`]. Without a [`RecoveryConfig`] the policy has no
//! remedies and any `OomError` becomes a terminal `OomReport`, exactly as
//! before.

use crate::recovery::RecoveryConfig;
use crate::rungs::BlockRungPolicy;
use crate::shadow::ShadowChecker;
use mimose_chaos::IterationFaults;
use mimose_models::{BlockProfile, ModelProfile};
use mimose_planner::memory_model::FinePlan;
use mimose_planner::{BlockAction, BlockObservation, CheckpointPlan, HybridPlan};
use mimose_runtime::{
    policy_alloc, AllocSite, EngineCore, ExecEvent, IterationReport, LiveBlock, NullRecorder,
    Recorder, ReportMeta, RingRecorder, Tee,
};
use mimose_simgpu::{Arena, ArenaStats, DeviceProfile, TraceEvent};

/// How to run the iteration.
#[derive(Debug, Clone)]
pub enum BlockMode<'a> {
    /// Normal execution under a block plan.
    Plan(&'a CheckpointPlan),
    /// Tensor-granular plan (MONeT).
    Fine(&'a FinePlan),
    /// Hybrid swap/recompute plan (Capuchin).
    Hybrid(&'a HybridPlan),
    /// Mimose's shuttle-collection iteration: every block forwards twice and
    /// per-block measurements are returned.
    Shuttle,
}

/// Outcome of a block-engine iteration.
pub struct BlockRun {
    /// The measurement report.
    pub report: IterationReport,
    /// Per-block observations (only for shuttle iterations).
    pub observations: Option<Vec<BlockObservation>>,
    /// The effective checkpoint plan after in-iteration demotion, if the
    /// recovery ladder demoted any blocks (Plan mode only). The restart
    /// driver grows its next plan from here so demotion stays monotone
    /// across attempts.
    pub demoted_plan: Option<CheckpointPlan>,
}

/// Per-attempt knobs threaded through the engine (crate-internal; the
/// public wrappers fill in the defaults).
pub(crate) struct EngineOpts<'a> {
    /// 0-based attempt number stamped on recovery events.
    pub attempt: usize,
    /// Cumulative budget shrink stamped on recovery events.
    pub shrink: f64,
    /// Inline recovery rungs; `None` = legacy report-and-die behaviour.
    pub recovery: Option<&'a RecoveryConfig>,
    /// Faults to inject into this attempt; `None` = clean run.
    pub faults: Option<&'a IterationFaults>,
}

impl Default for EngineOpts<'static> {
    fn default() -> Self {
        EngineOpts {
            attempt: 0,
            shrink: 1.0,
            recovery: None,
            faults: None,
        }
    }
}

/// Run one iteration at block granularity.
///
/// `capacity` is the arena size (the budget for budget-enforcing policies,
/// or the device size for the baseline); `planning_ns` is the policy's plan
/// generation time to charge to the clock.
#[must_use]
pub fn run_block_iteration(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
) -> BlockRun {
    let mut rec = NullRecorder;
    run_block_iteration_impl(
        profile,
        mode,
        capacity,
        dev,
        iter,
        planning_ns,
        &EngineOpts::default(),
        &mut rec,
    )
    .0
}

/// Like [`run_block_iteration`], but recording the full [`ExecEvent`]
/// stream: additionally returns the stream and the arena's final
/// statistics, ready for `mimose_audit::audit_exec_events`.
#[must_use]
pub fn run_block_iteration_recorded(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
) -> (BlockRun, Vec<ExecEvent>, ArenaStats) {
    // The default recorded path runs on the packed ring, not a
    // `Vec<ExecEvent>`: events append as a handful of bytes each and the
    // full stream materializes once, at the end, via `take_decoded` — the
    // byte-identity differential suite pins that the decode is lossless.
    let mut ring = RingRecorder::for_blocks(profile.blocks.len()).growable();
    let (run, arena) = run_block_iteration_impl(
        profile,
        mode,
        capacity,
        dev,
        iter,
        planning_ns,
        &EngineOpts::default(),
        &mut ring,
    );
    debug_assert_eq!(ring.dropped_events(), 0);
    (run, ring.take_decoded(), arena.stats())
}

/// Like [`run_block_iteration`], but projecting the recorded stream down to
/// the allocator-level [`TraceEvent`] log, ready for
/// `mimose_audit::audit_trace`.
pub fn run_block_iteration_traced(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
) -> (BlockRun, Vec<TraceEvent>, ArenaStats) {
    let (run, events, stats) =
        run_block_iteration_recorded(profile, mode, capacity, dev, iter, planning_ns);
    let trace = events
        .iter()
        .filter_map(ExecEvent::to_trace_event)
        .collect();
    (run, trace, stats)
}

/// Whether block `i` runs checkpointed, consulting the demotion-mutable
/// working plan when one exists (Plan mode under recovery).
fn is_ckpt_of(mode: &BlockMode<'_>, working: &Option<Vec<bool>>, i: usize) -> bool {
    if let Some(w) = working {
        return w[i];
    }
    match mode {
        BlockMode::Plan(p) => p.is_checkpointed(i),
        BlockMode::Fine(_) => false, // handled via dropped sets
        BlockMode::Hybrid(h) => h.actions[i] == BlockAction::Recompute,
        BlockMode::Shuttle => true,
    }
}

fn is_swap(mode: &BlockMode<'_>, i: usize) -> bool {
    matches!(mode, BlockMode::Hybrid(h) if h.actions[i] == BlockAction::Swap)
}

/// The shadow checker's reference plan for a mode. Fine plans are excluded —
/// the engine drops whole tensors until the planned byte count is covered,
/// deliberately overshooting the analytic figure. Hybrid swap blocks free
/// internals exactly like recompute blocks, so both map to "checkpointed".
fn shadow_plan(mode: &BlockMode<'_>, n: usize) -> Option<CheckpointPlan> {
    match mode {
        BlockMode::Plan(p) => Some((*p).clone()),
        BlockMode::Shuttle => Some(CheckpointPlan::all(n)),
        BlockMode::Hybrid(h) => {
            let mut pl = CheckpointPlan::none(n);
            for (i, a) in h.actions.iter().enumerate() {
                pl.set(i, *a != BlockAction::Keep);
            }
            Some(pl)
        }
        BlockMode::Fine(_) => None,
    }
}

/// For fine plans: which tensor indices to drop per block. Matches the
/// MONeT solver's selection order (bytes-per-recompute-FLOP efficiency,
/// best first) until the planned byte count is covered.
fn fine_drops(b: &BlockProfile, planned: usize) -> Vec<usize> {
    if planned == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..b.tensors.len()).collect();
    order.sort_by(|&x, &y| {
        let ex = b.tensors[x].bytes as f64 / b.tensors[x].fwd_flops.max(1.0);
        let ey = b.tensors[y].bytes as f64 / b.tensors[y].fwd_flops.max(1.0);
        ey.total_cmp(&ex)
    });
    let mut acc = 0usize;
    let mut out = Vec::new();
    for i in order {
        if acc >= planned {
            break;
        }
        acc += b.tensors[i].bytes;
        out.push(i);
    }
    out
}

/// Close the iteration from any point of the timeline.
fn close(
    core: EngineCore<'_>,
    profile: &ModelProfile,
    iter: usize,
    shuttle: bool,
    oom: Option<mimose_runtime::OomReport>,
    pol: BlockRungPolicy<'_>,
) -> (BlockRun, Arena) {
    let demoted_plan = pol.demoted_plan();
    let (report, arena) = core.finish(ReportMeta {
        iter,
        input: profile.input,
        input_size: profile.input_size,
        dropped_units: pol.dropped_units,
        shuttle,
        oom,
        recovery: pol.events,
    });
    (
        BlockRun {
            report,
            observations: None,
            demoted_plan,
        },
        arena,
    )
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_block_iteration_impl(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
    opts: &EngineOpts<'_>,
    rec: &mut dyn Recorder,
) -> (BlockRun, Arena) {
    let n = profile.blocks.len();
    let shuttle = matches!(mode, BlockMode::Shuttle);

    // Shadow checking (debug builds / MIMOSE_SHADOW_CHECK=1): a recorder
    // teed into the stream that cross-validates live bytes against the
    // analytic model's residency curve at every `Boundary` event.
    let mut shadow = if crate::shadow::shadow_check_enabled() {
        shadow_plan(&mode, n).map(|pl| ShadowChecker::new(profile, &pl))
    } else {
        None
    };
    let mut tee;
    let rec: &mut dyn Recorder = match shadow.as_mut() {
        Some(s) => {
            tee = Tee(s, rec);
            &mut tee
        }
        None => rec,
    };

    let mut core = EngineCore::new(capacity, dev, rec);
    core.arm_faults(opts.faults);
    core.charge_planning(planning_ns);

    let mut pol = BlockRungPolicy {
        profile,
        recovery: opts.recovery,
        attempt: opts.attempt,
        shrink: opts.shrink,
        base_ckpt: match &mode {
            BlockMode::Plan(p) => p.count(),
            BlockMode::Hybrid(h) => h
                .actions
                .iter()
                .filter(|a| **a == BlockAction::Recompute)
                .count(),
            _ => 0,
        },
        // Demotion-mutable working copy of the plan (Plan mode under
        // recovery).
        working: match (&mode, opts.recovery) {
            (BlockMode::Plan(p), Some(cfg)) if cfg.demote => {
                Some((0..n).map(|i| p.is_checkpointed(i)).collect())
            }
            _ => None,
        },
        live: Vec::with_capacity(n),
        dropped_units: 0,
        events: Vec::new(),
    };

    // Constant footprint + input tensor.
    for (bytes, phase) in [
        (profile.const_bytes, "const"),
        (profile.input_bytes, "input"),
    ] {
        if let Err(e) = policy_alloc(&mut core, &mut pol, bytes, &AllocSite::setup(phase)) {
            let report = e.to_report(&core.arena, phase);
            return close(core, profile, iter, shuttle, Some(report), pol);
        }
    }
    core.emit(&ExecEvent::Boundary {
        phase: "init",
        index: None,
        live_hint: None,
    });

    // ---------------- forward ----------------
    let mut observations: Vec<BlockObservation> = Vec::with_capacity(if shuttle { n } else { 0 });
    for (i, b) in profile.blocks.iter().enumerate() {
        let fwd_ns = dev.exec_ns(b.fwd_flops, b.fwd_bytes_moved);
        core.charge_compute(fwd_ns as u64);
        if shuttle {
            // The second forward of the shuttling collector (§IV-B).
            core.charge_recompute(fwd_ns);
        }
        // Materialise internals + output.
        let site = AllocSite {
            phase: "forward",
            cursor: Some(i),
            in_forward: true,
        };
        let mut ids = Vec::with_capacity(b.tensors.len());
        for t in &b.tensors {
            match policy_alloc(&mut core, &mut pol, t.bytes, &site) {
                Ok(id) => ids.push(id),
                Err(e) => {
                    let report = e.to_report(&core.arena, "forward");
                    return close(core, profile, iter, shuttle, Some(report), pol);
                }
            }
        }
        let out_id = match policy_alloc(&mut core, &mut pol, b.out_bytes, &site) {
            Ok(id) => id,
            Err(e) => {
                let report = e.to_report(&core.arena, "forward");
                return close(core, profile, iter, shuttle, Some(report), pol);
            }
        };
        if shuttle {
            observations.push(BlockObservation {
                index: i,
                act_bytes: b.act_bytes,
                out_bytes: b.out_bytes,
                in_bytes: b.in_bytes,
                fwd_ns: fwd_ns as u64,
            });
        }
        let mut lb = LiveBlock {
            tensor_ids: ids,
            out_id: Some(out_id),
            dropped: Vec::new(),
        };
        if is_ckpt_of(&mode, &pol.working, i) || is_swap(&mode, i) {
            // Drop internals, keep the output checkpoint. A swapped block
            // additionally pays the non-overlapped swap-out transfer.
            if is_swap(&mode, i) {
                core.charge_swap(dev.swap_ns(b.act_bytes) as u64);
            }
            for id in lb.tensor_ids.drain(..) {
                core.free(id);
            }
            if !b.tensors.is_empty() {
                pol.dropped_units += 1;
            }
        } else if let BlockMode::Fine(fp) = &mode {
            let drops = fine_drops(b, fp.dropped_bytes[i]);
            for &ti in &drops {
                core.free(lb.tensor_ids[ti]);
                pol.dropped_units += 1;
            }
            // Mark dropped slots (keep ids vec aligned by replacing later).
            let drop_set: std::collections::HashSet<usize> = drops.iter().copied().collect();
            lb.tensor_ids = lb
                .tensor_ids
                .iter()
                .enumerate()
                .filter(|(ti, _)| !drop_set.contains(ti))
                .map(|(_, &id)| id)
                .collect();
            lb.dropped = drops;
        }
        pol.live.push(lb);
        core.emit(&ExecEvent::Boundary {
            phase: "forward",
            index: Some(i),
            live_hint: None,
        });
    }

    // ---------------- backward ----------------
    for (i, b) in profile.blocks.iter().enumerate().rev() {
        // Rematerialise what was dropped.
        if is_ckpt_of(&mode, &pol.working, i) || is_swap(&mode, i) {
            if is_swap(&mode, i) {
                // Prefetch back over PCIe instead of recomputing.
                core.charge_swap(dev.swap_ns(b.act_bytes) as u64);
            } else {
                core.charge_recompute(dev.exec_ns(b.fwd_flops, b.fwd_bytes_moved));
            }
            let site = AllocSite {
                phase: "recompute",
                cursor: Some(i),
                in_forward: false,
            };
            for t in &b.tensors {
                match policy_alloc(&mut core, &mut pol, t.bytes, &site) {
                    Ok(id) => pol.live[i].tensor_ids.push(id),
                    Err(e) => {
                        let report = e.to_report(&core.arena, "recompute");
                        return close(core, profile, iter, shuttle, Some(report), pol);
                    }
                }
            }
        } else if let BlockMode::Fine(fp) = &mode {
            if fp.dropped_bytes[i] > 0 {
                // Recompute cost follows the tensors *actually* dropped for
                // this input (a static fine plan names tensors; on smaller
                // inputs those tensors are smaller and cheaper). Each tensor
                // pays a 1.3x locality factor for re-running block-local
                // producers, but a block never recomputes more than its own
                // forward pass.
                let flops: f64 = pol.live[i]
                    .dropped
                    .iter()
                    .map(|&ti| b.tensors[ti].fwd_flops * 1.3)
                    .sum::<f64>()
                    .min(b.fwd_flops * 1.05);
                core.charge_recompute(dev.exec_ns(flops, 0));
                let site = AllocSite {
                    phase: "recompute",
                    cursor: Some(i),
                    in_forward: false,
                };
                let drops = pol.live[i].dropped.clone();
                for ti in drops {
                    match policy_alloc(&mut core, &mut pol, b.tensors[ti].bytes, &site) {
                        Ok(id) => pol.live[i].tensor_ids.push(id),
                        Err(e) => {
                            let report = e.to_report(&core.arena, "recompute");
                            return close(core, profile, iter, shuttle, Some(report), pol);
                        }
                    }
                }
            }
        }
        // Gradient transients: output grad + input grad.
        let site = AllocSite {
            phase: "backward",
            cursor: Some(i),
            in_forward: false,
        };
        let mut grads = [None, None];
        for (g, bytes) in grads.iter_mut().zip([b.out_bytes, b.in_bytes]) {
            match policy_alloc(&mut core, &mut pol, bytes, &site) {
                Ok(id) => *g = Some(id),
                Err(e) => {
                    let report = e.to_report(&core.arena, "backward");
                    return close(core, profile, iter, shuttle, Some(report), pol);
                }
            }
        }
        core.charge_compute(dev.exec_ns(b.bwd_flops, 2 * b.fwd_bytes_moved) as u64);
        for id in grads.into_iter().flatten() {
            core.free(id);
        }
        // Release the block's activations + output.
        for id in pol.live[i].tensor_ids.drain(..) {
            core.free(id);
        }
        if let Some(id) = pol.live[i].out_id.take() {
            core.free(id);
        }
        core.emit(&ExecEvent::Boundary {
            phase: "backward",
            index: Some(i),
            live_hint: None,
        });
    }

    // Optimizer step: elementwise update over all parameters.
    let p = profile.param_count as f64;
    core.charge_compute(dev.exec_ns(4.0 * p, profile.param_count * 16) as u64);

    let (mut run, arena) = close(core, profile, iter, shuttle, None, pol);
    if shuttle {
        run.observations = Some(observations);
    }
    (run, arena)
}
