//! The OOM-recovery ladder's outer rungs: iteration restart under a shrunk
//! planning budget, and the guaranteed-terminal full-checkpoint fallback.
//!
//! The ladder has four rungs, tried strictly in order of increasing cost:
//!
//! 1. **Coalesce-and-retry** — compact the arena and retry the failed
//!    allocation. Handled *inline* by the engine (see
//!    [`crate::block_engine`]); cures fragmentation failures and absorbs
//!    injected spurious failures. Cost: the copy time of the slide.
//! 2. **In-place demotion** — checkpoint additional blocks mid-iteration,
//!    evicting their internals, without abandoning work already done.
//!    Inline as well. Cost: their recompute in the backward pass.
//! 3. **Restart** — abandon the iteration and re-run it under a
//!    multiplicatively shrunk planning budget (the new plan is grown from
//!    the failed attempt's post-demotion plan, so demotion is monotone
//!    across attempts). Bounded by [`RecoveryConfig::max_restarts`]. Cost:
//!    everything the aborted attempt spent.
//! 4. **Fallback** — re-run with *every* block checkpointed. This is the
//!    minimum-footprint configuration at block granularity, so if it fails
//!    the workload genuinely does not fit and the failure is terminal.
//!
//! Every rung taken is recorded as a typed [`RecoveryEvent`] on the final
//! [`IterationReport`](crate::IterationReport), with its cost attributed to
//! the virtual clock's `recovery_ns` channel (demotion's cost shows up
//! later as ordinary recompute, so its event carries `time_cost_ns: 0` —
//! never double-counted).

use crate::block_engine::{run_block_iteration_impl, BlockMode, BlockRun, EngineOpts};
use mimose_chaos::IterationFaults;
use mimose_models::ModelProfile;
use mimose_planner::memory_model::peak_bytes;
use mimose_planner::{CheckpointPlan, RecoveryEvent, RecoveryRung};
use mimose_runtime::{ExecEvent, NullRecorder, Recorder, RingRecorder};
use mimose_simgpu::{ArenaStats, DeviceProfile, TraceEvent};

/// Tunables for the OOM-recovery ladder. The default configuration enables
/// every rung with conservative bounds; disable individual rungs to study
/// their marginal contribution (the chaos CLI does exactly that).
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Rung 1: compact the arena and retry on fragmentation failures.
    pub compact: bool,
    /// Rung 2: demote (checkpoint) additional blocks in place.
    pub demote: bool,
    /// Rung 3: maximum full-iteration restarts before falling back.
    pub max_restarts: usize,
    /// Multiplicative planning-budget shrink applied per restart.
    pub shrink_factor: f64,
    /// Global cap on inline (rung 1/2) events per attempt; exceeding it
    /// escalates to restart rather than looping forever.
    pub max_inline_events: usize,
    /// Rung 4: try the full-checkpoint plan before declaring a fatal OOM.
    pub fallback: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            compact: true,
            demote: true,
            max_restarts: 2,
            shrink_factor: 0.85,
            max_inline_events: 64,
            fallback: true,
        }
    }
}

/// Grow `plan` (checkpoint more blocks) until the analytic peak fits under
/// `target` bytes, choosing kept blocks by descending activation size —
/// the fewest demotions for the most relief. Returns the plan unchanged if
/// it already fits; returns the all-checkpoint plan if even that is needed.
///
/// This uses the *true* profile rather than the policy's estimator: the
/// restart rung is an executor-side mechanism (like a runtime OOM handler
/// resizing its own workspace), not a planner prediction. The shrunk budget
/// is still fed back to the policy via the recovery events so *future*
/// plans become more conservative too.
#[must_use]
pub fn grow_plan(
    profile: &ModelProfile,
    mut plan: CheckpointPlan,
    target: usize,
) -> CheckpointPlan {
    if peak_bytes(profile, &plan) <= target {
        return plan;
    }
    let mut kept: Vec<usize> = (0..plan.len())
        .filter(|&i| !plan.is_checkpointed(i))
        .collect();
    kept.sort_by_key(|&i| std::cmp::Reverse(profile.blocks[i].act_bytes));
    for i in kept {
        plan.set(i, true);
        if peak_bytes(profile, &plan) <= target {
            break;
        }
    }
    plan
}

struct DriverState {
    /// Restarts consumed so far.
    restarts: usize,
    /// Cumulative budget shrink across restarts.
    shrink: f64,
    /// Elapsed virtual time of aborted attempts.
    wasted_ns: u64,
    /// Events accumulated from aborted attempts plus escalations.
    events: Vec<RecoveryEvent>,
    /// Plan for the next attempt, if an escalation replaced the caller's.
    restart_plan: Option<CheckpointPlan>,
    /// Whether the terminal full-checkpoint fallback has been tried.
    did_fallback: bool,
}

/// Run one iteration under the full recovery ladder.
///
/// With `recovery: None` and `faults: None` this is byte-identical to
/// [`run_block_iteration`](crate::run_block_iteration) — one attempt, no
/// hooks. Restart and fallback only apply to [`BlockMode::Plan`] (the other
/// modes have no block plan to grow): `Fine`/`Hybrid` escalate straight to
/// the fallback plan, and `Shuttle` *is* the full-checkpoint configuration
/// already, so its fallback would be itself and a fatal shuttle iteration
/// stays fatal.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_block_iteration_recovering(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
    recovery: Option<&RecoveryConfig>,
    faults: Option<&IterationFaults>,
) -> BlockRun {
    drive(
        profile,
        mode,
        capacity,
        dev,
        iter,
        planning_ns,
        recovery,
        faults,
        false,
    )
    .0
}

/// Recorded variant of [`run_block_iteration_recovering`]. The returned
/// event stream and arena statistics cover the **final attempt only** —
/// aborted attempts ran in arenas that were torn down with them; their cost
/// survives in the report's `recovery_ns` and the accumulated
/// [`RecoveryEvent`]s.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_block_iteration_recovering_recorded(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
    recovery: Option<&RecoveryConfig>,
    faults: Option<&IterationFaults>,
) -> (BlockRun, Vec<ExecEvent>, ArenaStats) {
    let (run, events, stats) = drive(
        profile,
        mode,
        capacity,
        dev,
        iter,
        planning_ns,
        recovery,
        faults,
        true,
    );
    (run, events.unwrap_or_default(), stats.unwrap_or_default())
}

/// Traced variant of [`run_block_iteration_recovering`]: the recorded
/// stream projected down to allocator-level [`TraceEvent`]s (final attempt
/// only, like [`run_block_iteration_recovering_recorded`]).
#[allow(clippy::too_many_arguments)]
pub fn run_block_iteration_recovering_traced(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
    recovery: Option<&RecoveryConfig>,
    faults: Option<&IterationFaults>,
) -> (BlockRun, Vec<TraceEvent>, ArenaStats) {
    let (run, events, stats) = run_block_iteration_recovering_recorded(
        profile,
        mode,
        capacity,
        dev,
        iter,
        planning_ns,
        recovery,
        faults,
    );
    let trace = events
        .iter()
        .filter_map(ExecEvent::to_trace_event)
        .collect();
    (run, trace, stats)
}

#[allow(clippy::too_many_arguments)]
fn drive(
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    planning_ns: u64,
    recovery: Option<&RecoveryConfig>,
    faults: Option<&IterationFaults>,
    record: bool,
) -> (BlockRun, Option<Vec<ExecEvent>>, Option<ArenaStats>) {
    let n = profile.blocks.len();
    let mut st = DriverState {
        restarts: 0,
        shrink: 1.0,
        wasted_ns: 0,
        events: Vec::new(),
        restart_plan: None,
        did_fallback: false,
    };
    let mut attempt = 0usize;
    // One packed ring serves every attempt (when recording): `clear()`
    // keeps the buffer allocation, so ladder restarts record for free and
    // the returned stream covers the final attempt only.
    let mut ring = RingRecorder::for_blocks(n).growable();
    let mut null = NullRecorder;
    loop {
        let attempt_mode = match &st.restart_plan {
            Some(p) => BlockMode::Plan(p),
            None => mode.clone(),
        };
        let opts = EngineOpts {
            attempt,
            shrink: st.shrink,
            recovery,
            faults,
        };
        // Planning time is a per-iteration cost, charged once; the aborted
        // attempts' own elapsed time is charged via recovery_ns instead.
        let attempt_planning = if attempt == 0 { planning_ns } else { 0 };
        ring.clear();
        let rec: &mut dyn Recorder = if record { &mut ring } else { &mut null };
        let (mut run, arena) = run_block_iteration_impl(
            profile,
            attempt_mode,
            capacity,
            dev,
            iter,
            attempt_planning,
            &opts,
            rec,
        );

        let fatal = !run.report.ok();
        let cfg = match recovery {
            Some(cfg) if fatal => cfg,
            _ => {
                // Success — or no ladder configured, so the first attempt is
                // final either way. Merge accumulated history into the
                // report.
                if !st.events.is_empty() {
                    let mut all = std::mem::take(&mut st.events);
                    all.append(&mut run.report.recovery);
                    run.report.recovery = all;
                }
                run.report.time.recovery_ns += st.wasted_ns;
                let (ev, stats) = if record {
                    debug_assert_eq!(ring.dropped_events(), 0);
                    (Some(ring.take_decoded()), Some(arena.stats()))
                } else {
                    (None, None)
                };
                return (run, ev, stats);
            }
        };

        // Fatal under a ladder: decide the escalation before giving up.
        let attempt_ns = run.report.time.total_ns();
        let (oom_phase, oom_requested) = run
            .report
            .oom
            .as_ref()
            .map_or(("unknown", 0), |o| (o.phase, o.requested));
        // Checkpoint count of the plan the failed attempt *effectively* ran
        // (post-demotion when the inline rung fired), so the event chain's
        // checkpoint counts stay globally monotone.
        let effective_plan: Option<&CheckpointPlan> = run
            .demoted_plan
            .as_ref()
            .or(st.restart_plan.as_ref())
            .or(match &mode {
                BlockMode::Plan(p) => Some(*p),
                _ => None,
            });
        let failed_ckpt =
            effective_plan.map_or(0, |p| (0..n).filter(|&i| p.is_checkpointed(i)).count());
        st.events.append(&mut run.report.recovery);

        let restartable = matches!(&mode, BlockMode::Plan(_)) || st.restart_plan.is_some();
        if restartable && st.restarts < cfg.max_restarts && !st.did_fallback {
            // Rung 3 — restart under a shrunk budget, growing from the
            // failed attempt's post-demotion plan so demotion is monotone.
            st.wasted_ns += attempt_ns;
            st.restarts += 1;
            st.shrink *= cfg.shrink_factor;
            let target = (capacity as f64 * st.shrink) as usize;
            let base = run
                .demoted_plan
                .take()
                .or_else(|| st.restart_plan.take())
                .unwrap_or_else(|| match &mode {
                    BlockMode::Plan(p) => (*p).clone(),
                    _ => CheckpointPlan::none(n),
                });
            let next = grow_plan(profile, base, target);
            st.events.push(RecoveryEvent {
                rung: RecoveryRung::Restart,
                attempt,
                phase: oom_phase,
                requested: oom_requested,
                ckpt_before: failed_ckpt,
                ckpt_after: (0..n).filter(|&i| next.is_checkpointed(i)).count(),
                shrink_factor: st.shrink,
                time_cost_ns: attempt_ns,
                freed_bytes: 0,
            });
            st.restart_plan = Some(next);
            attempt += 1;
            continue;
        }

        // Rung 4 — full-checkpoint fallback. Skip when the failed plan
        // already *was* full-checkpoint (nothing left to shed) and for
        // shuttle iterations, which are full-checkpoint by construction.
        let already_full = failed_ckpt == n && n > 0;
        let fallback_applies = cfg.fallback
            && !st.did_fallback
            && !already_full
            && !matches!(&mode, BlockMode::Shuttle if st.restart_plan.is_none());
        if fallback_applies {
            st.wasted_ns += attempt_ns;
            st.did_fallback = true;
            st.events.push(RecoveryEvent {
                rung: RecoveryRung::Fallback,
                attempt,
                phase: oom_phase,
                requested: oom_requested,
                ckpt_before: failed_ckpt,
                ckpt_after: n,
                shrink_factor: st.shrink,
                time_cost_ns: attempt_ns,
                freed_bytes: 0,
            });
            st.restart_plan = Some(CheckpointPlan::all(n));
            attempt += 1;
            continue;
        }

        // Terminal fatal: the ladder is exhausted. Ship the full chain of
        // remedies tried, with aborted attempts' time on the clock.
        run.report.recovery = std::mem::take(&mut st.events);
        run.report.time.recovery_ns += st.wasted_ns;
        let (ev, stats) = if record {
            debug_assert_eq!(ring.dropped_events(), 0);
            (Some(ring.take_decoded()), Some(arena.stats()))
        } else {
            (None, None)
        };
        return (run, ev, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_engine::run_block_iteration_traced;
    use mimose_chaos::{FaultInjector, FaultSpec};
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    fn profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn grow_plan_is_monotone_and_reaches_target() {
        let p = profile(200);
        let n = p.blocks.len();
        let none = CheckpointPlan::none(n);
        let full_peak = peak_bytes(&p, &none);
        let min_peak = peak_bytes(&p, &CheckpointPlan::all(n));
        let target = (min_peak + full_peak) / 2;
        let grown = grow_plan(&p, none.clone(), target);
        assert!(peak_bytes(&p, &grown) <= target);
        // Monotone: grow never un-checkpoints.
        for i in 0..n {
            assert!(!none.is_checkpointed(i) || grown.is_checkpointed(i));
        }
        // Unreachable target saturates at the all-checkpoint plan.
        let sat = grow_plan(&p, CheckpointPlan::none(n), 1);
        assert_eq!(sat.count(), n);
    }

    #[test]
    fn ladder_rescues_undersized_plan_via_restart() {
        let p = profile(256);
        let n = p.blocks.len();
        let dev = DeviceProfile::v100();
        // A capacity the no-checkpoint plan cannot fit, but full-checkpoint
        // can: without the ladder this is a fatal OOM.
        let min_peak = peak_bytes(&p, &CheckpointPlan::all(n));
        let max_peak = peak_bytes(&p, &CheckpointPlan::none(n));
        let capacity = (min_peak + (max_peak - min_peak) / 4).next_multiple_of(512);
        let plan = CheckpointPlan::none(n);

        let bare = run_block_iteration_recovering(
            &p,
            BlockMode::Plan(&plan),
            capacity,
            &dev,
            0,
            0,
            None,
            None,
        );
        assert!(!bare.report.ok(), "without the ladder this must die");

        let cfg = RecoveryConfig::default();
        let run = run_block_iteration_recovering(
            &p,
            BlockMode::Plan(&plan),
            capacity,
            &dev,
            0,
            0,
            Some(&cfg),
            None,
        );
        assert!(run.report.ok(), "ladder must rescue: {:?}", run.report.oom);
        assert!(!run.report.recovery.is_empty());
        assert!(
            run.report.time.recovery_ns > 0
                || run
                    .report
                    .recovery
                    .iter()
                    .all(|e| e.rung == RecoveryRung::Demotion)
        );
    }

    #[test]
    fn fallback_is_terminal_and_ordered() {
        let p = profile(256);
        let n = p.blocks.len();
        let dev = DeviceProfile::v100();
        let min_peak = peak_bytes(&p, &CheckpointPlan::all(n));
        // Slightly above the absolute floor: only full-checkpoint fits.
        let capacity = (min_peak + (min_peak / 50)).next_multiple_of(512);
        let plan = CheckpointPlan::none(n);
        // Demotion and restarts disabled: the only rescue left is rung 4.
        let cfg = RecoveryConfig {
            demote: false,
            max_restarts: 0,
            ..RecoveryConfig::default()
        };
        let run = run_block_iteration_recovering(
            &p,
            BlockMode::Plan(&plan),
            capacity,
            &dev,
            0,
            0,
            Some(&cfg),
            None,
        );
        assert!(run.report.ok(), "fallback must fit: {:?}", run.report.oom);
        let rungs: Vec<_> = run.report.recovery.iter().map(|e| e.rung).collect();
        assert!(rungs.contains(&RecoveryRung::Fallback));
        // Rungs escalate: no Restart after the Fallback.
        let fb = rungs
            .iter()
            .position(|r| *r == RecoveryRung::Fallback)
            .unwrap();
        assert!(rungs[fb + 1..].iter().all(|r| *r != RecoveryRung::Restart));
        assert!(run.report.time.recovery_ns > 0);
    }

    #[test]
    fn impossible_workload_fails_terminally_with_full_chain() {
        let p = profile(256);
        let n = p.blocks.len();
        let dev = DeviceProfile::v100();
        let min_peak = peak_bytes(&p, &CheckpointPlan::all(n));
        // Below even the full-checkpoint floor: nothing can save this.
        let capacity = (min_peak / 2).next_multiple_of(512);
        let plan = CheckpointPlan::none(n);
        let full = run_block_iteration_recovering(
            &p,
            BlockMode::Plan(&plan),
            capacity,
            &dev,
            0,
            0,
            Some(&RecoveryConfig::default()),
            None,
        );
        assert!(!full.report.ok(), "must stay fatal below the floor");
        // The chain shows the ladder *was* climbed before giving up. (No
        // recovery_ns assertion: the attempts die at the first allocation,
        // which genuinely costs nothing on the virtual clock.)
        assert!(!full.report.recovery.is_empty());
        assert!(full
            .report
            .recovery
            .iter()
            .any(|e| e.rung >= RecoveryRung::Restart));

        // With only rung 4 enabled, the terminal chain is exactly one
        // Fallback event — tried once, then fatal.
        let cfg = RecoveryConfig {
            compact: false,
            demote: false,
            max_restarts: 0,
            ..RecoveryConfig::default()
        };
        let run = run_block_iteration_recovering(
            &p,
            BlockMode::Plan(&plan),
            capacity,
            &dev,
            0,
            0,
            Some(&cfg),
            None,
        );
        assert!(!run.report.ok());
        let rungs: Vec<_> = run.report.recovery.iter().map(|e| e.rung).collect();
        assert_eq!(rungs, vec![RecoveryRung::Fallback]);
    }

    #[test]
    fn injected_failures_absorbed_by_compact_rung() {
        let p = profile(128);
        let n = p.blocks.len();
        let dev = DeviceProfile::v100();
        let spec = FaultSpec {
            seed: 7,
            alloc_failure_rate: 1.0,
            alloc_failures_per_iter: 3,
            alloc_failure_span: 40,
            ..FaultSpec::default()
        };
        let inj = FaultInjector::new(spec);
        let faults = inj.iteration_faults(0);
        assert!(!faults.fail_allocs.is_empty());
        let cfg = RecoveryConfig::default();
        let plan = CheckpointPlan::from_indices(n, &[0, 1, 2]).unwrap();
        let run = run_block_iteration_recovering(
            &p,
            BlockMode::Plan(&plan),
            64 << 30,
            &dev,
            0,
            0,
            Some(&cfg),
            Some(&faults),
        );
        assert!(run.report.ok(), "spurious failures must be absorbed");
        assert!(run
            .report
            .recovery
            .iter()
            .any(|e| e.rung == RecoveryRung::CoalesceRetry));
        // Spurious failures report true free space, so no demotion needed
        // on a huge arena.
        assert!(run
            .report
            .recovery
            .iter()
            .all(|e| e.rung == RecoveryRung::CoalesceRetry));
    }

    #[test]
    fn happy_path_is_byte_identical_to_plain_engine() {
        let p = profile(160);
        let n = p.blocks.len();
        let dev = DeviceProfile::v100();
        let plan = CheckpointPlan::from_indices(n, &[1, 3, 5, 7]).unwrap();
        let (plain, plain_trace, plain_stats) =
            run_block_iteration_traced(&p, BlockMode::Plan(&plan), 64 << 30, &dev, 3, 42);
        let cfg = RecoveryConfig::default();
        let (rec, rec_trace, rec_stats) = run_block_iteration_recovering_traced(
            &p,
            BlockMode::Plan(&plan),
            64 << 30,
            &dev,
            3,
            42,
            Some(&cfg),
            None,
        );
        assert!(plain.report.ok() && rec.report.ok());
        assert_eq!(plain_trace, rec_trace, "traces must be byte-identical");
        assert_eq!(plain_stats.allocs, rec_stats.allocs);
        assert_eq!(plain_stats.peak_used, rec_stats.peak_used);
        assert_eq!(
            plain.report.time.total_ns(),
            rec.report.time.total_ns(),
            "virtual clock must agree on the happy path"
        );
        assert!(rec.report.recovery.is_empty());
        assert_eq!(rec.report.time.recovery_ns, 0);
    }
}
