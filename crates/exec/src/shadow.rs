//! Planner/executor cross-validation ("shadow checking").
//!
//! The analytic memory model in `mimose-planner` and the engines in this
//! crate walk the same allocation timeline by construction — but nothing
//! used to *enforce* that beyond a handful of peak comparisons in tests.
//! The shadow checker closes the gap: at every block boundary it compares
//! the arena's live-byte count against the model's predicted residency
//! ([`mimose_planner::memory_model::resident_curve`]) and fails fast with a
//! precise diff when the two disagree.
//!
//! Enabled by default in debug builds (`debug_assertions`); override either
//! way with the `MIMOSE_SHADOW_CHECK` environment variable (`1`/`0`). The
//! check is skipped entirely in release builds unless opted in, so the hot
//! experiment paths pay nothing.

use mimose_models::ModelProfile;
use mimose_planner::memory_model::resident_curve;
use mimose_planner::CheckpointPlan;
use mimose_simgpu::{Arena, ARENA_ALIGN};
use std::sync::OnceLock;

/// Whether shadow checking is active for this process.
///
/// `MIMOSE_SHADOW_CHECK=1` (or any value other than `0`/`off`/`false`)
/// forces it on, `MIMOSE_SHADOW_CHECK=0` forces it off; otherwise it
/// follows `cfg!(debug_assertions)`. Cached after the first call.
pub fn shadow_check_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("MIMOSE_SHADOW_CHECK") {
        Ok(v) => {
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => cfg!(debug_assertions),
    })
}

fn align(bytes: usize) -> usize {
    ((bytes + ARENA_ALIGN - 1) & !(ARENA_ALIGN - 1)).max(ARENA_ALIGN)
}

/// Compares the block engine's arena residency against the analytic
/// [`resident_curve`] at successive block boundaries.
///
/// The model works in logical (profile) bytes while the arena rounds the
/// constant footprint and input tensor up to [`ARENA_ALIGN`]; the checker
/// shifts the curve by exactly that slack, so the comparison is *exact* —
/// per-block tensor sizes are pre-aligned in the profile.
pub struct ShadowChecker {
    curve: Vec<usize>,
    /// Aligned-base minus logical-base correction applied to every point.
    base_slack: usize,
    cursor: usize,
}

impl ShadowChecker {
    /// Build a checker for one iteration of `profile` under `plan`.
    pub fn new(profile: &ModelProfile, plan: &CheckpointPlan) -> Self {
        let logical = profile.const_bytes + profile.input_bytes;
        let aligned = align(profile.const_bytes) + align(profile.input_bytes);
        ShadowChecker {
            curve: resident_curve(profile, plan),
            base_slack: aligned - logical,
            cursor: 0,
        }
    }

    /// Assert the arena agrees with the model at the next boundary.
    ///
    /// # Panics
    /// Panics with a detailed diff when the engine's live bytes diverge
    /// from the model's prediction — that is a planner/executor drift bug,
    /// not a recoverable condition.
    pub fn check(&mut self, arena: &Arena, site: &str) {
        let expected = self.curve[self.cursor] + self.base_slack;
        let actual = arena.used_bytes();
        assert!(
            expected == actual,
            "shadow check failed at {site} (boundary {} of {}): \
             engine has {actual} B live, memory model predicts {expected} B \
             (diff {:+} B) — the planner and executor timelines have diverged",
            self.cursor,
            self.curve.len(),
            actual as i64 - expected as i64,
        );
        self.cursor += 1;
    }

    /// Swap in a new plan mid-iteration, keeping the boundary cursor.
    ///
    /// The recovery ladder's demotion rung mutates the plan while the
    /// iteration runs: a demoted-executed block has its internals evicted,
    /// which is indistinguishable *at the next boundary* from having been
    /// checkpointed from the start. Rebasing the checker onto the post-
    /// demotion plan keeps the cross-validation exact for the rest of the
    /// iteration.
    pub fn rebase(&mut self, profile: &ModelProfile, plan: &CheckpointPlan) {
        self.curve = resident_curve(profile, plan);
    }
}

/// DTR-engine residency cross-check: the slot table's notion of live bytes
/// must match the arena exactly, and logical usage must respect the budget.
///
/// # Panics
/// Panics on divergence (slot-table/arena leak) or a budget breach.
pub fn check_dtr_residency(
    arena: &Arena,
    live_slot_bytes: usize,
    const_bytes: usize,
    input_bytes: usize,
    budget: usize,
    site: &str,
) {
    let expected = align(const_bytes) + align(input_bytes) + live_slot_bytes;
    let actual = arena.used_bytes();
    assert!(
        expected == actual,
        "DTR shadow check failed at {site}: arena has {actual} B live but the \
         slot table accounts for {expected} B (diff {:+} B) — a slot free or \
         rematerialisation was not mirrored in the arena",
        actual as i64 - expected as i64,
    );
    assert!(
        actual <= budget,
        "DTR shadow check failed at {site}: {actual} B live exceeds the \
         logical budget of {budget} B",
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    #[test]
    fn checker_walks_a_consistent_timeline() {
        let p = bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(8, 64))
            .unwrap();
        let n = p.blocks.len();
        let plan = CheckpointPlan::all(n);
        let mut arena = Arena::new(64 << 30);
        let mut checker = ShadowChecker::new(&p, &plan);
        let cid = arena.alloc(p.const_bytes).unwrap();
        let iid = arena.alloc(p.input_bytes).unwrap();
        checker.check(&arena, "init");
        // Forward: checkpointed blocks retain only their output.
        let mut outs = Vec::new();
        for (i, b) in p.blocks.iter().enumerate() {
            outs.push(arena.alloc(b.out_bytes).unwrap());
            checker.check(&arena, &format!("forward block {i}"));
        }
        // Backward: recompute internals, free them + output.
        for (i, b) in p.blocks.iter().enumerate().rev() {
            let acts: Vec<_> = b
                .tensors
                .iter()
                .map(|t| arena.alloc(t.bytes).unwrap())
                .collect();
            for id in acts {
                arena.free(id);
            }
            arena.free(outs.pop().unwrap());
            checker.check(&arena, &format!("backward block {i}"));
        }
        arena.free(cid);
        arena.free(iid);
        assert_eq!(arena.used_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "shadow check failed")]
    fn checker_catches_a_leak() {
        let p = bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(8, 64))
            .unwrap();
        let plan = CheckpointPlan::none(p.blocks.len());
        let mut arena = Arena::new(64 << 30);
        let mut checker = ShadowChecker::new(&p, &plan);
        let _c = arena.alloc(p.const_bytes).unwrap();
        let _i = arena.alloc(p.input_bytes).unwrap();
        checker.check(&arena, "init");
        // A stray allocation the model knows nothing about.
        let _leak = arena.alloc(123 << 20).unwrap();
        let b = &p.blocks[0];
        for t in &b.tensors {
            let _ = arena.alloc(t.bytes).unwrap();
        }
        let _ = arena.alloc(b.out_bytes).unwrap();
        checker.check(&arena, "forward block 0");
    }

    #[test]
    fn dtr_check_accepts_consistent_state() {
        let mut arena = Arena::new(1 << 30);
        let _c = arena.alloc(1000).unwrap();
        let _i = arena.alloc(2000).unwrap();
        let _t = arena.alloc(4096).unwrap();
        check_dtr_residency(&arena, 4096, 1000, 2000, 1 << 30, "test");
    }

    #[test]
    #[should_panic(expected = "exceeds the logical budget")]
    fn dtr_check_catches_budget_breach() {
        let mut arena = Arena::new(1 << 30);
        let _c = arena.alloc(1000).unwrap();
        let _i = arena.alloc(2000).unwrap();
        let _t = arena.alloc(1 << 20).unwrap();
        check_dtr_residency(&arena, 1 << 20, 1000, 2000, 4096, "test");
    }
}
