//! Planner/executor cross-validation ("shadow checking").
//!
//! The analytic memory model in `mimose-planner` and the engines in this
//! crate walk the same allocation timeline by construction — but nothing
//! used to *enforce* that beyond a handful of peak comparisons in tests.
//! The shadow checkers close the gap, and since the engines narrate every
//! action as an [`ExecEvent`], they are plain [`Recorder`]s teed into the
//! stream: they fold `Alloc`/`Free` into a live-byte count, compare it to
//! the model's predicted residency
//! ([`mimose_planner::memory_model::resident_curve`]) at every `Boundary`
//! event, rebase on `PlanApplied` (mid-iteration demotion), and fail fast
//! with a precise diff when engine and model disagree.
//!
//! Enabled by default in debug builds (`debug_assertions`); override either
//! way with the `MIMOSE_SHADOW_CHECK` environment variable (`1`/`0`). The
//! check is skipped entirely in release builds unless opted in, so the hot
//! experiment paths pay nothing.

use mimose_models::ModelProfile;
use mimose_planner::memory_model::resident_curve;
use mimose_planner::CheckpointPlan;
use mimose_runtime::{align_up, ExecEvent, Recorder};
use std::sync::OnceLock;

/// Whether shadow checking is active for this process.
///
/// `MIMOSE_SHADOW_CHECK=1` (or any value other than `0`/`off`/`false`)
/// forces it on, `MIMOSE_SHADOW_CHECK=0` forces it off; otherwise it
/// follows `cfg!(debug_assertions)`. Cached after the first call.
pub fn shadow_check_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("MIMOSE_SHADOW_CHECK") {
        Ok(v) => {
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => cfg!(debug_assertions),
    })
}

/// The site label a boundary event checks under.
fn site_of(phase: &str, index: Option<usize>) -> String {
    match index {
        Some(i) => format!("{phase} block {i}"),
        None => phase.to_string(),
    }
}

/// Compares the block engine's live bytes against the analytic
/// [`resident_curve`] at successive block boundaries, fed purely from the
/// event stream.
///
/// The model works in logical (profile) bytes while the arena rounds the
/// constant footprint and input tensor up to the arena granule; the checker
/// shifts the curve by exactly that slack, so the comparison is *exact* —
/// per-block tensor sizes are pre-aligned in the profile.
pub struct ShadowChecker<'p> {
    profile: &'p ModelProfile,
    curve: Vec<usize>,
    /// Aligned-base minus logical-base correction applied to every point.
    base_slack: usize,
    cursor: usize,
    live_bytes: usize,
}

impl<'p> ShadowChecker<'p> {
    /// Build a checker for one iteration of `profile` under `plan`.
    #[must_use]
    pub fn new(profile: &'p ModelProfile, plan: &CheckpointPlan) -> Self {
        let logical = profile.const_bytes + profile.input_bytes;
        let aligned = align_up(profile.const_bytes) + align_up(profile.input_bytes);
        ShadowChecker {
            profile,
            curve: resident_curve(profile, plan),
            base_slack: aligned - logical,
            cursor: 0,
            live_bytes: 0,
        }
    }

    /// Assert the stream-folded live bytes agree with the model at the next
    /// boundary.
    ///
    /// # Panics
    /// Panics with a detailed diff when the engine's live bytes diverge
    /// from the model's prediction — that is a planner/executor drift bug,
    /// not a recoverable condition.
    fn check(&mut self, site: &str) {
        let expected = self.curve[self.cursor] + self.base_slack;
        let actual = self.live_bytes;
        assert!(
            expected == actual,
            "shadow check failed at {site} (boundary {} of {}): \
             engine has {actual} B live, memory model predicts {expected} B \
             (diff {:+} B) — the planner and executor timelines have diverged",
            self.cursor,
            self.curve.len(),
            actual as i64 - expected as i64,
        );
        self.cursor += 1;
    }
}

impl Recorder for ShadowChecker<'_> {
    fn record(&mut self, ev: &ExecEvent) {
        match ev {
            ExecEvent::Alloc { size, .. } => self.live_bytes += size,
            ExecEvent::Free { size, .. } => self.live_bytes -= size,
            ExecEvent::Reset => self.live_bytes = 0,
            // The recovery ladder's demotion rung mutates the plan while the
            // iteration runs: a demoted-executed block has its internals
            // evicted, which is indistinguishable *at the next boundary*
            // from having been checkpointed from the start. Rebasing onto
            // the post-demotion plan (carried by the event) keeps the
            // cross-validation exact for the rest of the iteration.
            ExecEvent::PlanApplied { plan } => {
                self.curve = resident_curve(self.profile, plan);
            }
            ExecEvent::Boundary { phase, index, .. } => {
                let site = site_of(phase, *index);
                self.check(&site);
            }
            _ => {}
        }
    }
}

/// DTR-engine residency cross-check: the slot table's notion of live bytes
/// must match the arena exactly, and logical usage must respect the budget.
///
/// `arena_live_bytes` is the stream-folded (= arena's) live count;
/// `live_slot_bytes` is the engine-side slot-table total.
///
/// # Panics
/// Panics on divergence (slot-table/arena leak) or a budget breach.
pub fn check_dtr_residency(
    arena_live_bytes: usize,
    live_slot_bytes: usize,
    const_bytes: usize,
    input_bytes: usize,
    budget: usize,
    site: &str,
) {
    let expected = align_up(const_bytes) + align_up(input_bytes) + live_slot_bytes;
    let actual = arena_live_bytes;
    assert!(
        expected == actual,
        "DTR shadow check failed at {site}: arena has {actual} B live but the \
         slot table accounts for {expected} B (diff {:+} B) — a slot free or \
         rematerialisation was not mirrored in the arena",
        actual as i64 - expected as i64,
    );
    assert!(
        actual <= budget,
        "DTR shadow check failed at {site}: {actual} B live exceeds the \
         logical budget of {budget} B",
    );
}

/// The DTR engine's shadow checker: folds the stream's `Alloc`/`Free` into
/// the arena-side live count and, at every `Boundary` that carries a
/// `live_hint` (the slot table's total), runs [`check_dtr_residency`].
pub struct DtrShadow {
    const_bytes: usize,
    input_bytes: usize,
    budget: usize,
    live_bytes: usize,
}

impl DtrShadow {
    /// Checker for one DTR iteration under `budget` logical bytes.
    #[must_use]
    pub fn new(const_bytes: usize, input_bytes: usize, budget: usize) -> Self {
        DtrShadow {
            const_bytes,
            input_bytes,
            budget,
            live_bytes: 0,
        }
    }
}

impl Recorder for DtrShadow {
    fn record(&mut self, ev: &ExecEvent) {
        match ev {
            ExecEvent::Alloc { size, .. } => self.live_bytes += size,
            ExecEvent::Free { size, .. } => self.live_bytes -= size,
            ExecEvent::Reset => self.live_bytes = 0,
            ExecEvent::Boundary {
                phase,
                index,
                live_hint: Some(slot_bytes),
            } => {
                let site = site_of(phase, *index);
                check_dtr_residency(
                    self.live_bytes,
                    *slot_bytes,
                    self.const_bytes,
                    self.input_bytes,
                    self.budget,
                    &site,
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;
    use mimose_simgpu::AllocId;

    /// Feed an alloc/free pair of events with arena-aligned sizes; the
    /// checkers only read sizes, so offsets and ids can be synthetic.
    fn ev_alloc(raw: u64, bytes: usize) -> ExecEvent {
        ExecEvent::Alloc {
            id: AllocId::from_raw(raw),
            offset: 0,
            size: align_up(bytes),
            requested: bytes,
            phase: "forward",
        }
    }

    fn ev_free(raw: u64, bytes: usize) -> ExecEvent {
        ExecEvent::Free {
            id: AllocId::from_raw(raw),
            offset: 0,
            size: align_up(bytes),
        }
    }

    fn boundary(phase: &'static str, index: Option<usize>) -> ExecEvent {
        ExecEvent::Boundary {
            phase,
            index,
            live_hint: None,
        }
    }

    #[test]
    fn checker_walks_a_consistent_timeline() {
        let p = bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(8, 64))
            .unwrap();
        let n = p.blocks.len();
        let plan = CheckpointPlan::all(n);
        let mut checker = ShadowChecker::new(&p, &plan);
        let mut next_id = 0u64;
        let mut id = |bytes: usize| {
            next_id += 1;
            (next_id, bytes)
        };
        let (cid, cbytes) = id(p.const_bytes);
        let (iid, ibytes) = id(p.input_bytes);
        checker.record(&ev_alloc(cid, cbytes));
        checker.record(&ev_alloc(iid, ibytes));
        checker.record(&boundary("init", None));
        // Forward: checkpointed blocks retain only their output.
        let mut outs = Vec::new();
        for (i, b) in p.blocks.iter().enumerate() {
            let (oid, obytes) = id(b.out_bytes);
            outs.push((oid, obytes));
            checker.record(&ev_alloc(oid, obytes));
            checker.record(&boundary("forward", Some(i)));
        }
        // Backward: recompute internals, free them + output.
        for (i, b) in p.blocks.iter().enumerate().rev() {
            let acts: Vec<_> = b.tensors.iter().map(|t| id(t.bytes)).collect();
            for &(aid, abytes) in &acts {
                checker.record(&ev_alloc(aid, abytes));
            }
            for (aid, abytes) in acts {
                checker.record(&ev_free(aid, abytes));
            }
            let (oid, obytes) = outs.pop().unwrap();
            checker.record(&ev_free(oid, obytes));
            checker.record(&boundary("backward", Some(i)));
        }
        checker.record(&ev_free(cid, cbytes));
        checker.record(&ev_free(iid, ibytes));
        assert_eq!(checker.live_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "shadow check failed")]
    fn checker_catches_a_leak() {
        let p = bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(8, 64))
            .unwrap();
        let plan = CheckpointPlan::none(p.blocks.len());
        let mut checker = ShadowChecker::new(&p, &plan);
        checker.record(&ev_alloc(1, p.const_bytes));
        checker.record(&ev_alloc(2, p.input_bytes));
        checker.record(&boundary("init", None));
        // A stray allocation the model knows nothing about.
        checker.record(&ev_alloc(3, 123 << 20));
        let b = &p.blocks[0];
        for (k, t) in b.tensors.iter().enumerate() {
            checker.record(&ev_alloc(10 + k as u64, t.bytes));
        }
        checker.record(&ev_alloc(99, b.out_bytes));
        checker.record(&boundary("forward", Some(0)));
    }

    #[test]
    fn dtr_check_accepts_consistent_state() {
        // 1000 and 2000 round up to one and two granules; the 4096 B slot is
        // already aligned.
        let live = align_up(1000) + align_up(2000) + 4096;
        check_dtr_residency(live, 4096, 1000, 2000, 1 << 30, "test");
    }

    #[test]
    #[should_panic(expected = "exceeds the logical budget")]
    fn dtr_check_catches_budget_breach() {
        let live = align_up(1000) + align_up(2000) + (1 << 20);
        check_dtr_residency(live, 1 << 20, 1000, 2000, 4096, "test");
    }

    #[test]
    #[should_panic(expected = "slot free or")]
    fn dtr_shadow_recorder_catches_slot_table_drift() {
        let mut shadow = DtrShadow::new(1000, 2000, 1 << 30);
        shadow.record(&ev_alloc(1, 1000));
        shadow.record(&ev_alloc(2, 2000));
        shadow.record(&ev_alloc(3, 4096));
        // Slot table claims 8192 B live but the stream only carried 4096.
        shadow.record(&ExecEvent::Boundary {
            phase: "end-of-forward",
            index: None,
            live_hint: Some(8192),
        });
    }
}
