//! Tensor-granularity iteration engine with DTR-style reactive eviction.
//!
//! This module only walks the iteration timeline over the shared
//! [`EngineCore`]; everything that makes it *DTR* — the slot table, the
//! h-DTR victim search, the uniformly charged per-tensor metadata
//! maintenance (~26 % of iteration time on average, Fig 5) — lives in
//! [`crate::eviction::DtrEvictionPolicy`]. Scattered frees fragment the
//! arena, so the address-space extent (what the device actually reserves)
//! exceeds the nominal budget — Fig 5's "actually 6.7/7/7.5/8 GB used".

use crate::eviction::DtrEvictionPolicy;
use crate::shadow::DtrShadow;
use mimose_models::ModelProfile;
use mimose_runtime::{
    policy_alloc, AllocSite, EngineCore, ExecEvent, IterationReport, NullRecorder, OomReport,
    Recorder, ReportMeta, RingRecorder, Tee,
};
use mimose_simgpu::{AllocPolicy, ArenaStats, DeviceProfile};

/// Run one DTR iteration with the default first-fit allocator.
#[must_use]
pub fn run_dtr_iteration(
    profile: &ModelProfile,
    budget: usize,
    device_capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
) -> IterationReport {
    run_dtr_iteration_with_policy(
        profile,
        budget,
        device_capacity,
        dev,
        iter,
        AllocPolicy::FirstFit,
    )
}

/// Run one DTR iteration under an explicit allocator fit policy (the
/// `ablation_allocator` experiment compares fragmentation across policies).
#[must_use]
pub fn run_dtr_iteration_with_policy(
    profile: &ModelProfile,
    budget: usize,
    device_capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    alloc_policy: AllocPolicy,
) -> IterationReport {
    let mut rec = NullRecorder;
    run_dtr_impl(
        profile,
        budget,
        device_capacity,
        dev,
        iter,
        alloc_policy,
        &mut rec,
    )
    .0
}

/// Like [`run_dtr_iteration`], but recording the full [`ExecEvent`] stream:
/// additionally returns the stream and the arena's final statistics, ready
/// for `mimose_audit::audit_exec_events`.
#[must_use]
pub fn run_dtr_iteration_recorded(
    profile: &ModelProfile,
    budget: usize,
    device_capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
) -> (IterationReport, Vec<ExecEvent>, ArenaStats) {
    // DTR's eviction/recompute churn emits far more events per block than
    // the timeline engine, so size the ring with DTR-scale headroom (the
    // byte-identity suite would catch any eviction-induced truncation).
    let mut ring =
        RingRecorder::new(64 * 1024 + profile.blocks.len().saturating_mul(8 * 1024)).growable();
    let (report, stats) = run_dtr_impl(
        profile,
        budget,
        device_capacity,
        dev,
        iter,
        AllocPolicy::FirstFit,
        &mut ring,
    );
    debug_assert_eq!(ring.dropped_events(), 0);
    (report, ring.take_decoded(), stats)
}

fn run_dtr_impl(
    profile: &ModelProfile,
    budget: usize,
    device_capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    alloc_policy: AllocPolicy,
    rec: &mut dyn Recorder,
) -> (IterationReport, ArenaStats) {
    // Shadow checking (debug builds / MIMOSE_SHADOW_CHECK=1): a recorder
    // teed into the stream that cross-validates the arena-side live count
    // against the slot table at every boundary carrying a `live_hint`.
    let mut shadow = crate::shadow::shadow_check_enabled()
        .then(|| DtrShadow::new(profile.const_bytes, profile.input_bytes, budget));
    let mut tee;
    let rec: &mut dyn Recorder = match shadow.as_mut() {
        Some(s) => {
            tee = Tee(s, rec);
            &mut tee
        }
        None => rec,
    };

    let mut core = EngineCore::with_policy(device_capacity, alloc_policy, dev, rec);
    let mut pol = DtrEvictionPolicy::new(budget);

    let close = |core: EngineCore<'_>,
                 pol: &DtrEvictionPolicy,
                 oom: Option<OomReport>|
     -> (IterationReport, ArenaStats) {
        let (report, arena) = core.finish(ReportMeta {
            iter,
            input: profile.input,
            input_size: profile.input_size,
            dropped_units: pol.evictions,
            shuttle: false,
            oom,
            recovery: Vec::new(), // reactive eviction is DTR's own recovery
        });
        let stats = arena.stats();
        (report, stats)
    };
    macro_rules! bail {
        ($e:expr, $phase:expr) => {{
            let oom = $e.to_report(&core.arena, $phase);
            return close(core, &pol, Some(oom));
        }};
    }

    // Constant footprint (weights/grads/optimizer) — pinned, non-evictable.
    if profile.const_bytes + profile.input_bytes > budget {
        let oom = OomReport::from_arena(&core.arena, profile.const_bytes, "const");
        return close(core, &pol, Some(oom));
    }
    for (bytes, phase) in [
        (profile.const_bytes, "const"),
        (profile.input_bytes, "input"),
    ] {
        if let Err(e) = core.try_alloc(bytes, phase) {
            let oom = OomReport::from_error(&e, phase);
            return close(core, &pol, Some(oom));
        }
    }

    let n = profile.blocks.len();
    // Per block: its internal tensor slots, then its output slot.
    let mut block_slots: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut block_out: Vec<usize> = Vec::with_capacity(n);

    // -- forward --
    let fwd_site = AllocSite::setup("forward");
    for b in &profile.blocks {
        let fwd_ns = dev.exec_ns(b.fwd_flops, b.fwd_bytes_moved) as u64;
        core.charge_compute(fwd_ns);
        let mut ids = Vec::with_capacity(b.tensors.len());
        let per_tensor_ns = fwd_ns as f64 / (b.tensors.len() + 1) as f64;
        for t in &b.tensors {
            let compute_ns = dev
                .exec_ns(t.fwd_flops, t.bytes * 2)
                .max(per_tensor_ns * 0.5);
            let si = pol.new_slot(&mut core, t.bytes, compute_ns);
            if let Err(e) = pol.fill(&mut core, si, &fwd_site) {
                bail!(e, "forward");
            }
            ids.push(si);
        }
        let out_si = pol.new_slot(&mut core, b.out_bytes, fwd_ns as f64);
        if let Err(e) = pol.fill(&mut core, out_si, &fwd_site) {
            bail!(e, "forward");
        }
        // Unpin the previous block; this output stays pinned until consumed.
        for &si in block_slots.last().unwrap_or(&Vec::new()) {
            pol.slots[si].pinned = false;
        }
        if let Some(&prev_out) = block_out.last() {
            pol.slots[prev_out].pinned = false;
        }
        block_slots.push(ids);
        block_out.push(out_si);
    }
    if let Some(ids) = block_slots.last() {
        for &si in ids {
            pol.slots[si].pinned = false;
        }
    }
    if let Some(&o) = block_out.last() {
        pol.slots[o].pinned = false;
    }
    core.emit(&ExecEvent::Boundary {
        phase: "end-of-forward",
        index: None,
        live_hint: Some(pol.live_slot_bytes()),
    });

    // -- backward --
    for (i, b) in profile.blocks.iter().enumerate().rev() {
        // Pin and materialise everything the block's backward needs.
        let needed: Vec<usize> = block_slots[i]
            .iter()
            .copied()
            .chain(std::iter::once(block_out[i]))
            .collect();
        for &si in &needed {
            pol.slots[si].pinned = true;
        }
        let remat_site = AllocSite::setup("rematerialize");
        for &si in &needed {
            if let Err(e) = pol.materialize(&mut core, si, &remat_site) {
                bail!(e, "rematerialize");
            }
        }
        let bwd_site = AllocSite::setup("backward");
        let mut grads = [None, None];
        for (g, bytes) in grads.iter_mut().zip([b.out_bytes, b.in_bytes]) {
            match policy_alloc(&mut core, &mut pol, bytes, &bwd_site) {
                Ok(id) => *g = Some(id),
                Err(e) => bail!(e, "backward"),
            }
        }
        core.charge_compute(dev.exec_ns(b.bwd_flops, 2 * b.fwd_bytes_moved) as u64);
        for id in grads.into_iter().flatten() {
            core.free(id);
        }
        // Consumed: free (scattered frees fragment DTR's address space).
        for &si in &needed {
            if let Some(id) = pol.slots[si].alloc.take() {
                core.free(id);
            }
            pol.slots[si].dead = true;
            pol.slots[si].pinned = false;
        }
        core.emit(&ExecEvent::Boundary {
            phase: "backward",
            index: Some(i),
            live_hint: Some(pol.live_slot_bytes()),
        });
    }

    // Optimizer step.
    let p = profile.param_count as f64;
    core.charge_compute(dev.exec_ns(4.0 * p, profile.param_count * 16) as u64);

    close(core, &pol, None)
}
