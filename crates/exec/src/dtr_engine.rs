//! Tensor-granularity iteration engine with DTR-style reactive eviction.
//!
//! The engine keeps every saved tensor as an individually allocated slot.
//! When an allocation would push logical usage over the budget, it evicts
//! the live tensor with the smallest h-DTR score and retries — paying the
//! eviction-search cost (∝ number of candidates) and, in the backward pass,
//! the rematerialisation cost of anything it threw away. Per-operator
//! metadata maintenance is charged on every tensor event; the paper measures
//! this at ~26 % of iteration time on average, up to 40 % under tight
//! budgets (Fig 5). Scattered frees fragment the arena, so the address-space
//! extent (what the device actually reserves) exceeds the nominal budget —
//! Fig 5's "actually 6.7/7/7.5/8 GB used".

use crate::report::{IterationReport, OomReport, TimeBreakdown};
use mimose_models::ModelProfile;
use mimose_planner::h_dtr;
use mimose_simgpu::{AllocId, AllocPolicy, Arena, DeviceProfile};

struct Slot {
    alloc: Option<AllocId>,
    bytes: usize,
    compute_ns: f64,
    last_access: u64,
    pinned: bool,
    /// Dead slots are finished with (backward consumed them).
    dead: bool,
}

struct DtrSim<'a> {
    arena: Arena,
    dev: &'a DeviceProfile,
    budget: usize,
    slots: Vec<Slot>,
    time: TimeBreakdown,
    now_ns: u64,
    evictions: usize,
}

enum DtrFail {
    NoVictim { requested: usize },
}

impl<'a> DtrSim<'a> {
    fn advance(&mut self, ns: u64) {
        self.now_ns += ns;
    }

    fn charge_meta(&mut self) {
        let ns = self.dev.dtr_meta_ns_per_tensor as u64;
        self.time.bookkeeping_ns += ns;
        self.advance(ns);
    }

    /// Evict the single live, unpinned tensor with the smallest h-DTR score,
    /// charging the linear search over all candidates.
    fn evict_one(&mut self, requested: usize) -> Result<(), DtrFail> {
        let mut victim: Option<(usize, f64)> = None;
        let mut candidates = 0usize;
        for (i, s) in self.slots.iter().enumerate() {
            if s.alloc.is_none() || s.pinned || s.dead {
                continue;
            }
            candidates += 1;
            let h = h_dtr(
                s.compute_ns,
                s.bytes,
                self.now_ns.saturating_sub(s.last_access),
            );
            if victim.is_none_or(|(_, best)| h < best) {
                victim = Some((i, h));
            }
        }
        let search_ns = (candidates as f64 * self.dev.dtr_search_ns_per_tensor) as u64;
        self.time.planning_ns += search_ns;
        self.advance(search_ns);
        match victim {
            Some((i, _)) => {
                let id = self.slots[i].alloc.take().expect("victim is live");
                self.arena.free(id);
                self.evictions += 1;
                Ok(())
            }
            None => Err(DtrFail::NoVictim { requested }),
        }
    }

    /// Evict until `need` more bytes fit under the logical budget.
    fn make_room(&mut self, need: usize) -> Result<(), DtrFail> {
        while self.arena.used_bytes() + need > self.budget {
            self.evict_one(need)?;
        }
        Ok(())
    }

    /// Allocate `bytes` under the budget, evicting as needed.
    fn budgeted_alloc(&mut self, bytes: usize) -> Result<AllocId, DtrFail> {
        self.make_room(bytes)?;
        loop {
            match self.arena.alloc(bytes) {
                Ok(id) => return Ok(id),
                // Device-level fragmentation: evict one more and retry.
                Err(_) => self.evict_one(bytes)?,
            }
        }
    }

    /// Ensure slot `i` is resident, rematerialising if evicted.
    fn materialize(&mut self, i: usize) -> Result<(), DtrFail> {
        if self.slots[i].alloc.is_some() {
            self.slots[i].last_access = self.now_ns;
            return Ok(());
        }
        let bytes = self.slots[i].bytes;
        let cost = self.slots[i].compute_ns as u64;
        self.time.recompute_ns += cost;
        self.advance(cost);
        let id = self.budgeted_alloc(bytes)?;
        let s = &mut self.slots[i];
        s.alloc = Some(id);
        s.last_access = self.now_ns;
        Ok(())
    }
}

/// Run one DTR iteration with the default first-fit allocator.
pub fn run_dtr_iteration(
    profile: &ModelProfile,
    budget: usize,
    device_capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
) -> IterationReport {
    run_dtr_iteration_with_policy(
        profile,
        budget,
        device_capacity,
        dev,
        iter,
        AllocPolicy::FirstFit,
    )
}

/// Run one DTR iteration under an explicit allocator fit policy (the
/// `ablation_allocator` experiment compares fragmentation across policies).
pub fn run_dtr_iteration_with_policy(
    profile: &ModelProfile,
    budget: usize,
    device_capacity: usize,
    dev: &DeviceProfile,
    iter: usize,
    alloc_policy: AllocPolicy,
) -> IterationReport {
    let mut sim = DtrSim {
        arena: Arena::with_policy(device_capacity, alloc_policy),
        dev,
        budget,
        slots: Vec::new(),
        time: TimeBreakdown::default(),
        now_ns: 0,
        evictions: 0,
    };

    let fail_report = |sim: &DtrSim, requested: usize, phase: &'static str| {
        let stats = sim.arena.stats();
        IterationReport {
            iter,
            input: profile.input,
            input_size: profile.input_size,
            time: sim.time,
            peak_bytes: stats.peak_used,
            peak_extent: stats.peak_extent.max(stats.peak_footprint),
            frag_bytes: stats.peak_frag,
            dropped_units: sim.evictions,
            shuttle: false,
            oom: Some(OomReport::from_arena(&sim.arena, requested, phase)),
            recovery: Vec::new(),
        }
    };

    // Constant footprint (weights/grads/optimizer) — pinned, non-evictable.
    if profile.const_bytes + profile.input_bytes > budget {
        return fail_report(&sim, profile.const_bytes, "const");
    }
    let _const_id = sim
        .arena
        .alloc(profile.const_bytes)
        .expect("device smaller than const bytes");
    let _input_id = sim
        .arena
        .alloc(profile.input_bytes)
        .expect("device smaller than input");

    let n = profile.blocks.len();
    // Slot layout: per block, its internal tensors then its output.
    let mut block_slots: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut block_out: Vec<usize> = Vec::with_capacity(n);

    // ---------------- forward ----------------
    for b in &profile.blocks {
        let fwd_ns = dev.exec_ns(b.fwd_flops, b.fwd_bytes_moved) as u64;
        sim.time.compute_ns += fwd_ns;
        sim.advance(fwd_ns);
        let mut ids = Vec::with_capacity(b.tensors.len());
        let per_tensor_ns = fwd_ns as f64 / (b.tensors.len() + 1) as f64;
        for t in &b.tensors {
            sim.charge_meta();
            let slot_idx = sim.slots.len();
            sim.slots.push(Slot {
                alloc: None,
                bytes: t.bytes,
                compute_ns: dev
                    .exec_ns(t.fwd_flops, t.bytes * 2)
                    .max(per_tensor_ns * 0.5),
                last_access: sim.now_ns,
                pinned: true, // pinned while its block executes
                dead: false,
            });
            match sim.budgeted_alloc(t.bytes) {
                Ok(id) => sim.slots[slot_idx].alloc = Some(id),
                Err(DtrFail::NoVictim { requested }) => {
                    return fail_report(&sim, requested, "forward")
                }
            }
            ids.push(slot_idx);
        }
        // Output tensor slot.
        sim.charge_meta();
        let out_idx = sim.slots.len();
        sim.slots.push(Slot {
            alloc: None,
            bytes: b.out_bytes,
            compute_ns: dev.exec_ns(b.fwd_flops, b.fwd_bytes_moved),
            last_access: sim.now_ns,
            pinned: true,
            dead: false,
        });
        match sim.budgeted_alloc(b.out_bytes) {
            Ok(id) => sim.slots[out_idx].alloc = Some(id),
            Err(DtrFail::NoVictim { requested }) => return fail_report(&sim, requested, "forward"),
        }
        // Unpin the previous block's tensors; keep this block's output
        // pinned until the next block consumed it.
        for &si in block_slots.last().unwrap_or(&Vec::new()) {
            sim.slots[si].pinned = false;
        }
        if let Some(&prev_out) = block_out.last() {
            sim.slots[prev_out].pinned = false;
        }
        block_slots.push(ids);
        block_out.push(out_idx);
    }
    if let Some(ids) = block_slots.last() {
        for &si in ids {
            sim.slots[si].pinned = false;
        }
    }
    if let Some(&o) = block_out.last() {
        sim.slots[o].pinned = false;
    }

    // Shadow checking (debug builds / MIMOSE_SHADOW_CHECK=1): the slot
    // table and the arena must account for exactly the same live bytes, and
    // logical usage must stay under the budget at every block boundary.
    let residency_check = |sim: &DtrSim, site: &str| {
        if !crate::shadow::shadow_check_enabled() {
            return;
        }
        let live_bytes: usize = sim
            .slots
            .iter()
            .filter(|s| s.alloc.is_some())
            .map(|s| s.bytes)
            .sum();
        crate::shadow::check_dtr_residency(
            &sim.arena,
            live_bytes,
            profile.const_bytes,
            profile.input_bytes,
            budget,
            site,
        );
    };
    residency_check(&sim, "end of forward");

    // ---------------- backward ----------------
    for (i, b) in profile.blocks.iter().enumerate().rev() {
        // Pin and materialise everything the block's backward needs.
        let needed: Vec<usize> = block_slots[i]
            .iter()
            .copied()
            .chain(std::iter::once(block_out[i]))
            .collect();
        for &si in &needed {
            sim.slots[si].pinned = true;
        }
        for &si in &needed {
            sim.charge_meta();
            if let Err(DtrFail::NoVictim { requested }) = sim.materialize(si) {
                return fail_report(&sim, requested, "rematerialize");
            }
        }
        // Gradient transients.
        let gout = match sim.budgeted_alloc(b.out_bytes) {
            Ok(id) => id,
            Err(DtrFail::NoVictim { requested }) => {
                return fail_report(&sim, requested, "backward")
            }
        };
        let gin = match sim.budgeted_alloc(b.in_bytes) {
            Ok(id) => id,
            Err(DtrFail::NoVictim { requested }) => {
                return fail_report(&sim, requested, "backward")
            }
        };
        let bwd_ns = dev.exec_ns(b.bwd_flops, 2 * b.fwd_bytes_moved) as u64;
        sim.time.compute_ns += bwd_ns;
        sim.advance(bwd_ns);
        sim.arena.free(gout);
        sim.arena.free(gin);
        // The block's tensors are consumed: free them (scattered frees are
        // what fragments DTR's address space).
        for &si in &needed {
            if let Some(id) = sim.slots[si].alloc.take() {
                sim.arena.free(id);
            }
            sim.slots[si].dead = true;
            sim.slots[si].pinned = false;
        }
        residency_check(&sim, &format!("backward block {i}"));
    }

    // Optimizer step.
    let p = profile.param_count as f64;
    let opt_ns = dev.exec_ns(4.0 * p, profile.param_count * 16) as u64;
    sim.time.compute_ns += opt_ns;

    let stats = sim.arena.stats();
    let mut time = sim.time;
    time.allocator_ns += ((stats.allocs + stats.frees) as f64 * dev.alloc_ns) as u64;
    IterationReport {
        iter,
        input: profile.input,
        input_size: profile.input_size,
        time,
        peak_bytes: stats.peak_used,
        peak_extent: stats.peak_extent.max(stats.peak_footprint),
        frag_bytes: stats.peak_frag,
        dropped_units: sim.evictions,
        shuttle: false,
        oom: None,
        // DTR's reactive eviction is its own recovery mechanism; the block
        // ladder does not apply here.
        recovery: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{roberta_base, BertHead};
    use mimose_models::ModelInput;

    fn profile(seq: usize) -> ModelProfile {
        roberta_base(BertHead::Classification { labels: 1 })
            .profile(&ModelInput::tokens(64, seq))
            .unwrap()
    }

    #[test]
    fn loose_budget_needs_no_evictions() {
        let p = profile(100);
        let dev = DeviceProfile::v100();
        let r = run_dtr_iteration(&p, 14 << 30, 16 << 30, &dev, 0);
        assert!(r.ok());
        assert_eq!(r.dropped_units, 0);
        assert_eq!(r.time.recompute_ns, 0);
    }

    #[test]
    fn tight_budget_evicts_and_recomputes() {
        let p = profile(128);
        let dev = DeviceProfile::v100();
        let loose = run_dtr_iteration(&p, 14 << 30, 16 << 30, &dev, 0);
        let tight = run_dtr_iteration(&p, 5 << 30, 16 << 30, &dev, 0);
        assert!(tight.ok(), "tight run OOMed: {:?}", tight.oom);
        assert!(tight.dropped_units > 0);
        assert!(tight.time.recompute_ns > 0);
        assert!(tight.time.total_ns() > loose.time.total_ns());
        // Logical usage respects the budget.
        assert!(tight.peak_bytes <= 5 << 30);
    }

    #[test]
    fn bookkeeping_overhead_exists_even_without_evictions() {
        // §III-B: "such overhead exists even without any activation tensor
        // dropped".
        let p = profile(80);
        let dev = DeviceProfile::v100();
        let r = run_dtr_iteration(&p, 14 << 30, 16 << 30, &dev, 0);
        assert!(r.time.bookkeeping_ns > 0);
        let frac = r.time.bookkeeping_ns as f64 / r.time.total_ns() as f64;
        assert!(frac > 0.05, "bookkeeping fraction too small: {frac}");
    }

    #[test]
    fn infeasible_budget_reports_oom() {
        let p = profile(128);
        let dev = DeviceProfile::v100();
        let r = run_dtr_iteration(&p, 1 << 30, 16 << 30, &dev, 0);
        assert!(!r.ok());
    }
}
