//! Builder facades over the engine entry points, for callers that drive a
//! *single* iteration with explicit knobs (experiments sweeping capacities,
//! fixtures, benches) rather than a whole run: [`BlockIteration`] for the
//! block engine and [`DtrIteration`] for the tensor engine.
//!
//! The old free functions (`run_block_iteration*`, `run_dtr_iteration*`)
//! remain as `#[doc(hidden)]` wrappers; these builders call the same
//! implementations, so results are byte-identical.

use crate::block_engine::{run_block_iteration, run_block_iteration_recorded, BlockMode, BlockRun};
use crate::dtr_engine::{run_dtr_iteration_recorded, run_dtr_iteration_with_policy};
use crate::recovery::{
    run_block_iteration_recovering, run_block_iteration_recovering_recorded, RecoveryConfig,
};
use mimose_chaos::IterationFaults;
use mimose_models::ModelProfile;
use mimose_planner::{CheckpointPlan, HybridPlan};
use mimose_runtime::{ExecEvent, IterationReport, Recorder};
use mimose_simgpu::{AllocPolicy, ArenaStats, DeviceProfile, TraceEvent};

/// One block-engine iteration, configured fluently. Construct with
/// [`BlockIteration::plan`] / [`fine`](BlockIteration::fine) /
/// [`hybrid`](BlockIteration::hybrid) / [`shuttle`](BlockIteration::shuttle),
/// then run with [`run`](BlockIteration::run),
/// [`run_recorded`](BlockIteration::run_recorded) or
/// [`run_traced`](BlockIteration::run_traced).
pub struct BlockIteration<'a> {
    profile: &'a ModelProfile,
    mode: BlockMode<'a>,
    capacity: usize,
    device: DeviceProfile,
    iter: usize,
    planning_ns: u64,
    recovery: Option<&'a RecoveryConfig>,
    faults: Option<&'a IterationFaults>,
}

impl<'a> BlockIteration<'a> {
    fn new(profile: &'a ModelProfile, mode: BlockMode<'a>) -> Self {
        let device = DeviceProfile::v100();
        BlockIteration {
            profile,
            mode,
            capacity: device.total_mem_bytes,
            device,
            iter: 0,
            planning_ns: 0,
            recovery: None,
            faults: None,
        }
    }

    /// Run under a block checkpoint plan.
    #[must_use]
    pub fn plan(profile: &'a ModelProfile, plan: &'a CheckpointPlan) -> Self {
        Self::new(profile, BlockMode::Plan(plan))
    }

    /// Run under an already-chosen [`BlockMode`] (for callers that pick
    /// the mode at runtime, e.g. from a policy directive).
    #[must_use]
    pub fn with_mode(profile: &'a ModelProfile, mode: BlockMode<'a>) -> Self {
        Self::new(profile, mode)
    }

    /// Run under a tensor-granular plan (MONeT).
    #[must_use]
    pub fn fine(
        profile: &'a ModelProfile,
        plan: &'a mimose_planner::memory_model::FinePlan,
    ) -> Self {
        Self::new(profile, BlockMode::Fine(plan))
    }

    /// Run under a hybrid swap/recompute plan (Capuchin).
    #[must_use]
    pub fn hybrid(profile: &'a ModelProfile, plan: &'a HybridPlan) -> Self {
        Self::new(profile, BlockMode::Hybrid(plan))
    }

    /// Run Mimose's shuttle-collection iteration.
    #[must_use]
    pub fn shuttle(profile: &'a ModelProfile) -> Self {
        Self::new(profile, BlockMode::Shuttle)
    }

    /// Arena capacity in bytes (default: the device's whole memory).
    #[must_use]
    pub fn capacity(mut self, bytes: usize) -> Self {
        self.capacity = bytes;
        self
    }

    /// Device cost profile (default: V100). Does *not* reset a capacity
    /// set explicitly; set capacity after the device to override.
    #[must_use]
    pub fn device(mut self, dev: &DeviceProfile) -> Self {
        self.device = dev.clone();
        self
    }

    /// Iteration number stamped on the report (default 0).
    #[must_use]
    pub fn iter(mut self, iter: usize) -> Self {
        self.iter = iter;
        self
    }

    /// Policy planning time to charge to the virtual clock (default 0).
    #[must_use]
    pub fn planning_ns(mut self, ns: u64) -> Self {
        self.planning_ns = ns;
        self
    }

    /// Enable the OOM-recovery ladder.
    #[must_use]
    pub fn recovery(mut self, cfg: &'a RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// Inject this iteration's faults.
    #[must_use]
    pub fn faults(mut self, faults: &'a IterationFaults) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Execute.
    #[must_use]
    pub fn run(self) -> BlockRun {
        if self.recovery.is_none() && self.faults.is_none() {
            return run_block_iteration(
                self.profile,
                self.mode,
                self.capacity,
                &self.device,
                self.iter,
                self.planning_ns,
            );
        }
        run_block_iteration_recovering(
            self.profile,
            self.mode,
            self.capacity,
            &self.device,
            self.iter,
            self.planning_ns,
            self.recovery,
            self.faults,
        )
    }

    /// Execute, emitting the event stream into a caller-supplied
    /// [`Recorder`] — the zero-churn seam: a caller that holds a
    /// [`RingRecorder`](mimose_runtime::RingRecorder) across iterations
    /// records every iteration without a single per-iteration allocation.
    ///
    /// Single-attempt only: the restart rungs of the recovery ladder need
    /// attempt-scoped streams, so a configured `recovery` ladder here
    /// drives its inline rungs but not restarts (exactly the semantics of
    /// one engine attempt). Use [`run_recorded`](Self::run_recorded) for
    /// ladder-driven recording.
    #[must_use]
    pub fn run_into(self, rec: &mut dyn Recorder) -> BlockRun {
        crate::block_engine::run_block_iteration_impl(
            self.profile,
            self.mode,
            self.capacity,
            &self.device,
            self.iter,
            self.planning_ns,
            &crate::block_engine::EngineOpts {
                attempt: 0,
                shrink: 1.0,
                recovery: self.recovery,
                faults: self.faults,
            },
            rec,
        )
        .0
    }

    /// Execute, recording the full [`ExecEvent`] stream (final attempt
    /// only when the recovery ladder restarted).
    #[must_use]
    pub fn run_recorded(self) -> (BlockRun, Vec<ExecEvent>, ArenaStats) {
        if self.recovery.is_none() && self.faults.is_none() {
            return run_block_iteration_recorded(
                self.profile,
                self.mode,
                self.capacity,
                &self.device,
                self.iter,
                self.planning_ns,
            );
        }
        run_block_iteration_recovering_recorded(
            self.profile,
            self.mode,
            self.capacity,
            &self.device,
            self.iter,
            self.planning_ns,
            self.recovery,
            self.faults,
        )
    }

    /// Execute, projecting the recorded stream down to allocator-level
    /// [`TraceEvent`]s.
    pub fn run_traced(self) -> (BlockRun, Vec<TraceEvent>, ArenaStats) {
        let (run, events, stats) = self.run_recorded();
        let trace = events
            .iter()
            .filter_map(ExecEvent::to_trace_event)
            .collect();
        (run, trace, stats)
    }
}

/// One tensor-engine (DTR) iteration, configured fluently.
pub struct DtrIteration<'a> {
    profile: &'a ModelProfile,
    budget: usize,
    device_capacity: usize,
    device: DeviceProfile,
    iter: usize,
    alloc_policy: AllocPolicy,
}

impl<'a> DtrIteration<'a> {
    /// DTR over `profile` with the given eviction budget, on the default
    /// V100 (arena = whole device).
    #[must_use]
    pub fn new(profile: &'a ModelProfile, budget: usize) -> Self {
        let device = DeviceProfile::v100();
        DtrIteration {
            profile,
            budget,
            device_capacity: device.total_mem_bytes,
            device,
            iter: 0,
            alloc_policy: AllocPolicy::FirstFit,
        }
    }

    /// Physical arena capacity (default: the device's whole memory).
    #[must_use]
    pub fn capacity(mut self, bytes: usize) -> Self {
        self.device_capacity = bytes;
        self
    }

    /// Device cost profile (default: V100). Does *not* reset a capacity
    /// set explicitly; set capacity after the device to override.
    #[must_use]
    pub fn device(mut self, dev: &DeviceProfile) -> Self {
        self.device = dev.clone();
        self
    }

    /// Iteration number stamped on the report (default 0).
    #[must_use]
    pub fn iter(mut self, iter: usize) -> Self {
        self.iter = iter;
        self
    }

    /// Allocator fit policy (default first-fit; the allocator ablation
    /// sweeps this).
    #[must_use]
    pub fn alloc_policy(mut self, policy: AllocPolicy) -> Self {
        self.alloc_policy = policy;
        self
    }

    /// Execute.
    #[must_use]
    pub fn run(self) -> IterationReport {
        run_dtr_iteration_with_policy(
            self.profile,
            self.budget,
            self.device_capacity,
            &self.device,
            self.iter,
            self.alloc_policy,
        )
    }

    /// Execute, recording the full [`ExecEvent`] stream. (First-fit only:
    /// the recorded entry point does not take an allocator policy.)
    #[must_use]
    pub fn run_recorded(self) -> (IterationReport, Vec<ExecEvent>, ArenaStats) {
        run_dtr_iteration_recorded(
            self.profile,
            self.budget,
            self.device_capacity,
            &self.device,
            self.iter,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_engine::run_block_iteration_traced;
    use crate::dtr_engine::run_dtr_iteration;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    fn profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn block_builder_matches_free_function() {
        let p = profile(128);
        let n = p.blocks.len();
        let plan = CheckpointPlan::from_indices(n, &[0, 2, 4]).unwrap();
        let dev = DeviceProfile::v100();
        let (legacy, legacy_trace, legacy_stats) =
            run_block_iteration_traced(&p, BlockMode::Plan(&plan), 8 << 30, &dev, 2, 10);
        let (built, built_trace, built_stats) = BlockIteration::plan(&p, &plan)
            .capacity(8 << 30)
            .iter(2)
            .planning_ns(10)
            .run_traced();
        assert_eq!(legacy_trace, built_trace);
        assert_eq!(legacy_stats.peak_used, built_stats.peak_used);
        assert_eq!(
            format!("{:?}", legacy.report),
            format!("{:?}", built.report)
        );
    }

    #[test]
    fn dtr_builder_matches_free_function() {
        let p = profile(96);
        let dev = DeviceProfile::v100();
        let legacy = run_dtr_iteration(&p, 4 << 30, dev.total_mem_bytes, &dev, 1);
        let built = DtrIteration::new(&p, 4 << 30).iter(1).run();
        assert_eq!(format!("{legacy:?}"), format!("{built:?}"));
    }

    #[test]
    fn run_into_a_ring_matches_the_recorded_stream() {
        let p = profile(128);
        let n = p.blocks.len();
        let plan = CheckpointPlan::from_indices(n, &[0, 2, 4]).unwrap();
        let (_, events, _) = BlockIteration::plan(&p, &plan)
            .capacity(8 << 30)
            .run_recorded();
        let mut ring = mimose_runtime::RingRecorder::for_blocks(n);
        let run = BlockIteration::plan(&p, &plan)
            .capacity(8 << 30)
            .run_into(&mut ring);
        assert!(run.report.ok());
        assert_eq!(ring.dropped_events(), 0);
        assert_eq!(ring.decode(), events);
    }

    #[test]
    fn recovery_routes_through_the_ladder() {
        let p = profile(256);
        let n = p.blocks.len();
        let plan = CheckpointPlan::none(n);
        let min_peak = mimose_planner::memory_model::peak_bytes(&p, &CheckpointPlan::all(n));
        let max_peak = mimose_planner::memory_model::peak_bytes(&p, &plan);
        let capacity = (min_peak + (max_peak - min_peak) / 4).next_multiple_of(512);
        let cfg = RecoveryConfig::default();
        let run = BlockIteration::plan(&p, &plan)
            .capacity(capacity)
            .recovery(&cfg)
            .run();
        assert!(run.report.ok(), "ladder must rescue");
        assert!(!run.report.recovery.is_empty());
    }
}
