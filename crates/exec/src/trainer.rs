//! The trainer: drives a memory policy through a stream of mini-batches,
//! dispatching each iteration to the block or tensor engine.

use crate::block_engine::{run_block_iteration, BlockMode};
use crate::dtr_engine::run_dtr_iteration;
use crate::report::{IterationReport, RunSummary};
use mimose_data::Dataset;
use mimose_models::{ModelGraph, ModelInput};
use mimose_planner::{Directive, IterationObservation, MemoryPolicy};
use mimose_simgpu::DeviceProfile;

/// Simulated training session binding model + data + policy + device.
pub struct Trainer<'a> {
    /// The model being trained.
    pub model: &'a ModelGraph,
    /// The dataset stream source.
    pub dataset: &'a Dataset,
    /// The memory policy under test.
    pub policy: &'a mut dyn MemoryPolicy,
    /// Device cost profile.
    pub device: DeviceProfile,
    /// RNG seed for the batch stream (fixed across policies for fairness).
    pub seed: u64,
}

impl<'a> Trainer<'a> {
    /// Create a trainer with the default V100 device.
    pub fn new(
        model: &'a ModelGraph,
        dataset: &'a Dataset,
        policy: &'a mut dyn MemoryPolicy,
        seed: u64,
    ) -> Self {
        Trainer {
            model,
            dataset,
            policy,
            device: DeviceProfile::v100(),
            seed,
        }
    }

    /// Run one iteration for an explicit input (used by the memory-curve
    /// experiments that sweep sequence lengths deterministically).
    pub fn run_input(&mut self, iter: usize, input: &ModelInput) -> IterationReport {
        let profile = self
            .model
            .profile(input)
            .expect("model/input mismatch in simulation");
        let directive = self.policy.begin_iteration(iter, &profile);
        let planning_ns = self.policy.last_plan_overhead_ns();
        // The budget is a *target*, not a hard allocator cap: real PyTorch
        // grabs more device memory when a plan under-provisions (that is how
        // the paper's static planners "exceed the memory budget" on OD
        // tasks, §VI-B). Plans therefore execute inside the whole device and
        // violations surface as peak > budget in the reports; hard OOM
        // happens only at physical-device exhaustion. The unconstrained
        // baseline (budget usize::MAX) is the Fig 10 normalisation
        // reference and gets an arena large enough never to fail.
        let capacity = if self.policy.budget_bytes() == usize::MAX {
            4 * self.device.total_mem_bytes
        } else {
            self.device.total_mem_bytes
        };
        let (report, observations) = match directive {
            Directive::RunPlan(plan) => {
                let run = run_block_iteration(
                    &profile,
                    BlockMode::Plan(&plan),
                    capacity,
                    &self.device,
                    iter,
                    planning_ns,
                );
                (run.report, run.observations)
            }
            Directive::RunFine(fine) => {
                let run = run_block_iteration(
                    &profile,
                    BlockMode::Fine(&fine),
                    capacity,
                    &self.device,
                    iter,
                    planning_ns,
                );
                (run.report, run.observations)
            }
            Directive::RunHybrid(hybrid) => {
                let run = run_block_iteration(
                    &profile,
                    BlockMode::Hybrid(&hybrid),
                    capacity,
                    &self.device,
                    iter,
                    planning_ns,
                );
                (run.report, run.observations)
            }
            Directive::Shuttle(_) => {
                let run = run_block_iteration(
                    &profile,
                    BlockMode::Shuttle,
                    capacity,
                    &self.device,
                    iter,
                    planning_ns,
                );
                (run.report, run.observations)
            }
            Directive::DtrDynamic => {
                let budget = self.policy.budget_bytes();
                let report = run_dtr_iteration(
                    &profile,
                    budget,
                    self.device.total_mem_bytes,
                    &self.device,
                    iter,
                );
                (report, None)
            }
        };
        self.policy.end_iteration(&IterationObservation {
            iter,
            input: *input,
            input_size: profile.input_size,
            blocks: observations,
            peak_bytes: report.peak_bytes,
            oom: !report.ok(),
        });
        report
    }

    /// Run `iters` iterations from the dataset stream; returns per-iteration
    /// reports.
    pub fn run(&mut self, iters: usize) -> Vec<IterationReport> {
        let mut stream = self.dataset.stream(self.seed);
        (0..iters)
            .map(|i| {
                let input = stream.next_batch();
                self.run_input(i, &input)
            })
            .collect()
    }

    /// Run and summarise.
    pub fn run_summary(&mut self, iters: usize) -> RunSummary {
        let mut s = RunSummary::default();
        for r in self.run(iters) {
            s.absorb(&r);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_core::{MimoseConfig, MimosePolicy};
    use mimose_data::presets;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_planner::{BaselinePolicy, DtrPolicy, SublinearPolicy};

    #[test]
    fn baseline_runs_unconstrained() {
        let model = bert_base(BertHead::Classification { labels: 2 });
        let ds = presets::glue_qqp();
        let mut pol = BaselinePolicy::new();
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        let s = tr.run_summary(20);
        assert_eq!(s.oom_iters, 0);
        assert!(s.total_ns > 0);
    }

    #[test]
    fn mimose_respects_budget_after_collection() {
        let model = bert_base(BertHead::Classification { labels: 2 });
        let ds = presets::glue_qqp();
        let budget = 5usize << 30;
        let mut pol = MimosePolicy::new(MimoseConfig::with_budget(budget));
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        let reports = tr.run(60);
        assert!(reports.iter().all(|r| r.ok()), "an iteration OOMed");
        for r in &reports {
            assert!(
                r.peak_bytes <= budget,
                "iter {}: peak {} MiB over budget",
                r.iter,
                r.peak_bytes >> 20
            );
        }
        // Sheltered phase ended.
        let shuttles = reports.iter().filter(|r| r.shuttle).count();
        assert!((10..=30).contains(&shuttles), "shuttles = {shuttles}");
    }

    #[test]
    fn sublinear_and_mimose_same_budget_mimose_faster() {
        let model = bert_base(BertHead::Classification { labels: 2 });
        let ds = presets::glue_qqp();
        let budget = 4usize << 30;
        let worst = model.profile(&ds.worst_case()).unwrap();

        let mut sub = SublinearPolicy::plan_offline(&worst, budget);
        let mut tr = Trainer::new(&model, &ds, &mut sub, 7);
        let s_sub = tr.run_summary(80);

        let mut mim = MimosePolicy::new(MimoseConfig::with_budget(budget));
        let mut tr = Trainer::new(&model, &ds, &mut mim, 7);
        let s_mim = tr.run_summary(80);

        assert_eq!(s_sub.oom_iters, 0);
        assert_eq!(s_mim.oom_iters, 0);
        assert!(
            s_mim.total_ns < s_sub.total_ns,
            "mimose {} ms vs sublinear {} ms",
            s_mim.total_ns / 1_000_000,
            s_sub.total_ns / 1_000_000
        );
    }

    #[test]
    fn dtr_runs_with_overhead() {
        let model = bert_base(BertHead::Classification { labels: 2 });
        let ds = presets::glue_qqp();
        let mut pol = DtrPolicy::new(5 << 30);
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        let s = tr.run_summary(20);
        assert_eq!(s.oom_iters, 0);
        assert!(s.time.bookkeeping_ns > 0);
    }
}
