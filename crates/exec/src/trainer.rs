//! The trainer: drives a memory policy through a stream of mini-batches,
//! dispatching each iteration to the block or tensor engine.

use crate::block_engine::{run_block_iteration, run_block_iteration_recorded, BlockMode, BlockRun};
use crate::dtr_engine::{run_dtr_iteration, run_dtr_iteration_recorded};
use crate::recovery::{
    run_block_iteration_recovering, run_block_iteration_recovering_recorded, RecoveryConfig,
};
use mimose_chaos::{FaultInjector, IterationFaults};
use mimose_data::Dataset;
use mimose_models::{ModelError, ModelInput, ModelProfile, OptimizedGraph};
use mimose_planner::{Directive, IterationObservation, MemoryPolicy};
use mimose_runtime::{ExecEvent, IterationReport, RunSummary};
use mimose_simgpu::{ArenaStats, DeviceProfile};

/// A non-memory failure that aborts a training run (memory failures are
/// *data* — they land in the reports as `OomReport`s, not errors).
#[derive(Debug)]
pub enum ExecError {
    /// The model rejected the iteration's input during profiling.
    Profile {
        /// Iteration at which profiling failed.
        iter: usize,
        /// The model's own error.
        source: ModelError,
    },
    /// A policy handed back a plan whose length does not match the profiled
    /// block count; dispatching it would index out of bounds mid-iteration.
    PlanShape {
        /// Iteration at which the mismatched plan was issued.
        iter: usize,
        /// Plan flavour ("checkpoint", "fine", "hybrid").
        kind: &'static str,
        /// Block count of the iteration's profile.
        expected: usize,
        /// Block count the plan actually covers.
        got: usize,
    },
    /// The run requested more iterations than one epoch of the dataset
    /// holds; `iter` is the first iteration past the end.
    DataExhausted {
        /// The out-of-range iteration number.
        iter: usize,
        /// Iterations one epoch of the dataset holds.
        len: usize,
    },
    /// A [`Session`](crate::Session) was built without a memory policy.
    MissingPolicy,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Profile { iter, source } => {
                write!(f, "profiling failed at iteration {iter}: {source}")
            }
            ExecError::PlanShape {
                iter,
                kind,
                expected,
                got,
            } => write!(
                f,
                "{kind} plan at iteration {iter} covers {got} blocks but the profile has {expected}"
            ),
            ExecError::DataExhausted { iter, len } => write!(
                f,
                "dataset exhausted: iteration {iter} requested but one epoch holds {len}"
            ),
            ExecError::MissingPolicy => {
                write!(f, "session built without a memory policy")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Profile { source, .. } => Some(source),
            ExecError::PlanShape { .. }
            | ExecError::DataExhausted { .. }
            | ExecError::MissingPolicy => None,
        }
    }
}

/// One iteration's recorded execution: the [`ExecEvent`] stream, the arena
/// capacity it ran in (needed to fold it — capacity varies per iteration
/// under chaos shrink) and the final arena statistics. Produced by
/// [`Session`](crate::Session)s built with `.record(true)`.
#[derive(Debug)]
pub struct IterationRecord {
    /// Iteration number.
    pub iter: usize,
    /// Arena capacity the iteration executed in.
    pub capacity: usize,
    /// The recorded stream (final attempt only when the ladder restarted).
    pub events: Vec<ExecEvent>,
    /// Final arena statistics.
    pub arena: ArenaStats,
}

/// Simulated training session binding model + data + policy + device.
pub struct Trainer<'a> {
    /// The model being trained.
    pub model: &'a OptimizedGraph,
    /// The dataset stream source.
    pub dataset: &'a Dataset,
    /// The memory policy under test.
    pub policy: &'a mut dyn MemoryPolicy,
    /// Device cost profile.
    pub device: DeviceProfile,
    /// RNG seed for the batch stream (fixed across policies for fairness).
    pub seed: u64,
    /// OOM-recovery ladder configuration; `None` (the default) keeps the
    /// legacy report-and-die behaviour and the happy path byte-identical.
    pub recovery: Option<RecoveryConfig>,
    /// Deterministic fault injector; `None` (the default) runs clean.
    pub injector: Option<FaultInjector>,
}

impl<'a> Trainer<'a> {
    /// Create a trainer with the default V100 device.
    pub fn new(
        model: &'a OptimizedGraph,
        dataset: &'a Dataset,
        policy: &'a mut dyn MemoryPolicy,
        seed: u64,
    ) -> Self {
        Trainer {
            model,
            dataset,
            policy,
            device: DeviceProfile::v100(),
            seed,
            recovery: None,
            injector: None,
        }
    }

    /// Enable the OOM-recovery ladder for this run.
    #[must_use]
    pub fn with_recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// Inject deterministic faults into this run.
    #[must_use]
    pub fn with_chaos(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Run one iteration for an explicit input (used by the memory-curve
    /// experiments that sweep sequence lengths deterministically).
    pub fn run_input(
        &mut self,
        iter: usize,
        input: &ModelInput,
    ) -> Result<IterationReport, ExecError> {
        let mut ctx = IterationCtx {
            model: self.model,
            policy: &mut *self.policy,
            device: &self.device,
            recovery: self.recovery.as_ref(),
            injector: self.injector.as_ref(),
        };
        run_one_iteration(&mut ctx, iter, input, false).map(|(report, _)| report)
    }

    /// Run `iters` iterations from the dataset stream; returns per-iteration
    /// reports.
    pub fn run(&mut self, iters: usize) -> Result<Vec<IterationReport>, ExecError> {
        let len = self.dataset.iters_per_epoch();
        let mut stream = self.dataset.stream(self.seed);
        (0..iters)
            .map(|i| {
                // One pass over the data is the contract: requesting more
                // than an epoch is a typed error, not silent resampling.
                if i >= len {
                    return Err(ExecError::DataExhausted { iter: i, len });
                }
                let input = stream.next_batch();
                self.run_input(i, &input)
            })
            .collect()
    }

    /// Run and summarise.
    pub fn run_summary(&mut self, iters: usize) -> Result<RunSummary, ExecError> {
        let mut s = RunSummary::default();
        for r in self.run(iters)? {
            s.absorb(&r);
        }
        Ok(s)
    }
}

/// Everything one iteration needs, borrowed from whoever drives it (the
/// [`Trainer`] or a [`Session`](crate::Session)); the single shared
/// execution path keeps both byte-identical.
pub(crate) struct IterationCtx<'m> {
    pub model: &'m OptimizedGraph,
    pub policy: &'m mut dyn MemoryPolicy,
    pub device: &'m DeviceProfile,
    pub recovery: Option<&'m RecoveryConfig>,
    pub injector: Option<&'m FaultInjector>,
}

/// Dispatch a block-engine iteration through the plain engine (exact
/// legacy behaviour) when neither recovery nor faults are configured, or
/// through the recovery driver otherwise; optionally recording the event
/// stream (recording changes nothing but the returned extras).
#[allow(clippy::too_many_arguments)]
fn dispatch_block(
    ctx: &IterationCtx<'_>,
    profile: &ModelProfile,
    mode: BlockMode<'_>,
    capacity: usize,
    iter: usize,
    planning_ns: u64,
    faults: Option<&IterationFaults>,
    record: bool,
) -> (BlockRun, Option<(Vec<ExecEvent>, ArenaStats)>) {
    if ctx.recovery.is_none() && faults.is_none() {
        if record {
            let (run, events, stats) = run_block_iteration_recorded(
                profile,
                mode,
                capacity,
                ctx.device,
                iter,
                planning_ns,
            );
            return (run, Some((events, stats)));
        }
        return (
            run_block_iteration(profile, mode, capacity, ctx.device, iter, planning_ns),
            None,
        );
    }
    if record {
        let (run, events, stats) = run_block_iteration_recovering_recorded(
            profile,
            mode,
            capacity,
            ctx.device,
            iter,
            planning_ns,
            ctx.recovery,
            faults,
        );
        return (run, Some((events, stats)));
    }
    (
        run_block_iteration_recovering(
            profile,
            mode,
            capacity,
            ctx.device,
            iter,
            planning_ns,
            ctx.recovery,
            faults,
        ),
        None,
    )
}

/// Run one full iteration — profile, policy consult, plan-shape validation,
/// engine dispatch, policy feedback — returning the report and, when
/// `record` is set, the iteration's event stream.
pub(crate) fn run_one_iteration(
    ctx: &mut IterationCtx<'_>,
    iter: usize,
    input: &ModelInput,
    record: bool,
) -> Result<(IterationReport, Option<IterationRecord>), ExecError> {
    let profile = ctx
        .model
        .profile(input)
        .map_err(|source| ExecError::Profile { iter, source })?;
    let directive = ctx.policy.begin_iteration(iter, &profile);
    // Reject malformed plans up front with a typed error rather than
    // letting the engine index out of bounds mid-iteration.
    let expected = profile.blocks.len();
    let shape = match &directive {
        Directive::RunPlan(p) => Some(("checkpoint", p.len())),
        Directive::RunFine(fine) => Some(("fine", fine.len())),
        Directive::RunHybrid(h) => Some(("hybrid", h.len())),
        Directive::Shuttle(_) | Directive::DtrDynamic => None,
    };
    if let Some((kind, got)) = shape {
        if got != expected {
            return Err(ExecError::PlanShape {
                iter,
                kind,
                expected,
                got,
            });
        }
    }
    let planning_ns = ctx.policy.last_plan_overhead_ns();
    // Per-iteration fault vector (identity when no injector is set).
    let faults = ctx.injector.map(|inj| inj.iteration_faults(iter));
    // The budget is a *target*, not a hard allocator cap: real PyTorch
    // grabs more device memory when a plan under-provisions (that is how
    // the paper's static planners "exceed the memory budget" on OD
    // tasks, §VI-B). Plans therefore execute inside the whole device and
    // violations surface as peak > budget in the reports; hard OOM
    // happens only at physical-device exhaustion. The unconstrained
    // baseline (budget usize::MAX) is the Fig 10 normalisation
    // reference and gets an arena large enough never to fail.
    let nominal = if ctx.policy.budget_bytes() == usize::MAX {
        4 * ctx.device.total_mem_bytes
    } else {
        ctx.device.total_mem_bytes
    };
    // Chaos capacity shrink is applied here — by the caller, once — so
    // the engines and the recovery driver never double-apply it.
    let capacity = match &faults {
        Some(f) if f.capacity_factor != 1.0 => (nominal as f64 * f.capacity_factor) as usize,
        _ => nominal,
    };
    // The arena size each directive actually executes in — what a fold of
    // the recorded stream must use (DTR ignores the chaos shrink and runs
    // in the whole device, matching the dispatch below).
    let mut arena_capacity = capacity;
    let (report, observations, recorded) = match directive {
        Directive::RunPlan(plan) => {
            let (run, rec) = dispatch_block(
                ctx,
                &profile,
                BlockMode::Plan(&plan),
                capacity,
                iter,
                planning_ns,
                faults.as_ref(),
                record,
            );
            (run.report, run.observations, rec)
        }
        Directive::RunFine(fine) => {
            let (run, rec) = dispatch_block(
                ctx,
                &profile,
                BlockMode::Fine(&fine),
                capacity,
                iter,
                planning_ns,
                faults.as_ref(),
                record,
            );
            (run.report, run.observations, rec)
        }
        Directive::RunHybrid(hybrid) => {
            let (run, rec) = dispatch_block(
                ctx,
                &profile,
                BlockMode::Hybrid(&hybrid),
                capacity,
                iter,
                planning_ns,
                faults.as_ref(),
                record,
            );
            (run.report, run.observations, rec)
        }
        Directive::Shuttle(_) => {
            let (run, rec) = dispatch_block(
                ctx,
                &profile,
                BlockMode::Shuttle,
                capacity,
                iter,
                planning_ns,
                faults.as_ref(),
                record,
            );
            (run.report, run.observations, rec)
        }
        Directive::DtrDynamic => {
            // The DTR engine's reactive eviction is itself an OOM
            // handler; the ladder and the chaos hooks do not apply.
            let budget = ctx.policy.budget_bytes();
            arena_capacity = ctx.device.total_mem_bytes;
            if record {
                let (report, events, stats) = run_dtr_iteration_recorded(
                    &profile,
                    budget,
                    ctx.device.total_mem_bytes,
                    ctx.device,
                    iter,
                );
                (report, None, Some((events, stats)))
            } else {
                let report = run_dtr_iteration(
                    &profile,
                    budget,
                    ctx.device.total_mem_bytes,
                    ctx.device,
                    iter,
                );
                (report, None, None)
            }
        }
    };
    ctx.policy.end_iteration(&IterationObservation {
        iter,
        input: *input,
        input_size: profile.input_size,
        blocks: observations,
        peak_bytes: report.peak_bytes,
        oom: !report.ok(),
        recovery: report.recovery.clone(),
    });
    let record_out = recorded.map(|(events, arena)| IterationRecord {
        iter,
        capacity: arena_capacity,
        events,
        arena,
    });
    Ok((report, record_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_core::{MimoseConfig, MimosePolicy};
    use mimose_data::presets;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_planner::{BaselinePolicy, DtrPolicy, SublinearPolicy};

    #[test]
    fn baseline_runs_unconstrained() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let mut pol = BaselinePolicy::new();
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        let s = tr.run_summary(20).unwrap();
        assert_eq!(s.oom_iters, 0);
        assert!(s.total_ns > 0);
    }

    #[test]
    fn mimose_respects_budget_after_collection() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let budget = 5usize << 30;
        let mut pol = MimosePolicy::new(MimoseConfig::with_budget(budget));
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        let reports = tr.run(60).unwrap();
        assert!(reports.iter().all(|r| r.ok()), "an iteration OOMed");
        for r in &reports {
            assert!(
                r.peak_bytes <= budget,
                "iter {}: peak {} MiB over budget",
                r.iter,
                r.peak_bytes >> 20
            );
        }
        // Sheltered phase ended.
        let shuttles = reports.iter().filter(|r| r.shuttle).count();
        assert!((10..=30).contains(&shuttles), "shuttles = {shuttles}");
    }

    #[test]
    fn sublinear_and_mimose_same_budget_mimose_faster() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let budget = 4usize << 30;
        let worst = model
            .profile(&ds.worst_case())
            .expect("preset worst case must profile");

        let mut sub = SublinearPolicy::plan_offline(&worst, budget);
        let mut tr = Trainer::new(&model, &ds, &mut sub, 7);
        let s_sub = tr.run_summary(80).unwrap();

        let mut mim = MimosePolicy::new(MimoseConfig::with_budget(budget));
        let mut tr = Trainer::new(&model, &ds, &mut mim, 7);
        let s_mim = tr.run_summary(80).unwrap();

        assert_eq!(s_sub.oom_iters, 0);
        assert_eq!(s_mim.oom_iters, 0);
        assert!(
            s_mim.total_ns < s_sub.total_ns,
            "mimose {} ms vs sublinear {} ms",
            s_mim.total_ns / 1_000_000,
            s_sub.total_ns / 1_000_000
        );
    }

    #[test]
    fn dtr_runs_with_overhead() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let mut pol = DtrPolicy::new(5 << 30);
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        let s = tr.run_summary(20).unwrap();
        assert_eq!(s.oom_iters, 0);
        assert!(s.time.bookkeeping_ns > 0);
    }

    #[test]
    fn run_input_reports_profile_error() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let mut pol = BaselinePolicy::new();
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        // An image fed to a token model fails shape inference at the
        // embedding op.
        let bad = ModelInput::image(8, 224, 224);
        let err = tr.run_input(0, &bad).unwrap_err();
        match &err {
            ExecError::Profile { iter, .. } => assert_eq!(*iter, 0),
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("iteration 0"));
    }

    #[test]
    fn mismatched_plan_shape_is_a_typed_error() {
        use mimose_planner::{CheckpointPlan, PlannerMeta};
        /// A policy that always answers with a 3-block plan regardless of
        /// the profile it was shown.
        struct BadPolicy;
        impl MemoryPolicy for BadPolicy {
            fn meta(&self) -> PlannerMeta {
                BaselinePolicy::new().meta()
            }
            fn budget_bytes(&self) -> usize {
                usize::MAX
            }
            fn begin_iteration(&mut self, _iter: usize, _profile: &ModelProfile) -> Directive {
                Directive::RunPlan(CheckpointPlan::none(3))
            }
        }
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let mut pol = BadPolicy;
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        let err = tr
            .run_input(5, &ModelInput::tokens(8, 64))
            .expect_err("a 3-block plan must be rejected");
        match &err {
            ExecError::PlanShape {
                iter, kind, got, ..
            } => {
                assert_eq!(*iter, 5);
                assert_eq!(*kind, "checkpoint");
                assert_eq!(*got, 3);
            }
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("covers 3 blocks"));
    }

    #[test]
    fn over_epoch_run_is_data_exhausted() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let mut ds = presets::glue_qqp();
        // Shrink the epoch to exactly 3 iterations.
        if let Dataset::Text(d) = &mut ds {
            d.epoch_samples = d.batch_size * 3;
        }
        assert_eq!(ds.iters_per_epoch(), 3);
        let mut pol = BaselinePolicy::new();
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        let err = tr.run(5).expect_err("5 iters over a 3-iter epoch");
        match &err {
            ExecError::DataExhausted { iter, len } => {
                assert_eq!(*iter, 3);
                assert_eq!(*len, 3);
            }
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("one epoch holds 3"));
        // Exactly one epoch is fine.
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        assert_eq!(tr.run(3).unwrap().len(), 3);
    }

    #[test]
    fn chaos_trainer_recovers_from_capacity_shrink() {
        use mimose_chaos::{FaultInjector, FaultSpec};
        use mimose_planner::memory_model::peak_bytes;
        use mimose_planner::CheckpointPlan;
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let mut pol = BaselinePolicy::new();
        // Shrink the device (from iteration 3 onward) to just above the
        // worst case's full-checkpoint floor: the baseline's no-checkpoint
        // plan stops fitting and must be rescued by the ladder.
        let worst = model.profile(&ds.worst_case()).unwrap();
        let n = worst.blocks.len();
        let floor = peak_bytes(&worst, &CheckpointPlan::all(n));
        // The unconstrained baseline runs in a 4x-device arena.
        let nominal = 4 * DeviceProfile::v100().total_mem_bytes;
        let factor = (floor as f64 * 1.15) / nominal as f64;
        let spec = FaultSpec {
            seed: 11,
            capacity_shrink: Some((3, factor)),
            ..FaultSpec::default()
        };
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7)
            .with_recovery(RecoveryConfig::default())
            .with_chaos(FaultInjector::new(spec));
        let reports = tr.run(8).unwrap();
        assert!(reports.iter().all(|r| r.ok()), "ladder must rescue");
        let recovered = reports.iter().filter(|r| r.recovered()).count();
        assert!(recovered > 0, "capacity shrink must trigger recovery");
        assert!(reports.iter().take(3).all(|r| r.recovery.is_empty()));
    }
}
