//! # mimose-exec
//!
//! The training-iteration executor: a block-granularity engine that runs
//! checkpoint plans (and Mimose's double-forward shuttle iterations) against
//! the simulated arena allocator and virtual clock, a tensor-granularity
//! engine with DTR-style reactive eviction, and two front ends that drive
//! any [`mimose_planner::MemoryPolicy`] over a dataset stream:
//!
//! - [`Session`] — the builder-style entry point (`Session::builder(..)
//!   .policy(..).build()?.run(n)`); owns its policy and stream, steppable
//!   and `Send`, which is what the cluster scheduler consumes.
//! - [`Trainer`] — the borrowing front end the experiment harness drives.
//!
//! Single iterations with explicit knobs go through [`BlockIteration`] and
//! [`DtrIteration`]. Both engines are thin
//! [`mimose_runtime::MaterializationPolicy`] layers over the shared
//! [`mimose_runtime::EngineCore`]; every run can be recorded as a typed
//! [`mimose_runtime::ExecEvent`] stream that the report, the shadow
//! checkers and the audit layer all consume.

#![warn(missing_docs)]

mod block_engine;
mod dtr_engine;
mod eviction;
mod iteration;
mod recovery;
mod rungs;
mod session;
pub mod shadow;
mod trainer;

pub use iteration::{BlockIteration, DtrIteration};
pub use mimose_runtime::{IterationReport, OomReport, RunSummary, TimeBreakdown};
pub use recovery::{grow_plan, RecoveryConfig};
pub use session::{Session, SessionBuilder, SessionCheckpoint};
pub use shadow::{shadow_check_enabled, DtrShadow, ShadowChecker};
pub use trainer::{ExecError, IterationRecord, Trainer};

pub use block_engine::{BlockMode, BlockRun};

// Legacy free-function entry points, kept as thin wrappers for existing
// callers; new code goes through `Session`, `BlockIteration` and
// `DtrIteration` (which share their implementations).
#[doc(hidden)]
pub use block_engine::{
    run_block_iteration, run_block_iteration_recorded, run_block_iteration_traced,
};
#[doc(hidden)]
pub use dtr_engine::{
    run_dtr_iteration, run_dtr_iteration_recorded, run_dtr_iteration_with_policy,
};
#[doc(hidden)]
pub use recovery::{
    run_block_iteration_recovering, run_block_iteration_recovering_recorded,
    run_block_iteration_recovering_traced,
};
