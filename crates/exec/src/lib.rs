//! # mimose-exec
//!
//! The training-iteration executor: a block-granularity engine that runs
//! checkpoint plans (and Mimose's double-forward shuttle iterations) against
//! the simulated arena allocator and virtual clock, a tensor-granularity
//! engine with DTR-style reactive eviction, and a [`Trainer`] that drives
//! any [`mimose_planner::MemoryPolicy`] over a dataset stream.
//!
//! Both engines are thin [`mimose_runtime::MaterializationPolicy`] layers
//! over the shared [`mimose_runtime::EngineCore`]; every run can be recorded
//! as a typed [`mimose_runtime::ExecEvent`] stream that the report, the
//! shadow checkers and the audit layer all consume.

#![warn(missing_docs)]

mod block_engine;
mod dtr_engine;
mod eviction;
mod recovery;
mod rungs;
pub mod shadow;
mod trainer;

pub use block_engine::{
    run_block_iteration, run_block_iteration_recorded, run_block_iteration_traced, BlockMode,
    BlockRun,
};
pub use dtr_engine::{
    run_dtr_iteration, run_dtr_iteration_recorded, run_dtr_iteration_with_policy,
};
pub use mimose_runtime::{IterationReport, OomReport, RunSummary, TimeBreakdown};
pub use recovery::{
    grow_plan, run_block_iteration_recovering, run_block_iteration_recovering_traced,
    RecoveryConfig,
};
pub use shadow::{shadow_check_enabled, DtrShadow, ShadowChecker};
pub use trainer::{ExecError, Trainer};
