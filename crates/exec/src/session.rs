//! [`Session`]: the builder-style front door to the executor.
//!
//! A session binds a model, a dataset stream, a memory policy and a device
//! into one owned handle that runs iterations on demand and accumulates a
//! [`RunSummary`] as it goes:
//!
//! ```
//! use mimose_exec::Session;
//! use mimose_data::presets;
//! use mimose_models::builders::{bert_base, BertHead};
//! use mimose_planner::BaselinePolicy;
//!
//! let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
//! let dataset = presets::glue_qqp();
//! let mut session = Session::builder(&model, &dataset)
//!     .policy(BaselinePolicy::new())
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let reports = session.run(5).unwrap();
//! assert_eq!(reports.len(), 5);
//! assert_eq!(session.summary().iters, 5);
//! ```
//!
//! Unlike the borrowing [`Trainer`](crate::Trainer), a session *owns* its
//! policy and its batch stream, so it can be parked, resumed one iteration
//! at a time ([`Session::step`]) and moved across threads — exactly what
//! the cluster scheduler needs to interleave many jobs over a device pool.
//! Both front ends drive the same internal execution path, so a session run
//! is byte-identical to the equivalent trainer run.

use crate::recovery::RecoveryConfig;
use crate::trainer::{run_one_iteration, ExecError, IterationCtx, IterationRecord};
use mimose_chaos::FaultInjector;
use mimose_data::{BatchStream, Dataset};
use mimose_models::{ModelInput, ModelProfile, OptimizedGraph};
use mimose_planner::MemoryPolicy;
use mimose_runtime::{IterationReport, RunSummary};
use mimose_simgpu::DeviceProfile;

/// A parked session, detached from its device: everything needed to
/// resume the job at the last completed iteration boundary on *another*
/// device — the warmed policy (plan cache, certificates and adaptive
/// estimator state ride inside the policy box), the batch-stream seed and
/// cursor, the accumulated summary and any recorded event streams.
///
/// Because a [`BatchStream`](mimose_data::BatchStream) is a pure function
/// of its seed, the checkpoint stores only the *cursor*: resuming fast-
/// forwards a fresh stream by `cursor` draws and lands on byte-identical
/// batches, so a migrated run replays exactly as the uninterrupted run
/// would have.
pub struct SessionCheckpoint {
    policy: Box<dyn MemoryPolicy>,
    seed: u64,
    cursor: usize,
    summary: RunSummary,
    records: Vec<IterationRecord>,
}

impl SessionCheckpoint {
    /// The iteration the resumed session will run next.
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The batch-stream seed the checkpointed run used.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The run folded up to the checkpoint boundary.
    #[must_use]
    pub fn summary(&self) -> &RunSummary {
        &self.summary
    }

    /// Virtual nanoseconds of execution accumulated at the checkpoint
    /// boundary. Checkpoints always land on iteration boundaries, so this
    /// is the exact virtual time an event-driven scheduler should stamp on
    /// the displacement event that parked the session.
    #[must_use]
    pub fn boundary_ns(&self) -> u64 {
        self.summary.total_ns
    }

    /// The parked policy (for inspecting budget or plan-tier state before
    /// resuming).
    #[must_use]
    pub fn policy(&self) -> &dyn MemoryPolicy {
        &*self.policy
    }

    /// Dissolve the checkpoint without resuming, yielding the parked
    /// evidence — the folded summary, recorded event streams, and policy
    /// box — for a job that will never run again (e.g. one a degraded
    /// fleet sheds after displacement).
    #[must_use]
    pub fn into_evidence(self) -> (RunSummary, Vec<IterationRecord>, Box<dyn MemoryPolicy>) {
        (self.summary, self.records, self.policy)
    }

    /// Deterministic JSON digest of the checkpoint — the serialized
    /// evidence a fleet report embeds for a migrated job (the policy box
    /// itself resumes in-process; its budget and ladder counters are the
    /// externally meaningful state).
    #[must_use]
    pub fn to_json(&self) -> String {
        let budget = self.policy.budget_bytes();
        let budget = if budget == usize::MAX { 0 } else { budget };
        format!(
            "{{\"seed\":{},\"cursor\":{},\"iters\":{},\"total_ns\":{},\
             \"max_peak_bytes\":{},\"budget_bytes\":{budget},\"records\":{}}}",
            self.seed,
            self.cursor,
            self.summary.iters,
            self.summary.total_ns,
            self.summary.max_peak_bytes,
            self.records.len(),
        )
    }
}

/// Configures and validates a [`Session`]. Created by [`Session::builder`].
pub struct SessionBuilder<'a> {
    model: &'a OptimizedGraph,
    dataset: &'a Dataset,
    policy: Option<Box<dyn MemoryPolicy>>,
    device: DeviceProfile,
    seed: u64,
    recovery: Option<RecoveryConfig>,
    injector: Option<FaultInjector>,
    record: bool,
    resume: Option<(usize, RunSummary, Vec<IterationRecord>)>,
}

impl<'a> SessionBuilder<'a> {
    /// The memory policy to drive (required).
    pub fn policy(mut self, policy: impl MemoryPolicy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Boxed form of [`Self::policy`], for policies chosen at runtime
    /// (e.g. via [`mimose_planner::PolicyKind::build`]).
    #[must_use]
    pub fn policy_boxed(mut self, policy: Box<dyn MemoryPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Device cost profile (default: V100).
    #[must_use]
    pub fn device(mut self, device: DeviceProfile) -> Self {
        self.device = device;
        self
    }

    /// Batch-stream seed (default 0; fixed across policies for fairness).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable the OOM-recovery ladder.
    #[must_use]
    pub fn recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// Inject deterministic faults.
    #[must_use]
    pub fn chaos(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Record every iteration's [`ExecEvent`](mimose_runtime::ExecEvent)
    /// stream (retrieve with [`Session::take_records`]). Recording changes
    /// nothing about execution.
    #[must_use]
    pub fn record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Resume from a [`SessionCheckpoint`] instead of starting fresh: the
    /// checkpoint supplies the policy, seed, stream cursor, accumulated
    /// summary and recorded streams (overriding any `policy`/`seed` set on
    /// the builder). Device, recovery, chaos and recording stay builder
    /// knobs — a migrated job resumes on a *different* device with that
    /// device's fault stream.
    #[must_use]
    pub fn resume(mut self, checkpoint: SessionCheckpoint) -> Self {
        self.policy = Some(checkpoint.policy);
        self.seed = checkpoint.seed;
        self.resume = Some((checkpoint.cursor, checkpoint.summary, checkpoint.records));
        self
    }

    /// Validate and build the session.
    ///
    /// Fails with [`ExecError::MissingPolicy`] when no policy was supplied
    /// and with [`ExecError::Profile`] when the model rejects the dataset's
    /// worst-case input (in which case every batch would fail at run time).
    pub fn build(self) -> Result<Session<'a>, ExecError> {
        let policy = self.policy.ok_or(ExecError::MissingPolicy)?;
        self.model
            .profile(&self.dataset.worst_case())
            .map_err(|source| ExecError::Profile { iter: 0, source })?;
        let mut stream = self.dataset.stream(self.seed);
        let (cursor, summary, records) = self.resume.unwrap_or_default();
        // Fast-forward to the checkpoint boundary: the stream is a pure
        // function of the seed, so drawing `cursor` batches reproduces the
        // exact position (and therefore the exact future batches) the
        // checkpointed session saw.
        for _ in 0..cursor {
            stream.next_batch();
        }
        Ok(Session {
            model: self.model,
            dataset: self.dataset,
            policy,
            device: self.device,
            seed: self.seed,
            recovery: self.recovery,
            injector: self.injector,
            record: self.record,
            stream,
            pending: None,
            next_iter: cursor,
            epoch_len: self.dataset.iters_per_epoch(),
            summary,
            records,
        })
    }
}

/// An owned training session: model + dataset stream + policy + device,
/// runnable one iteration at a time. See the module docs for the full
/// lifecycle.
pub struct Session<'a> {
    model: &'a OptimizedGraph,
    dataset: &'a Dataset,
    policy: Box<dyn MemoryPolicy>,
    device: DeviceProfile,
    seed: u64,
    recovery: Option<RecoveryConfig>,
    injector: Option<FaultInjector>,
    record: bool,
    stream: BatchStream<'a>,
    /// Next batch, drawn ahead of execution by [`Self::peek_input`].
    pending: Option<ModelInput>,
    next_iter: usize,
    epoch_len: usize,
    summary: RunSummary,
    records: Vec<IterationRecord>,
}

impl<'a> Session<'a> {
    /// Start configuring a session over `model` and `dataset`.
    #[must_use]
    pub fn builder(model: &'a OptimizedGraph, dataset: &'a Dataset) -> SessionBuilder<'a> {
        SessionBuilder {
            model,
            dataset,
            policy: None,
            device: DeviceProfile::v100(),
            seed: 0,
            recovery: None,
            injector: None,
            record: false,
            resume: None,
        }
    }

    /// The iteration the next [`Self::step`] will run.
    #[must_use]
    pub fn next_iter(&self) -> usize {
        self.next_iter
    }

    /// Iterations one epoch of the dataset holds.
    #[must_use]
    pub fn epoch_len(&self) -> usize {
        self.epoch_len
    }

    /// The session's batch-stream seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The dataset this session streams from.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        self.dataset
    }

    /// The device this session simulates.
    #[must_use]
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The policy being driven.
    #[must_use]
    pub fn policy(&self) -> &dyn MemoryPolicy {
        &*self.policy
    }

    /// Everything run so far, folded into one summary.
    #[must_use]
    pub fn summary(&self) -> &RunSummary {
        &self.summary
    }

    /// Virtual nanoseconds of execution accumulated so far — the
    /// session's position on a virtual event clock. After `step()` returns,
    /// the session sits at an iteration boundary and `elapsed_ns()` is the
    /// boundary's timestamp relative to the session's own start.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.summary.total_ns
    }

    /// Drain the recorded per-iteration event streams (empty unless built
    /// with `.record(true)`).
    pub fn take_records(&mut self) -> Vec<IterationRecord> {
        std::mem::take(&mut self.records)
    }

    /// Park the session at the last completed iteration boundary,
    /// detaching it from its device: consumes the session and returns the
    /// [`SessionCheckpoint`] a [`SessionBuilder::resume`] call can restart
    /// from (on any device). Any peeked-but-unrun batch is discarded; the
    /// resumed stream re-draws it byte-identically from the cursor.
    #[must_use]
    pub fn checkpoint(self) -> SessionCheckpoint {
        SessionCheckpoint {
            policy: self.policy,
            seed: self.seed,
            cursor: self.next_iter,
            summary: self.summary,
            records: self.records,
        }
    }

    /// The next iteration's input, drawn from the stream without running
    /// it (the draw is remembered, so peeking does not perturb the run).
    pub fn peek_input(&mut self) -> ModelInput {
        if let Some(input) = self.pending {
            return input;
        }
        let input = self.stream.next_batch();
        self.pending = Some(input);
        input
    }

    /// Profile the next iteration's input without running it.
    pub fn peek_profile(&mut self) -> Result<ModelProfile, ExecError> {
        let iter = self.next_iter;
        let input = self.peek_input();
        self.model
            .profile(&input)
            .map_err(|source| ExecError::Profile { iter, source })
    }

    /// The policy's advisory peak-memory prediction for the next
    /// iteration — the admission-control signal the cluster scheduler
    /// consults before dispatch. Falls back to the input's no-checkpoint
    /// peak when the policy offers no prediction.
    pub fn predicted_peak_bytes(&mut self) -> Result<usize, ExecError> {
        let profile = self.peek_profile()?;
        Ok(self
            .policy
            .predicted_peak_bytes(&profile)
            .unwrap_or_else(|| profile.peak_no_checkpoint()))
    }

    /// Run one iteration off the stream.
    pub fn step(&mut self) -> Result<IterationReport, ExecError> {
        if self.next_iter >= self.epoch_len {
            return Err(ExecError::DataExhausted {
                iter: self.next_iter,
                len: self.epoch_len,
            });
        }
        let input = match self.pending.take() {
            Some(i) => i,
            None => self.stream.next_batch(),
        };
        let iter = self.next_iter;
        let mut ctx = IterationCtx {
            model: self.model,
            policy: &mut *self.policy,
            device: &self.device,
            recovery: self.recovery.as_ref(),
            injector: self.injector.as_ref(),
        };
        let (report, record) = run_one_iteration(&mut ctx, iter, &input, self.record)?;
        if let Some(rec) = record {
            self.records.push(rec);
        }
        self.summary.absorb(&report);
        self.next_iter += 1;
        Ok(report)
    }

    /// Run `iters` iterations; returns their per-iteration reports.
    pub fn run(&mut self, iters: usize) -> Result<Vec<IterationReport>, ExecError> {
        (0..iters).map(|_| self.step()).collect()
    }

    /// Run `iters` iterations and fold just those into a summary (the
    /// whole-session summary stays available via [`Self::summary`]).
    pub fn run_summary(&mut self, iters: usize) -> Result<RunSummary, ExecError> {
        let mut s = RunSummary::default();
        for r in self.run(iters)? {
            s.absorb(&r);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trainer;
    use mimose_core::{MimoseConfig, MimosePolicy};
    use mimose_data::presets;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_planner::{BaselinePolicy, SublinearPolicy};

    fn assert_send<T: Send>(_: &T) {}

    #[test]
    fn session_matches_trainer_byte_for_byte() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let budget = 5usize << 30;
        let worst = model.profile(&ds.worst_case()).unwrap();

        let mut pol = SublinearPolicy::plan_offline(&worst, budget);
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        let trainer_reports = tr.run(40).unwrap();

        let mut session = Session::builder(&model, &ds)
            .policy(SublinearPolicy::plan_offline(&worst, budget))
            .seed(7)
            .build()
            .unwrap();
        assert_send(&session);
        let session_reports = session.run(40).unwrap();
        assert_eq!(
            format!("{trainer_reports:?}"),
            format!("{session_reports:?}"),
            "session and trainer must be byte-identical"
        );
        assert_eq!(session.summary().iters, 40);
        assert_eq!(session.next_iter(), 40);
    }

    #[test]
    fn session_drives_mimose_like_the_trainer() {
        // Mimose measures its plan time with a wall clock, so time fields
        // are not reproducible across instances — compare everything else.
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let budget = 5usize << 30;

        let mut pol = MimosePolicy::new(MimoseConfig::with_budget(budget));
        let mut tr = Trainer::new(&model, &ds, &mut pol, 7);
        let trainer_reports = tr.run(40).unwrap();

        let mut session = Session::builder(&model, &ds)
            .policy(MimosePolicy::new(MimoseConfig::with_budget(budget)))
            .seed(7)
            .build()
            .unwrap();
        let session_reports = session.run(40).unwrap();
        for (a, b) in trainer_reports.iter().zip(&session_reports) {
            assert_eq!(a.iter, b.iter);
            assert_eq!(a.input, b.input);
            assert_eq!(a.peak_bytes, b.peak_bytes);
            assert_eq!(a.shuttle, b.shuttle);
            assert_eq!(a.ok(), b.ok());
        }
    }

    #[test]
    fn build_without_policy_fails_typed() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        match Session::builder(&model, &ds).build() {
            Err(ExecError::MissingPolicy) => {}
            Err(other) => panic!("expected MissingPolicy, got {other:?}"),
            Ok(_) => panic!("build without a policy must fail"),
        }
    }

    #[test]
    fn peeking_does_not_perturb_the_stream() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let mut plain = Session::builder(&model, &ds)
            .policy(BaselinePolicy::new())
            .seed(11)
            .build()
            .unwrap();
        let plain_reports = plain.run(10).unwrap();

        let mut peeky = Session::builder(&model, &ds)
            .policy(BaselinePolicy::new())
            .seed(11)
            .build()
            .unwrap();
        let mut peeked = Vec::new();
        let mut peeky_reports = Vec::new();
        for _ in 0..10 {
            peeked.push(peeky.peek_input());
            let _ = peeky.predicted_peak_bytes().unwrap();
            peeky_reports.push(peeky.step().unwrap());
        }
        assert_eq!(
            format!("{plain_reports:?}"),
            format!("{peeky_reports:?}"),
            "peeking must not perturb execution"
        );
        // The inputs the peeks saw are the inputs the steps ran.
        for (r, input) in plain_reports.iter().zip(&peeked) {
            assert_eq!(r.input, *input);
        }
    }

    #[test]
    fn recording_changes_nothing_and_yields_streams() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let worst = model.profile(&ds.worst_case()).unwrap();
        let budget = 5usize << 30;

        let mut plain = Session::builder(&model, &ds)
            .policy(SublinearPolicy::plan_offline(&worst, budget))
            .seed(3)
            .build()
            .unwrap();
        let plain_reports = plain.run(6).unwrap();

        let mut recorded = Session::builder(&model, &ds)
            .policy(SublinearPolicy::plan_offline(&worst, budget))
            .seed(3)
            .record(true)
            .build()
            .unwrap();
        let recorded_reports = recorded.run(6).unwrap();
        assert_eq!(
            format!("{plain_reports:?}"),
            format!("{recorded_reports:?}")
        );
        let records = recorded.take_records();
        assert_eq!(records.len(), 6);
        assert!(records.iter().all(|r| !r.events.is_empty()));
        // Folding each stream reproduces the report's peak.
        for (rec, rep) in records.iter().zip(&recorded_reports) {
            let fold = mimose_runtime::fold_events(rec.capacity, &rec.events);
            assert_eq!(fold.peak_used, rep.peak_bytes, "iter {}", rec.iter);
        }
    }

    #[test]
    fn checkpoint_resume_replays_byte_identically() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let worst = model.profile(&ds.worst_case()).unwrap();
        let budget = 5usize << 30;
        let mk_policy = || SublinearPolicy::plan_offline(&worst, budget);

        let mut whole = Session::builder(&model, &ds)
            .policy(mk_policy())
            .seed(13)
            .record(true)
            .build()
            .unwrap();
        let whole_reports = whole.run(12).unwrap();

        // Run 5 iterations, peek (so a pending batch is in flight), then
        // park, resume and run the remaining 7.
        let mut first = Session::builder(&model, &ds)
            .policy(mk_policy())
            .seed(13)
            .record(true)
            .build()
            .unwrap();
        let mut resumed_reports = first.run(5).unwrap();
        let _ = first.peek_input();
        let cp = first.checkpoint();
        assert_eq!(cp.cursor(), 5);
        assert_eq!(cp.seed(), 13);
        assert_eq!(cp.summary().iters, 5);
        let digest = cp.to_json();
        assert!(digest.contains("\"cursor\":5"), "{digest}");
        let mut second = Session::builder(&model, &ds)
            .record(true)
            .resume(cp)
            .build()
            .unwrap();
        assert_eq!(second.next_iter(), 5);
        resumed_reports.extend(second.run(7).unwrap());

        assert_eq!(
            format!("{whole_reports:?}"),
            format!("{resumed_reports:?}"),
            "checkpoint/resume must replay the uninterrupted run"
        );
        assert_eq!(
            format!("{:?}", whole.summary()),
            format!("{:?}", second.summary())
        );
        // Recorded streams accumulate across the boundary.
        assert_eq!(second.take_records().len(), 12);
    }

    #[test]
    fn step_past_epoch_is_data_exhausted() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let mut ds = presets::glue_qqp();
        if let Dataset::Text(d) = &mut ds {
            d.epoch_samples = d.batch_size * 2;
        }
        let mut session = Session::builder(&model, &ds)
            .policy(BaselinePolicy::new())
            .build()
            .unwrap();
        session.run(2).unwrap();
        match session.step() {
            Err(ExecError::DataExhausted { iter: 2, len: 2 }) => {}
            other => panic!("expected DataExhausted, got {other:?}"),
        }
    }
}
