//! Behavioural tests of the DTR tensor engine, driven through the public
//! API only.

use mimose_exec::{run_dtr_iteration, run_dtr_iteration_recorded};
use mimose_models::builders::{roberta_base, BertHead};
use mimose_models::{ModelInput, ModelProfile};
use mimose_runtime::fold_events;
use mimose_simgpu::DeviceProfile;

fn profile(seq: usize) -> ModelProfile {
    roberta_base(BertHead::Classification { labels: 1 })
        .profile(&ModelInput::tokens(64, seq))
        .unwrap()
}

#[test]
fn loose_budget_needs_no_evictions() {
    let p = profile(100);
    let dev = DeviceProfile::v100();
    let r = run_dtr_iteration(&p, 14 << 30, 16 << 30, &dev, 0);
    assert!(r.ok());
    assert_eq!(r.dropped_units, 0);
    assert_eq!(r.time.recompute_ns, 0);
}

#[test]
fn tight_budget_evicts_and_recomputes() {
    let p = profile(128);
    let dev = DeviceProfile::v100();
    let loose = run_dtr_iteration(&p, 14 << 30, 16 << 30, &dev, 0);
    let tight = run_dtr_iteration(&p, 5 << 30, 16 << 30, &dev, 0);
    assert!(tight.ok(), "tight run OOMed: {:?}", tight.oom);
    assert!(tight.dropped_units > 0);
    assert!(tight.time.recompute_ns > 0);
    assert!(tight.time.total_ns() > loose.time.total_ns());
    // Logical usage respects the budget.
    assert!(tight.peak_bytes <= 5 << 30);
}

#[test]
fn bookkeeping_overhead_exists_even_without_evictions() {
    // §III-B: "such overhead exists even without any activation tensor
    // dropped".
    let p = profile(80);
    let dev = DeviceProfile::v100();
    let r = run_dtr_iteration(&p, 14 << 30, 16 << 30, &dev, 0);
    assert!(r.time.bookkeeping_ns > 0);
    let frac = r.time.bookkeeping_ns as f64 / r.time.total_ns() as f64;
    assert!(frac > 0.05, "bookkeeping fraction too small: {frac}");
}

#[test]
fn infeasible_budget_reports_oom() {
    let p = profile(128);
    let dev = DeviceProfile::v100();
    let r = run_dtr_iteration(&p, 1 << 30, 16 << 30, &dev, 0);
    assert!(!r.ok());
}

#[test]
fn metadata_charge_is_uniform_across_every_slot_touch() {
    // §III-B: DTR maintains per-tensor runtime metadata on *every* slot
    // touch — creation, access (hit or miss in the backward pass) and
    // eviction — not only on the touches that happen to hit a resident
    // tensor. This pins the charge accounting exactly: each slot is touched
    // once at creation and once by its backward materialisation, and every
    // eviction adds one more.
    let p = profile(128);
    let dev = DeviceProfile::v100();
    let meta = dev.dtr_meta_ns_per_tensor as u64;
    let total_slots: usize = p.blocks.iter().map(|b| b.tensors.len() + 1).sum();

    let loose = run_dtr_iteration(&p, 14 << 30, 16 << 30, &dev, 0);
    assert_eq!(loose.dropped_units, 0);
    assert_eq!(
        loose.time.bookkeeping_ns,
        meta * 2 * total_slots as u64,
        "creation + backward access, uniformly charged"
    );

    let tight = run_dtr_iteration(&p, 5 << 30, 16 << 30, &dev, 0);
    assert!(tight.dropped_units > 0);
    assert_eq!(
        tight.time.bookkeeping_ns,
        meta * (2 * total_slots + tight.dropped_units) as u64,
        "each eviction is one extra metadata touch"
    );
}

#[test]
fn recorded_stream_folds_back_to_the_report() {
    let p = profile(100);
    let dev = DeviceProfile::v100();
    let capacity = 16usize << 30;
    let (report, events, stats) = run_dtr_iteration_recorded(&p, 6 << 30, capacity, &dev, 0);
    assert!(report.ok());
    let f = fold_events(capacity, &events);
    assert_eq!(f.time, report.time);
    assert_eq!(f.peak_used, report.peak_bytes);
    assert_eq!(f.report_extent(), report.peak_extent);
    assert_eq!(f.allocs, stats.allocs);
    assert_eq!(f.frees, stats.frees);
}
