//! Behavioural tests of the block engine's timeline, driven through the
//! public API only (the engine itself is a thin layer over
//! `mimose_runtime::EngineCore`).

use mimose_exec::{run_block_iteration, run_block_iteration_recorded, BlockMode};
use mimose_models::builders::{bert_base, BertHead};
use mimose_models::{ModelInput, ModelProfile};
use mimose_planner::memory_model::{peak_bytes, FinePlan};
use mimose_planner::{BlockAction, CheckpointPlan, HybridPlan};
use mimose_runtime::fold_events;
use mimose_simgpu::DeviceProfile;

fn profile(seq: usize) -> ModelProfile {
    bert_base(BertHead::Classification { labels: 2 })
        .profile(&ModelInput::tokens(32, seq))
        .unwrap()
}

#[test]
fn engine_peak_matches_analytic_model() {
    let p = profile(128);
    let dev = DeviceProfile::v100();
    for plan in [
        CheckpointPlan::none(p.blocks.len()),
        CheckpointPlan::all(p.blocks.len()),
        CheckpointPlan::from_indices(p.blocks.len(), &[1, 2, 3, 4, 5]).unwrap(),
    ] {
        let run = run_block_iteration(&p, BlockMode::Plan(&plan), 64 << 30, &dev, 0, 0);
        assert!(run.report.ok());
        let analytic = peak_bytes(&p, &plan);
        let measured = run.report.peak_bytes;
        let rel = (measured as f64 - analytic as f64).abs() / analytic as f64;
        assert!(
            rel < 0.001,
            "plan {plan}: measured {measured} vs analytic {analytic}"
        );
    }
}

#[test]
fn checkpointing_reduces_peak_and_adds_recompute() {
    let p = profile(200);
    let dev = DeviceProfile::v100();
    let none = run_block_iteration(
        &p,
        BlockMode::Plan(&CheckpointPlan::none(p.blocks.len())),
        64 << 30,
        &dev,
        0,
        0,
    );
    let all = run_block_iteration(
        &p,
        BlockMode::Plan(&CheckpointPlan::all(p.blocks.len())),
        64 << 30,
        &dev,
        0,
        0,
    );
    assert!(all.report.peak_bytes < none.report.peak_bytes);
    assert_eq!(none.report.time.recompute_ns, 0);
    assert!(all.report.time.recompute_ns > 0);
    assert!(all.report.time.total_ns() > none.report.time.total_ns());
}

#[test]
fn oom_reported_when_over_capacity() {
    let p = profile(300);
    let dev = DeviceProfile::v100();
    let run = run_block_iteration(
        &p,
        BlockMode::Plan(&CheckpointPlan::none(p.blocks.len())),
        3 << 30, // way below the no-checkpoint peak
        &dev,
        0,
        0,
    );
    assert!(!run.report.ok());
    assert_eq!(run.report.oom.as_ref().expect("oom").phase, "forward");
    assert!(run.report.recovery.is_empty(), "no ladder without a config");
    assert!(run.demoted_plan.is_none());
}

#[test]
fn shuttle_doubles_forward_time_and_measures() {
    let p = profile(128);
    let dev = DeviceProfile::v100();
    let plain = run_block_iteration(
        &p,
        BlockMode::Plan(&CheckpointPlan::all(p.blocks.len())),
        64 << 30,
        &dev,
        0,
        0,
    );
    let shuttle = run_block_iteration(&p, BlockMode::Shuttle, 64 << 30, &dev, 0, 0);
    assert!(shuttle.report.ok());
    let obs = shuttle.observations.as_ref().expect("shuttle observes");
    assert_eq!(obs.len(), p.blocks.len());
    for (o, b) in obs.iter().zip(&p.blocks) {
        assert_eq!(o.act_bytes, b.act_bytes);
        assert_eq!(o.out_bytes, b.out_bytes);
        assert!(o.fwd_ns > 0);
    }
    // Shuttle recompute equals a full extra forward; its peak matches
    // the all-checkpointed plan (§IV-B: same footprint as Sublinear).
    assert_eq!(shuttle.report.peak_bytes, plain.report.peak_bytes);
    assert!(shuttle.report.time.recompute_ns >= plain.report.time.recompute_ns);
}

#[test]
fn fine_plan_drops_partial_bytes() {
    let p = profile(200);
    let dev = DeviceProfile::v100();
    let n = p.blocks.len();
    let mut fine = FinePlan::none(n);
    // Drop ~half of encoder 1's internals.
    fine.dropped_bytes[1] = p.blocks[1].act_bytes / 2;
    fine.recompute_flops[1] = p.blocks[1].fwd_flops / 2.0;
    let run = run_block_iteration(&p, BlockMode::Fine(&fine), 64 << 30, &dev, 0, 0);
    assert!(run.report.ok());
    assert!(run.report.dropped_units > 0);
    assert!(run.report.time.recompute_ns > 0);
    let full = run_block_iteration(
        &p,
        BlockMode::Plan(&CheckpointPlan::none(n)),
        64 << 30,
        &dev,
        0,
        0,
    );
    assert!(run.report.peak_bytes < full.report.peak_bytes);
}

#[test]
fn hybrid_swap_charges_transfer_not_recompute() {
    let p = profile(200);
    let dev = DeviceProfile::v100();
    let n = p.blocks.len();
    let mut swap_plan = HybridPlan::keep_all(n);
    swap_plan.actions[1] = BlockAction::Swap;
    let mut rec_plan = HybridPlan::keep_all(n);
    rec_plan.actions[1] = BlockAction::Recompute;

    let swap = run_block_iteration(&p, BlockMode::Hybrid(&swap_plan), 64 << 30, &dev, 0, 0);
    let rec = run_block_iteration(&p, BlockMode::Hybrid(&rec_plan), 64 << 30, &dev, 0, 0);
    assert!(swap.report.ok() && rec.report.ok());
    // Identical memory behaviour...
    assert_eq!(swap.report.peak_bytes, rec.report.peak_bytes);
    // ...different time channels.
    assert!(swap.report.time.swap_ns > 0);
    assert_eq!(swap.report.time.recompute_ns, 0);
    assert!(rec.report.time.recompute_ns > 0);
    assert_eq!(rec.report.time.swap_ns, 0);
    // Expected swap charge: out + back, non-overlapped fraction.
    let expect = 2 * dev.swap_ns(p.blocks[1].act_bytes) as u64;
    let got = swap.report.time.swap_ns;
    assert!(
        (got as i64 - expect as i64).unsigned_abs() <= 2,
        "swap charge {got} vs {expect}"
    );
}

#[test]
fn planning_ns_charged_to_clock() {
    let p = profile(64);
    let dev = DeviceProfile::v100();
    let plan = CheckpointPlan::none(p.blocks.len());
    let without = run_block_iteration(&p, BlockMode::Plan(&plan), 64 << 30, &dev, 0, 0);
    let with = run_block_iteration(&p, BlockMode::Plan(&plan), 64 << 30, &dev, 0, 123_456);
    assert_eq!(
        with.report.time.total_ns(),
        without.report.time.total_ns() + 123_456
    );
}

#[test]
fn recorded_stream_folds_back_to_the_report() {
    let p = profile(128);
    let dev = DeviceProfile::v100();
    let plan = CheckpointPlan::from_indices(p.blocks.len(), &[1, 3, 5]).unwrap();
    let capacity = 64usize << 30;
    let (run, events, stats) =
        run_block_iteration_recorded(&p, BlockMode::Plan(&plan), capacity, &dev, 0, 777);
    assert!(run.report.ok());
    let f = fold_events(capacity, &events);
    assert_eq!(f.time, run.report.time);
    assert_eq!(f.peak_used, run.report.peak_bytes);
    assert_eq!(f.peak_frag, run.report.frag_bytes);
    assert_eq!(f.report_extent(), run.report.peak_extent);
    assert_eq!(f.allocs, stats.allocs);
    assert_eq!(f.frees, stats.frees);
    // Only the constant footprint (weights/grads/optimizer) and the batch
    // survive to iteration end; every activation was freed.
    let expected_live =
        mimose_runtime::align_up(p.const_bytes) + mimose_runtime::align_up(p.input_bytes);
    assert_eq!(f.live_bytes, expected_live);
}
