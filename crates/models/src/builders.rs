//! Builders for the architectures of the paper's Table II.
//!
//! Each builder returns a [`ModelGraph`] whose block boundaries mirror the
//! `torch.utils.checkpoint` granularity the paper plans at: one block per
//! transformer encoder/decoder layer (NLP) or per residual bottleneck
//! (detection backbones). Design-time hyper-parameters (hidden sizes, head
//! counts, channel widths) are fixed here; only the data-dependent input
//! dimensions vary across iterations.
//!
//! Parameter counts are calibrated to the real checkpoints (BERT-base
//! ≈ 109.5 M, RoBERTa-base ≈ 124.6 M, T5-base ≈ 222.9 M, ResNet-50/101
//! detection backbones ≈ 28/47 M) so the constant memory footprint — and
//! therefore every budget experiment — lands in the right range.

use crate::{Block, BlockBuilder, ModelGraph, NodeInput, OptimizerKind, Stage};
use mimose_ops::{OpKind, ReshapeRule};

/// Framework overhead charged to every model: CUDA context, cuDNN
/// workspaces, allocator slack (≈ what `nvidia-smi` shows for an idle
/// PyTorch process).
const FRAMEWORK_CONST_BYTES: usize = 256 << 20;

/// Extra reservation for detection heads whose proposal counts are content-
/// dependent (paper §IV-C, last paragraph).
const DETECTION_RESERVED_BYTES: usize = 256 << 20;

/// Dropout probability used throughout the transformer builders.
const DROPOUT_P: f32 = 0.1;

/// The task head attached to a BERT-family encoder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BertHead {
    /// Pooled-CLS classification over `labels` classes (GLUE-style tasks,
    /// and multiple choice with `labels == 1` per flattened choice).
    Classification {
        /// Number of output classes.
        labels: usize,
    },
    /// SQuAD-style span prediction: per-token start/end logits.
    QuestionAnswering,
}

fn linear(i: usize, o: usize, bias: bool) -> OpKind {
    OpKind::Linear {
        in_features: i,
        out_features: o,
        bias,
    }
}

/// Append a multi-head attention core to `b`: Q/K/V projections, scaled
/// dot-product scores, softmax, dropout, context matmul, head merge.
/// Returns the merged `[b, s, hidden]` node (before the output projection).
fn attention(
    b: &mut BlockBuilder,
    hidden: usize,
    heads: usize,
    bias: bool,
    q_src: NodeInput,
    kv_src: NodeInput,
) -> usize {
    let q = b.push(linear(hidden, hidden, bias), &[q_src]);
    let k = b.push(linear(hidden, hidden, bias), &[kv_src]);
    let v = b.push(linear(hidden, hidden, bias), &[kv_src]);
    let split = OpKind::Reshape(ReshapeRule::SplitHeads { heads });
    let qh = b.push_on(split, q);
    let kh = b.push_on(split, k);
    let vh = b.push_on(split, v);
    let kt = b.push_on(OpKind::TransposeLast2, kh);
    let scores = b.push(OpKind::MatMul, &[NodeInput::Node(qh), NodeInput::Node(kt)]);
    let scaled = b.push_on(OpKind::Scale, scores);
    let attn = b.push_on(OpKind::Softmax, scaled);
    let drop = b.push_on(OpKind::Dropout { p: DROPOUT_P }, attn);
    let ctx = b.push(
        OpKind::MatMul,
        &[NodeInput::Node(drop), NodeInput::Node(vh)],
    );
    b.push_on(OpKind::Reshape(ReshapeRule::MergeHeads { heads }), ctx)
}

/// One post-LayerNorm (BERT-style) encoder layer as a checkpointable block.
fn bert_encoder(idx: usize, hidden: usize, heads: usize, ff: usize) -> Block {
    let mut b = Block::builder(format!("encoder.{idx}"));
    let merged = attention(
        &mut b,
        hidden,
        heads,
        true,
        NodeInput::BlockInput,
        NodeInput::BlockInput,
    );
    let proj = b.push_on(linear(hidden, hidden, true), merged);
    let proj_d = b.push_on(OpKind::Dropout { p: DROPOUT_P }, proj);
    let res1 = b.push(
        OpKind::Add,
        &[NodeInput::Node(proj_d), NodeInput::BlockInput],
    );
    let ln1 = b.push_on(OpKind::LayerNorm { features: hidden }, res1);
    let ff1 = b.push_on(linear(hidden, ff, true), ln1);
    let gelu = b.push_on(OpKind::Gelu, ff1);
    let ff2 = b.push_on(linear(ff, hidden, true), gelu);
    let ff2_d = b.push_on(OpKind::Dropout { p: DROPOUT_P }, ff2);
    let res2 = b.push(OpKind::Add, &[NodeInput::Node(ff2_d), NodeInput::Node(ln1)]);
    b.push_on(OpKind::LayerNorm { features: hidden }, res2);
    b.build()
}

/// BERT-family embedding block: token + position (+ optional segment)
/// lookups, sum, LayerNorm, dropout.
fn bert_embeddings(vocab: usize, max_pos: usize, type_vocab: usize, hidden: usize) -> Block {
    let mut b = Block::builder("embeddings");
    let tok = b.push_on_input(OpKind::Embedding { vocab, hidden });
    let pos = b.push_on_input(OpKind::Embedding {
        vocab: max_pos,
        hidden,
    });
    let mut sum = b.push(OpKind::Add, &[NodeInput::Node(tok), NodeInput::Node(pos)]);
    if type_vocab > 0 {
        let typ = b.push_on_input(OpKind::Embedding {
            vocab: type_vocab,
            hidden,
        });
        sum = b.push(OpKind::Add, &[NodeInput::Node(sum), NodeInput::Node(typ)]);
    }
    let ln = b.push_on(OpKind::LayerNorm { features: hidden }, sum);
    b.push_on(OpKind::Dropout { p: DROPOUT_P }, ln);
    b.build()
}

/// BERT-family task head block.
fn bert_head(hidden: usize, head: BertHead) -> Block {
    let mut b = Block::builder("head");
    match head {
        BertHead::Classification { labels } => {
            let cls = b.push_on_input(OpKind::ClsSelect);
            let pool = b.push_on(linear(hidden, hidden, true), cls);
            let tanh = b.push_on(OpKind::Tanh, pool);
            let logits = b.push_on(linear(hidden, labels, true), tanh);
            b.push_on(OpKind::LossReduce, logits);
        }
        BertHead::QuestionAnswering => {
            let logits = b.push_on_input(linear(hidden, 2, true));
            b.push_on(OpKind::LossReduce, logits);
        }
    }
    b.build()
}

fn bert_family(
    name: &str,
    vocab: usize,
    max_pos: usize,
    type_vocab: usize,
    head: BertHead,
) -> ModelGraph {
    let (hidden, heads, ff, layers) = (768, 12, 3072, 12);
    let encoders = (0..layers)
        .map(|i| bert_encoder(i, hidden, heads, ff))
        .collect();
    ModelGraph {
        name: name.into(),
        stages: vec![
            Stage {
                name: "embeddings".into(),
                blocks: vec![bert_embeddings(vocab, max_pos, type_vocab, hidden)],
                capture_context: false,
            },
            Stage {
                name: "encoder".into(),
                blocks: encoders,
                capture_context: false,
            },
            Stage {
                name: "head".into(),
                blocks: vec![bert_head(hidden, head)],
                capture_context: false,
            },
        ],
        optimizer: OptimizerKind::Adam,
        max_extent: 512,
        framework_const_bytes: FRAMEWORK_CONST_BYTES,
        reserved_bytes: 0,
    }
}

/// BERT-base (12 layers, hidden 768, 12 heads, ≈ 109.5 M parameters) with
/// the given task head. Blocks: embeddings, `encoder.0..=11`, head — 14
/// total, so encoders are global blocks `1..=12` (Fig 9's indexing).
#[must_use]
pub fn bert_base(head: BertHead) -> ModelGraph {
    bert_family("bert-base", 30_522, 512, 2, head)
}

/// RoBERTa-base: BERT-base geometry with the 50 k BPE vocabulary and no
/// segment embeddings (≈ 124.6 M parameters).
#[must_use]
pub fn roberta_base(head: BertHead) -> ModelGraph {
    bert_family("roberta-base", 50_265, 514, 0, head)
}

/// One pre-LayerNorm T5 encoder layer.
fn t5_encoder(idx: usize, hidden: usize, heads: usize, ff: usize) -> Block {
    let mut b = Block::builder(format!("encoder.{idx}"));
    let ln1 = b.push_on_input(OpKind::LayerNorm { features: hidden });
    let merged = attention(
        &mut b,
        hidden,
        heads,
        false,
        NodeInput::Node(ln1),
        NodeInput::Node(ln1),
    );
    let o = b.push_on(linear(hidden, hidden, false), merged);
    let res1 = b.push(OpKind::Add, &[NodeInput::Node(o), NodeInput::BlockInput]);
    let ln2 = b.push_on(OpKind::LayerNorm { features: hidden }, res1);
    let ff1 = b.push_on(linear(hidden, ff, false), ln2);
    let relu = b.push_on(OpKind::Relu, ff1);
    let ff2 = b.push_on(linear(ff, hidden, false), relu);
    let drop = b.push_on(OpKind::Dropout { p: DROPOUT_P }, ff2);
    b.push(OpKind::Add, &[NodeInput::Node(drop), NodeInput::Node(res1)]);
    b.build()
}

/// One pre-LayerNorm T5 decoder layer: self-attention, cross-attention over
/// the captured encoder context, feed-forward.
fn t5_decoder(idx: usize, hidden: usize, heads: usize, ff: usize) -> Block {
    let mut b = Block::builder(format!("decoder.{idx}"));
    let ln1 = b.push_on_input(OpKind::LayerNorm { features: hidden });
    let merged = attention(
        &mut b,
        hidden,
        heads,
        false,
        NodeInput::Node(ln1),
        NodeInput::Node(ln1),
    );
    let o = b.push_on(linear(hidden, hidden, false), merged);
    let res1 = b.push(OpKind::Add, &[NodeInput::Node(o), NodeInput::BlockInput]);
    let ln2 = b.push_on(OpKind::LayerNorm { features: hidden }, res1);
    let merged2 = attention(
        &mut b,
        hidden,
        heads,
        false,
        NodeInput::Node(ln2),
        NodeInput::Context,
    );
    let o2 = b.push_on(linear(hidden, hidden, false), merged2);
    let res2 = b.push(OpKind::Add, &[NodeInput::Node(o2), NodeInput::Node(res1)]);
    let ln3 = b.push_on(OpKind::LayerNorm { features: hidden }, res2);
    let ff1 = b.push_on(linear(hidden, ff, false), ln3);
    let relu = b.push_on(OpKind::Relu, ff1);
    let ff2 = b.push_on(linear(ff, hidden, false), relu);
    let drop = b.push_on(OpKind::Dropout { p: DROPOUT_P }, ff2);
    b.push(OpKind::Add, &[NodeInput::Node(drop), NodeInput::Node(res2)]);
    b.build()
}

/// T5-base (12 encoder + 12 decoder layers, hidden 768, ff 3072, ≈ 222.9 M
/// parameters). The encoder stage captures the model-level context consumed
/// by decoder cross-attention; the LM head ties the embedding matrix
/// ([`OpKind::TiedLinear`]), so it adds no parameters. Blocks: shared
/// embedding, `encoder.0..=11`, `decoder.0..=11`, head — 26 total.
#[must_use]
pub fn t5_base() -> ModelGraph {
    let (hidden, heads, ff, layers, vocab) = (768, 12, 3072, 12, 32_128);
    let mut emb = Block::builder("shared_embedding");
    let tok = emb.push_on_input(OpKind::Embedding { vocab, hidden });
    emb.push_on(OpKind::Dropout { p: DROPOUT_P }, tok);
    let emb = emb.build();

    let mut head = Block::builder("lm_head");
    let ln = head.push_on_input(OpKind::LayerNorm { features: hidden });
    let logits = head.push_on(
        OpKind::TiedLinear {
            in_features: hidden,
            out_features: vocab,
        },
        ln,
    );
    head.push_on(OpKind::LossReduce, logits);
    let head = head.build();

    ModelGraph {
        name: "t5-base".into(),
        stages: vec![
            Stage {
                name: "embedding".into(),
                blocks: vec![emb],
                capture_context: false,
            },
            Stage {
                name: "encoder".into(),
                blocks: (0..layers)
                    .map(|i| t5_encoder(i, hidden, heads, ff))
                    .collect(),
                capture_context: true,
            },
            Stage {
                name: "decoder".into(),
                blocks: (0..layers)
                    .map(|i| t5_decoder(i, hidden, heads, ff))
                    .collect(),
                capture_context: false,
            },
            Stage {
                name: "head".into(),
                blocks: vec![head],
                capture_context: false,
            },
        ],
        optimizer: OptimizerKind::Adam,
        max_extent: 512,
        framework_const_bytes: FRAMEWORK_CONST_BYTES,
        reserved_bytes: 0,
    }
}

fn conv(in_c: usize, out_c: usize, kernel: usize, stride: usize, pad: usize) -> OpKind {
    OpKind::Conv2d {
        in_c,
        out_c,
        kernel,
        stride,
        pad,
        bias: false,
    }
}

/// ResNet stem: 7×7/2 convolution, BN, ReLU, 3×3/2 max-pool.
fn resnet_stem() -> Block {
    let mut b = Block::builder("stem");
    let c = b.push_on_input(conv(3, 64, 7, 2, 3));
    let bn = b.push_on(OpKind::BatchNorm2d { channels: 64 }, c);
    let r = b.push_on(OpKind::Relu, bn);
    b.push_on(
        OpKind::MaxPool2d {
            kernel: 3,
            stride: 2,
            pad: 1,
        },
        r,
    );
    b.build()
}

/// One ResNet bottleneck (1×1 reduce, 3×3, 1×1 expand, projection shortcut
/// when the shape changes) as a checkpointable block.
fn bottleneck(name: String, c_in: usize, mid: usize, c_out: usize, stride: usize) -> Block {
    let mut b = Block::builder(name);
    let c1 = b.push_on_input(conv(c_in, mid, 1, 1, 0));
    let b1 = b.push_on(OpKind::BatchNorm2d { channels: mid }, c1);
    let r1 = b.push_on(OpKind::Relu, b1);
    let c2 = b.push_on(conv(mid, mid, 3, stride, 1), r1);
    let b2 = b.push_on(OpKind::BatchNorm2d { channels: mid }, c2);
    let r2 = b.push_on(OpKind::Relu, b2);
    let c3 = b.push_on(conv(mid, c_out, 1, 1, 0), r2);
    let b3 = b.push_on(OpKind::BatchNorm2d { channels: c_out }, c3);
    let shortcut = if c_in != c_out || stride != 1 {
        let dc = b.push_on_input(conv(c_in, c_out, 1, stride, 0));
        NodeInput::Node(b.push_on(OpKind::BatchNorm2d { channels: c_out }, dc))
    } else {
        NodeInput::BlockInput
    };
    let add = b.push(OpKind::Add, &[NodeInput::Node(b3), shortcut]);
    b.push_on(OpKind::Relu, add);
    b.build()
}

/// A residual stage of `n` bottlenecks; the first carries the stride and
/// channel expansion.
fn resnet_stage(name: &str, n: usize, c_in: usize, mid: usize, stride: usize) -> Stage {
    let c_out = mid * 4;
    let mut blocks = vec![bottleneck(format!("{name}.0"), c_in, mid, c_out, stride)];
    for i in 1..n {
        blocks.push(bottleneck(format!("{name}.{i}"), c_out, mid, c_out, 1));
    }
    Stage {
        name: name.into(),
        blocks,
        capture_context: false,
    }
}

/// Dense detection head over the backbone's C5 feature map.
fn detection_head() -> Block {
    let mut b = Block::builder("det_head");
    let c = b.push_on_input(OpKind::Conv2d {
        in_c: 2048,
        out_c: 256,
        kernel: 3,
        stride: 1,
        pad: 1,
        bias: true,
    });
    let r = b.push_on(OpKind::Relu, c);
    let logits = b.push_on(
        OpKind::Conv2d {
            in_c: 256,
            out_c: 36,
            kernel: 3,
            stride: 1,
            pad: 1,
            bias: true,
        },
        r,
    );
    b.push_on(OpKind::LossReduce, logits);
    b.build()
}

fn resnet_od(name: &str, layer3_blocks: usize) -> ModelGraph {
    ModelGraph {
        name: name.into(),
        stages: vec![
            Stage {
                name: "stem".into(),
                blocks: vec![resnet_stem()],
                capture_context: false,
            },
            resnet_stage("layer1", 3, 64, 64, 1),
            resnet_stage("layer2", 4, 256, 128, 2),
            resnet_stage("layer3", layer3_blocks, 512, 256, 2),
            resnet_stage("layer4", 3, 1024, 512, 2),
            Stage {
                name: "head".into(),
                blocks: vec![detection_head()],
                capture_context: false,
            },
        ],
        optimizer: OptimizerKind::SgdMomentum,
        max_extent: 1344,
        framework_const_bytes: FRAMEWORK_CONST_BYTES,
        reserved_bytes: DETECTION_RESERVED_BYTES,
    }
}

/// ResNet-50 detection backbone + dense head (OD-R50 of Table II). One
/// block per bottleneck: stem + 3+4+6+3 bottlenecks + head = 18 blocks.
#[must_use]
pub fn resnet50_od() -> ModelGraph {
    resnet_od("resnet50-od", 6)
}

/// ResNet-101 detection backbone + dense head (OD-R101 of Table II). Stem +
/// 3+4+23+3 bottlenecks + head = 35 blocks.
#[must_use]
pub fn resnet101_od() -> ModelGraph {
    resnet_od("resnet101-od", 23)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelInput;

    #[test]
    fn bert_base_has_fourteen_blocks_and_real_scale() {
        let m = bert_base(BertHead::Classification { labels: 2 });
        assert_eq!(m.num_blocks(), 14);
        // ≈ 109.5 M parameters, within 2 %.
        let p = m.param_count() as f64;
        assert!((p / 109.5e6 - 1.0).abs() < 0.02, "{p}");
        m.validate(&ModelInput::tokens(32, 128)).unwrap();
        m.validate(&ModelInput::tokens(1, 512)).unwrap();
    }

    #[test]
    fn bert_encoders_are_interchangeable() {
        // Algorithm 1's bucket assumption and Fig 9's flat curve both rely
        // on the 12 encoders having identical per-block profiles.
        let m = bert_base(BertHead::QuestionAnswering);
        let p = m.profile(&ModelInput::tokens(12, 384)).unwrap();
        for i in 2..=12 {
            assert_eq!(p.blocks[i].act_bytes, p.blocks[1].act_bytes, "block {i}");
            assert_eq!(p.blocks[i].out_bytes, p.blocks[1].out_bytes, "block {i}");
            assert_eq!(p.blocks[i].in_bytes, p.blocks[1].in_bytes, "block {i}");
        }
    }

    #[test]
    fn roberta_drops_segments_and_grows_vocab() {
        let r = roberta_base(BertHead::Classification { labels: 1 });
        let b = bert_base(BertHead::Classification { labels: 1 });
        assert!(r.param_count() > b.param_count());
        let p = r.param_count() as f64;
        assert!((p / 124.6e6 - 1.0).abs() < 0.02, "{p}");
        r.validate(&ModelInput::tokens(64, 141)).unwrap();
    }

    #[test]
    fn t5_base_matches_published_scale() {
        let m = t5_base();
        assert_eq!(m.num_blocks(), 26);
        let p = m.param_count() as f64;
        assert!((p / 222.9e6 - 1.0).abs() < 0.02, "{p}");
        m.validate(&ModelInput::tokens(8, 460)).unwrap();
        m.validate(&ModelInput::tokens(8, 17)).unwrap();
    }

    #[test]
    fn t5_decoder_consumes_encoder_context() {
        let m = t5_base();
        let enc_stage = m.stages.iter().position(|s| s.capture_context).unwrap();
        assert_eq!(m.stages[enc_stage].name, "encoder");
        let uses_context = m.stages[enc_stage + 1].blocks.iter().any(|b| {
            b.nodes
                .iter()
                .any(|n| n.inputs.contains(&NodeInput::Context))
        });
        assert!(uses_context, "decoder never reads the captured context");
    }

    #[test]
    fn resnets_validate_across_the_multiscale_ladder() {
        for m in [resnet50_od(), resnet101_od()] {
            m.validate(&ModelInput::image(8, 1344, 1344)).unwrap();
            m.validate(&ModelInput::image(8, 480, 672)).unwrap();
            m.validate(&ModelInput::image(6, 800, 1216)).unwrap();
        }
        assert_eq!(resnet50_od().num_blocks(), 18);
        assert_eq!(resnet101_od().num_blocks(), 35);
        assert!(resnet101_od().param_count() > resnet50_od().param_count());
    }

    #[test]
    fn detection_models_reserve_head_memory() {
        let m = resnet50_od();
        assert!(m.reserved_bytes > 0);
        assert_eq!(m.optimizer, OptimizerKind::SgdMomentum);
    }
}
