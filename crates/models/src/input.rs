//! Per-iteration model inputs.

use mimose_tensor::{DType, Shape, TensorMeta};

/// Data-dependent dimensions of one mini-batch, after augmentation and
/// collation. Everything else about a model is fixed at design time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelInputKind {
    /// Token-id sequences `[batch, seq]` (NLP tasks).
    Tokens {
        /// Padded sequence length of the collated batch.
        seq: usize,
    },
    /// RGB images `[batch, 3, h, w]` (vision tasks).
    Image {
        /// Image height after augmentation + padding.
        h: usize,
        /// Image width after augmentation + padding.
        w: usize,
    },
}

/// One collated mini-batch input, as seen by the planner at the start of a
/// forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelInput {
    /// Number of samples in the mini-batch (× choices for multiple-choice
    /// tasks, already folded in by the data pipeline).
    pub batch: usize,
    /// Data-dependent dimensions.
    pub kind: ModelInputKind,
}

impl ModelInput {
    /// Token-sequence input.
    #[must_use]
    pub fn tokens(batch: usize, seq: usize) -> Self {
        ModelInput {
            batch,
            kind: ModelInputKind::Tokens { seq },
        }
    }

    /// Image input.
    #[must_use]
    pub fn image(batch: usize, h: usize, w: usize) -> Self {
        ModelInput {
            batch,
            kind: ModelInputKind::Image { h, w },
        }
    }

    /// The paper's "input size": number of elements in the collated input
    /// tensor for this mini-batch.
    #[must_use]
    pub fn input_size(&self) -> usize {
        match self.kind {
            ModelInputKind::Tokens { seq } => self.batch * seq,
            ModelInputKind::Image { h, w } => self.batch * 3 * h * w,
        }
    }

    /// Tensor metadata fed to the model's first block.
    #[must_use]
    pub fn meta(&self) -> TensorMeta {
        match self.kind {
            ModelInputKind::Tokens { seq } => {
                TensorMeta::new(Shape::new(&[self.batch, seq]), DType::I64)
            }
            ModelInputKind::Image { h, w } => {
                TensorMeta::new(Shape::new(&[self.batch, 3, h, w]), DType::F32)
            }
        }
    }

    /// Per-sample sequence length or spatial extent, used as plan-cache keys.
    #[must_use]
    pub fn per_sample_extent(&self) -> usize {
        match self.kind {
            ModelInputKind::Tokens { seq } => seq,
            ModelInputKind::Image { h, w } => h.max(w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_size_matches_paper_definition() {
        assert_eq!(ModelInput::tokens(32, 128).input_size(), 4096);
        assert_eq!(
            ModelInput::image(8, 800, 1216).input_size(),
            8 * 3 * 800 * 1216
        );
    }

    #[test]
    fn token_meta_is_i64_ids() {
        let m = ModelInput::tokens(16, 75).meta();
        assert_eq!(m.shape.dims(), &[16, 75]);
        assert_eq!(m.dtype, DType::I64);
    }

    #[test]
    fn image_meta_is_f32_chw() {
        let m = ModelInput::image(2, 480, 640).meta();
        assert_eq!(m.shape.dims(), &[2, 3, 480, 640]);
        assert_eq!(m.dtype, DType::F32);
    }
}
