//! Concrete cost/memory profiles of a model under a given input.
//!
//! A [`ModelProfile`] is the ground truth the simulator executes against and
//! the quantity Mimose's estimator learns to predict per block. The static
//! planners consume the profile of the *worst-case* input; Mimose consumes
//! the profile of *each* input.

use crate::optimize::{NodeAnnotation, StashMode};
use crate::{ModelError, ModelGraph, ModelInput, NodeInput};
use mimose_ops::OpCategory;
use mimose_tensor::{aligned_bytes, TensorMeta};

/// Allocator granularity used when converting logical bytes to resident
/// bytes (the CUDA caching allocator rounds to 512 B).
pub const ALLOC_ALIGN: usize = 512;

/// One saved activation tensor inside a block (DTR's planning granularity).
#[derive(Debug, Clone, Copy)]
pub struct TensorRecord {
    /// Resident bytes (alignment included).
    pub bytes: usize,
    /// FLOPs needed to recompute this tensor from its block-local parents.
    pub fwd_flops: f64,
    /// Operator category that produced it.
    pub category: OpCategory,
}

/// Cost/memory summary of one block for one concrete input.
#[derive(Debug, Clone)]
pub struct BlockProfile {
    /// Block name.
    pub name: String,
    /// Stage index the block belongs to.
    pub stage: usize,
    /// Global block index in execution order.
    pub index: usize,
    /// Bytes of activations saved inside the block for backward, *excluding*
    /// the block output (which is kept anyway as the checkpoint boundary).
    pub act_bytes: usize,
    /// Bytes of the block's output tensor.
    pub out_bytes: usize,
    /// Bytes of the block's input tensor.
    pub in_bytes: usize,
    /// Forward FLOPs (equals the recompute cost when checkpointed).
    pub fwd_flops: f64,
    /// Backward FLOPs.
    pub bwd_flops: f64,
    /// Bytes moved in the forward pass (roofline memory term).
    pub fwd_bytes_moved: usize,
    /// Saved tensors at operator granularity (for the DTR engine).
    pub tensors: Vec<TensorRecord>,
}

/// Whole-model profile for one concrete input.
#[derive(Debug, Clone)]
pub struct ModelProfile {
    /// Model name.
    pub model: String,
    /// The input this profile was computed for.
    pub input: ModelInput,
    /// The paper's scalar input size (elements in the collated batch).
    pub input_size: usize,
    /// Per-block profiles in execution order.
    pub blocks: Vec<BlockProfile>,
    /// Constant footprint: weights, grads, optimizer state, framework.
    pub const_bytes: usize,
    /// Learnable parameter count (for optimizer-step costing).
    pub param_count: usize,
    /// Bytes of the raw input tensor.
    pub input_bytes: usize,
}

impl ModelProfile {
    /// Total activation bytes if nothing is checkpointed (internal
    /// activations plus every block output).
    #[must_use]
    pub fn total_act_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.act_bytes + b.out_bytes).sum()
    }

    /// Peak memory if nothing is checkpointed: constant + input + all
    /// activations (the paper's `baseline` upper star in Fig 10).
    #[must_use]
    pub fn peak_no_checkpoint(&self) -> usize {
        self.const_bytes + self.input_bytes + self.total_act_bytes()
    }

    /// Approximate peak when *every* block is checkpointed (the lower star in
    /// Fig 10): constant + input + all block outputs + the largest single
    /// block's transient working set during recomputation.
    #[must_use]
    pub fn peak_all_checkpointed(&self) -> usize {
        let outs: usize = self.blocks.iter().map(|b| b.out_bytes).sum();
        let max_work = self.blocks.iter().map(|b| b.act_bytes).max().unwrap_or(0);
        self.const_bytes + self.input_bytes + outs + max_work
    }

    /// Total forward FLOPs of one iteration.
    #[must_use]
    pub fn total_fwd_flops(&self) -> f64 {
        self.blocks.iter().map(|b| b.fwd_flops).sum()
    }

    /// Total backward FLOPs of one iteration.
    #[must_use]
    pub fn total_bwd_flops(&self) -> f64 {
        self.blocks.iter().map(|b| b.bwd_flops).sum()
    }
}

impl ModelGraph {
    /// Compute the full profile of this model under `input`.
    ///
    /// # Panics
    ///
    /// Panics only on an internal invariant violation: a context reference
    /// before any context exists is rejected during graph validation.
    pub fn profile(&self, input: &ModelInput) -> Result<ModelProfile, ModelError> {
        profile_with_stash(self, input, None)
    }
}

/// Shared profiling walk.
///
/// When `annotations` is `Some`, nodes the optimization pipeline marked
/// [`StashMode::Elided`] contribute no activation bytes and nodes marked
/// [`StashMode::MaskOnly`] contribute only their compact forward mask —
/// FLOPs and bytes-moved are untouched either way (stash elision is
/// execution-time-neutral). `annotations` is indexed `[global_block][node]`.
pub(crate) fn profile_with_stash(
    graph: &ModelGraph,
    input: &ModelInput,
    annotations: Option<&[Vec<NodeAnnotation>]>,
) -> Result<ModelProfile, ModelError> {
    let mut blocks = Vec::with_capacity(graph.num_blocks());
    let mut cur = input.meta();
    let mut context: Option<TensorMeta> = None;
    let mut global_idx = 0usize;
    for (si, stage) in graph.stages.iter().enumerate() {
        for block in &stage.blocks {
            let outs = ModelGraph::eval_block(block, cur, context)?;
            let mut act = 0usize;
            let mut fwd = 0.0f64;
            let mut bwd = 0.0f64;
            let mut moved = 0usize;
            let mut tensors = Vec::new();
            let last = outs.len() - 1;
            for (ni, node) in block.nodes.iter().enumerate() {
                let operands: Vec<TensorMeta> = node
                    .inputs
                    .iter()
                    .map(|src| match *src {
                        NodeInput::BlockInput => cur,
                        NodeInput::Node(j) => outs[j],
                        NodeInput::Context => context.expect("checked in eval_block"),
                    })
                    .collect();
                let cost = node.op.cost(&operands, outs[ni]);
                fwd += cost.fwd_flops;
                bwd += cost.bwd_flops;
                moved += cost.fwd_bytes_moved;
                if ni != last && cost.saved_bytes > 0 {
                    let mode = annotations.map_or(StashMode::Default, |a| a[global_idx][ni].stash);
                    let logical = match mode {
                        StashMode::Default => cost.saved_bytes,
                        StashMode::MaskOnly => node.op.stash_mask_bytes(outs[ni]),
                        StashMode::Elided => 0,
                    };
                    if logical > 0 {
                        let b = aligned_bytes(logical, ALLOC_ALIGN);
                        act += b;
                        tensors.push(TensorRecord {
                            bytes: b,
                            fwd_flops: cost.fwd_flops,
                            category: node.op.category(),
                        });
                    }
                }
            }
            let out_meta = outs[last];
            blocks.push(BlockProfile {
                name: block.name.clone(),
                stage: si,
                index: global_idx,
                act_bytes: act,
                out_bytes: aligned_bytes(out_meta.bytes(), ALLOC_ALIGN),
                in_bytes: aligned_bytes(cur.bytes(), ALLOC_ALIGN),
                fwd_flops: fwd,
                bwd_flops: bwd,
                fwd_bytes_moved: moved,
                tensors,
            });
            cur = out_meta;
            global_idx += 1;
        }
        if stage.capture_context {
            context = Some(cur);
        }
    }
    Ok(ModelProfile {
        model: graph.name.clone(),
        input: *input,
        input_size: input.input_size(),
        blocks,
        const_bytes: graph.const_bytes(),
        param_count: graph.param_count(),
        input_bytes: aligned_bytes(input.meta().bytes(), ALLOC_ALIGN),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, OptimizerKind, Stage};
    use mimose_ops::OpKind;

    fn chain_model() -> ModelGraph {
        let mut b = Block::builder("emb");
        b.push_on_input(OpKind::Embedding {
            vocab: 1000,
            hidden: 64,
        });
        let emb = b.build();
        let mut blocks = vec![emb];
        for i in 0..3 {
            let mut b = Block::builder(format!("mlp.{i}"));
            let l = b.push_on_input(OpKind::Linear {
                in_features: 64,
                out_features: 64,
                bias: true,
            });
            let g = b.push_on(OpKind::Gelu, l);
            b.push(OpKind::Add, &[NodeInput::Node(g), NodeInput::BlockInput]);
            blocks.push(b.build());
        }
        ModelGraph {
            name: "chain".into(),
            stages: vec![Stage {
                name: "s".into(),
                blocks,
                capture_context: false,
            }],
            optimizer: OptimizerKind::Adam,
            max_extent: 128,
            framework_const_bytes: 0,
            reserved_bytes: 0,
        }
    }

    #[test]
    fn profile_has_one_entry_per_block() {
        let m = chain_model();
        let p = m.profile(&ModelInput::tokens(8, 32)).unwrap();
        assert_eq!(p.blocks.len(), 4);
        assert_eq!(p.input_size, 256);
    }

    #[test]
    fn activation_bytes_grow_linearly_for_mlp() {
        // MLP blocks are purely linear/elementwise: act bytes should scale
        // linearly with sequence length (the paper's implicit-reduction rule).
        let m = chain_model();
        let p1 = m.profile(&ModelInput::tokens(8, 32)).unwrap();
        let p2 = m.profile(&ModelInput::tokens(8, 64)).unwrap();
        let a1 = p1.blocks[1].act_bytes as f64;
        let a2 = p2.blocks[1].act_bytes as f64;
        assert!((a2 / a1 - 2.0).abs() < 0.05, "ratio {}", a2 / a1);
    }

    #[test]
    fn block_output_excluded_from_act_bytes() {
        let m = chain_model();
        let p = m.profile(&ModelInput::tokens(8, 32)).unwrap();
        // mlp block: internal saved = linear out + gelu out (the add is the
        // block output, excluded). 2 tensors of 8*32*64*4 bytes.
        let blk = &p.blocks[1];
        assert_eq!(blk.tensors.len(), 2);
        let one = aligned_bytes(8 * 32 * 64 * 4, ALLOC_ALIGN);
        assert_eq!(blk.act_bytes, 2 * one);
        assert_eq!(blk.out_bytes, one);
    }

    #[test]
    fn peaks_are_ordered() {
        let m = chain_model();
        let p = m.profile(&ModelInput::tokens(8, 32)).unwrap();
        assert!(p.peak_all_checkpointed() < p.peak_no_checkpoint());
        assert!(p.peak_all_checkpointed() > p.const_bytes);
    }

    #[test]
    fn flops_accumulate() {
        let m = chain_model();
        let p = m.profile(&ModelInput::tokens(8, 32)).unwrap();
        assert!(p.total_fwd_flops() > 0.0);
        assert!(p.total_bwd_flops() > p.total_fwd_flops());
    }
}
