//! Graph optimization passes that shrink activation footprints *before*
//! any checkpointing planner runs.
//!
//! Mimose plans at `torch.utils.checkpoint` block granularity, but every
//! byte a block never needs to materialize is a byte no planner has to
//! fight over. This module is a small tract-style optimization IR over
//! [`ModelGraph`]: a [`PassPipeline`] of auditable graph-to-graph passes —
//! view dedup, dead-node elimination, view-alias annotation, elementwise
//! fusion, and in-place stash annotation — each emitting a typed
//! [`PassReport`].
//!
//! The output is an [`OptimizedGraph`]: the transformed graph plus per-node
//! [`StashMode`] annotations. Its [`OptimizedGraph::profile`] is the
//! annotation-aware twin of [`ModelGraph::profile`]: elided nodes
//! contribute zero activation bytes and mask-only nodes contribute just
//! their compact forward mask, while FLOPs and bytes-moved are preserved
//! exactly (every pass is execution-time-neutral).
//!
//! ## Safety argument
//!
//! A node's stash may be elided only if three independent facts hold:
//!
//! 1. it is not the block's last node and is not (transitively) view-aliased
//!    by it — the block output is the checkpoint boundary and must stay;
//! 2. its own backward does not re-read its full output
//!    ([`mimose_ops::OpKind::backward_needs`] is not `Output`; `Mask`
//!    shrinks the stash to [`mimose_ops::OpKind::stash_mask_bytes`]
//!    instead of dropping it);
//! 3. no consumer's backward re-reads the tensor through the operand slot
//!    that references it ([`mimose_ops::OpKind::backward_needs_input`]), with reads
//!    resolved transitively through view nodes (a view aliases its input's
//!    storage, so reading the view reads the producer).
//!
//! `crates/verify` re-derives this predicate independently and lints every
//! [`OptimizedGraph`] against it (see `mimose-verify`'s graph lint).

use crate::profile::profile_with_stash;
use crate::{Block, ModelError, ModelGraph, ModelInput, ModelProfile, NodeInput};
use mimose_ops::BackwardNeeds;
use mimose_tensor::aligned_bytes;

/// How a node's forward output is stashed for the backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StashMode {
    /// Full output resident until backward (the raw-graph behaviour).
    Default,
    /// Only the compact forward mask (dropout keep-mask, max-pool argmax)
    /// stays resident; the full output is dropped.
    MaskOnly,
    /// Nothing stays resident: backward needs neither this output nor does
    /// any consumer re-read it.
    Elided,
}

/// Identity of an optimization pass, used for report typing and for
/// attributing per-node annotations to the pass that claimed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// Merge duplicate view nodes (same view op, same operands) so context
    /// and block-input edges are read through one alias, leaving the
    /// duplicates dead.
    DedupViews,
    /// Remove nodes unreachable from the block output.
    DeadNodeElim,
    /// Mark metadata-only view nodes as aliases of their input's storage.
    ViewAliasAnnotate,
    /// Elide stashes along unary elementwise chains whose sole consumer is
    /// another elementwise op (the classic fusion candidates).
    FuseElementwise,
    /// Elide or mask-shrink every remaining stash the safety predicate
    /// allows (in-place / recompute-from-input candidates).
    InplaceStash,
}

impl PassKind {
    /// Stable kebab-case pass name (used in reports, gates, and JSON).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            PassKind::DedupViews => "dedup-views",
            PassKind::DeadNodeElim => "dead-node-elim",
            PassKind::ViewAliasAnnotate => "view-alias",
            PassKind::FuseElementwise => "fuse-elementwise",
            PassKind::InplaceStash => "inplace-stash",
        }
    }
}

/// Per-node annotation produced by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeAnnotation {
    /// How this node's output is stashed.
    pub stash: StashMode,
    /// The pass that claimed the annotation (None for untouched nodes).
    pub by: Option<PassKind>,
}

impl NodeAnnotation {
    /// Untouched node: full stash, no claiming pass.
    pub const DEFAULT: NodeAnnotation = NodeAnnotation {
        stash: StashMode::Default,
        by: None,
    };
}

/// Typed report emitted by one pass over the whole graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassReport {
    /// Which pass ran.
    pub pass: PassKind,
    /// Nodes deleted from the graph.
    pub nodes_removed: usize,
    /// Operand references rewritten to point at a surviving node.
    pub nodes_rewired: usize,
    /// Nodes whose stash annotation this pass claimed.
    pub nodes_annotated: usize,
    /// Blocks in which this pass changed or annotated anything.
    pub blocks_touched: usize,
}

impl PassReport {
    fn empty(pass: PassKind) -> PassReport {
        PassReport {
            pass,
            nodes_removed: 0,
            nodes_rewired: 0,
            nodes_annotated: 0,
            blocks_touched: 0,
        }
    }

    /// True when the pass neither changed the graph nor claimed a new
    /// annotation — the fixpoint signal for idempotence checks.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.nodes_removed == 0 && self.nodes_rewired == 0 && self.nodes_annotated == 0
    }
}

/// One graph-to-graph pass. Passes mutate the graph and/or the per-node
/// annotations and report exactly what they did.
pub trait GraphPass {
    /// The pass identity.
    fn kind(&self) -> PassKind;
    /// Run over every block, updating `ann` (indexed `[global_block][node]`,
    /// kept in lockstep with the graph by structural passes).
    fn apply(&self, graph: &mut ModelGraph, ann: &mut Vec<Vec<NodeAnnotation>>) -> PassReport;
}

// ---------------------------------------------------------------------------
// Shared per-block dataflow analysis.
// ---------------------------------------------------------------------------

/// Per-block liveness facts shared by every annotation pass.
struct BlockAnalysis {
    /// Effective readers of each node: `(consumer, operand_idx)` pairs with
    /// view nodes resolved transitively (reading a view reads its producer's
    /// storage).
    reads: Vec<Vec<(usize, usize)>>,
    /// Whether the block's last node transitively view-aliases this node
    /// (its storage *is* the checkpoint boundary).
    aliases_output: Vec<bool>,
}

impl BlockAnalysis {
    fn of(block: &Block) -> BlockAnalysis {
        let n = block.nodes.len();
        let last = n - 1;

        // Direct consumers.
        let mut direct: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (ci, node) in block.nodes.iter().enumerate() {
            for (k, src) in node.inputs.iter().enumerate() {
                if let NodeInput::Node(j) = *src {
                    direct[j].push((ci, k));
                }
            }
        }

        // Resolve reads through views, highest index first so a view's own
        // effective reads are known before its producers ask for them.
        let mut reads: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for i in (0..n).rev() {
            let mut eff = Vec::new();
            for &(ci, k) in &direct[i] {
                if block.nodes[ci].op.is_view() {
                    eff.extend_from_slice(&reads[ci]);
                } else {
                    eff.push((ci, k));
                }
            }
            reads[i] = eff;
        }

        // Walk the view chain back from the block output.
        let mut aliases_output = vec![false; n];
        aliases_output[last] = true;
        let mut idx = last;
        while block.nodes[idx].op.is_view() {
            match block.nodes[idx].inputs[0] {
                NodeInput::Node(j) => {
                    aliases_output[j] = true;
                    idx = j;
                }
                _ => break,
            }
        }

        BlockAnalysis {
            reads,
            aliases_output,
        }
    }

    /// The [`StashMode`] the safety predicate permits for node `ni` — the
    /// most aggressive mode that is still provably safe. Views and the
    /// (possibly aliased) block output always answer `Default` here; the
    /// annotation passes handle views separately.
    fn safe_mode(&self, block: &Block, ni: usize) -> StashMode {
        let node = &block.nodes[ni];
        if ni == block.nodes.len() - 1 || self.aliases_output[ni] || node.op.is_view() {
            return StashMode::Default;
        }
        let consumers_free = self.reads[ni]
            .iter()
            .all(|&(ci, k)| !block.nodes[ci].op.backward_needs_input(k));
        if !consumers_free {
            return StashMode::Default;
        }
        match node.op.backward_needs() {
            BackwardNeeds::Nothing => StashMode::Elided,
            BackwardNeeds::Mask => StashMode::MaskOnly,
            BackwardNeeds::Output => StashMode::Default,
        }
    }
}

fn blocks_mut(graph: &mut ModelGraph) -> impl Iterator<Item = &mut Block> {
    graph.stages.iter_mut().flat_map(|s| s.blocks.iter_mut())
}

// ---------------------------------------------------------------------------
// Structural passes.
// ---------------------------------------------------------------------------

/// See [`PassKind::DedupViews`].
pub struct DedupViews;

impl GraphPass for DedupViews {
    fn kind(&self) -> PassKind {
        PassKind::DedupViews
    }

    fn apply(&self, graph: &mut ModelGraph, _ann: &mut Vec<Vec<NodeAnnotation>>) -> PassReport {
        let mut report = PassReport::empty(self.kind());
        for block in blocks_mut(graph) {
            let n = block.nodes.len();
            // canonical[j] = first earlier view node identical to j.
            let mut canonical: Vec<usize> = (0..n).collect();
            for j in 0..n {
                if !block.nodes[j].op.is_view() {
                    continue;
                }
                for i in 0..j {
                    if canonical[i] == i
                        && block.nodes[i].op.is_view()
                        && block.nodes[i] == block.nodes[j]
                    {
                        canonical[j] = i;
                        break;
                    }
                }
            }
            let mut rewired = 0usize;
            for node in &mut block.nodes {
                for src in &mut node.inputs {
                    if let NodeInput::Node(j) = *src {
                        if canonical[j] != j {
                            *src = NodeInput::Node(canonical[j]);
                            rewired += 1;
                        }
                    }
                }
            }
            if rewired > 0 {
                report.nodes_rewired += rewired;
                report.blocks_touched += 1;
            }
        }
        report
    }
}

/// See [`PassKind::DeadNodeElim`].
pub struct DeadNodeElim;

impl GraphPass for DeadNodeElim {
    fn kind(&self) -> PassKind {
        PassKind::DeadNodeElim
    }

    fn apply(&self, graph: &mut ModelGraph, ann: &mut Vec<Vec<NodeAnnotation>>) -> PassReport {
        let mut report = PassReport::empty(self.kind());
        for (bi, block) in blocks_mut(graph).enumerate() {
            let n = block.nodes.len();
            let last = n - 1;
            let mut live = vec![false; n];
            let mut stack = vec![last];
            while let Some(i) = stack.pop() {
                if live[i] {
                    continue;
                }
                live[i] = true;
                for src in &block.nodes[i].inputs {
                    if let NodeInput::Node(j) = *src {
                        stack.push(j);
                    }
                }
            }
            if live.iter().all(|&l| l) {
                continue;
            }
            // Compact, remapping indices.
            let mut remap = vec![usize::MAX; n];
            let mut kept = 0usize;
            for i in 0..n {
                if live[i] {
                    remap[i] = kept;
                    kept += 1;
                }
            }
            let mut new_nodes = Vec::with_capacity(kept);
            let mut new_ann = Vec::with_capacity(kept);
            for i in 0..n {
                if !live[i] {
                    continue;
                }
                let mut node = block.nodes[i].clone();
                for src in &mut node.inputs {
                    if let NodeInput::Node(j) = *src {
                        *src = NodeInput::Node(remap[j]);
                    }
                }
                new_nodes.push(node);
                new_ann.push(ann[bi][i]);
            }
            report.nodes_removed += n - kept;
            report.blocks_touched += 1;
            block.nodes = new_nodes;
            ann[bi] = new_ann;
        }
        report
    }
}

// ---------------------------------------------------------------------------
// Annotation passes.
// ---------------------------------------------------------------------------

/// See [`PassKind::ViewAliasAnnotate`].
pub struct ViewAliasAnnotate;

impl GraphPass for ViewAliasAnnotate {
    fn kind(&self) -> PassKind {
        PassKind::ViewAliasAnnotate
    }

    fn apply(&self, graph: &mut ModelGraph, ann: &mut Vec<Vec<NodeAnnotation>>) -> PassReport {
        let mut report = PassReport::empty(self.kind());
        for (bi, block) in blocks_mut(graph).enumerate() {
            let mut touched = false;
            for (ni, node) in block.nodes.iter().enumerate() {
                if node.op.is_view() && ann[bi][ni].by.is_none() {
                    // A view owns no storage; record the alias explicitly so
                    // downstream byte accounting is auditable (saved bytes
                    // were already zero for views).
                    ann[bi][ni] = NodeAnnotation {
                        stash: StashMode::Elided,
                        by: Some(PassKind::ViewAliasAnnotate),
                    };
                    report.nodes_annotated += 1;
                    touched = true;
                }
            }
            if touched {
                report.blocks_touched += 1;
            }
        }
        report
    }
}

/// See [`PassKind::FuseElementwise`].
pub struct FuseElementwise;

impl GraphPass for FuseElementwise {
    fn kind(&self) -> PassKind {
        PassKind::FuseElementwise
    }

    fn apply(&self, graph: &mut ModelGraph, ann: &mut Vec<Vec<NodeAnnotation>>) -> PassReport {
        use mimose_ops::OpCategory;
        let mut report = PassReport::empty(self.kind());
        for (bi, block) in blocks_mut(graph).enumerate() {
            let analysis = BlockAnalysis::of(block);
            let mut touched = false;
            for (ni, slot) in ann[bi].iter_mut().enumerate() {
                if slot.by.is_some() {
                    continue;
                }
                let node = &block.nodes[ni];
                let fusable = node.op.category() == OpCategory::Elementwise
                    && node.op.arity() == 1
                    && analysis.reads[ni].len() == 1
                    && block.nodes[analysis.reads[ni][0].0].op.category()
                        == OpCategory::Elementwise;
                if fusable && analysis.safe_mode(block, ni) == StashMode::Elided {
                    *slot = NodeAnnotation {
                        stash: StashMode::Elided,
                        by: Some(PassKind::FuseElementwise),
                    };
                    report.nodes_annotated += 1;
                    touched = true;
                }
            }
            if touched {
                report.blocks_touched += 1;
            }
        }
        report
    }
}

/// See [`PassKind::InplaceStash`].
pub struct InplaceStash;

impl GraphPass for InplaceStash {
    fn kind(&self) -> PassKind {
        PassKind::InplaceStash
    }

    fn apply(&self, graph: &mut ModelGraph, ann: &mut Vec<Vec<NodeAnnotation>>) -> PassReport {
        let mut report = PassReport::empty(self.kind());
        for (bi, block) in blocks_mut(graph).enumerate() {
            let analysis = BlockAnalysis::of(block);
            let mut touched = false;
            for (ni, slot) in ann[bi].iter_mut().enumerate() {
                if slot.by.is_some() {
                    continue;
                }
                let mode = analysis.safe_mode(block, ni);
                if mode != StashMode::Default {
                    *slot = NodeAnnotation {
                        stash: mode,
                        by: Some(PassKind::InplaceStash),
                    };
                    report.nodes_annotated += 1;
                    touched = true;
                }
            }
            if touched {
                report.blocks_touched += 1;
            }
        }
        report
    }
}

// ---------------------------------------------------------------------------
// Pipeline and OptimizedGraph.
// ---------------------------------------------------------------------------

/// An ordered sequence of [`GraphPass`]es.
pub struct PassPipeline {
    passes: Vec<Box<dyn GraphPass>>,
}

impl PassPipeline {
    /// Build a pipeline from an explicit pass list (test harnesses and the
    /// verify crate's adversarial lint fixtures use this; production code
    /// goes through [`PassPipeline::standard`]).
    #[must_use]
    pub fn new(passes: Vec<Box<dyn GraphPass>>) -> PassPipeline {
        PassPipeline { passes }
    }

    /// The standard pipeline: structural cleanup (view dedup, dead-node
    /// elimination) followed by annotation (view aliases, elementwise
    /// fusion, in-place stash). Running it on its own output is a no-op
    /// (the fixpoint is reached after one run).
    #[must_use]
    pub fn standard() -> PassPipeline {
        PassPipeline {
            passes: vec![
                Box::new(DedupViews),
                Box::new(DeadNodeElim),
                Box::new(ViewAliasAnnotate),
                Box::new(FuseElementwise),
                Box::new(InplaceStash),
            ],
        }
    }

    /// Run every pass over `graph`, producing an [`OptimizedGraph`] that
    /// keeps the raw graph for evidence and the per-pass reports for audit.
    #[must_use]
    pub fn run(&self, graph: ModelGraph) -> OptimizedGraph {
        let raw = graph.clone();
        let mut g = graph;
        let mut ann: Vec<Vec<NodeAnnotation>> = g
            .blocks()
            .map(|(_, b)| vec![NodeAnnotation::DEFAULT; b.nodes.len()])
            .collect();
        let reports = self
            .passes
            .iter()
            .map(|p| p.apply(&mut g, &mut ann))
            .collect();
        OptimizedGraph {
            raw,
            graph: g,
            annotations: ann,
            reports,
        }
    }
}

/// A [`ModelGraph`] that has been through the [`PassPipeline`], plus the
/// stash annotations and pass reports that justify its smaller footprint.
///
/// This is the only model type downstream code (sessions, trainers, the
/// cluster scheduler) accepts. It dereferences to the optimized
/// [`ModelGraph`] for structural access; [`OptimizedGraph::profile`] shadows
/// [`ModelGraph::profile`] with the annotation-aware walk.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizedGraph {
    raw: ModelGraph,
    graph: ModelGraph,
    annotations: Vec<Vec<NodeAnnotation>>,
    reports: Vec<PassReport>,
}

impl std::ops::Deref for OptimizedGraph {
    type Target = ModelGraph;
    fn deref(&self) -> &ModelGraph {
        &self.graph
    }
}

impl OptimizedGraph {
    /// Wrap a graph without running any pass: annotations are all
    /// [`StashMode::Default`], so profiles are byte-identical to the raw
    /// graph's. Escape hatch for fixtures pinned to raw-graph byte counts.
    #[must_use]
    pub fn unoptimized(graph: ModelGraph) -> OptimizedGraph {
        let annotations = graph
            .blocks()
            .map(|(_, b)| vec![NodeAnnotation::DEFAULT; b.nodes.len()])
            .collect();
        OptimizedGraph {
            raw: graph.clone(),
            graph,
            annotations,
            reports: Vec::new(),
        }
    }

    /// The graph as built, before any pass ran.
    #[must_use]
    pub fn raw(&self) -> &ModelGraph {
        &self.raw
    }

    /// The transformed graph (what [`Deref`](std::ops::Deref) exposes).
    #[must_use]
    pub fn optimized(&self) -> &ModelGraph {
        &self.graph
    }

    /// Per-node annotations, indexed `[global_block][node]`.
    #[must_use]
    pub fn annotations(&self) -> &[Vec<NodeAnnotation>] {
        &self.annotations
    }

    /// One report per pass, in pipeline order.
    #[must_use]
    pub fn reports(&self) -> &[PassReport] {
        &self.reports
    }

    /// Annotation-aware profile: like [`ModelGraph::profile`] but elided
    /// stashes contribute no activation bytes and mask-only stashes
    /// contribute just their mask. FLOPs and bytes-moved match the live
    /// subgraph exactly.
    ///
    /// # Errors
    ///
    /// Propagates any [`ModelError`] from shape evaluation.
    pub fn profile(&self, input: &ModelInput) -> Result<ModelProfile, ModelError> {
        profile_with_stash(&self.graph, input, Some(&self.annotations))
    }

    /// Profile of the raw (pre-pass) graph — the "before" side of evidence.
    ///
    /// # Errors
    ///
    /// Propagates any [`ModelError`] from shape evaluation.
    pub fn raw_profile(&self, input: &ModelInput) -> Result<ModelProfile, ModelError> {
        self.raw.profile(input)
    }

    /// Measure the before/after delta for one concrete input, attributing
    /// byte savings to the pass that claimed each node.
    ///
    /// # Errors
    ///
    /// Propagates any [`ModelError`] from shape evaluation.
    ///
    /// # Panics
    ///
    /// Never in practice: a `Context` operand with no stage context is
    /// rejected by `eval_block` before the attribution walk reads it.
    pub fn delta(&self, input: &ModelInput) -> Result<GraphDelta, ModelError> {
        let raw = self.raw.profile(input)?;
        let opt = self.profile(input)?;
        let per_block = raw
            .blocks
            .iter()
            .zip(&opt.blocks)
            .map(|(r, o)| BlockDelta {
                name: o.name.clone(),
                index: o.index,
                raw_act_bytes: r.act_bytes,
                opt_act_bytes: o.act_bytes,
                raw_fwd_flops: r.fwd_flops,
                opt_fwd_flops: o.fwd_flops,
            })
            .collect();

        // Attribute annotated savings pass by pass on the optimized graph.
        let full = profile_with_stash(&self.graph, input, None)?;
        let mut per_pass: Vec<PassDelta> = self
            .reports
            .iter()
            .map(|r| PassDelta {
                pass: r.pass,
                bytes_saved: 0,
                nodes: r.nodes_removed + r.nodes_annotated,
            })
            .collect();
        let mut cur = input.meta();
        let mut context = None;
        let mut bi = 0usize;
        for stage in &self.graph.stages {
            for block in &stage.blocks {
                let outs = ModelGraph::eval_block(block, cur, context)?;
                let last = outs.len() - 1;
                for (ni, node) in block.nodes.iter().enumerate() {
                    let NodeAnnotation {
                        stash,
                        by: Some(pass),
                    } = self.annotations[bi][ni]
                    else {
                        continue;
                    };
                    if ni == last {
                        continue;
                    }
                    let operands: Vec<_> = node
                        .inputs
                        .iter()
                        .map(|src| match *src {
                            NodeInput::BlockInput => cur,
                            NodeInput::Node(j) => outs[j],
                            NodeInput::Context => context.expect("checked in eval_block"),
                        })
                        .collect();
                    let cost = node.op.cost(&operands, outs[ni]);
                    if cost.saved_bytes == 0 {
                        continue;
                    }
                    let before = aligned_bytes(cost.saved_bytes, crate::ALLOC_ALIGN);
                    let after = match stash {
                        StashMode::Default => before,
                        StashMode::Elided => 0,
                        StashMode::MaskOnly => {
                            let mask = node.op.stash_mask_bytes(outs[ni]);
                            if mask == 0 {
                                0
                            } else {
                                aligned_bytes(mask, crate::ALLOC_ALIGN)
                            }
                        }
                    };
                    if let Some(entry) = per_pass.iter_mut().find(|d| d.pass == pass) {
                        entry.bytes_saved += before - after;
                    }
                }
                cur = outs[last];
                bi += 1;
            }
            if stage.capture_context {
                context = Some(cur);
            }
        }
        // Bytes that vanished structurally (dead nodes) are the residual
        // between raw and the full-stash profile of the optimized graph.
        let structural: usize = raw.total_act_bytes() - full.total_act_bytes();
        if let Some(entry) = per_pass
            .iter_mut()
            .find(|d| d.pass == PassKind::DeadNodeElim)
        {
            entry.bytes_saved += structural;
        }

        Ok(GraphDelta {
            input: *input,
            raw_act_bytes: raw.total_act_bytes(),
            opt_act_bytes: opt.total_act_bytes(),
            raw_peak_bytes: raw.peak_no_checkpoint(),
            opt_peak_bytes: opt.peak_no_checkpoint(),
            per_block,
            per_pass,
        })
    }
}

impl ModelGraph {
    /// Run the standard [`PassPipeline`] over this graph.
    #[must_use]
    pub fn optimize(self) -> OptimizedGraph {
        PassPipeline::standard().run(self)
    }
}

/// Before/after footprint of one block for one concrete input.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDelta {
    /// Block name.
    pub name: String,
    /// Global block index.
    pub index: usize,
    /// Activation bytes stashed by the raw graph.
    pub raw_act_bytes: usize,
    /// Activation bytes stashed after optimization.
    pub opt_act_bytes: usize,
    /// Forward FLOPs of the raw block.
    pub raw_fwd_flops: f64,
    /// Forward FLOPs of the optimized block.
    pub opt_fwd_flops: f64,
}

/// Bytes a single pass saved for one concrete input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassDelta {
    /// The pass.
    pub pass: PassKind,
    /// Activation bytes this pass's claims released.
    pub bytes_saved: usize,
    /// Nodes the pass removed or annotated (input-independent).
    pub nodes: usize,
}

/// Whole-model before/after accounting for one concrete input.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphDelta {
    /// The input measured.
    pub input: ModelInput,
    /// Total per-block activation bytes of the raw graph.
    pub raw_act_bytes: usize,
    /// Total per-block activation bytes after optimization.
    pub opt_act_bytes: usize,
    /// `peak_no_checkpoint` of the raw graph.
    pub raw_peak_bytes: usize,
    /// `peak_no_checkpoint` after optimization.
    pub opt_peak_bytes: usize,
    /// Per-block before/after rows in execution order.
    pub per_block: Vec<BlockDelta>,
    /// Per-pass savings attribution in pipeline order.
    pub per_pass: Vec<PassDelta>,
}

impl GraphDelta {
    /// Total activation bytes released by the pipeline.
    #[must_use]
    pub fn bytes_saved(&self) -> usize {
        self.raw_act_bytes.saturating_sub(self.opt_act_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{bert_base, resnet50_od, roberta_base, t5_base, BertHead};
    use crate::{Block, OptimizerKind, Stage};
    use mimose_ops::{OpKind, ReshapeRule};

    fn graph_of(blocks: Vec<Block>) -> ModelGraph {
        ModelGraph {
            name: "test".into(),
            stages: vec![Stage {
                name: "s".into(),
                blocks,
                capture_context: false,
            }],
            optimizer: OptimizerKind::Adam,
            max_extent: 128,
            framework_const_bytes: 0,
            reserved_bytes: 0,
        }
    }

    fn canonical_builders() -> Vec<(&'static str, ModelGraph, ModelInput)> {
        vec![
            (
                "bert-base",
                bert_base(BertHead::Classification { labels: 2 }),
                ModelInput::tokens(8, 128),
            ),
            (
                "roberta-base",
                roberta_base(BertHead::Classification { labels: 1 }),
                ModelInput::tokens(8, 128),
            ),
            ("t5-base", t5_base(), ModelInput::tokens(4, 128)),
            ("resnet50-od", resnet50_od(), ModelInput::image(2, 640, 640)),
        ]
    }

    #[test]
    fn dedup_views_rewires_and_dce_removes() {
        let mut b = Block::builder("dup");
        let l = b.push_on_input(OpKind::Linear {
            in_features: 8,
            out_features: 8,
            bias: false,
        });
        let t1 = b.push_on(OpKind::TransposeLast2, l);
        let t2 = b.push_on(OpKind::TransposeLast2, l); // duplicate view
        let m1 = b.push(OpKind::MatMul, &[NodeInput::Node(l), NodeInput::Node(t1)]);
        let m2 = b.push(OpKind::MatMul, &[NodeInput::Node(l), NodeInput::Node(t2)]);
        b.push(OpKind::Add, &[NodeInput::Node(m1), NodeInput::Node(m2)]);
        let g = graph_of(vec![b.build()]);
        let opt = g.optimize();
        let dedup = opt.reports()[0];
        assert_eq!(dedup.pass, PassKind::DedupViews);
        assert_eq!(dedup.nodes_rewired, 1);
        let dce = opt.reports()[1];
        assert_eq!(dce.pass, PassKind::DeadNodeElim);
        assert_eq!(dce.nodes_removed, 1);
        assert_eq!(opt.optimized().stages[0].blocks[0].nodes.len(), 5);
        // Still evaluates cleanly.
        opt.profile(&ModelInput::tokens(2, 8)).unwrap();
    }

    #[test]
    fn dead_nodes_are_removed() {
        let mut b = Block::builder("dead");
        let l = b.push_on_input(OpKind::Linear {
            in_features: 8,
            out_features: 8,
            bias: false,
        });
        b.push_on(OpKind::Relu, l); // dead: nothing reads it, not last
        b.push_on(OpKind::Gelu, l);
        let g = graph_of(vec![b.build()]);
        let opt = g.optimize();
        assert_eq!(opt.reports()[1].nodes_removed, 1);
        assert_eq!(opt.optimized().stages[0].blocks[0].nodes.len(), 2);
        let d = opt.delta(&ModelInput::tokens(2, 8)).unwrap();
        // The dead relu's stash is gone; attribution lands on dead-node-elim.
        let dce = d
            .per_pass
            .iter()
            .find(|p| p.pass == PassKind::DeadNodeElim)
            .unwrap();
        assert!(dce.bytes_saved > 0);
    }

    #[test]
    fn gelu_input_stays_resident() {
        // BERT ff1: Linear -> Gelu. Gelu's backward reads its *input*, so
        // the linear's output must keep StashMode::Default; gelu's own
        // output can go once its consumer doesn't re-read it.
        let mut b = Block::builder("ff");
        let l = b.push_on_input(OpKind::Linear {
            in_features: 8,
            out_features: 8,
            bias: true,
        });
        let g1 = b.push_on(OpKind::Gelu, l);
        let s = b.push_on(OpKind::Scale, g1);
        b.push(OpKind::Add, &[NodeInput::Node(s), NodeInput::BlockInput]);
        let g = graph_of(vec![b.build()]);
        let opt = g.optimize();
        let ann = &opt.annotations()[0];
        assert_eq!(ann[0].stash, StashMode::Default); // linear feeding gelu
        assert_eq!(ann[1].stash, StashMode::Elided); // gelu feeding scale
        assert_eq!(ann[1].by, Some(PassKind::FuseElementwise));
        // But gelu feeding a Linear (BERT's real ff2) must stay: covered on
        // the full builder below via bert_and_t5_shrink_measurably.
    }

    #[test]
    fn relu_output_stays_but_producer_is_freed() {
        // T5 ff1: Linear -> Relu. Relu's backward needs only its own output,
        // and does not read its input — so the 4h linear output is freed.
        let mut b = Block::builder("ff");
        let l = b.push_on_input(OpKind::Linear {
            in_features: 8,
            out_features: 32,
            bias: false,
        });
        let r = b.push_on(OpKind::Relu, l);
        b.push_on(
            OpKind::Linear {
                in_features: 32,
                out_features: 8,
                bias: false,
            },
            r,
        );
        let g = graph_of(vec![b.build()]);
        let opt = g.optimize();
        let ann = &opt.annotations()[0];
        assert_eq!(ann[0].stash, StashMode::Elided);
        assert_eq!(ann[1].stash, StashMode::Default); // relu keeps its output
    }

    #[test]
    fn output_alias_through_views_is_protected() {
        // The block output is a view of the matmul: the matmul's storage IS
        // the checkpoint boundary and must not be elided.
        let mut b = Block::builder("alias");
        let l = b.push_on_input(OpKind::Linear {
            in_features: 8,
            out_features: 8,
            bias: false,
        });
        let a = b.push(OpKind::Add, &[NodeInput::Node(l), NodeInput::BlockInput]);
        b.push_on(OpKind::TransposeLast2, a);
        let g = graph_of(vec![b.build()]);
        let opt = g.optimize();
        let ann = &opt.annotations()[0];
        // `a` (the Add) would be elidable, but it aliases the output.
        assert_eq!(ann[1].stash, StashMode::Default);
    }

    #[test]
    fn bert_and_t5_shrink_measurably() {
        for (name, g, input) in [
            (
                "bert-base",
                bert_base(BertHead::Classification { labels: 2 }),
                ModelInput::tokens(8, 128),
            ),
            ("t5-base", t5_base(), ModelInput::tokens(4, 128)),
        ] {
            let opt = g.optimize();
            let d = opt.delta(&input).unwrap();
            assert!(
                d.bytes_saved() > d.raw_act_bytes / 10,
                "{name}: saved {} of {}",
                d.bytes_saved(),
                d.raw_act_bytes
            );
            assert!(d.opt_peak_bytes < d.raw_peak_bytes, "{name}");
            // Execution cost must be untouched on these (no dead nodes).
            for blk in &d.per_block {
                assert!(
                    (blk.raw_fwd_flops - blk.opt_fwd_flops).abs() < 1e-6,
                    "{name}/{}",
                    blk.name
                );
                assert!(
                    blk.opt_act_bytes <= blk.raw_act_bytes,
                    "{name}/{}",
                    blk.name
                );
            }
        }
    }

    #[test]
    fn resnet_batchnorm_outputs_are_freed() {
        let opt = resnet50_od().optimize();
        let d = opt.delta(&ModelInput::image(2, 640, 640)).unwrap();
        assert!(d.bytes_saved() > 0);
        let inplace = d
            .per_pass
            .iter()
            .find(|p| p.pass == PassKind::InplaceStash)
            .unwrap();
        assert!(inplace.bytes_saved > 0);
    }

    #[test]
    fn dropout_shrinks_to_mask() {
        let opt = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let has_mask_only = opt
            .annotations()
            .iter()
            .flatten()
            .any(|a| a.stash == StashMode::MaskOnly);
        assert!(has_mask_only, "some dropout should keep only its mask");
    }

    #[test]
    fn pipeline_is_idempotent_on_canonical_builders() {
        for (name, g, _input) in canonical_builders() {
            let once = g.optimize();
            let twice = once.optimized().clone().optimize();
            assert_eq!(
                once.optimized(),
                twice.optimized(),
                "{name}: second run changed the graph"
            );
            assert_eq!(
                once.annotations(),
                twice.annotations(),
                "{name}: second run changed annotations"
            );
            for r in twice.reports() {
                assert_eq!(r.nodes_removed, 0, "{name}/{}", r.pass.name());
                assert_eq!(r.nodes_rewired, 0, "{name}/{}", r.pass.name());
            }
        }
    }

    #[test]
    fn unoptimized_profiles_match_raw_byte_for_byte() {
        for (name, g, input) in canonical_builders() {
            let raw = g.profile(&input).unwrap();
            let wrapped = OptimizedGraph::unoptimized(g.clone());
            let p = wrapped.profile(&input).unwrap();
            assert_eq!(
                raw.total_act_bytes(),
                p.total_act_bytes(),
                "{name}: unoptimized wrapper changed bytes"
            );
            assert_eq!(raw.peak_no_checkpoint(), p.peak_no_checkpoint(), "{name}");
        }
    }

    #[test]
    fn per_pass_attribution_sums_to_total() {
        for (name, g, input) in canonical_builders() {
            let opt = g.optimize();
            let d = opt.delta(&input).unwrap();
            let attributed: usize = d.per_pass.iter().map(|p| p.bytes_saved).sum();
            assert_eq!(attributed, d.bytes_saved(), "{name}");
        }
    }

    #[test]
    fn deref_exposes_structure() {
        let opt = bert_base(BertHead::Classification { labels: 2 }).optimize();
        assert_eq!(opt.name, "bert-base");
        assert!(opt.num_blocks() > 10);
        assert_eq!(opt.param_count(), opt.raw().param_count());
    }

    #[test]
    fn split_heads_views_exist_for_alias_pass() {
        let opt = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let alias = opt
            .reports()
            .iter()
            .find(|r| r.pass == PassKind::ViewAliasAnnotate)
            .unwrap();
        assert!(alias.nodes_annotated > 0);
        // Sanity: views are Reshape/TransposeLast2 and keep zero bytes.
        let _ = ReshapeRule::Flatten;
    }
}
