//! # mimose-models
//!
//! Block/stage model graphs for the Mimose reproduction: the model is a chain
//! of stages, each stage a chain of checkpointable blocks (mirroring
//! `torch.utils.checkpoint` granularity), each block a small DAG of
//! `mimose-ops` operators. Builders construct every architecture in the
//! paper's Table II plus Swin-tiny (§IV-D).

#![warn(missing_docs)]

pub mod builders;
mod graph;
mod input;
pub mod optimize;
mod profile;

pub use graph::{
    Block, BlockBuilder, ModelError, ModelGraph, Node, NodeInput, OptimizerKind, Stage,
};
pub use input::{ModelInput, ModelInputKind};
pub use optimize::{
    GraphDelta, GraphPass, NodeAnnotation, OptimizedGraph, PassKind, PassPipeline, PassReport,
    StashMode,
};
pub use profile::{BlockProfile, ModelProfile, TensorRecord, ALLOC_ALIGN};
