//! Block/stage model graphs.
//!
//! A model is an ordered chain of **stages** (the user-visible code
//! structures the paper uses as "natural separators", §IV-D), each stage a
//! chain of **blocks** — the checkpointing unit, mirroring the granularity of
//! `torch.utils.checkpoint` that Mimose plans at. Inside a block, operators
//! form a small DAG evaluated in topological (insertion) order.

use crate::ModelInput;
use mimose_ops::{OpError, OpKind};
use mimose_tensor::TensorMeta;

/// Where a node's operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeInput {
    /// The tensor entering the block (the previous block's output).
    BlockInput,
    /// Output of an earlier node in the same block.
    Node(usize),
    /// The model-level context tensor (e.g. T5 encoder output consumed by
    /// decoder cross-attention). Set by a stage with `capture_context`.
    Context,
}

/// One operator application inside a block.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operator.
    pub op: OpKind,
    /// Operand sources, length == `op.arity()`.
    pub inputs: Vec<NodeInput>,
}

/// A checkpointable unit: a named DAG of operators. The output of the block
/// is the output of its last node.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Human-readable name, e.g. `encoder.3`.
    pub name: String,
    /// Operators in evaluation order.
    pub nodes: Vec<Node>,
}

impl Block {
    /// Start building a block.
    pub fn builder(name: impl Into<String>) -> BlockBuilder {
        BlockBuilder {
            block: Block {
                name: name.into(),
                nodes: Vec::new(),
            },
        }
    }

    /// Total learnable parameters in the block.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.nodes.iter().map(|n| n.op.param_count()).sum()
    }
}

/// Fluent builder used by the model constructors.
pub struct BlockBuilder {
    block: Block,
}

impl BlockBuilder {
    /// Append a node; returns its index for later reference.
    ///
    /// # Panics
    ///
    /// Panics when `inputs.len()` does not match the operator's arity — in
    /// every build profile, not just debug (a malformed builder must never
    /// silently construct an invalid DAG). Use [`BlockBuilder::try_push`] for
    /// a recoverable variant.
    pub fn push(&mut self, op: OpKind, inputs: &[NodeInput]) -> usize {
        match self.try_push(op, inputs) {
            Ok(idx) => idx,
            Err(e) => panic!("block {}: {e}", self.block.name),
        }
    }

    /// Append a node, returning [`OpError::Arity`] instead of panicking when
    /// the operand count does not match the operator's arity.
    ///
    /// # Errors
    ///
    /// Returns [`OpError::Arity`] when `inputs.len() != op.arity()`.
    pub fn try_push(&mut self, op: OpKind, inputs: &[NodeInput]) -> Result<usize, OpError> {
        if op.arity() != inputs.len() {
            return Err(OpError::Arity {
                op: op.mnemonic(),
                expected: op.arity(),
                got: inputs.len(),
            });
        }
        self.block.nodes.push(Node {
            op,
            inputs: inputs.to_vec(),
        });
        Ok(self.block.nodes.len() - 1)
    }

    /// Append a unary node reading the block input.
    pub fn push_on_input(&mut self, op: OpKind) -> usize {
        self.push(op, &[NodeInput::BlockInput])
    }

    /// Append a unary node reading node `src`.
    pub fn push_on(&mut self, op: OpKind, src: usize) -> usize {
        self.push(op, &[NodeInput::Node(src)])
    }

    /// Finish the block.
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when the block has no nodes.
    pub fn build(self) -> Block {
        assert!(
            !self.block.nodes.is_empty(),
            "empty block {}",
            self.block.name
        );
        self.block
    }
}

/// A named group of blocks. `capture_context` marks the stage whose final
/// output becomes the model-level context tensor (T5 encoder).
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name, e.g. `encoder` / `layer2`.
    pub name: String,
    /// Blocks in execution order.
    pub blocks: Vec<Block>,
    /// Whether this stage's output is captured as the context tensor.
    pub capture_context: bool,
}

/// Optimizer whose state size contributes to the constant memory footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// SGD with momentum: 1 extra f32 per parameter.
    SgdMomentum,
    /// Adam/AdamW: 2 extra f32 per parameter (m and v).
    Adam,
}

impl OptimizerKind {
    /// Extra state bytes per parameter (beyond weight + gradient).
    #[must_use]
    pub fn state_bytes_per_param(self) -> usize {
        match self {
            OptimizerKind::SgdMomentum => 4,
            OptimizerKind::Adam => 8,
        }
    }
}

/// A complete model: stages of blocks plus footprint constants.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelGraph {
    /// Model name (e.g. `bert-base`).
    pub name: String,
    /// Stages in execution order.
    pub stages: Vec<Stage>,
    /// Optimizer used for training (affects constant memory only).
    pub optimizer: OptimizerKind,
    /// Maximum supported per-sample extent (512 tokens for BERT; data
    /// pipelines truncate to this).
    pub max_extent: usize,
    /// Framework overhead bytes that exist regardless of the model: CUDA
    /// context, cuDNN workspaces, framework-internal buffers.
    pub framework_const_bytes: usize,
    /// Extra reserved bytes for unpredictable structures (the paper reserves
    /// memory for detection heads whose proposal counts are content-
    /// dependent, §IV-C last paragraph).
    pub reserved_bytes: usize,
}

/// Error evaluating a model graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Operator-level shape failure.
    Op {
        /// Offending block name.
        block: String,
        /// Node index inside the block.
        node: usize,
        /// Underlying error.
        source: OpError,
    },
    /// A node referenced `Context` but no stage captured one yet.
    MissingContext {
        /// Offending block name.
        block: String,
    },
    /// A node referenced a later or non-existent node.
    BadNodeRef {
        /// Offending block name.
        block: String,
        /// Node index inside the block.
        node: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Op {
                block,
                node,
                source,
            } => write!(f, "{block}[{node}]: {source}"),
            ModelError::MissingContext { block } => {
                write!(f, "{block}: Context input before any capture_context stage")
            }
            ModelError::BadNodeRef { block, node } => {
                write!(f, "{block}[{node}]: forward/invalid node reference")
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl ModelGraph {
    /// Total learnable parameter count.
    pub fn param_count(&self) -> usize {
        self.stages
            .iter()
            .flat_map(|s| &s.blocks)
            .map(Block::param_count)
            .sum()
    }

    /// Constant (input-independent) memory footprint: weights + gradients +
    /// optimizer state + framework overhead + reservation.
    #[must_use]
    pub fn const_bytes(&self) -> usize {
        let p = self.param_count();
        p * 4 // weights (f32)
            + p * 4 // gradients
            + p * self.optimizer.state_bytes_per_param()
            + self.framework_const_bytes
            + self.reserved_bytes
    }

    /// Total number of blocks across all stages.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.stages.iter().map(|s| s.blocks.len()).sum()
    }

    /// Iterate `(stage_index, block)` pairs in execution order.
    pub fn blocks(&self) -> impl Iterator<Item = (usize, &Block)> {
        self.stages
            .iter()
            .enumerate()
            .flat_map(|(si, s)| s.blocks.iter().map(move |b| (si, b)))
    }

    /// Evaluate shapes through one block given its input (and the model
    /// context, if any). Returns per-node output metadata.
    pub(crate) fn eval_block(
        block: &Block,
        input: TensorMeta,
        context: Option<TensorMeta>,
    ) -> Result<Vec<TensorMeta>, ModelError> {
        let mut outs: Vec<TensorMeta> = Vec::with_capacity(block.nodes.len());
        for (ni, node) in block.nodes.iter().enumerate() {
            let mut operands: Vec<TensorMeta> = Vec::with_capacity(node.inputs.len());
            for src in &node.inputs {
                let t = match *src {
                    NodeInput::BlockInput => input,
                    NodeInput::Node(j) => {
                        if j >= ni {
                            return Err(ModelError::BadNodeRef {
                                block: block.name.clone(),
                                node: ni,
                            });
                        }
                        outs[j]
                    }
                    NodeInput::Context => context.ok_or_else(|| ModelError::MissingContext {
                        block: block.name.clone(),
                    })?,
                };
                operands.push(t);
            }
            let out = node.op.infer(&operands).map_err(|source| ModelError::Op {
                block: block.name.clone(),
                node: ni,
                source,
            })?;
            outs.push(out);
        }
        Ok(outs)
    }

    /// Validate the graph end-to-end for a given input (shape-checks every
    /// node). Cheap; used by builders' tests and by planners before running.
    pub fn validate(&self, input: &ModelInput) -> Result<(), ModelError> {
        self.profile(input).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_ops::OpKind;

    fn tiny_model() -> ModelGraph {
        let mut b = Block::builder("emb");
        b.push_on_input(OpKind::Embedding {
            vocab: 100,
            hidden: 8,
        });
        let emb = b.build();
        let mut b = Block::builder("mlp");
        let l1 = b.push_on_input(OpKind::Linear {
            in_features: 8,
            out_features: 16,
            bias: true,
        });
        let r = b.push_on(OpKind::Relu, l1);
        b.push_on(
            OpKind::Linear {
                in_features: 16,
                out_features: 8,
                bias: true,
            },
            r,
        );
        let mlp = b.build();
        ModelGraph {
            name: "tiny".into(),
            stages: vec![Stage {
                name: "all".into(),
                blocks: vec![emb, mlp],
                capture_context: false,
            }],
            optimizer: OptimizerKind::Adam,
            max_extent: 64,
            framework_const_bytes: 0,
            reserved_bytes: 0,
        }
    }

    #[test]
    fn param_count_sums_blocks() {
        let m = tiny_model();
        // embedding 100*8 + linear 8*16+16 + linear 16*8+8
        assert_eq!(m.param_count(), 800 + 144 + 136);
    }

    #[test]
    fn const_bytes_includes_optimizer() {
        let m = tiny_model();
        let p = m.param_count();
        assert_eq!(m.const_bytes(), p * (4 + 4 + 8));
    }

    #[test]
    fn validate_accepts_good_input() {
        let m = tiny_model();
        assert!(m.validate(&ModelInput::tokens(4, 10)).is_ok());
    }

    #[test]
    fn try_push_rejects_arity_mismatch() {
        let mut b = Block::builder("bad");
        let err = b
            .try_push(OpKind::Add, &[NodeInput::BlockInput])
            .unwrap_err();
        assert!(matches!(
            err,
            OpError::Arity {
                op: "add",
                expected: 2,
                got: 1
            }
        ));
        // The malformed node must not have been recorded.
        assert!(b.try_push(OpKind::Relu, &[NodeInput::BlockInput]) == Ok(0));
    }

    #[test]
    #[should_panic(expected = "bad: add")]
    fn push_arity_mismatch_panics_in_all_profiles() {
        let mut b = Block::builder("bad");
        b.push(OpKind::Add, &[NodeInput::BlockInput]);
    }

    #[test]
    fn forward_node_reference_rejected() {
        let mut b = Block::builder("bad");
        b.push(OpKind::Relu, &[NodeInput::Node(5)]);
        let blk = b.build();
        let err = ModelGraph::eval_block(&blk, ModelInput::tokens(1, 4).meta(), None);
        assert!(matches!(err, Err(ModelError::BadNodeRef { .. })));
    }

    #[test]
    fn context_before_capture_rejected() {
        let mut b = Block::builder("x");
        b.push(OpKind::Relu, &[NodeInput::Context]);
        let blk = b.build();
        let err = ModelGraph::eval_block(&blk, ModelInput::tokens(1, 4).meta(), None);
        assert!(matches!(err, Err(ModelError::MissingContext { .. })));
    }
}
