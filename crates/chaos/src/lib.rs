//! # mimose-chaos
//!
//! Deterministic, seed-driven fault injection for the Mimose simulator.
//!
//! The recovery ladder in `mimose-exec` only earns trust if it is exercised:
//! this crate manufactures the faults. A [`FaultSpec`] describes *what* can
//! go wrong (estimator bias/noise, arena capacity shrink at iteration N,
//! spurious one-shot allocation failures, recompute-latency spikes); a
//! [`FaultInjector`] derives, per iteration, the concrete
//! [`IterationFaults`] to apply.
//!
//! Determinism is the design constraint. Each iteration's faults are drawn
//! from a fresh generator seeded by `(seed, iter)` — never from a shared
//! stream — so:
//!
//! * the same `(spec, iter)` always produces the same faults, regardless of
//!   how many other iterations were queried or in what order;
//! * restarting an iteration (the recovery ladder's `Restart` rung) replays
//!   exactly the same fault schedule it crashed under, which is what a real
//!   deterministic-replay debugging session would see;
//! * property tests can shrink failures to a single `(seed, iter)` pair.
//!
//! Everything is plain data: the injector holds no mutable state.

use mimose_rng::{Rng, SeedableRng, StdRng};

/// What faults to inject, with which intensity. The default spec injects
/// nothing; every field is independent so scenarios compose.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Master seed; all per-iteration draws derive from it.
    pub seed: u64,
    /// Multiplicative bias applied to the estimator's predicted bytes
    /// (0.6 → the policy plans for 60 % of the true footprint: systematic
    /// under-prediction, the paper's §V risk). 1.0 disables.
    pub estimator_bias: f64,
    /// Relative half-width of zero-mean multiplicative noise added on top
    /// of the bias each iteration (0.1 → uniform in ±10 %). 0.0 disables.
    pub estimator_noise: f64,
    /// Shrink the arena capacity to `factor` of nominal from iteration
    /// `at_iter` onwards (models a co-located process grabbing device
    /// memory mid-run). `None` disables.
    pub capacity_shrink: Option<(usize, f64)>,
    /// Probability that an iteration carries spurious alloc failures.
    /// 0.0 disables.
    pub alloc_failure_rate: f64,
    /// When an iteration is chosen for alloc failures, how many distinct
    /// attempt ordinals (within the first `alloc_failure_span` attempts of
    /// the iteration) fail. Ignored when the rate is 0.
    pub alloc_failures_per_iter: usize,
    /// The window of alloc-attempt ordinals (1-based, from iteration start)
    /// eligible to fail.
    pub alloc_failure_span: u64,
    /// Probability that an iteration's recompute kernels run slow. 0.0
    /// disables.
    pub recompute_spike_rate: f64,
    /// Latency multiplier applied to recompute time in a spiking iteration
    /// (2.0 → recomputation takes twice as long).
    pub recompute_spike_factor: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            estimator_bias: 1.0,
            estimator_noise: 0.0,
            capacity_shrink: None,
            alloc_failure_rate: 0.0,
            alloc_failures_per_iter: 1,
            alloc_failure_span: 64,
            recompute_spike_rate: 0.0,
            recompute_spike_factor: 2.0,
        }
    }
}

impl FaultSpec {
    /// A spec that injects nothing (alias of `Default`).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// True when no fault channel is active: the derived faults are the
    /// identity for every iteration.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.estimator_bias == 1.0
            && self.estimator_noise == 0.0
            && self.capacity_shrink.is_none()
            && self.alloc_failure_rate == 0.0
            && self.recompute_spike_rate == 0.0
    }

    /// Deterministic JSON encoding (stable field order, fixed-precision
    /// floats) so fault schedules can be embedded in run reports.
    #[must_use]
    pub fn to_json(&self) -> String {
        let shrink = match self.capacity_shrink {
            Some((at, f)) => format!("{{\"at_iter\":{at},\"factor\":{f:.4}}}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"seed\":{},\"estimator_bias\":{:.4},\"estimator_noise\":{:.4},\
             \"capacity_shrink\":{},\"alloc_failure_rate\":{:.4},\
             \"alloc_failures_per_iter\":{},\"alloc_failure_span\":{},\
             \"recompute_spike_rate\":{:.4},\"recompute_spike_factor\":{:.4}}}",
            self.seed,
            self.estimator_bias,
            self.estimator_noise,
            shrink,
            self.alloc_failure_rate,
            self.alloc_failures_per_iter,
            self.alloc_failure_span,
            self.recompute_spike_rate,
            self.recompute_spike_factor,
        )
    }
}

/// A device-lifecycle fault in a fleet plan, indexed by scheduler round
/// (the cluster's virtual-time unit): a device can go down transiently,
/// disappear permanently, or keep running with collapsed capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceFault {
    /// The device is unreachable for `duration` rounds starting at
    /// `at_round`, then returns. Any job on it when it drops must be
    /// checkpointed and migrated — a down device's state is presumed lost.
    Down {
        /// First round the device is unreachable.
        at_round: usize,
        /// Rounds the outage lasts.
        duration: usize,
    },
    /// The device disappears permanently at `at_round`.
    Lost {
        /// First round the device is gone.
        at_round: usize,
    },
    /// The device stays up but its admission-usable capacity is multiplied
    /// by `factor` for `duration` rounds (a co-located tenant grabbing
    /// memory at the fleet level; the per-iteration analogue is
    /// [`FaultSpec::capacity_shrink`]).
    CapacityCollapse {
        /// First round the collapse applies.
        at_round: usize,
        /// Rounds the collapse lasts.
        duration: usize,
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
    },
}

impl DeviceFault {
    /// The round boundaries at which this fault changes a device's state
    /// (start, and end where one exists).
    fn boundaries(&self) -> (usize, Option<usize>) {
        match *self {
            DeviceFault::Down { at_round, duration } => {
                (at_round, Some(at_round.saturating_add(duration)))
            }
            DeviceFault::Lost { at_round } => (at_round, None),
            DeviceFault::CapacityCollapse {
                at_round, duration, ..
            } => (at_round, Some(at_round.saturating_add(duration))),
        }
    }
}

/// A device-lifecycle fault indexed by **virtual time** (nanoseconds on
/// the cluster's event clock) rather than by BSP round — the form the
/// event-driven serving mode consumes. Semantics mirror [`DeviceFault`]:
/// a device can go down transiently, disappear permanently, or keep
/// running with collapsed capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimedDeviceFault {
    /// The device is unreachable for `duration_ns` starting at `at_ns`,
    /// then returns.
    Down {
        /// First virtual nanosecond the device is unreachable.
        at_ns: u64,
        /// Virtual nanoseconds the outage lasts.
        duration_ns: u64,
    },
    /// The device disappears permanently at `at_ns`.
    Lost {
        /// First virtual nanosecond the device is gone.
        at_ns: u64,
    },
    /// The device stays up but its admission-usable capacity is
    /// multiplied by `factor` for `duration_ns` starting at `at_ns`.
    CapacityCollapse {
        /// First virtual nanosecond the collapse applies.
        at_ns: u64,
        /// Virtual nanoseconds the collapse lasts.
        duration_ns: u64,
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
    },
}

impl TimedDeviceFault {
    /// The virtual-time boundaries at which this fault changes a device's
    /// state (start, and end where one exists).
    fn boundaries(&self) -> (u64, Option<u64>) {
        match *self {
            TimedDeviceFault::Down { at_ns, duration_ns } => {
                (at_ns, Some(at_ns.saturating_add(duration_ns)))
            }
            TimedDeviceFault::Lost { at_ns } => (at_ns, None),
            TimedDeviceFault::CapacityCollapse {
                at_ns, duration_ns, ..
            } => (at_ns, Some(at_ns.saturating_add(duration_ns))),
        }
    }
}

/// A device's availability at one scheduler round, derived from the plan's
/// [`DeviceFault`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceCondition {
    /// Reachable; jobs may dispatch and step.
    Up,
    /// Transiently unreachable; it will return.
    Down,
    /// Permanently gone.
    Lost,
}

/// A fleet-wide fault schedule: one base [`FaultSpec`] fanned out to a
/// pool of devices, each device getting the same fault *intensities* under
/// an independent per-device seed stream (so device 0's bad iterations are
/// not device 3's bad iterations — faults decorrelate across the pool the
/// way co-located interference does), plus explicit per-device lifecycle
/// faults ([`DeviceFault`]) indexed by scheduler round.
///
/// Derivation is pure: `injector_for(d)` is a function of
/// `(base_spec, d)` and `device_condition(d, round)` of the declared
/// fault list, so a cluster run is reproducible from the plan alone
/// regardless of dispatch order or thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFaultPlan {
    base: FaultSpec,
    device_faults: Vec<(usize, DeviceFault)>,
    timed_faults: Vec<(usize, TimedDeviceFault)>,
}

impl FleetFaultPlan {
    /// Fan `base` out across a device pool.
    #[must_use]
    pub fn new(base: FaultSpec) -> Self {
        FleetFaultPlan {
            base,
            device_faults: Vec::new(),
            timed_faults: Vec::new(),
        }
    }

    /// A plan that injects nothing anywhere.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FleetFaultPlan::new(FaultSpec::none(seed))
    }

    /// Add a lifecycle fault for one device. Multiple faults may target
    /// the same device; `Lost` dominates overlapping `Down` windows.
    #[must_use]
    pub fn with_device_fault(mut self, device: usize, fault: DeviceFault) -> Self {
        self.device_faults.push((device, fault));
        self
    }

    /// The base spec devices derive from.
    #[must_use]
    pub fn base(&self) -> &FaultSpec {
        &self.base
    }

    /// Add a virtual-time lifecycle fault for one device — the
    /// event-driven analogue of [`with_device_fault`](Self::with_device_fault).
    /// Round-indexed faults drive BSP runs; timed faults drive
    /// event-driven runs; a plan may carry both.
    #[must_use]
    pub fn with_timed_fault(mut self, device: usize, fault: TimedDeviceFault) -> Self {
        self.timed_faults.push((device, fault));
        self
    }

    /// The declared device-lifecycle faults, in declaration order.
    #[must_use]
    pub fn device_faults(&self) -> &[(usize, DeviceFault)] {
        &self.device_faults
    }

    /// The declared virtual-time lifecycle faults, in declaration order.
    #[must_use]
    pub fn timed_faults(&self) -> &[(usize, TimedDeviceFault)] {
        &self.timed_faults
    }

    /// True when no device will see any fault.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.base.is_noop() && self.device_faults.is_empty() && self.timed_faults.is_empty()
    }

    /// The availability of `device` at scheduler round `round`. `Lost`
    /// dominates `Down`; with no matching fault the device is `Up`.
    #[must_use]
    pub fn device_condition(&self, device: usize, round: usize) -> DeviceCondition {
        let mut cond = DeviceCondition::Up;
        for (d, fault) in &self.device_faults {
            if *d != device {
                continue;
            }
            match *fault {
                DeviceFault::Lost { at_round } if round >= at_round => {
                    return DeviceCondition::Lost;
                }
                DeviceFault::Down { at_round, duration }
                    if round >= at_round && round < at_round.saturating_add(duration) =>
                {
                    cond = DeviceCondition::Down;
                }
                _ => {}
            }
        }
        cond
    }

    /// True when `device` is permanently gone by round `round` (it can
    /// never host a job again).
    #[must_use]
    pub fn is_lost(&self, device: usize, round: usize) -> bool {
        self.device_condition(device, round) == DeviceCondition::Lost
    }

    /// The admission-capacity multiplier for `device` at `round`: the
    /// product of every active [`DeviceFault::CapacityCollapse`] window.
    #[must_use]
    pub fn capacity_factor(&self, device: usize, round: usize) -> f64 {
        let mut f = 1.0;
        for (d, fault) in &self.device_faults {
            if let DeviceFault::CapacityCollapse {
                at_round,
                duration,
                factor,
            } = *fault
            {
                if *d == device && round >= at_round && round < at_round.saturating_add(duration) {
                    f *= factor;
                }
            }
        }
        f
    }

    /// The earliest round strictly after `round` at which any device's
    /// lifecycle state changes (a fault starting or ending). `None` when
    /// every declared boundary is behind `round` — the fleet's availability
    /// is static from here on. Lets a scheduler with nothing runnable jump
    /// its virtual round clock instead of spinning.
    #[must_use]
    pub fn next_transition_after(&self, round: usize) -> Option<usize> {
        self.device_faults
            .iter()
            .flat_map(|(_, f)| {
                let (start, end) = f.boundaries();
                [Some(start), end].into_iter().flatten()
            })
            .filter(|&r| r > round)
            .min()
    }

    /// The availability of `device` at virtual time `at_ns`, derived from
    /// the plan's [`TimedDeviceFault`]s (round-indexed faults are ignored
    /// here — they belong to the BSP clock). `Lost` dominates `Down`; with
    /// no matching fault the device is `Up`.
    #[must_use]
    pub fn device_condition_at_ns(&self, device: usize, at_ns: u64) -> DeviceCondition {
        let mut cond = DeviceCondition::Up;
        for (d, fault) in &self.timed_faults {
            if *d != device {
                continue;
            }
            match *fault {
                TimedDeviceFault::Lost { at_ns: start } if at_ns >= start => {
                    return DeviceCondition::Lost;
                }
                TimedDeviceFault::Down {
                    at_ns: start,
                    duration_ns,
                } if at_ns >= start && at_ns < start.saturating_add(duration_ns) => {
                    cond = DeviceCondition::Down;
                }
                _ => {}
            }
        }
        cond
    }

    /// True when `device` is permanently gone by virtual time `at_ns`.
    #[must_use]
    pub fn is_lost_at_ns(&self, device: usize, at_ns: u64) -> bool {
        self.device_condition_at_ns(device, at_ns) == DeviceCondition::Lost
    }

    /// The admission-capacity multiplier for `device` at virtual time
    /// `at_ns`: the product of every active timed
    /// [`TimedDeviceFault::CapacityCollapse`] window.
    #[must_use]
    pub fn capacity_factor_at_ns(&self, device: usize, at_ns: u64) -> f64 {
        let mut f = 1.0;
        for (d, fault) in &self.timed_faults {
            if let TimedDeviceFault::CapacityCollapse {
                at_ns: start,
                duration_ns,
                factor,
            } = *fault
            {
                if *d == device && at_ns >= start && at_ns < start.saturating_add(duration_ns) {
                    f *= factor;
                }
            }
        }
        f
    }

    /// The earliest virtual time strictly after `at_ns` at which any
    /// device's timed lifecycle state changes. `None` when every declared
    /// boundary is behind `at_ns` — availability is static from here on.
    /// The event-driven scheduler seeds its queue with these boundaries.
    #[must_use]
    pub fn next_transition_after_ns(&self, at_ns: u64) -> Option<u64> {
        self.timed_faults
            .iter()
            .flat_map(|(_, f)| {
                let (start, end) = f.boundaries();
                [Some(start), end].into_iter().flatten()
            })
            .filter(|&t| t > at_ns)
            .min()
    }

    /// The spec for device `device` of the pool: the base intensities under
    /// a seed decorrelated by the device index (SplitMix64-style mixing,
    /// matching the per-iteration derivation below).
    #[must_use]
    pub fn spec_for(&self, device: usize) -> FaultSpec {
        let mut spec = self.base.clone();
        spec.seed = self
            .base
            .seed
            .wrapping_add((device as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        spec
    }

    /// The injector for device `device`; `None` when the base spec is a
    /// no-op (so clean fleets keep the exact no-injector execution path —
    /// lifecycle faults need no per-iteration injector).
    #[must_use]
    pub fn injector_for(&self, device: usize) -> Option<FaultInjector> {
        if self.base.is_noop() {
            return None;
        }
        Some(FaultInjector::new(self.spec_for(device)))
    }

    /// Deterministic JSON encoding of the whole plan (base spec plus
    /// device-lifecycle faults), embedded in cluster reports so a gated
    /// chaos run's evidence is self-describing.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(256);
        o.push_str("{\"base\":");
        o.push_str(&self.base.to_json());
        o.push_str(",\"device_faults\":[");
        for (i, (d, fault)) in self.device_faults.iter().enumerate() {
            o.push_str(&format!("{{\"device\":{d},"));
            match *fault {
                DeviceFault::Down { at_round, duration } => o.push_str(&format!(
                    "\"kind\":\"down\",\"at_round\":{at_round},\"duration\":{duration}"
                )),
                DeviceFault::Lost { at_round } => {
                    o.push_str(&format!("\"kind\":\"lost\",\"at_round\":{at_round}"));
                }
                DeviceFault::CapacityCollapse {
                    at_round,
                    duration,
                    factor,
                } => o.push_str(&format!(
                    "\"kind\":\"capacity-collapse\",\"at_round\":{at_round},\
                     \"duration\":{duration},\"factor\":{factor:.4}"
                )),
            }
            o.push('}');
            if i + 1 < self.device_faults.len() {
                o.push(',');
            }
        }
        o.push_str("],\"timed_faults\":[");
        for (i, (d, fault)) in self.timed_faults.iter().enumerate() {
            o.push_str(&format!("{{\"device\":{d},"));
            match *fault {
                TimedDeviceFault::Down { at_ns, duration_ns } => o.push_str(&format!(
                    "\"kind\":\"down\",\"at_ns\":{at_ns},\"duration_ns\":{duration_ns}"
                )),
                TimedDeviceFault::Lost { at_ns } => {
                    o.push_str(&format!("\"kind\":\"lost\",\"at_ns\":{at_ns}"));
                }
                TimedDeviceFault::CapacityCollapse {
                    at_ns,
                    duration_ns,
                    factor,
                } => o.push_str(&format!(
                    "\"kind\":\"capacity-collapse\",\"at_ns\":{at_ns},\
                     \"duration_ns\":{duration_ns},\"factor\":{factor:.4}"
                )),
            }
            o.push('}');
            if i + 1 < self.timed_faults.len() {
                o.push(',');
            }
        }
        o.push_str("]}");
        o
    }
}

/// The concrete faults to apply to one iteration, derived from a
/// [`FaultSpec`]. All fields are identity values when no fault fires.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationFaults {
    /// Multiply the arena capacity by this before building the iteration's
    /// arena (1.0 = nominal). Applied by whoever sizes the arena — the
    /// trainer — never by the engine itself, so it cannot be applied twice.
    pub capacity_factor: f64,
    /// Alloc-attempt ordinals (1-based within the iteration's arena) that
    /// fail spuriously, sorted ascending. Feed to
    /// `Arena::set_spurious_failures`.
    pub fail_allocs: Vec<u64>,
    /// Multiply recompute-kernel time by this (1.0 = nominal).
    pub recompute_factor: f64,
    /// Multiply the estimator's predicted bytes by this (1.0 = nominal):
    /// the composed bias × noise draw for this iteration.
    pub estimator_factor: f64,
}

impl IterationFaults {
    /// Faults that change nothing.
    #[must_use]
    pub fn identity() -> Self {
        IterationFaults {
            capacity_factor: 1.0,
            fail_allocs: Vec::new(),
            recompute_factor: 1.0,
            estimator_factor: 1.0,
        }
    }

    /// True when applying these faults is a no-op.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.capacity_factor == 1.0
            && self.fail_allocs.is_empty()
            && self.recompute_factor == 1.0
            && self.estimator_factor == 1.0
    }
}

/// Derives per-iteration faults from a [`FaultSpec`]. Stateless: queries
/// are pure functions of `(spec, iter)`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
}

impl FaultInjector {
    /// Wrap a spec.
    #[must_use]
    pub fn new(spec: FaultSpec) -> Self {
        FaultInjector { spec }
    }

    /// The wrapped spec.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Per-iteration generator: a fresh stream keyed by `(seed, iter)`.
    /// Mixing with a large odd constant decorrelates consecutive iterations
    /// before SplitMix64 expands the state.
    fn rng_for(&self, iter: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.spec.seed.wrapping_add(0x9E37_79B9_7F4A_7C15)
                ^ (iter as u64).wrapping_mul(0xA076_1D64_78BD_642F),
        )
    }

    /// The faults for iteration `iter`. Deterministic and order-independent:
    /// calling this for any subset of iterations, in any order, any number
    /// of times, yields identical results.
    #[must_use]
    pub fn iteration_faults(&self, iter: usize) -> IterationFaults {
        if self.spec.is_noop() {
            return IterationFaults::identity();
        }
        let mut rng = self.rng_for(iter);
        // Always draw channels in a fixed order so adding intensity to one
        // channel never perturbs another channel's stream position.
        let u_alloc: f64 = rng.gen();
        let u_spike: f64 = rng.gen();
        let noise_draw: f64 = rng.gen();

        let capacity_factor = match self.spec.capacity_shrink {
            Some((at, factor)) if iter >= at => factor,
            _ => 1.0,
        };

        let mut fail_allocs = Vec::new();
        if self.spec.alloc_failure_rate > 0.0 && u_alloc < self.spec.alloc_failure_rate {
            let span = self.spec.alloc_failure_span.max(1);
            let want = (self.spec.alloc_failures_per_iter as u64).min(span) as usize;
            while fail_allocs.len() < want {
                let ord = rng.gen_range(1..=span);
                if !fail_allocs.contains(&ord) {
                    fail_allocs.push(ord);
                }
            }
            fail_allocs.sort_unstable();
        }

        let recompute_factor =
            if self.spec.recompute_spike_rate > 0.0 && u_spike < self.spec.recompute_spike_rate {
                self.spec.recompute_spike_factor
            } else {
                1.0
            };

        let estimator_factor = if self.spec.estimator_noise > 0.0 {
            self.spec.estimator_bias * (1.0 + (2.0 * noise_draw - 1.0) * self.spec.estimator_noise)
        } else {
            self.spec.estimator_bias
        };

        IterationFaults {
            capacity_factor,
            fail_allocs,
            recompute_factor,
            estimator_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_spec_yields_identity_everywhere() {
        let inj = FaultInjector::new(FaultSpec::none(42));
        for iter in 0..50 {
            assert!(inj.iteration_faults(iter).is_identity());
        }
    }

    #[test]
    fn fleet_plan_decorrelates_devices_deterministically() {
        let base = FaultSpec {
            seed: 9,
            alloc_failure_rate: 0.5,
            alloc_failures_per_iter: 2,
            ..FaultSpec::default()
        };
        let plan = FleetFaultPlan::new(base);
        assert!(!plan.is_noop());
        // Device 0 keeps the base seed; devices differ pairwise.
        assert_eq!(plan.spec_for(0).seed, 9);
        assert_ne!(plan.spec_for(1).seed, plan.spec_for(2).seed);
        // Pure derivation: same device, same spec.
        assert_eq!(plan.spec_for(3), plan.spec_for(3));
        // Fault *schedules* decorrelate: over many iterations the chosen
        // bad iterations differ between two devices.
        let a = plan.injector_for(1).unwrap();
        let b = plan.injector_for(2).unwrap();
        let differs = (0..100).any(|i| a.iteration_faults(i) != b.iteration_faults(i));
        assert!(differs, "per-device schedules must decorrelate");
        // No-op plans hand back no injector at all.
        assert!(FleetFaultPlan::none(5).injector_for(0).is_none());
    }

    #[test]
    fn device_lifecycle_faults_derive_conditions() {
        let plan = FleetFaultPlan::none(1)
            .with_device_fault(
                1,
                DeviceFault::Down {
                    at_round: 3,
                    duration: 2,
                },
            )
            .with_device_fault(2, DeviceFault::Lost { at_round: 5 })
            .with_device_fault(
                0,
                DeviceFault::CapacityCollapse {
                    at_round: 2,
                    duration: 3,
                    factor: 0.5,
                },
            );
        assert!(!plan.is_noop());
        // Base spec stays a no-op, so no per-iteration injector is built.
        assert!(plan.injector_for(0).is_none());

        // Down window: [3, 5).
        assert_eq!(plan.device_condition(1, 2), DeviceCondition::Up);
        assert_eq!(plan.device_condition(1, 3), DeviceCondition::Down);
        assert_eq!(plan.device_condition(1, 4), DeviceCondition::Down);
        assert_eq!(plan.device_condition(1, 5), DeviceCondition::Up);
        // Lost is monotone.
        assert_eq!(plan.device_condition(2, 4), DeviceCondition::Up);
        assert!(plan.is_lost(2, 5));
        assert!(plan.is_lost(2, 5000));
        // Collapse affects capacity, not availability.
        assert_eq!(plan.device_condition(0, 3), DeviceCondition::Up);
        assert_eq!(plan.capacity_factor(0, 1), 1.0);
        assert_eq!(plan.capacity_factor(0, 2), 0.5);
        assert_eq!(plan.capacity_factor(0, 4), 0.5);
        assert_eq!(plan.capacity_factor(0, 5), 1.0);
        // Untouched device: always Up at nominal capacity.
        assert_eq!(plan.device_condition(3, 100), DeviceCondition::Up);
        assert_eq!(plan.capacity_factor(3, 100), 1.0);
    }

    #[test]
    fn lost_dominates_overlapping_down() {
        let plan = FleetFaultPlan::none(1)
            .with_device_fault(
                0,
                DeviceFault::Down {
                    at_round: 1,
                    duration: 10,
                },
            )
            .with_device_fault(0, DeviceFault::Lost { at_round: 4 });
        assert_eq!(plan.device_condition(0, 2), DeviceCondition::Down);
        assert_eq!(plan.device_condition(0, 4), DeviceCondition::Lost);
        assert_eq!(plan.device_condition(0, 20), DeviceCondition::Lost);
    }

    #[test]
    fn next_transition_walks_every_boundary() {
        let plan = FleetFaultPlan::none(1)
            .with_device_fault(
                1,
                DeviceFault::Down {
                    at_round: 3,
                    duration: 2,
                },
            )
            .with_device_fault(2, DeviceFault::Lost { at_round: 8 });
        assert_eq!(plan.next_transition_after(0), Some(3));
        assert_eq!(plan.next_transition_after(3), Some(5));
        assert_eq!(plan.next_transition_after(5), Some(8));
        assert_eq!(plan.next_transition_after(8), None);
        assert_eq!(FleetFaultPlan::none(0).next_transition_after(0), None);
    }

    #[test]
    fn timed_faults_resolve_conditions_on_the_virtual_clock() {
        let plan = FleetFaultPlan::none(0)
            .with_timed_fault(
                0,
                TimedDeviceFault::Down {
                    at_ns: 1_000,
                    duration_ns: 500,
                },
            )
            .with_timed_fault(1, TimedDeviceFault::Lost { at_ns: 2_000 })
            .with_timed_fault(
                2,
                TimedDeviceFault::CapacityCollapse {
                    at_ns: 100,
                    duration_ns: 300,
                    factor: 0.5,
                },
            );
        assert!(!plan.is_noop());
        assert_eq!(plan.device_condition_at_ns(0, 999), DeviceCondition::Up);
        assert_eq!(plan.device_condition_at_ns(0, 1_000), DeviceCondition::Down);
        assert_eq!(plan.device_condition_at_ns(0, 1_499), DeviceCondition::Down);
        assert_eq!(plan.device_condition_at_ns(0, 1_500), DeviceCondition::Up);
        assert!(!plan.is_lost_at_ns(1, 1_999));
        assert!(plan.is_lost_at_ns(1, 2_000));
        assert!(plan.is_lost_at_ns(1, u64::MAX));
        // Capacity collapse leaves the device Up but halves usable bytes.
        assert_eq!(plan.device_condition_at_ns(2, 200), DeviceCondition::Up);
        assert!((plan.capacity_factor_at_ns(2, 200) - 0.5).abs() < 1e-12);
        assert!((plan.capacity_factor_at_ns(2, 400) - 1.0).abs() < 1e-12);
        // Round-indexed queries never see timed faults and vice versa.
        assert_eq!(plan.device_condition(0, 1_000), DeviceCondition::Up);
        assert_eq!(plan.next_transition_after(0), None);
    }

    #[test]
    fn timed_transitions_enumerate_every_boundary() {
        let plan = FleetFaultPlan::none(0)
            .with_timed_fault(
                0,
                TimedDeviceFault::Down {
                    at_ns: 1_000,
                    duration_ns: 500,
                },
            )
            .with_timed_fault(1, TimedDeviceFault::Lost { at_ns: 2_000 });
        assert_eq!(plan.next_transition_after_ns(0), Some(1_000));
        assert_eq!(plan.next_transition_after_ns(1_000), Some(1_500));
        assert_eq!(plan.next_transition_after_ns(1_500), Some(2_000));
        assert_eq!(plan.next_transition_after_ns(2_000), None);
        assert_eq!(FleetFaultPlan::none(0).next_transition_after_ns(0), None);
    }

    #[test]
    fn timed_faults_serialize_alongside_round_faults() {
        let plan = FleetFaultPlan::none(3)
            .with_device_fault(1, DeviceFault::Lost { at_round: 2 })
            .with_timed_fault(
                0,
                TimedDeviceFault::Down {
                    at_ns: 1_000,
                    duration_ns: 500,
                },
            )
            .with_timed_fault(
                2,
                TimedDeviceFault::CapacityCollapse {
                    at_ns: 100,
                    duration_ns: 300,
                    factor: 0.25,
                },
            );
        let a = plan.to_json();
        assert_eq!(a, plan.to_json());
        assert!(a.contains("\"timed_faults\":["));
        assert!(a.contains("\"kind\":\"down\",\"at_ns\":1000,\"duration_ns\":500"));
        assert!(a.contains("\"factor\":0.2500"));
        assert!(FleetFaultPlan::none(0)
            .to_json()
            .contains("\"timed_faults\":[]"));
    }

    #[test]
    fn plan_json_is_stable_and_self_describing() {
        let plan = FleetFaultPlan::new(FaultSpec {
            capacity_shrink: Some((4, 0.75)),
            ..FaultSpec::none(7)
        })
        .with_device_fault(1, DeviceFault::Lost { at_round: 2 })
        .with_device_fault(
            0,
            DeviceFault::Down {
                at_round: 1,
                duration: 3,
            },
        );
        let a = plan.to_json();
        assert_eq!(a, plan.to_json());
        assert!(a.contains("\"seed\":7"));
        assert!(a.contains("\"capacity_shrink\":{\"at_iter\":4,\"factor\":0.7500}"));
        assert!(a.contains("\"kind\":\"lost\",\"at_round\":2"));
        assert!(a.contains("\"kind\":\"down\",\"at_round\":1,\"duration\":3"));
        assert!(a.starts_with('{') && a.ends_with('}'));
        // The no-op plan serializes too (evidence of "no faults" is still
        // evidence).
        let none = FleetFaultPlan::none(0).to_json();
        assert!(none.contains("\"device_faults\":[]"));
    }

    #[test]
    fn same_seed_same_iter_is_deterministic_and_order_independent() {
        let spec = FaultSpec {
            seed: 7,
            estimator_bias: 0.8,
            estimator_noise: 0.1,
            alloc_failure_rate: 0.5,
            alloc_failures_per_iter: 3,
            recompute_spike_rate: 0.3,
            ..FaultSpec::default()
        };
        let inj = FaultInjector::new(spec);
        // Forward order …
        let fwd: Vec<_> = (0..30).map(|i| inj.iteration_faults(i)).collect();
        // … reverse order, repeated queries interleaved.
        for i in (0..30).rev() {
            let f = inj.iteration_faults(i);
            assert_eq!(f, fwd[i], "iteration {i} diverged across query orders");
            assert_eq!(f, inj.iteration_faults(i), "repeat query diverged");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            FaultInjector::new(FaultSpec {
                seed,
                alloc_failure_rate: 1.0,
                alloc_failures_per_iter: 4,
                ..FaultSpec::default()
            })
        };
        let a: Vec<_> = (0..20).map(|i| mk(1).iteration_faults(i)).collect();
        let b: Vec<_> = (0..20).map(|i| mk(2).iteration_faults(i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn capacity_shrink_kicks_in_at_iter() {
        let inj = FaultInjector::new(FaultSpec {
            seed: 3,
            capacity_shrink: Some((10, 0.5)),
            ..FaultSpec::default()
        });
        assert_eq!(inj.iteration_faults(9).capacity_factor, 1.0);
        assert_eq!(inj.iteration_faults(10).capacity_factor, 0.5);
        assert_eq!(inj.iteration_faults(99).capacity_factor, 0.5);
    }

    #[test]
    fn fail_allocs_sorted_unique_in_span() {
        let inj = FaultInjector::new(FaultSpec {
            seed: 11,
            alloc_failure_rate: 1.0,
            alloc_failures_per_iter: 5,
            alloc_failure_span: 16,
            ..FaultSpec::default()
        });
        for iter in 0..100 {
            let f = inj.iteration_faults(iter);
            assert_eq!(f.fail_allocs.len(), 5);
            for w in f.fail_allocs.windows(2) {
                assert!(w[0] < w[1], "unsorted or duplicate ordinals");
            }
            assert!(f.fail_allocs.iter().all(|&o| (1..=16).contains(&o)));
        }
    }

    #[test]
    fn failure_rate_is_roughly_honoured() {
        let inj = FaultInjector::new(FaultSpec {
            seed: 5,
            alloc_failure_rate: 0.25,
            ..FaultSpec::default()
        });
        let n = 4000;
        let hits = (0..n)
            .filter(|&i| !inj.iteration_faults(i).fail_allocs.is_empty())
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn estimator_noise_stays_in_band() {
        let inj = FaultInjector::new(FaultSpec {
            seed: 9,
            estimator_bias: 0.8,
            estimator_noise: 0.1,
            ..FaultSpec::default()
        });
        for iter in 0..500 {
            let f = inj.iteration_faults(iter).estimator_factor;
            assert!(
                (0.8 * 0.9..=0.8 * 1.1).contains(&f),
                "factor {f} outside bias±noise band"
            );
        }
    }

    #[test]
    fn channels_are_independent_of_each_other() {
        // Turning the spike channel on must not change the alloc-failure
        // draw for the same (seed, iter).
        let base = FaultSpec {
            seed: 21,
            alloc_failure_rate: 0.5,
            alloc_failures_per_iter: 2,
            ..FaultSpec::default()
        };
        let with_spike = FaultSpec {
            recompute_spike_rate: 0.5,
            ..base
        };
        let a = FaultInjector::new(base);
        let b = FaultInjector::new(with_spike);
        for iter in 0..100 {
            assert_eq!(
                a.iteration_faults(iter).fail_allocs,
                b.iteration_faults(iter).fail_allocs,
                "spike channel perturbed alloc channel at iter {iter}"
            );
        }
    }
}
