//! # mimose-chaos
//!
//! Deterministic, seed-driven fault injection for the Mimose simulator.
//!
//! The recovery ladder in `mimose-exec` only earns trust if it is exercised:
//! this crate manufactures the faults. A [`FaultSpec`] describes *what* can
//! go wrong (estimator bias/noise, arena capacity shrink at iteration N,
//! spurious one-shot allocation failures, recompute-latency spikes); a
//! [`FaultInjector`] derives, per iteration, the concrete
//! [`IterationFaults`] to apply.
//!
//! Determinism is the design constraint. Each iteration's faults are drawn
//! from a fresh generator seeded by `(seed, iter)` — never from a shared
//! stream — so:
//!
//! * the same `(spec, iter)` always produces the same faults, regardless of
//!   how many other iterations were queried or in what order;
//! * restarting an iteration (the recovery ladder's `Restart` rung) replays
//!   exactly the same fault schedule it crashed under, which is what a real
//!   deterministic-replay debugging session would see;
//! * property tests can shrink failures to a single `(seed, iter)` pair.
//!
//! Everything is plain data: the injector holds no mutable state.

use mimose_rng::{Rng, SeedableRng, StdRng};

/// What faults to inject, with which intensity. The default spec injects
/// nothing; every field is independent so scenarios compose.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Master seed; all per-iteration draws derive from it.
    pub seed: u64,
    /// Multiplicative bias applied to the estimator's predicted bytes
    /// (0.6 → the policy plans for 60 % of the true footprint: systematic
    /// under-prediction, the paper's §V risk). 1.0 disables.
    pub estimator_bias: f64,
    /// Relative half-width of zero-mean multiplicative noise added on top
    /// of the bias each iteration (0.1 → uniform in ±10 %). 0.0 disables.
    pub estimator_noise: f64,
    /// Shrink the arena capacity to `factor` of nominal from iteration
    /// `at_iter` onwards (models a co-located process grabbing device
    /// memory mid-run). `None` disables.
    pub capacity_shrink: Option<(usize, f64)>,
    /// Probability that an iteration carries spurious alloc failures.
    /// 0.0 disables.
    pub alloc_failure_rate: f64,
    /// When an iteration is chosen for alloc failures, how many distinct
    /// attempt ordinals (within the first `alloc_failure_span` attempts of
    /// the iteration) fail. Ignored when the rate is 0.
    pub alloc_failures_per_iter: usize,
    /// The window of alloc-attempt ordinals (1-based, from iteration start)
    /// eligible to fail.
    pub alloc_failure_span: u64,
    /// Probability that an iteration's recompute kernels run slow. 0.0
    /// disables.
    pub recompute_spike_rate: f64,
    /// Latency multiplier applied to recompute time in a spiking iteration
    /// (2.0 → recomputation takes twice as long).
    pub recompute_spike_factor: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            estimator_bias: 1.0,
            estimator_noise: 0.0,
            capacity_shrink: None,
            alloc_failure_rate: 0.0,
            alloc_failures_per_iter: 1,
            alloc_failure_span: 64,
            recompute_spike_rate: 0.0,
            recompute_spike_factor: 2.0,
        }
    }
}

impl FaultSpec {
    /// A spec that injects nothing (alias of `Default`).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// True when no fault channel is active: the derived faults are the
    /// identity for every iteration.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.estimator_bias == 1.0
            && self.estimator_noise == 0.0
            && self.capacity_shrink.is_none()
            && self.alloc_failure_rate == 0.0
            && self.recompute_spike_rate == 0.0
    }
}

/// A fleet-wide fault schedule: one base [`FaultSpec`] fanned out to a
/// pool of devices, each device getting the same fault *intensities* under
/// an independent per-device seed stream (so device 0's bad iterations are
/// not device 3's bad iterations — faults decorrelate across the pool the
/// way co-located interference does).
///
/// Derivation is pure: `injector_for(d)` is a function of
/// `(base_spec, d)`, so a cluster run is reproducible from the base spec
/// alone regardless of dispatch order or thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFaultPlan {
    base: FaultSpec,
}

impl FleetFaultPlan {
    /// Fan `base` out across a device pool.
    #[must_use]
    pub fn new(base: FaultSpec) -> Self {
        FleetFaultPlan { base }
    }

    /// A plan that injects nothing anywhere.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FleetFaultPlan {
            base: FaultSpec::none(seed),
        }
    }

    /// The base spec devices derive from.
    #[must_use]
    pub fn base(&self) -> &FaultSpec {
        &self.base
    }

    /// True when no device will see any fault.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.base.is_noop()
    }

    /// The spec for device `device` of the pool: the base intensities under
    /// a seed decorrelated by the device index (SplitMix64-style mixing,
    /// matching the per-iteration derivation below).
    #[must_use]
    pub fn spec_for(&self, device: usize) -> FaultSpec {
        let mut spec = self.base.clone();
        spec.seed = self
            .base
            .seed
            .wrapping_add((device as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        spec
    }

    /// The injector for device `device`; `None` when the plan is a no-op
    /// (so clean fleets keep the exact no-injector execution path).
    #[must_use]
    pub fn injector_for(&self, device: usize) -> Option<FaultInjector> {
        if self.is_noop() {
            return None;
        }
        Some(FaultInjector::new(self.spec_for(device)))
    }
}

/// The concrete faults to apply to one iteration, derived from a
/// [`FaultSpec`]. All fields are identity values when no fault fires.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationFaults {
    /// Multiply the arena capacity by this before building the iteration's
    /// arena (1.0 = nominal). Applied by whoever sizes the arena — the
    /// trainer — never by the engine itself, so it cannot be applied twice.
    pub capacity_factor: f64,
    /// Alloc-attempt ordinals (1-based within the iteration's arena) that
    /// fail spuriously, sorted ascending. Feed to
    /// `Arena::set_spurious_failures`.
    pub fail_allocs: Vec<u64>,
    /// Multiply recompute-kernel time by this (1.0 = nominal).
    pub recompute_factor: f64,
    /// Multiply the estimator's predicted bytes by this (1.0 = nominal):
    /// the composed bias × noise draw for this iteration.
    pub estimator_factor: f64,
}

impl IterationFaults {
    /// Faults that change nothing.
    #[must_use]
    pub fn identity() -> Self {
        IterationFaults {
            capacity_factor: 1.0,
            fail_allocs: Vec::new(),
            recompute_factor: 1.0,
            estimator_factor: 1.0,
        }
    }

    /// True when applying these faults is a no-op.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.capacity_factor == 1.0
            && self.fail_allocs.is_empty()
            && self.recompute_factor == 1.0
            && self.estimator_factor == 1.0
    }
}

/// Derives per-iteration faults from a [`FaultSpec`]. Stateless: queries
/// are pure functions of `(spec, iter)`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
}

impl FaultInjector {
    /// Wrap a spec.
    #[must_use]
    pub fn new(spec: FaultSpec) -> Self {
        FaultInjector { spec }
    }

    /// The wrapped spec.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Per-iteration generator: a fresh stream keyed by `(seed, iter)`.
    /// Mixing with a large odd constant decorrelates consecutive iterations
    /// before SplitMix64 expands the state.
    fn rng_for(&self, iter: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.spec.seed.wrapping_add(0x9E37_79B9_7F4A_7C15)
                ^ (iter as u64).wrapping_mul(0xA076_1D64_78BD_642F),
        )
    }

    /// The faults for iteration `iter`. Deterministic and order-independent:
    /// calling this for any subset of iterations, in any order, any number
    /// of times, yields identical results.
    #[must_use]
    pub fn iteration_faults(&self, iter: usize) -> IterationFaults {
        if self.spec.is_noop() {
            return IterationFaults::identity();
        }
        let mut rng = self.rng_for(iter);
        // Always draw channels in a fixed order so adding intensity to one
        // channel never perturbs another channel's stream position.
        let u_alloc: f64 = rng.gen();
        let u_spike: f64 = rng.gen();
        let noise_draw: f64 = rng.gen();

        let capacity_factor = match self.spec.capacity_shrink {
            Some((at, factor)) if iter >= at => factor,
            _ => 1.0,
        };

        let mut fail_allocs = Vec::new();
        if self.spec.alloc_failure_rate > 0.0 && u_alloc < self.spec.alloc_failure_rate {
            let span = self.spec.alloc_failure_span.max(1);
            let want = (self.spec.alloc_failures_per_iter as u64).min(span) as usize;
            while fail_allocs.len() < want {
                let ord = rng.gen_range(1..=span);
                if !fail_allocs.contains(&ord) {
                    fail_allocs.push(ord);
                }
            }
            fail_allocs.sort_unstable();
        }

        let recompute_factor =
            if self.spec.recompute_spike_rate > 0.0 && u_spike < self.spec.recompute_spike_rate {
                self.spec.recompute_spike_factor
            } else {
                1.0
            };

        let estimator_factor = if self.spec.estimator_noise > 0.0 {
            self.spec.estimator_bias * (1.0 + (2.0 * noise_draw - 1.0) * self.spec.estimator_noise)
        } else {
            self.spec.estimator_bias
        };

        IterationFaults {
            capacity_factor,
            fail_allocs,
            recompute_factor,
            estimator_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_spec_yields_identity_everywhere() {
        let inj = FaultInjector::new(FaultSpec::none(42));
        for iter in 0..50 {
            assert!(inj.iteration_faults(iter).is_identity());
        }
    }

    #[test]
    fn fleet_plan_decorrelates_devices_deterministically() {
        let base = FaultSpec {
            seed: 9,
            alloc_failure_rate: 0.5,
            alloc_failures_per_iter: 2,
            ..FaultSpec::default()
        };
        let plan = FleetFaultPlan::new(base);
        assert!(!plan.is_noop());
        // Device 0 keeps the base seed; devices differ pairwise.
        assert_eq!(plan.spec_for(0).seed, 9);
        assert_ne!(plan.spec_for(1).seed, plan.spec_for(2).seed);
        // Pure derivation: same device, same spec.
        assert_eq!(plan.spec_for(3), plan.spec_for(3));
        // Fault *schedules* decorrelate: over many iterations the chosen
        // bad iterations differ between two devices.
        let a = plan.injector_for(1).unwrap();
        let b = plan.injector_for(2).unwrap();
        let differs = (0..100).any(|i| a.iteration_faults(i) != b.iteration_faults(i));
        assert!(differs, "per-device schedules must decorrelate");
        // No-op plans hand back no injector at all.
        assert!(FleetFaultPlan::none(5).injector_for(0).is_none());
    }

    #[test]
    fn same_seed_same_iter_is_deterministic_and_order_independent() {
        let spec = FaultSpec {
            seed: 7,
            estimator_bias: 0.8,
            estimator_noise: 0.1,
            alloc_failure_rate: 0.5,
            alloc_failures_per_iter: 3,
            recompute_spike_rate: 0.3,
            ..FaultSpec::default()
        };
        let inj = FaultInjector::new(spec);
        // Forward order …
        let fwd: Vec<_> = (0..30).map(|i| inj.iteration_faults(i)).collect();
        // … reverse order, repeated queries interleaved.
        for i in (0..30).rev() {
            let f = inj.iteration_faults(i);
            assert_eq!(f, fwd[i], "iteration {i} diverged across query orders");
            assert_eq!(f, inj.iteration_faults(i), "repeat query diverged");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            FaultInjector::new(FaultSpec {
                seed,
                alloc_failure_rate: 1.0,
                alloc_failures_per_iter: 4,
                ..FaultSpec::default()
            })
        };
        let a: Vec<_> = (0..20).map(|i| mk(1).iteration_faults(i)).collect();
        let b: Vec<_> = (0..20).map(|i| mk(2).iteration_faults(i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn capacity_shrink_kicks_in_at_iter() {
        let inj = FaultInjector::new(FaultSpec {
            seed: 3,
            capacity_shrink: Some((10, 0.5)),
            ..FaultSpec::default()
        });
        assert_eq!(inj.iteration_faults(9).capacity_factor, 1.0);
        assert_eq!(inj.iteration_faults(10).capacity_factor, 0.5);
        assert_eq!(inj.iteration_faults(99).capacity_factor, 0.5);
    }

    #[test]
    fn fail_allocs_sorted_unique_in_span() {
        let inj = FaultInjector::new(FaultSpec {
            seed: 11,
            alloc_failure_rate: 1.0,
            alloc_failures_per_iter: 5,
            alloc_failure_span: 16,
            ..FaultSpec::default()
        });
        for iter in 0..100 {
            let f = inj.iteration_faults(iter);
            assert_eq!(f.fail_allocs.len(), 5);
            for w in f.fail_allocs.windows(2) {
                assert!(w[0] < w[1], "unsorted or duplicate ordinals");
            }
            assert!(f.fail_allocs.iter().all(|&o| (1..=16).contains(&o)));
        }
    }

    #[test]
    fn failure_rate_is_roughly_honoured() {
        let inj = FaultInjector::new(FaultSpec {
            seed: 5,
            alloc_failure_rate: 0.25,
            ..FaultSpec::default()
        });
        let n = 4000;
        let hits = (0..n)
            .filter(|&i| !inj.iteration_faults(i).fail_allocs.is_empty())
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn estimator_noise_stays_in_band() {
        let inj = FaultInjector::new(FaultSpec {
            seed: 9,
            estimator_bias: 0.8,
            estimator_noise: 0.1,
            ..FaultSpec::default()
        });
        for iter in 0..500 {
            let f = inj.iteration_faults(iter).estimator_factor;
            assert!(
                (0.8 * 0.9..=0.8 * 1.1).contains(&f),
                "factor {f} outside bias±noise band"
            );
        }
    }

    #[test]
    fn channels_are_independent_of_each_other() {
        // Turning the spike channel on must not change the alloc-failure
        // draw for the same (seed, iter).
        let base = FaultSpec {
            seed: 21,
            alloc_failure_rate: 0.5,
            alloc_failures_per_iter: 2,
            ..FaultSpec::default()
        };
        let with_spike = FaultSpec {
            recompute_spike_rate: 0.5,
            ..base
        };
        let a = FaultInjector::new(base);
        let b = FaultInjector::new(with_spike);
        for iter in 0..100 {
            assert_eq!(
                a.iteration_faults(iter).fail_allocs,
                b.iteration_faults(iter).fail_allocs,
                "spike channel perturbed alloc channel at iter {iter}"
            );
        }
    }
}
