//! Policy factory: builds any evaluated planner for a task + budget.

use crate::tasks::Task;
use mimose_core::{KnapsackScheduler, MimoseConfig, MimosePolicy};
use mimose_data::Dataset;
use mimose_planner::{MemoryPolicy, PolicyKind};

/// The planners compared in Fig 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerKind {
    /// Original PyTorch, no checkpointing, no budget.
    Baseline,
    /// Static greedy (Chen et al.).
    Sublinear,
    /// Static cost-optimal (Jain et al.).
    Checkmate,
    /// Static tensor-granular (Shah et al.).
    Monet,
    /// Reactive tensor eviction (Kirisame et al.).
    Dtr,
    /// This paper.
    Mimose,
    /// Mimose with the alternative knapsack scheduler (ablation).
    MimoseKnapsack,
}

impl PlannerKind {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PlannerKind::Baseline => "Baseline",
            PlannerKind::Sublinear => "Sublinear",
            PlannerKind::Checkmate => "Checkmate",
            PlannerKind::Monet => "MONeT",
            PlannerKind::Dtr => "DTR",
            PlannerKind::Mimose => "Mimose",
            PlannerKind::MimoseKnapsack => "Mimose-KS",
        }
    }

    /// The Fig 10 comparison set.
    #[must_use]
    pub fn comparison_set() -> [PlannerKind; 6] {
        [
            PlannerKind::Baseline,
            PlannerKind::Sublinear,
            PlannerKind::Checkmate,
            PlannerKind::Monet,
            PlannerKind::Dtr,
            PlannerKind::Mimose,
        ]
    }
}

/// Build a policy for `task` under `budget` bytes.
///
/// Static planners receive a reference profile: the worst case for NLP
/// tasks, but only a *typical* input for the OD tasks — their static-graph
/// exports cannot express dynamic shapes (§VI-A: "the converted static
/// graph fails to tackle the input tensor with dynamic size"), which is why
/// the paper observes them exceeding the budget on OD (§VI-B).
#[must_use]
pub fn build_policy(kind: PlannerKind, task: &Task, budget: usize) -> Box<dyn MemoryPolicy> {
    let static_reference = || match task.dataset {
        Dataset::Text(_) => task.worst_profile(),
        Dataset::Vision(_) => task.typical_profile(),
    };
    match kind {
        PlannerKind::Baseline => PolicyKind::Baseline.build(&static_reference(), budget),
        PlannerKind::Sublinear => {
            // Sublinear runs natively in PyTorch and can always plan for the
            // true worst case.
            PolicyKind::Sublinear.build(&task.worst_profile(), budget)
        }
        PlannerKind::Checkmate => {
            // 2 % allocator headroom: exact-budget plans can OOM on
            // fragmentation even when the analytic peak fits.
            PolicyKind::Checkmate.build(&static_reference(), budget - budget / 50)
        }
        PlannerKind::Monet => PolicyKind::Monet.build(&static_reference(), budget - budget / 50),
        PlannerKind::Dtr => PolicyKind::Dtr.build(&static_reference(), budget),
        PlannerKind::Mimose => Box::new(MimosePolicy::new(MimoseConfig::with_budget(budget))),
        PlannerKind::MimoseKnapsack => Box::new(MimosePolicy::with_scheduler(
            MimoseConfig::with_budget(budget),
            Box::new(KnapsackScheduler),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_planner() {
        let task = Task::tc_bert();
        for k in PlannerKind::comparison_set() {
            let p = build_policy(k, &task, 6 << 30);
            assert_eq!(p.meta().name, k.name());
        }
    }

    #[test]
    fn budgets_propagate() {
        let task = Task::tc_bert();
        let p = build_policy(PlannerKind::Mimose, &task, 5 << 30);
        assert_eq!(p.budget_bytes(), 5 << 30);
        let b = build_policy(PlannerKind::Baseline, &task, 5 << 30);
        assert_eq!(b.budget_bytes(), usize::MAX);
    }
}
