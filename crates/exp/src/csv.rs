//! CSV export of iteration reports and run summaries, so experiment output
//! can be piped into external plotting tools without extra dependencies.

use mimose_exec::{IterationReport, RunSummary};
use std::fmt::Write as _;

/// CSV header for per-iteration rows.
pub const ITERATION_HEADER: &str = "iter,input_size,extent,shuttle,ok,peak_bytes,reserved_bytes,\
frag_bytes,dropped_units,compute_ns,recompute_ns,planning_ns,bookkeeping_ns,allocator_ns,swap_ns,\
total_ns";

/// Escape a CSV field (quotes fields containing separators/quotes).
#[must_use]
pub fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Render iteration reports as CSV (header + one row per iteration).
#[must_use]
pub fn iterations_to_csv(reports: &[IterationReport]) -> String {
    let mut out = String::with_capacity(reports.len() * 96 + ITERATION_HEADER.len());
    out.push_str(ITERATION_HEADER);
    out.push('\n');
    for r in reports {
        let t = &r.time;
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.iter,
            r.input_size,
            r.input.per_sample_extent(),
            r.shuttle,
            r.ok(),
            r.peak_bytes,
            r.peak_extent,
            r.frag_bytes,
            r.dropped_units,
            t.compute_ns,
            t.recompute_ns,
            t.planning_ns,
            t.bookkeeping_ns,
            t.allocator_ns,
            t.swap_ns,
            t.total_ns(),
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Render labelled run summaries as CSV.
#[must_use]
pub fn summaries_to_csv(rows: &[(String, RunSummary)]) -> String {
    let mut out = String::from(
        "label,iters,total_ns,compute_ns,recompute_ns,planning_ns,bookkeeping_ns,swap_ns,\
max_peak_bytes,max_reserved_bytes,max_frag_bytes,oom_iters,shuttle_iters\n",
    );
    for (label, s) in rows {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            escape(label),
            s.iters,
            s.total_ns,
            s.time.compute_ns,
            s.time.recompute_ns,
            s.time.planning_ns,
            s.time.bookkeeping_ns,
            s.time.swap_ns,
            s.max_peak_bytes,
            s.max_peak_extent,
            s.max_frag_bytes,
            s.oom_iters,
            s.shuttle_iters,
        )
        .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planners::{build_policy, PlannerKind};
    use crate::tasks::Task;
    use mimose_exec::Trainer;

    #[test]
    fn iteration_csv_has_one_row_per_report() {
        let task = Task::tc_bert();
        let mut pol = build_policy(PlannerKind::Sublinear, &task, 5 << 30);
        let mut tr = Trainer::new(&task.model, &task.dataset, pol.as_mut(), 3);
        let reports = tr.run(12).expect("csv run");
        let csv = iterations_to_csv(&reports);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 13); // header + 12 rows
        assert!(lines[0].starts_with("iter,input_size"));
        // Every row has the same column count as the header.
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "{l}");
        }
    }

    #[test]
    fn summary_csv_round_numbers() {
        let task = Task::tc_bert();
        let mut pol = build_policy(PlannerKind::Baseline, &task, 5 << 30);
        let mut tr = Trainer::new(&task.model, &task.dataset, pol.as_mut(), 3);
        let s = tr.run_summary(5).expect("csv run");
        let csv = summaries_to_csv(&[("base,line".to_string(), s.clone())]);
        assert!(csv.contains("\"base,line\""), "label must be escaped");
        assert!(csv.contains(&s.total_ns.to_string()));
    }

    #[test]
    fn escape_rules() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
