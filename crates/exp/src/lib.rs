//! # mimose-exp
//!
//! The experiment harness: the six Table II tasks, a policy factory, text
//! table/chart rendering, and one module per paper table/figure. Each
//! binary under `src/bin/` regenerates one artifact.

#![warn(missing_docs)]

pub mod cli;
pub mod csv;
pub mod experiments;
pub mod par;
pub mod planners;
pub mod table;
pub mod tasks;
pub mod verifygate;
