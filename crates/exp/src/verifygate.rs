//! Shared logic behind the `verify` gate binary and the soundness property
//! tests: the sanitizer mutant catalogue, the differential
//! certified-implies-no-OOM sweeps, and the plan-cache zero-solve check.
//!
//! Three claims are exercised:
//!
//! 1. **Sanitizer completeness over seeded mutants** — the canonical
//!    lowering of every well-formed plan sanitizes clean, and each class of
//!    deliberately broken schedule trips its designated check id, reported
//!    through the `mimose-audit` diagnostic machinery.
//! 2. **Certificate soundness** — whenever [`mimose_verify::certify`] (or a
//!    granularity sibling) issues a certificate, the certified
//!    plan is replayed in the simulated engine at *every* input size drawn
//!    from the certified bucket, for every evaluated planner, and two
//!    claims are checked: the engine's measured logical peak stays under
//!    `peak_upper_bound` with zero slack, and an arena of
//!    `SafetyCertificate::arena_capacity` bytes (the bound plus the
//!    repo-standard 2 % fragmentation headroom) never OOMs. Certification refusals are
//!    replayed too, measuring the false-reject rate (soundness permits
//!    conservatism; the rate is reported, not gated).
//! 3. **Zero-solve certified cache hits** — a [`MimosePolicy`] bucket hit
//!    backed by a certificate serves the cached plan with no planner solve
//!    and no revalidation, observable through the policy's counters.

use mimose_audit::{lint_schedule, Severity};
use mimose_core::{MimoseConfig, MimosePolicy};
use mimose_exec::{BlockIteration, DtrIteration};
use mimose_models::{ModelInput, ModelProfile};
use mimose_planner::memory_model::min_feasible_budget;
use mimose_planner::{CheckpointPlan, Directive, IterationObservation, MemoryPolicy};
use mimose_rng::{Rng, SeedableRng, StdRng};
use mimose_verify::{
    certify, certify_dtr, certify_fine, certify_hybrid, sanitize, SchedOp, Schedule, SizeBucket,
};

use crate::planners::{build_policy, PlannerKind};
use crate::tasks::Task;

/// Unconstrained arena for warm-up iterations: the sweep constrains memory
/// only in the replay phase, where the certificate's bound is the capacity.
const TRACE_CAPACITY: usize = 64 << 30;

// ---------------------------------------------------------------------------
// Section 1: sanitizer mutants
// ---------------------------------------------------------------------------

/// One seeded schedule mutant and the check id the sanitizer must report.
pub struct Mutant {
    /// Mutation class name.
    pub name: &'static str,
    /// The broken schedule.
    pub schedule: Schedule,
    /// Check id an error-severity finding must carry.
    pub expect: &'static str,
}

/// Every mutation class the sanitizer is specified to catch, seeded on an
/// 8-block plan with mid-sequence checkpoints.
#[must_use]
///
/// # Panics
///
/// Panics only on an internal invariant violation: the seeded plans and
/// mutation points are hard-coded valid.
pub fn mutant_catalogue() -> Vec<Mutant> {
    let plan = CheckpointPlan::from_indices(8, &[1, 3, 6]).expect("valid indices");
    let base = Schedule::from_plan(&plan);
    let at = |s: &Schedule, pred: fn(&SchedOp) -> bool| s.position(pred).expect("op present");

    let mut dropped = base.clone();
    dropped.remove_op(at(&dropped, |op| {
        matches!(op, SchedOp::Recompute { block: 3 })
    }));

    let mut duplicated = base.clone();
    let i = at(&duplicated, |op| matches!(op, SchedOp::Evict { block: 1 }));
    duplicated.insert_op(i + 1, SchedOp::Evict { block: 1 });

    let mut reordered = base.clone();
    let a = at(&reordered, |op| {
        matches!(op, SchedOp::Backward { block: 7 })
    });
    let b = at(&reordered, |op| {
        matches!(op, SchedOp::Backward { block: 6 })
    });
    reordered.swap_ops(a, b);

    let mut freed_dep = base.clone();
    let i = at(&freed_dep, |op| {
        matches!(op, SchedOp::Recompute { block: 6 })
    });
    freed_dep.insert_op(i, SchedOp::FreeOutput { block: 5 });

    let mut early_free = base;
    let i = at(&early_free, |op| {
        matches!(op, SchedOp::Backward { block: 2 })
    });
    early_free.insert_op(i, SchedOp::FreeOutput { block: 2 });

    vec![
        Mutant {
            name: "dropped-recompute",
            schedule: dropped,
            expect: "use-after-evict",
        },
        Mutant {
            name: "duplicated-evict",
            schedule: duplicated,
            expect: "double-free",
        },
        Mutant {
            name: "reordered-backward",
            schedule: reordered,
            expect: "dependency-order-violation",
        },
        Mutant {
            name: "freed-recompute-dependency",
            schedule: freed_dep,
            expect: "recompute-without-live-dependency",
        },
        Mutant {
            name: "early-output-free",
            schedule: early_free,
            expect: "use-after-free",
        },
    ]
}

/// Run the sanitizer section: canonical schedules must lint clean through
/// the audit diagnostics, and every mutant must be caught with its expected
/// check id. Returns human-readable failure descriptions (empty = pass).
#[must_use]
///
/// # Panics
///
/// Panics only on an internal invariant violation: the canonical plans
/// are hard-coded valid.
pub fn check_sanitizer() -> Vec<String> {
    let mut failures = Vec::new();
    for plan in [
        CheckpointPlan::none(8),
        CheckpointPlan::all(8),
        CheckpointPlan::from_indices(8, &[0, 2, 5, 7]).expect("valid indices"),
    ] {
        let sched = Schedule::from_plan(&plan);
        let diags = lint_schedule(&sched, "gate/canonical");
        if !diags.is_empty() {
            failures.push(format!(
                "canonical lowering of {plan} reported {} finding(s): {}",
                diags.len(),
                diags[0].to_json()
            ));
        }
        if !sanitize(&sched).is_empty() {
            failures.push(format!("canonical lowering of {plan} fails raw sanitize"));
        }
    }
    for m in mutant_catalogue() {
        let diags = lint_schedule(&m.schedule, &format!("gate/{}", m.name));
        let caught = diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.check == m.expect);
        if !caught {
            failures.push(format!(
                "mutant {} not caught: expected error check {}, got {:?}",
                m.name,
                m.expect,
                diags.iter().map(|d| d.check).collect::<Vec<_>>()
            ));
        }
    }
    failures
}

// ---------------------------------------------------------------------------
// Section 2: differential soundness sweeps
// ---------------------------------------------------------------------------

/// Tally of one soundness sweep.
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Seeds examined.
    pub seeds: usize,
    /// Certificates issued.
    pub certified: usize,
    /// Certification refusals.
    pub rejected: usize,
    /// Refusals whose plan survived replay at the requested budget anyway —
    /// the conservatism the interval domain trades for soundness.
    pub false_rejects: usize,
    /// Engine replays performed.
    pub replays: usize,
    /// Soundness violations: certified plans that OOMed inside an arena of
    /// exactly their certified bound. Must be empty.
    pub failures: Vec<String>,
}

impl SweepOutcome {
    /// False rejects as a fraction of refusals (0.0 when nothing was
    /// refused).
    #[must_use]
    pub fn false_reject_rate(&self) -> f64 {
        if self.rejected == 0 {
            0.0
        } else {
            self.false_rejects as f64 / self.rejected as f64
        }
    }

    fn merge(&mut self, other: SweepOutcome) {
        self.seeds += other.seeds;
        self.certified += other.certified;
        self.rejected += other.rejected;
        self.false_rejects += other.false_rejects;
        self.replays += other.replays;
        self.failures.extend(other.failures);
    }
}

/// Replay `directive` over `profile` inside a `capacity`-byte arena and
/// return the iteration report.
fn replay_report(
    profile: &ModelProfile,
    directive: &Directive,
    capacity: usize,
    dtr_budget: usize,
) -> mimose_runtime::IterationReport {
    match directive {
        Directive::RunPlan(p) | Directive::Shuttle(p) => {
            BlockIteration::plan(profile, p)
                .capacity(capacity)
                .run()
                .report
        }
        Directive::RunFine(fp) => {
            BlockIteration::fine(profile, fp)
                .capacity(capacity)
                .run()
                .report
        }
        Directive::RunHybrid(hp) => {
            BlockIteration::hybrid(profile, hp)
                .capacity(capacity)
                .run()
                .report
        }
        Directive::DtrDynamic => DtrIteration::new(profile, dtr_budget)
            .capacity(capacity)
            .run(),
    }
}

/// [`replay_report`], reduced to the OOM description, if any.
fn replay(
    profile: &ModelProfile,
    directive: &Directive,
    capacity: usize,
    dtr_budget: usize,
) -> Option<String> {
    replay_report(profile, directive, capacity, dtr_budget)
        .oom
        .map(|o| {
            format!(
                "{} (requested {} B, free {} B)",
                o.phase, o.requested, o.free_bytes
            )
        })
}

/// Drive `policy` through its collection phase the way a session would:
/// execute each shuttle directive in the engine and feed the measured
/// per-block observations back. Static planners return a non-shuttle
/// directive immediately; Mimose leaves its shuttle phase within the loop
/// bound even on degenerate streams.
fn warm_policy(policy: &mut dyn MemoryPolicy, profiles: &[ModelProfile]) -> usize {
    let mut iter = 0;
    for k in 0..40 {
        let p = &profiles[k % profiles.len()];
        let directive = policy.begin_iteration(iter, p);
        if !matches!(directive, Directive::Shuttle(_)) {
            return iter;
        }
        let run = BlockIteration::shuttle(p).capacity(TRACE_CAPACITY).run();
        policy.end_iteration(&IterationObservation {
            iter,
            input: p.input,
            input_size: p.input_size,
            blocks: run.observations,
            peak_bytes: run.report.peak_bytes,
            oom: false,
            recovery: Vec::new(),
        });
        iter += 1;
    }
    iter
}

/// Certify `directive` against `envelope`/`bucket`/`budget`, then replay:
/// certified plans inside an arena of exactly their bound (over every
/// envelope profile — the differential soundness check), refusals at the
/// requested budget (the false-reject measurement).
fn certify_and_replay(
    directive: &Directive,
    envelope: &[ModelProfile],
    bucket: SizeBucket,
    budget: usize,
    dtr_budget: usize,
    label: &str,
    out: &mut SweepOutcome,
) {
    let cert = match directive {
        Directive::RunPlan(p) | Directive::Shuttle(p) => certify(envelope, p, bucket, budget),
        Directive::RunFine(fp) => certify_fine(envelope, fp, bucket, budget),
        Directive::RunHybrid(hp) => certify_hybrid(envelope, hp, bucket, budget),
        Directive::DtrDynamic => certify_dtr(envelope, dtr_budget, bucket, budget),
    };
    match cert {
        Ok(c) => {
            out.certified += 1;
            // DTR's allocation sequence depends on arena pressure (it evicts
            // on demand), so only static directives make the exact
            // unconstrained-peak claim; DTR is held to claim (ii) alone.
            let capacity_independent = !matches!(directive, Directive::DtrDynamic);
            for q in envelope {
                // (i) Logical soundness, exact: the engine's measured peak
                // residency in an unconstrained arena must stay under the
                // certified bound — no slack of any kind.
                if capacity_independent {
                    out.replays += 1;
                    let report = replay_report(q, directive, TRACE_CAPACITY, dtr_budget);
                    if let Some(o) = &report.oom {
                        out.failures.push(format!(
                            "{label}: certified {c} but size {} OOMed unconstrained in {}",
                            q.input_size, o.phase
                        ));
                    } else if report.peak_bytes > c.peak_upper_bound {
                        out.failures.push(format!(
                            "{label}: certified {c} but size {} measured peak {} B over the bound",
                            q.input_size, report.peak_bytes
                        ));
                    }
                }
                // (ii) No dynamic OOM in an arena sized by the certificate
                // (logical bound + the repo-standard 2 % fragmentation
                // headroom — address-space fragmentation depends on
                // allocation order, which byte-count analysis cannot bound).
                out.replays += 1;
                if let Some(oom) = replay(q, directive, c.arena_capacity(), dtr_budget) {
                    out.failures.push(format!(
                        "{label}: certified {c} but size {} OOMed at arena capacity in {oom}",
                        q.input_size
                    ));
                }
            }
        }
        Err(_) => {
            out.rejected += 1;
            let oomed = envelope.iter().any(|q| {
                out.replays += 1;
                replay(q, directive, budget, dtr_budget).is_some()
            });
            if !oomed {
                out.false_rejects += 1;
            }
        }
    }
}

/// Ground-truth profiles for a window of batches drawn from the task's
/// stream, sorted by input size. This *is* the envelope: every size the
/// sweep replays is one of these profiles, so the bucket's concretisation
/// is covered exactly.
fn window_profiles(task: &Task, seed: u64, n: usize) -> Vec<ModelProfile> {
    let mut profiles: Vec<ModelProfile> = task
        .dataset
        .stream(seed)
        .take_batches(n)
        .iter()
        .map(|b| task.model.profile(b).expect("profile"))
        .collect();
    profiles.sort_by_key(|p| p.input_size);
    profiles.dedup_by_key(|p| p.input_size);
    profiles
}

fn all_kinds() -> Vec<PlannerKind> {
    let mut kinds = PlannerKind::comparison_set().to_vec();
    kinds.push(PlannerKind::MimoseKnapsack);
    kinds
}

/// One policy-driven seed: pick a task × planner × budget, warm the policy,
/// then certify-and-replay the directive it emits for every window size.
fn sweep_policy_seed(seed: u64, out: &mut SweepOutcome) {
    let mut rng = StdRng::seed_from_u64(seed);
    let tasks = Task::all();
    let task = &tasks[rng.gen_range(0..tasks.len())];
    let kinds = all_kinds();
    let kind = kinds[rng.gen_range(0..kinds.len())];

    let worst = task.worst_profile();
    let lo = min_feasible_budget(&worst);
    let hi = worst.peak_no_checkpoint();
    let frac: f64 = rng.gen_range(0.3..1.0);
    let budget = lo + ((hi - lo) as f64 * frac) as usize;

    let profiles = window_profiles(task, seed, 5);
    let bucket = SizeBucket::new(
        profiles[0].input_size,
        profiles[profiles.len() - 1].input_size,
    );

    let mut policy = build_policy(kind, task, budget);
    let warm_iters = warm_policy(policy.as_mut(), &profiles);
    let dtr_budget = policy.budget_bytes();

    for (iter, p) in (warm_iters..).zip(&profiles) {
        let directive = policy.begin_iteration(iter, p);
        let label = format!("seed {seed} {}/{}", task.abbr, kind.name());
        certify_and_replay(
            &directive, &profiles, bucket, budget, dtr_budget, &label, out,
        );
    }
    out.seeds += 1;
}

/// One randomized-plan seed: certify an arbitrary checkpoint plan (not one a
/// planner chose) over a random task window, then replay. Exercises the
/// interval domain over the whole plan space, cheaply.
fn sweep_random_plan_seed(seed: u64, out: &mut SweepOutcome) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let tasks = Task::all();
    let task = &tasks[rng.gen_range(0..tasks.len())];

    let worst = task.worst_profile();
    let lo = min_feasible_budget(&worst);
    let hi = worst.peak_no_checkpoint();
    let frac: f64 = rng.gen_range(0.2..1.0);
    let budget = lo + ((hi - lo) as f64 * frac) as usize;

    let profiles = window_profiles(task, seed, 4);
    let bucket = SizeBucket::new(
        profiles[0].input_size,
        profiles[profiles.len() - 1].input_size,
    );

    let n = profiles[0].blocks.len();
    let mut mask = vec![false; n];
    for m in &mut mask {
        *m = rng.gen_bool(0.5);
    }
    let indices: Vec<usize> = (0..n).filter(|&i| mask[i]).collect();
    let plan = CheckpointPlan::from_indices(n, &indices).expect("indices in range");
    let directive = Directive::RunPlan(plan);
    let label = format!("seed {seed} {}/random-plan", task.abbr);
    certify_and_replay(&directive, &profiles, bucket, budget, budget, &label, out);
    out.seeds += 1;
}

/// The policy-driven differential sweep over `seeds` (all planners, warm
/// policies, real directives).
#[must_use]
pub fn soundness_sweep_policies(seeds: std::ops::Range<u64>) -> SweepOutcome {
    let mut out = SweepOutcome::default();
    for seed in seeds {
        sweep_policy_seed(seed, &mut out);
    }
    out
}

/// The randomized-plan differential sweep over `seeds`.
#[must_use]
pub fn soundness_sweep_random_plans(seeds: std::ops::Range<u64>) -> SweepOutcome {
    let mut out = SweepOutcome::default();
    for seed in seeds {
        sweep_random_plan_seed(seed, &mut out);
    }
    out
}

/// Both sweeps merged: `policy_seeds` policy-driven seeds plus
/// `plan_seeds` randomized-plan seeds.
#[must_use]
pub fn soundness_sweep(policy_seeds: u64, plan_seeds: u64) -> SweepOutcome {
    let mut out = soundness_sweep_policies(0..policy_seeds);
    out.merge(soundness_sweep_random_plans(0..plan_seeds));
    out
}

// ---------------------------------------------------------------------------
// Section 3: plan-cache zero-solve check
// ---------------------------------------------------------------------------

/// Verify that a certified bucket hit in the Mimose plan cache performs zero
/// planner solves: warm a policy on real BERT batches, force one certified
/// insert, then query a *different* size in the same quantisation bucket and
/// watch the solve counter. Returns failure descriptions (empty = pass).
#[must_use]
///
/// # Panics
///
/// Panics when profiling a probe input fails.
pub fn check_cache_zero_solve() -> Vec<String> {
    let mut failures = Vec::new();
    let task = Task::tc_bert();
    let profiles = window_profiles(&task, 7, 12);
    let mut pol = MimosePolicy::new(MimoseConfig::with_budget(5 << 30));
    let mut iter = warm_policy(&mut pol, &profiles);
    if pol.phase() != mimose_core::Phase::Responsive {
        return vec!["policy failed to reach the responsive phase".into()];
    }

    // Force a certified insert at a mid-window size.
    let p = &profiles[profiles.len() / 2];
    let certified_before = pol.cache().certified_len();
    let _ = pol.begin_iteration(iter, p);
    iter += 1;
    if pol.cache().certified_len() != certified_before + 1 {
        failures.push(format!(
            "cache miss did not certify: {} certified entries before, {} after",
            certified_before,
            pol.cache().certified_len()
        ));
    }

    // A different size in the same bucket must be served off the
    // certificate.
    let (lo, hi) = pol.cache().bucket_bounds(p.input_size);
    let batch = p.input.batch;
    let seq = p.input_size / batch;
    let other_seq = if (seq + 1) * batch <= hi {
        seq + 1
    } else {
        seq - 1
    };
    let q = task
        .model
        .profile(&ModelInput::tokens(batch, other_seq))
        .expect("profile");
    if q.input_size < lo || q.input_size > hi || q.input_size == p.input_size {
        return vec![format!(
            "bucket [{lo}, {hi}] too narrow around {} for a distinct probe",
            p.input_size
        )];
    }
    let gen_before = pol.stats().plans_generated;
    let reval_before = pol.stats().revalidations;
    let cert_hits_before = pol.stats().certified_hits;
    match pol.begin_iteration(iter, &q) {
        Directive::RunPlan(_) => {}
        d => failures.push(format!("expected RunPlan on certified hit, got {d:?}")),
    }
    if pol.stats().plans_generated != gen_before {
        failures.push(format!(
            "certified bucket hit re-solved: {} plans generated before, {} after",
            gen_before,
            pol.stats().plans_generated
        ));
    }
    if pol.stats().certified_hits != cert_hits_before + 1 {
        failures.push("certified hit not counted".into());
    }
    if pol.stats().revalidations != reval_before {
        failures.push("certified hit fell back to O(L) revalidation".into());
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutant_catalogue_covers_five_classes() {
        let mutants = mutant_catalogue();
        assert_eq!(mutants.len(), 5);
        let mut expects: Vec<_> = mutants.iter().map(|m| m.expect).collect();
        expects.dedup();
        assert_eq!(expects.len(), 5, "check ids must be distinct");
    }

    #[test]
    fn sanitizer_section_passes() {
        assert!(check_sanitizer().is_empty());
    }

    #[test]
    fn a_few_policy_seeds_are_sound() {
        let out = soundness_sweep_policies(0..4);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.certified > 0, "no certificate issued in 4 seeds");
    }

    #[test]
    fn cache_zero_solve_section_passes() {
        let failures = check_cache_zero_solve();
        assert!(failures.is_empty(), "{failures:?}");
    }
}
