//! Extension experiment: the swap-vs-recompute crossover.
//!
//! The paper rules out swapping because "the copying overhead is quite high
//! due to the limited PCIe bandwidth" (§I) — a bandwidth-dependent claim.
//! This experiment sweeps the host-link bandwidth and shows where a
//! Capuchin-style hybrid planner starts preferring swaps over
//! recomputation, and where it would overtake recomputation-only planners
//! (NVLink-class links).

use crate::table::{gib, ms, render_table};
use crate::tasks::Task;
use mimose_exec::Trainer;
use mimose_planner::{BlockAction, CapuchinPolicy, SublinearPolicy};
use mimose_simgpu::DeviceProfile;

/// One bandwidth point.
pub struct HybridRow {
    /// Link bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Blocks the hybrid plan swaps.
    pub swapped: usize,
    /// Blocks the hybrid plan recomputes.
    pub recomputed: usize,
    /// Hybrid total time, ns.
    pub hybrid_ns: u64,
    /// Recompute-only (Sublinear) total time, ns.
    pub sublinear_ns: u64,
}

/// Sweep link bandwidths (bytes/s) on TC-Bert at `budget`.
#[must_use]
///
/// # Panics
///
/// Panics when an underlying training run fails.
pub fn run(budget: usize, iters: usize, bandwidths: &[f64]) -> Vec<HybridRow> {
    let task = Task::tc_bert();
    let worst = task.worst_profile();
    bandwidths
        .iter()
        .map(|&bw| {
            let mut dev = DeviceProfile::v100();
            dev.pcie_bytes_per_sec = bw;
            let cap = CapuchinPolicy::plan_offline(&worst, budget, &dev);
            let swapped = cap.plan().count(BlockAction::Swap);
            let recomputed = cap.plan().count(BlockAction::Recompute);

            let mut cap_pol = cap;
            let mut tr = Trainer::new(&task.model, &task.dataset, &mut cap_pol, 61);
            tr.device = dev.clone();
            let hybrid = tr.run_summary(iters).expect("hybrid run");

            let mut sub = SublinearPolicy::plan_offline(&worst, budget);
            let mut tr = Trainer::new(&task.model, &task.dataset, &mut sub, 61);
            tr.device = dev;
            let sublinear = tr.run_summary(iters).expect("sublinear run");

            HybridRow {
                bandwidth: bw,
                swapped,
                recomputed,
                hybrid_ns: hybrid.total_ns,
                sublinear_ns: sublinear.total_ns,
            }
        })
        .collect()
}

/// Render the crossover table.
#[must_use]
pub fn render(rows: &[HybridRow], budget: usize) -> String {
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0} GB/s", r.bandwidth / 1e9),
                r.swapped.to_string(),
                r.recomputed.to_string(),
                ms(r.hybrid_ns),
                ms(r.sublinear_ns),
                format!(
                    "{:+.1}%",
                    (r.hybrid_ns as f64 / r.sublinear_ns as f64 - 1.0) * 100.0
                ),
            ]
        })
        .collect();
    render_table(
        &format!(
            "Extension: swap-vs-recompute crossover (TC-Bert, budget {} GiB)",
            gib(budget)
        ),
        &[
            "link bw",
            "swapped",
            "recomputed",
            "hybrid ms",
            "sublinear ms",
            "hybrid vs sublinear",
        ],
        &t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swapping_grows_with_bandwidth() {
        let rows = run(4 << 30, 40, &[2e9, 50e9]);
        assert!(
            rows[1].swapped >= rows[0].swapped,
            "more bandwidth should not swap less"
        );
        // At NVLink-class bandwidth the hybrid must beat recompute-only.
        assert!(
            rows[1].hybrid_ns < rows[1].sublinear_ns,
            "hybrid {} !< sublinear {} at 50 GB/s",
            rows[1].hybrid_ns,
            rows[1].sublinear_ns
        );
    }
}
