//! Fig 4: the static planner's wasted budget and throughput loss on
//! TC-Bert under a 3 GB budget.
//!
//! Sublinear plans once for the largest input (seqlen ≈ 332); on small
//! inputs the same plan recomputes blocks that would have fit in memory,
//! leaving over a GiB of the budget unused and degrading throughput by up
//! to ~35 %.

use crate::table::{gib, render_table};
use crate::tasks::Task;
use mimose_exec::BlockIteration;
use mimose_models::ModelInput;
use mimose_planner::{CheckpointPlan, SublinearPolicy};
use mimose_simgpu::DeviceProfile;

/// One sweep point of the Fig 4 curve.
pub struct Fig4Point {
    /// Collated sequence length.
    pub seqlen: usize,
    /// Peak bytes under the static Sublinear plan.
    pub peak_static: usize,
    /// Peak bytes with no checkpointing.
    pub peak_none: usize,
    /// Budget bytes left unused by the static plan.
    pub unused_budget: usize,
    /// Iteration time under the static plan, ns.
    pub time_static_ns: u64,
    /// Iteration time under an input-aware plan for the same input, ns.
    pub time_adaptive_ns: u64,
}

/// Run the sweep under `budget` bytes.
#[must_use]
///
/// # Panics
///
/// Panics when profiling a task input fails.
pub fn run(budget: usize) -> Vec<Fig4Point> {
    let task = Task::tc_bert();
    let dev = DeviceProfile::v100();
    let worst = task.worst_profile();
    let sublinear = SublinearPolicy::plan_offline(&worst, budget);
    let batch = task.dataset.batch_size();
    (0..=10)
        .map(|i| {
            let seqlen = 55 + (332 - 55) * i / 10;
            let p = task
                .model
                .profile(&ModelInput::tokens(batch, seqlen))
                .expect("validates");
            let n = p.blocks.len();
            let run_static = BlockIteration::plan(&p, sublinear.plan())
                .device(&dev)
                .capacity(budget)
                .run();
            // The input-aware reference: a plan computed for *this* input
            // (ground-truth version of what Mimose generates).
            let adaptive = mimose_core::GreedyBucketScheduler::new(0.10);
            let aplan = mimose_core::Scheduler::schedule(&adaptive, &p, budget);
            let run_adaptive = BlockIteration::plan(&p, &aplan)
                .device(&dev)
                .capacity(budget)
                .run();
            let peak_none = mimose_planner::memory_model::peak_bytes(&p, &CheckpointPlan::none(n));
            Fig4Point {
                seqlen,
                peak_static: run_static.report.peak_bytes,
                peak_none,
                unused_budget: budget.saturating_sub(run_static.report.peak_bytes),
                time_static_ns: run_static.report.time.total_ns(),
                time_adaptive_ns: run_adaptive.report.time.total_ns(),
            }
        })
        .collect()
}

/// Render the Fig 4 report.
#[must_use]
pub fn render(points: &[Fig4Point], budget: usize) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let slowdown = p.time_static_ns as f64 / p.time_adaptive_ns as f64 - 1.0;
            vec![
                p.seqlen.to_string(),
                gib(p.peak_static),
                gib(p.peak_none),
                gib(p.unused_budget),
                format!("{:.1}%", slowdown * 100.0),
            ]
        })
        .collect();
    render_table(
        &format!(
            "Fig 4: Sublinear on TC-Bert, budget {} GiB (static plan vs input-aware)",
            gib(budget)
        ),
        &[
            "seqlen",
            "peak(static) GiB",
            "peak(no-ckpt) GiB",
            "unused GiB",
            "slowdown vs adaptive",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_inputs_waste_budget_and_throughput() {
        let budget = 3usize << 30;
        let pts = run(budget);
        let small = &pts[0];
        assert!(small.seqlen <= 85);
        // Paper: ~1.2 GB unused at seqlen 55.
        assert!(
            small.unused_budget > 800 << 20,
            "unused {} MiB",
            small.unused_budget >> 20
        );
        // Paper: throughput degradation up to 35 %.
        let slowdown = small.time_static_ns as f64 / small.time_adaptive_ns as f64 - 1.0;
        assert!(slowdown > 0.10, "slowdown only {:.1}%", slowdown * 100.0);
        assert!(
            slowdown < 0.80,
            "slowdown implausible {:.1}%",
            slowdown * 100.0
        );
    }

    #[test]
    fn large_inputs_track_the_budget() {
        let budget = 3usize << 30;
        let pts = run(budget);
        let large = pts.last().expect("nonempty");
        // At the worst case the plan uses most of the budget…
        assert!(large.peak_static <= budget);
        assert!(large.unused_budget < 700 << 20);
        // …and the static plan is near-optimal there (it was solved there).
        let slowdown = large.time_static_ns as f64 / large.time_adaptive_ns as f64 - 1.0;
        assert!(slowdown.abs() < 0.10, "slowdown {:.1}%", slowdown * 100.0);
    }
}
