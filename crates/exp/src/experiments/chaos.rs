//! Chaos sweep: drive the executor's OOM-recovery ladder under
//! deterministic fault injection and report recovered-vs-fatal rates plus
//! the virtual-time slowdown against a clean run.
//!
//! Each scenario is one [`FaultSpec`] (plus, for the estimator scenarios,
//! the policy-side `estimate_scale` bias) applied to a Mimose run with the
//! recovery ladder enabled. Every iteration's recovery-event chain is
//! additionally passed through [`mimose_audit::lint_recovery_trace`], so a
//! ladder that recovers but violates its own escalation discipline still
//! fails the sweep.
//!
//! The scenarios are sized from the task's own profile (full-checkpoint
//! floor, no-checkpoint peak, budget) so every injected OOM is *recoverable
//! by construction*: the shrunk capacity always stays above the worst-case
//! full-checkpoint floor, which the terminal fallback rung is guaranteed to
//! reach. A fatal iteration therefore indicates a ladder bug, not an
//! impossible workload — which is exactly what the `--gate` mode of the
//! `chaos` binary turns into a non-zero exit.

use crate::table::{gib, ms, render_table};
use crate::tasks::Task;
use mimose_audit::{has_errors, lint_recovery_trace};
use mimose_chaos::{FaultInjector, FaultSpec};
use mimose_core::{MimoseConfig, MimosePolicy};
use mimose_exec::{IterationReport, RecoveryConfig, RunSummary, Trainer};
use mimose_planner::memory_model::{min_feasible_budget, peak_bytes};
use mimose_planner::CheckpointPlan;

/// A named fault scenario of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No faults: the control. With recovery enabled but nothing injected,
    /// the run must be byte-identical to a plain run (zero recovery events,
    /// slowdown exactly 1.0).
    None,
    /// Systematically under-predicting estimator (`estimate_scale` 0.55)
    /// on a squeezed device: the planner believes everything fits and stops
    /// checkpointing, so its plans under-provision, OOM, and must be
    /// rescued by demotion/restart/fallback.
    EstimatorUnder,
    /// A co-located process grabs device memory mid-run: the arena shrinks
    /// to halfway between the full-checkpoint floor and the effective
    /// budget, so previously feasible plans stop fitting.
    CapacityShrink,
    /// Spurious one-shot allocation failures (a flaky allocator): absorbed
    /// entirely by the coalesce-and-retry rung.
    AllocFlake,
    /// Recompute kernels intermittently run 3x slow: no memory faults, no
    /// recovery events — pure latency perturbation.
    RecomputeSpike,
    /// Everything at once, at reduced intensity.
    Combined,
}

impl Scenario {
    /// CLI/display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scenario::None => "none",
            Scenario::EstimatorUnder => "estimator-under",
            Scenario::CapacityShrink => "capacity-shrink",
            Scenario::AllocFlake => "alloc-flake",
            Scenario::RecomputeSpike => "recompute-spike",
            Scenario::Combined => "combined",
        }
    }

    /// Every scenario, sweep order.
    #[must_use]
    pub fn all() -> [Scenario; 6] {
        [
            Scenario::None,
            Scenario::EstimatorUnder,
            Scenario::CapacityShrink,
            Scenario::AllocFlake,
            Scenario::RecomputeSpike,
            Scenario::Combined,
        ]
    }

    /// Parse a CLI name (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<Scenario> {
        Scenario::all()
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(name))
    }

    /// Whether the scenario can inject hard OOMs (and therefore whether
    /// recovery events are *expected* in its outcome).
    #[must_use]
    pub fn expects_recovery(self) -> bool {
        matches!(
            self,
            Scenario::EstimatorUnder
                | Scenario::CapacityShrink
                | Scenario::AllocFlake
                | Scenario::Combined
        )
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Task abbreviation (Table II).
    pub task: String,
    /// Memory budget in bytes.
    pub budget_bytes: usize,
    /// Iterations per scenario.
    pub iters: usize,
    /// Batch-stream and fault seed.
    pub seed: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            task: "TC-Bert".into(),
            budget_bytes: 6 << 30,
            iters: 120,
            seed: 42,
        }
    }
}

/// Outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Which scenario ran.
    pub scenario: Scenario,
    /// Aggregate over the scenario's iterations.
    pub summary: RunSummary,
    /// Iterations that hit a *fatal* (unrecovered) OOM.
    pub fatal_iters: usize,
    /// Virtual-time ratio against the clean (no-fault, no-recovery) run,
    /// over the deterministic components only — `planning_ns` is measured
    /// host wall-clock (the policy times its own scheduler), so it jitters
    /// between otherwise identical runs and is excluded from the ratio.
    pub slowdown: f64,
    /// Error-severity findings from the recovery-trace linter, summed over
    /// all iterations.
    pub lint_errors: usize,
    /// Whether this run's concrete fault parameters can actually provoke
    /// the ladder. A squeeze capacity can land *above* every observed peak
    /// when a task's plans are already near-fully-checkpointed (the OD
    /// tasks): per-input fallback floors approach the peaks themselves and
    /// the recoverable-by-construction clamp leaves no room to OOM. Such a
    /// run is a structural no-op, not a broken injection, and the gate must
    /// not demand recovery events from it.
    pub expects_events: bool,
}

impl ScenarioOutcome {
    /// Whether this outcome satisfies the gate: no fatal OOM, linter-clean,
    /// and — for the control scenario — a byte-identical happy path.
    #[must_use]
    pub fn passes_gate(&self) -> bool {
        if self.fatal_iters > 0 || self.lint_errors > 0 {
            return false;
        }
        match self.scenario {
            Scenario::None => {
                self.summary.recovery_events == 0 && (self.slowdown - 1.0).abs() < 1e-12
            }
            // Fault scenarios designed to OOM must actually exercise the
            // ladder; a silent no-op means the injection is broken.
            _ if self.expects_events => self.summary.recovery_events > 0,
            _ => true,
        }
    }
}

/// Iteration at which mid-run faults (capacity shrink) arm: safely past the
/// sheltered collection phase, whose shuttle iterations intentionally run
/// without checkpointing and must not be starved (`min_distinct_sizes`
/// extensions are hard-capped at 30 shuttles).
const SHRINK_AT: usize = 31;

/// Capacity the squeeze scenarios shrink the device to, derived from the
/// *measured* peaks of the clean reference run rather than the analytic
/// budget window: just under the median post-collection peak, so roughly
/// half of the squeezed iterations genuinely OOM regardless of how far
/// below the budget the scheduler's plans happen to land for this task.
///
/// The lower clamp is the largest full-checkpoint footprint among the
/// inputs the squeezed iterations will actually see (the batch stream is
/// seeded, so the fault run replays exactly the clean run's inputs): the
/// ladder's terminal fallback is guaranteed to fit, making every injected
/// OOM recoverable by construction. The worst-*case* input's floor would be
/// uselessly conservative here — it can sit above every real plan peak.
fn squeezed_capacity(task: &Task, clean: &[IterationReport], floor: usize, eff: usize) -> usize {
    let post: Vec<&IterationReport> = clean
        .iter()
        .filter(|r| r.iter >= SHRINK_AT && !r.shuttle)
        .collect();
    if post.is_empty() {
        // Degenerate short run: fall back to the analytic midpoint.
        return floor + eff.saturating_sub(floor) / 2;
    }
    let guard = post
        .iter()
        .map(|r| {
            let p = task
                .model
                .profile(&r.input)
                .expect("input already profiled in the clean run");
            peak_bytes(&p, &CheckpointPlan::all(p.blocks.len()))
        })
        .max()
        .expect("non-empty");
    let mut peaks: Vec<usize> = post.iter().map(|r| r.peak_bytes).collect();
    peaks.sort_unstable();
    let median = peaks[peaks.len() / 2];
    (median - median / 20).max(guard + guard / 20)
}

/// The fault spec and the policy-side estimator bias for a scenario.
/// `clean` is the clean reference run's per-iteration reports; the squeeze
/// scenarios size their capacity shrink from its measured peaks.
#[must_use]
pub fn scenario_spec(
    scenario: Scenario,
    task: &Task,
    opt: &ChaosOptions,
    clean: &[IterationReport],
) -> (FaultSpec, f64) {
    let worst = task.worst_profile();
    let floor = min_feasible_budget(&worst);
    // The trainer sizes budgeted arenas to the physical device.
    let nominal = mimose_simgpu::DeviceProfile::v100().total_mem_bytes;
    let eff = opt
        .budget_bytes
        .saturating_sub(512 << 20)
        .max(floor + (floor / 4));
    let squeezed = squeezed_capacity(task, clean, floor, eff);
    let f = |bytes: usize| (bytes as f64 / nominal as f64).min(1.0);

    let base = FaultSpec::none(opt.seed);
    match scenario {
        Scenario::None => (base, 1.0),
        // Same squeezed device as CapacityShrink, but the estimator also
        // under-predicts by ~2x: the planner believes even unchecked plans
        // fit the budget and stops checkpointing, so strictly more
        // iterations OOM than under the honest estimator and the ladder
        // has to make up the difference.
        Scenario::EstimatorUnder => (
            FaultSpec {
                capacity_shrink: Some((SHRINK_AT, f(squeezed))),
                ..base
            },
            0.55,
        ),
        Scenario::CapacityShrink => (
            FaultSpec {
                capacity_shrink: Some((SHRINK_AT, f(squeezed))),
                ..base
            },
            1.0,
        ),
        Scenario::AllocFlake => (
            FaultSpec {
                alloc_failure_rate: 0.35,
                alloc_failures_per_iter: 2,
                alloc_failure_span: 48,
                ..base
            },
            1.0,
        ),
        Scenario::RecomputeSpike => (
            FaultSpec {
                recompute_spike_rate: 0.30,
                recompute_spike_factor: 3.0,
                ..base
            },
            1.0,
        ),
        Scenario::Combined => (
            FaultSpec {
                capacity_shrink: Some((SHRINK_AT, f(squeezed))),
                alloc_failure_rate: 0.20,
                alloc_failures_per_iter: 1,
                alloc_failure_span: 48,
                recompute_spike_rate: 0.20,
                recompute_spike_factor: 2.0,
                ..base
            },
            0.70,
        ),
    }
}

/// Mimose policy for the sweep. Non-adaptive on purpose: adaptive
/// re-collection issues shuttle (no-checkpoint) iterations on
/// far-out-of-support inputs, which a deliberately squeezed arena cannot
/// hold and the ladder refuses to demote (measurement iterations must stay
/// unperturbed). The adaptive budget-shrink feedback loop is covered by the
/// `mimose-core` unit tests instead.
fn build_policy(opt: &ChaosOptions, estimate_scale: f64) -> MimosePolicy {
    let mut cfg = MimoseConfig::with_budget(opt.budget_bytes);
    cfg.estimate_scale = estimate_scale;
    MimosePolicy::new(cfg)
}

/// The clean reference run: same task/budget/seed, no faults, no recovery.
/// Returns the per-iteration reports — the squeeze scenarios size their
/// capacity shrink from the measured peaks.
#[must_use]
///
/// # Panics
///
/// Panics when the underlying training run fails.
pub fn clean_reference(task: &Task, opt: &ChaosOptions) -> Vec<IterationReport> {
    let mut policy = build_policy(opt, 1.0);
    let mut tr = Trainer::new(&task.model, &task.dataset, &mut policy, opt.seed);
    tr.run(opt.iters).expect("chaos run")
}

/// Fold per-iteration reports into a summary.
#[must_use]
pub fn summarize(reports: &[IterationReport]) -> RunSummary {
    let mut s = RunSummary::default();
    for r in reports {
        s.absorb(r);
    }
    s
}

/// A summary's deterministic virtual time: everything except
/// `planning_ns`, which is host wall-clock measured by the policy and
/// jitters between otherwise identical runs.
#[must_use]
pub fn deterministic_ns(s: &RunSummary) -> u64 {
    s.total_ns.saturating_sub(s.time.planning_ns)
}

/// Run one scenario and score it against the clean reference.
#[must_use]
///
/// # Panics
///
/// Panics when the underlying training run fails.
pub fn run_scenario(
    task: &Task,
    scenario: Scenario,
    opt: &ChaosOptions,
    clean: &[IterationReport],
) -> ScenarioOutcome {
    let (spec, estimate_scale) = scenario_spec(scenario, task, opt, clean);
    // A squeeze only bites when its capacity lands below at least one
    // observed post-shrink peak; the estimator bias raises peaks further,
    // so comparing against the clean run's peaks is conservative for the
    // biased scenarios. Flaky allocations always bite.
    let nominal = mimose_simgpu::DeviceProfile::v100().total_mem_bytes;
    let max_clean_peak = clean
        .iter()
        .filter(|r| r.iter >= SHRINK_AT && !r.shuttle)
        .map(|r| r.peak_bytes)
        .max()
        .unwrap_or(0);
    let squeeze_bites = spec
        .capacity_shrink
        .is_some_and(|(_, f)| ((nominal as f64 * f) as usize) < max_clean_peak);
    let expects_events = scenario.expects_recovery()
        && (squeeze_bites || spec.alloc_failure_rate > 0.0 || estimate_scale < 1.0);
    let recovery = RecoveryConfig::default();
    let mut policy = build_policy(opt, estimate_scale);
    let mut tr = Trainer::new(&task.model, &task.dataset, &mut policy, opt.seed)
        .with_recovery(recovery.clone())
        .with_chaos(FaultInjector::new(spec));
    let reports = tr.run(opt.iters).expect("chaos run");

    let mut summary = RunSummary::default();
    let mut fatal_iters = 0usize;
    let mut lint_errors = 0usize;
    for r in &reports {
        summary.absorb(r);
        if !r.ok() {
            fatal_iters += 1;
        }
        let diags = lint_recovery_trace(
            &r.recovery,
            recovery.max_restarts,
            recovery.max_inline_events,
        );
        if has_errors(&diags) {
            lint_errors += diags
                .iter()
                .filter(|d| d.severity == mimose_audit::Severity::Error)
                .count();
        }
    }
    let clean_ns = deterministic_ns(&summarize(clean));
    let slowdown = if clean_ns == 0 {
        1.0
    } else {
        deterministic_ns(&summary) as f64 / clean_ns as f64
    };
    ScenarioOutcome {
        scenario,
        summary,
        fatal_iters,
        slowdown,
        lint_errors,
        expects_events,
    }
}

/// Run every scenario.
#[must_use]
///
/// # Panics
///
/// Panics when `opt.task` names no known task (the CLI validates it
/// first) or a scenario run fails.
pub fn run_all(opt: &ChaosOptions) -> Vec<ScenarioOutcome> {
    let task = crate::cli::find_task(&opt.task).expect("task validated by the caller");
    let clean = clean_reference(&task, opt);
    Scenario::all()
        .into_iter()
        .map(|s| run_scenario(&task, s, opt, &clean))
        .collect()
}

/// Text table of a sweep's outcomes.
#[must_use]
pub fn render(opt: &ChaosOptions, outcomes: &[ScenarioOutcome]) -> String {
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.scenario.name().to_string(),
                format!("{}", o.summary.iters),
                format!("{}", o.summary.recovered_iters),
                format!("{}", o.fatal_iters),
                format!("{}", o.summary.recovery_events),
                ms(o.summary.time.recovery_ns),
                format!("{:.3}x", o.slowdown),
                format!("{}", o.lint_errors),
                if o.passes_gate() { "pass" } else { "FAIL" }.to_string(),
            ]
        })
        .collect();
    render_table(
        &format!(
            "Chaos sweep — {} | budget {} GiB | {} iters | seed {}",
            opt.task,
            gib(opt.budget_bytes),
            opt.iters,
            opt.seed
        ),
        &[
            "scenario",
            "iters",
            "recovered",
            "fatal",
            "events",
            "recovery",
            "slowdown",
            "lint err",
            "gate",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for s in Scenario::all() {
            assert_eq!(Scenario::parse(s.name()), Some(s));
            assert_eq!(Scenario::parse(&s.name().to_uppercase()), Some(s));
        }
        assert_eq!(Scenario::parse("frobnicate"), None);
    }

    #[test]
    fn specs_are_recoverable_by_construction() {
        let task = Task::tc_bert();
        let opt = ChaosOptions {
            iters: 40,
            ..ChaosOptions::default()
        };
        let clean = clean_reference(&task, &opt);
        // Largest full-checkpoint footprint among the post-shrink inputs:
        // the terminal fallback must fit under any injected capacity.
        let guard = clean
            .iter()
            .filter(|r| r.iter >= SHRINK_AT && !r.shuttle)
            .map(|r| {
                let p = task.model.profile(&r.input).unwrap();
                peak_bytes(&p, &CheckpointPlan::all(p.blocks.len()))
            })
            .max()
            .unwrap();
        let nominal = mimose_simgpu::DeviceProfile::v100().total_mem_bytes;
        for s in Scenario::all() {
            let (spec, scale) = scenario_spec(s, &task, &opt, &clean);
            assert_eq!(spec.seed, opt.seed);
            if let Some((at, factor)) = spec.capacity_shrink {
                assert!(at >= SHRINK_AT, "{}: shrink inside collection", s.name());
                let cap = (nominal as f64 * factor) as usize;
                assert!(
                    cap > guard,
                    "{}: capacity under the fallback floor",
                    s.name()
                );
            }
            assert!(scale > 0.0 && scale <= 1.0);
            if s == Scenario::None {
                assert!(spec.is_noop());
            }
        }
    }

    #[test]
    fn control_scenario_is_byte_identical_and_flake_recovers() {
        let task = Task::tc_bert();
        let opt = ChaosOptions {
            iters: 40,
            ..ChaosOptions::default()
        };
        let clean = clean_reference(&task, &opt);
        let control = run_scenario(&task, Scenario::None, &opt, &clean);
        assert!(control.passes_gate(), "{control:?}");
        assert_eq!(
            deterministic_ns(&control.summary),
            deterministic_ns(&summarize(&clean)),
            "control must be byte-identical to the clean run"
        );
        let flake = run_scenario(&task, Scenario::AllocFlake, &opt, &clean);
        assert!(flake.passes_gate(), "{flake:?}");
        assert!(flake.summary.recovered_iters > 0);
    }
}
