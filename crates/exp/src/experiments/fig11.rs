//! Fig 11: Mimose's memory consumption as the input size varies, at
//! budgets MB-4 … MB-8 (TC-Bert).

use crate::table::{gib, render_table};
use crate::tasks::Task;
use mimose_core::{MimoseConfig, MimosePolicy};
use mimose_exec::Trainer;

/// Per-iteration (seqlen, peak bytes, shuttle?) samples for one budget.
pub struct Fig11Series {
    /// Budget bytes.
    pub budget: usize,
    /// (collated seqlen, peak bytes, was shuttle iteration).
    pub points: Vec<(usize, usize, bool)>,
}

/// Run Mimose on TC-Bert for `iters` iterations at each budget (GiB).
#[must_use]
///
/// # Panics
///
/// Panics when an underlying training run fails.
pub fn run(budgets_gb: &[usize], iters: usize) -> Vec<Fig11Series> {
    budgets_gb
        .iter()
        .map(|&gb| {
            let budget = gb << 30;
            let task = Task::tc_bert();
            let mut pol = MimosePolicy::new(MimoseConfig::with_budget(budget));
            let mut tr = Trainer::new(&task.model, &task.dataset, &mut pol, 21);
            let points = tr
                .run(iters)
                .expect("fig11 run")
                .into_iter()
                .map(|r| (r.input.per_sample_extent(), r.peak_bytes, r.shuttle))
                .collect();
            Fig11Series { budget, points }
        })
        .collect()
}

/// Render: per budget, bucket seqlens and report the mean peak per bucket.
#[must_use]
///
/// # Panics
///
/// Panics when a series has no points.
pub fn render(series: &[Fig11Series]) -> String {
    let mut out = String::new();
    for s in series {
        let mut rows = Vec::new();
        let min_s = s.points.iter().map(|p| p.0).min().expect("nonempty");
        let max_s = s.points.iter().map(|p| p.0).max().expect("nonempty");
        let bins = 10usize;
        for b in 0..bins {
            let lo = min_s + (max_s - min_s) * b / bins;
            let hi = min_s + (max_s - min_s) * (b + 1) / bins;
            let sel: Vec<usize> = s
                .points
                .iter()
                .filter(|(x, _, sh)| !sh && *x >= lo && (*x < hi || b == bins - 1))
                .map(|(_, p, _)| *p)
                .collect();
            if sel.is_empty() {
                continue;
            }
            let mean = sel.iter().sum::<usize>() / sel.len();
            let peak = *sel.iter().max().expect("nonempty");
            rows.push(vec![
                format!("{lo}-{hi}"),
                sel.len().to_string(),
                gib(mean),
                gib(peak),
            ]);
        }
        out.push_str(&render_table(
            &format!("Fig 11: Mimose memory vs seqlen, MB-{}", s.budget >> 30),
            &["seqlen bucket", "iters", "mean GiB", "max GiB"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_grows_with_input_until_budget() {
        let series = run(&[5], 150);
        let s = &series[0];
        // Partition non-shuttle points into small/large input halves.
        let (min_s, max_s) = s
            .points
            .iter()
            .filter(|p| !p.2)
            .fold((usize::MAX, 0), |(lo, hi), p| (lo.min(p.0), hi.max(p.0)));
        let mid = (min_s + max_s) / 2;
        let mean = |pred: &dyn Fn(usize) -> bool| {
            let v: Vec<usize> = s
                .points
                .iter()
                .filter(|p| !p.2 && pred(p.0))
                .map(|p| p.1)
                .collect();
            v.iter().sum::<usize>() / v.len().max(1)
        };
        let small = mean(&|x| x < mid);
        let large = mean(&|x| x >= mid);
        assert!(large > small, "small {small} large {large}");
        // Never exceeds the budget.
        assert!(s.points.iter().all(|p| p.1 <= s.budget));
        // Large inputs approach (but respect) the budget: gap below ~1.5 GiB
        // (the paper reserves 0.5-1 GB headroom).
        let max_peak = s.points.iter().map(|p| p.1).max().expect("nonempty");
        assert!(
            s.budget - max_peak < 3 << 30,
            "gap {} GiB too large",
            gib(s.budget - max_peak)
        );
    }

    #[test]
    fn higher_budget_uses_more_memory() {
        let series = run(&[4, 7], 120);
        let peak = |s: &Fig11Series| s.points.iter().map(|p| p.1).max().unwrap_or(0);
        assert!(peak(&series[1]) >= peak(&series[0]));
    }
}
