//! Ablation studies on the design choices DESIGN.md calls out: the plan
//! cache, the bucket tolerance, the collector length, the scheduler
//! algorithm, the allocator fit policy, and the adaptive extensions.

use crate::table::{gib, ms, render_table};
use crate::tasks::Task;
use mimose_core::{
    CostAwareScheduler, GreedyBucketScheduler, KnapsackScheduler, MimoseConfig, MimosePolicy,
    Scheduler,
};
use mimose_exec::{DtrIteration, Trainer};
use mimose_models::ModelInput;
use mimose_simgpu::{AllocPolicy, DeviceProfile};

/// Plan-cache ablation: cache at the default width vs effectively disabled.
pub struct CacheAblationRow {
    /// Cache width label.
    pub label: &'static str,
    /// Plans generated (cold solves on cache+repair misses).
    pub plans_generated: u64,
    /// Bucket misses served by incremental repair of a neighbor's plan.
    pub repaired_plans: u64,
    /// Cache hits (certified and uncertified combined).
    pub cache_hits: u64,
    /// Total estimator+scheduler wall time, ns.
    pub plan_ns: u64,
}

/// Run the cache ablation on TC-Bert.
#[must_use]
///
/// # Panics
///
/// Panics when an underlying training run fails.
pub fn cache_ablation(budget: usize, iters: usize) -> Vec<CacheAblationRow> {
    let task = Task::tc_bert();
    let mut rows = Vec::new();
    for (label, width) in [("cache on (4 %)", 0.04), ("cache off", 1e-9f64.max(1e-9))] {
        let mut cfg = MimoseConfig::with_budget(budget);
        cfg.cache_relative_width = width.max(1e-9);
        let mut pol = MimosePolicy::new(cfg);
        let mut tr = Trainer::new(&task.model, &task.dataset, &mut pol, 31);
        let _ = tr.run(iters).expect("warm run");
        let st = pol.stats();
        rows.push(CacheAblationRow {
            label,
            plans_generated: st.plans_generated,
            repaired_plans: st.repaired_plans,
            cache_hits: st.cache_hits + st.certified_hits,
            plan_ns: st.total_plan_ns(),
        });
    }
    rows
}

/// Render the cache ablation.
#[must_use]
pub fn render_cache(rows: &[CacheAblationRow], iters: usize) -> String {
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.plans_generated.to_string(),
                r.repaired_plans.to_string(),
                r.cache_hits.to_string(),
                ms(r.plan_ns),
            ]
        })
        .collect();
    render_table(
        &format!("Ablation: plan cache (TC-Bert, {iters} iters)"),
        &[
            "config",
            "plans generated",
            "repaired",
            "cache hits",
            "total plan ms",
        ],
        &t,
    )
}

/// Bucket-tolerance ablation row.
pub struct ToleranceRow {
    /// Tolerance value.
    pub tolerance: f64,
    /// Total recomputation time across the run, ns.
    pub recompute_ns: u64,
    /// Total time, ns.
    pub total_ns: u64,
    /// Budget violations observed.
    pub violations: usize,
}

/// Sweep Algorithm 1's bucket tolerance on TC-Bert.
#[must_use]
///
/// # Panics
///
/// Panics when an underlying training run fails.
pub fn tolerance_ablation(budget: usize, iters: usize, tolerances: &[f64]) -> Vec<ToleranceRow> {
    let task = Task::tc_bert();
    tolerances
        .iter()
        .map(|&tol| {
            let cfg = MimoseConfig {
                bucket_tolerance: tol,
                ..MimoseConfig::with_budget(budget)
            };
            let mut pol = MimosePolicy::new(cfg);
            let mut tr = Trainer::new(&task.model, &task.dataset, &mut pol, 31);
            let reports = tr.run(iters).expect("ablation run");
            ToleranceRow {
                tolerance: tol,
                recompute_ns: reports.iter().map(|r| r.time.recompute_ns).sum(),
                total_ns: reports.iter().map(|r| r.time.total_ns()).sum(),
                violations: reports.iter().filter(|r| r.peak_bytes > budget).count(),
            }
        })
        .collect()
}

/// Render the tolerance ablation.
#[must_use]
pub fn render_tolerance(rows: &[ToleranceRow]) -> String {
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.tolerance * 100.0),
                ms(r.recompute_ns),
                ms(r.total_ns),
                r.violations.to_string(),
            ]
        })
        .collect();
    render_table(
        "Ablation: bucket tolerance (Algorithm 1)",
        &["tolerance", "recompute ms", "total ms", "violations"],
        &t,
    )
}

/// Collector-length ablation row (§VI-E discusses 10-30 iterations).
pub struct CollectRow {
    /// Configured collection iterations.
    pub collect_iters: usize,
    /// Held-out relative error of the fitted estimator's total-memory
    /// prediction.
    pub est_error: f64,
    /// Collector overhead in single-iteration units.
    pub overhead_iters: f64,
}

/// Sweep the collector length on TC-Bert: accuracy vs overhead.
#[must_use]
///
/// # Panics
///
/// Panics when an underlying training run fails.
pub fn collect_ablation(budget: usize, counts: &[usize], iters: usize) -> Vec<CollectRow> {
    let task = Task::tc_bert();
    counts
        .iter()
        .map(|&c| {
            let cfg = MimoseConfig {
                collect_iters: c,
                ..MimoseConfig::with_budget(budget)
            };
            let mut pol = MimosePolicy::new(cfg);
            let mut tr = Trainer::new(&task.model, &task.dataset, &mut pol, 31);
            let reports = tr.run(iters).expect("ablation run");
            let shuttle_extra: u64 = reports
                .iter()
                .filter(|r| r.shuttle)
                .map(|r| r.time.recompute_ns)
                .sum();
            let normal: Vec<u64> = reports
                .iter()
                .filter(|r| !r.shuttle)
                .map(|r| r.time.total_ns())
                .collect();
            let iter_ns = normal.iter().sum::<u64>() / normal.len().max(1) as u64;
            // Held-out estimator accuracy on fresh inputs.
            let est = pol.estimator().expect("responsive after run");
            let mut stream = task.dataset.stream(909);
            let mut errs = Vec::new();
            for _ in 0..20 {
                let input = stream.next_batch();
                let truth = task.model.profile(&input).expect("validates");
                let x = truth.input_size as f64;
                let pred: f64 = (0..est.num_blocks())
                    .map(|b| est.act_bytes(b, x) + est.out_bytes(b, x))
                    .sum();
                let actual = truth.total_act_bytes() as f64;
                errs.push((pred - actual).abs() / actual);
            }
            CollectRow {
                collect_iters: c,
                est_error: errs.iter().sum::<f64>() / errs.len() as f64,
                overhead_iters: shuttle_extra as f64 / iter_ns.max(1) as f64,
            }
        })
        .collect()
}

/// Render the collector ablation.
#[must_use]
pub fn render_collect(rows: &[CollectRow]) -> String {
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.collect_iters.to_string(),
                format!("{:.3}%", r.est_error * 100.0),
                format!("{:.2}", r.overhead_iters),
            ]
        })
        .collect();
    render_table(
        "Ablation: collector length (TC-Bert)",
        &["collect iters", "est. error", "collector overhead (iters)"],
        &t,
    )
}

/// Scheduler-comparison row.
pub struct SchedulerRow {
    /// Scheduler name.
    pub name: &'static str,
    /// Total time across the run, ns.
    pub total_ns: u64,
    /// Total recompute time, ns.
    pub recompute_ns: u64,
    /// Max peak bytes.
    pub max_peak: usize,
}

/// Compare the three schedulers behind the flexible interface on a
/// heterogeneous model (TR-T5).
/// A named scheduler factory.
type SchedulerFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;

/// Compare the three schedulers behind the flexible interface on a
/// heterogeneous model (TR-T5).
#[must_use]
///
/// # Panics
///
/// Panics when an underlying training run fails.
pub fn scheduler_ablation(budget: usize, iters: usize) -> Vec<SchedulerRow> {
    let task = Task::tr_t5();
    let mk: Vec<(&'static str, SchedulerFactory)> = vec![
        (
            "greedy-bucket",
            Box::new(|| Box::new(GreedyBucketScheduler::new(0.10))),
        ),
        ("knapsack", Box::new(|| Box::new(KnapsackScheduler))),
        (
            "cost-aware",
            Box::new(|| Box::new(CostAwareScheduler::new(0.10))),
        ),
    ];
    mk.into_iter()
        .map(|(name, make)| {
            let cfg = MimoseConfig::with_budget(budget);
            let mut pol = MimosePolicy::with_scheduler(cfg, make());
            let mut tr = Trainer::new(&task.model, &task.dataset, &mut pol, 31);
            let reports = tr.run(iters).expect("ablation run");
            SchedulerRow {
                name,
                total_ns: reports.iter().map(|r| r.time.total_ns()).sum(),
                recompute_ns: reports.iter().map(|r| r.time.recompute_ns).sum(),
                max_peak: reports.iter().map(|r| r.peak_bytes).max().unwrap_or(0),
            }
        })
        .collect()
}

/// Render the scheduler ablation.
#[must_use]
pub fn render_scheduler(rows: &[SchedulerRow], budget: usize) -> String {
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                ms(r.total_ns),
                ms(r.recompute_ns),
                gib(r.max_peak),
            ]
        })
        .collect();
    render_table(
        &format!(
            "Ablation: scheduler algorithm (TR-T5, budget {} GiB)",
            gib(budget)
        ),
        &["scheduler", "total ms", "recompute ms", "max peak GiB"],
        &t,
    )
}

/// Allocator fit-policy row (DTR workload).
pub struct AllocatorRow {
    /// Policy name.
    pub policy: &'static str,
    /// Peak fragmentation bytes.
    pub frag: usize,
    /// Peak reserved footprint.
    pub footprint: usize,
}

/// First-fit vs best-fit fragmentation under a DTR iteration.
#[must_use]
///
/// # Panics
///
/// Panics when profiling the task's input fails.
pub fn allocator_ablation(budget: usize) -> Vec<AllocatorRow> {
    let task = Task::mc_roberta();
    let dev = DeviceProfile::v100();
    let p = task
        .model
        .profile(&ModelInput::tokens(64, 120))
        .expect("validates");
    [
        ("first-fit", AllocPolicy::FirstFit),
        ("best-fit", AllocPolicy::BestFit),
    ]
    .into_iter()
    .map(|(name, policy)| {
        let r = DtrIteration::new(&p, budget)
            .device(&dev)
            .capacity(dev.total_mem_bytes)
            .alloc_policy(policy)
            .run();
        AllocatorRow {
            policy: name,
            frag: r.frag_bytes,
            footprint: r.peak_extent,
        }
    })
    .collect()
}

/// Render the allocator ablation.
#[must_use]
pub fn render_allocator(rows: &[AllocatorRow], budget: usize) -> String {
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.policy.to_string(), gib(r.frag), gib(r.footprint)])
        .collect();
    render_table(
        &format!(
            "Ablation: allocator fit policy under DTR (budget {} GiB)",
            gib(budget)
        ),
        &["policy", "peak frag GiB", "reserved GiB"],
        &t,
    )
}

/// Adaptive-extension row.
pub struct AdaptiveRow {
    /// Configuration label.
    pub label: &'static str,
    /// Budget violations across the drift run.
    pub violations: usize,
    /// Responsive-phase re-collections.
    pub recollections: usize,
    /// OOM-feedback events.
    pub oom_feedback: usize,
}

/// Drifting-workload study: sequence lengths drift upward past the fitted
/// support (the "concept drift" scenario of the paper's introduction). A
/// deliberately weak (linear) estimator under-predicts out of support;
/// the adaptive extension re-collects and stays within budget.
#[must_use]
///
/// # Panics
///
/// Panics when an underlying training run fails.
pub fn adaptive_ablation(budget: usize) -> Vec<AdaptiveRow> {
    let task = Task::tc_bert();
    let run = |adaptive: bool| -> AdaptiveRow {
        let mut cfg = if adaptive {
            MimoseConfig::with_budget_adaptive(budget)
        } else {
            MimoseConfig::with_budget(budget)
        };
        cfg.poly_order = 1; // weak estimator: linear fit of quadratic memory
        let mut pol = MimosePolicy::new(cfg);
        let mut tr = Trainer::new(&task.model, &task.dataset, &mut pol, 31);
        let mut violations = 0usize;
        // Phase 1: collect on short sequences (30..90).
        for i in 0..20 {
            let seq = 30 + (i * 3) % 60;
            let r = tr
                .run_input(i, &ModelInput::tokens(32, seq))
                .expect("drift run");
            if r.peak_bytes > budget {
                violations += 1;
            }
        }
        // Phase 2: drift far beyond the fitted support.
        for (j, seq) in (160..=320).step_by(10).enumerate() {
            let r = tr
                .run_input(100 + j, &ModelInput::tokens(32, seq))
                .expect("drift run");
            if r.peak_bytes > budget {
                violations += 1;
            }
        }
        let st = pol.stats();
        AdaptiveRow {
            label: if adaptive { "adaptive" } else { "base" },
            violations,
            recollections: st.recollections,
            oom_feedback: st.oom_feedback,
        }
    };
    vec![run(false), run(true)]
}

/// Render the adaptive ablation.
#[must_use]
pub fn render_adaptive(rows: &[AdaptiveRow], budget: usize) -> String {
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.violations.to_string(),
                r.recollections.to_string(),
                r.oom_feedback.to_string(),
            ]
        })
        .collect();
    render_table(
        &format!(
            "Ablation: adaptive re-collection under drift (budget {} GiB, linear estimator)",
            gib(budget)
        ),
        &[
            "config",
            "budget violations",
            "re-collections",
            "oom feedback",
        ],
        &t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_reduces_plan_generations() {
        let rows = cache_ablation(5 << 30, 120);
        let on = &rows[0];
        let off = &rows[1];
        // Even a near-zero-width cache dedups exactly repeated sizes, so
        // the lever is the quantised sharing of *similar* sizes.
        assert!(
            on.plans_generated < off.plans_generated,
            "cache on {} vs off {}",
            on.plans_generated,
            off.plans_generated
        );
        assert!(on.cache_hits > off.cache_hits / 2);
        assert!(on.cache_hits > 0);
    }

    #[test]
    fn longer_collection_never_hurts_accuracy_much() {
        let rows = collect_ablation(5 << 30, &[10, 30], 120);
        // Overhead grows with collection length; accuracy stays excellent
        // in both (the paper's "10~30 iterations" claim).
        assert!(rows[1].overhead_iters > rows[0].overhead_iters);
        for r in &rows {
            assert!(
                r.est_error < 0.02,
                "{} iters: err {}",
                r.collect_iters,
                r.est_error
            );
        }
    }

    #[test]
    fn schedulers_all_respect_budget() {
        let budget = 8usize << 30;
        for r in scheduler_ablation(budget, 80) {
            assert!(r.max_peak <= budget, "{}: {} GiB", r.name, r.max_peak >> 30);
        }
    }

    #[test]
    fn adaptive_reduces_drift_violations() {
        let rows = adaptive_ablation(5 << 30);
        let base = &rows[0];
        let adaptive = &rows[1];
        assert!(adaptive.recollections > 0, "no re-collection triggered");
        assert!(
            adaptive.violations <= base.violations,
            "adaptive {} > base {}",
            adaptive.violations,
            base.violations
        );
    }

    #[test]
    fn best_fit_changes_fragmentation_profile() {
        let rows = allocator_ablation(5 << 30);
        assert_eq!(rows.len(), 2);
        // Both policies produce a valid report; the exact ordering is
        // workload-dependent, but values must be sane.
        for r in &rows {
            assert!(r.footprint > 0);
            assert!(r.frag < r.footprint);
        }
    }
}
