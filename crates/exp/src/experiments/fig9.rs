//! Fig 9: peak memory when checkpointing a single encoder of BERT-base —
//! earlier encoders help, the last one does not.

use crate::table::{gib, render_table};
use mimose_models::builders::{bert_base, BertHead};
use mimose_models::ModelInput;
use mimose_planner::memory_model::peak_bytes;
use mimose_planner::CheckpointPlan;

/// Peak bytes for (seqlen, encoder index 1..=12) plus the no-checkpoint
/// reference per seqlen.
pub struct Fig9Result {
    /// Sequence lengths evaluated.
    pub seqlens: Vec<usize>,
    /// `peaks[s][k]` = peak bytes at `seqlens[s]` when checkpointing only
    /// encoder `k+1`.
    pub peaks: Vec<Vec<usize>>,
    /// No-checkpoint peak per seqlen.
    pub none: Vec<usize>,
}

/// Evaluate the sweep.
#[must_use]
///
/// # Panics
///
/// Panics when profiling a sequence length fails.
pub fn run(seqlens: &[usize]) -> Fig9Result {
    let model = bert_base(BertHead::Classification { labels: 2 });
    let mut peaks = Vec::new();
    let mut none = Vec::new();
    for &s in seqlens {
        let p = model
            .profile(&ModelInput::tokens(32, s))
            .expect("validates");
        let n = p.blocks.len();
        none.push(peak_bytes(&p, &CheckpointPlan::none(n)));
        // Encoders are blocks 1..=12 (0 = embeddings, 13 = head).
        peaks.push(
            (1..=12)
                .map(|k| peak_bytes(&p, &CheckpointPlan::from_indices(n, &[k]).unwrap()))
                .collect(),
        );
    }
    Fig9Result {
        seqlens: seqlens.to_vec(),
        peaks,
        none,
    }
}

/// Render the Fig 9 report.
pub fn render(r: &Fig9Result) -> String {
    let mut header = vec!["encoder".to_string()];
    for &s in &r.seqlens {
        header.push(format!("seq {s} (GiB)"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for k in 0..12 {
        let mut row = vec![format!("{}", k + 1)];
        for si in 0..r.seqlens.len() {
            row.push(gib(r.peaks[si][k]));
        }
        rows.push(row);
    }
    let mut base = vec!["none".to_string()];
    for si in 0..r.seqlens.len() {
        base.push(gib(r.none[si]));
    }
    rows.push(base);
    render_table(
        "Fig 9: peak memory when checkpointing encoder k of Bert-base (batch 32)",
        &header_refs,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earlier_encoders_lower_peak_more() {
        let r = run(&[128, 256]);
        for si in 0..r.seqlens.len() {
            let peaks = &r.peaks[si];
            // Monotone non-decreasing in encoder index.
            assert!(
                peaks.windows(2).all(|w| w[0] <= w[1]),
                "seq {}: {:?}",
                r.seqlens[si],
                peaks
            );
            // First encoder strictly helps; last is as bad as no plan.
            assert!(peaks[0] < r.none[si]);
            assert_eq!(peaks[11], r.none[si]);
        }
    }
}
