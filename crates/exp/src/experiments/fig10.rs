//! Fig 10: end-to-end comparison — normalised training time for every
//! planner on every task across a memory-budget sweep.

use crate::par::parallel_map;
use crate::planners::{build_policy, PlannerKind};
use crate::table::{gib, render_table};
use crate::tasks::Task;
use mimose_data::Dataset;
use mimose_exec::{RunSummary, Trainer};
use mimose_planner::memory_model::min_feasible_budget;

/// One (task, budget, planner) measurement.
pub struct Fig10Cell {
    /// Task abbreviation.
    pub task: &'static str,
    /// Budget in bytes.
    pub budget: usize,
    /// Planner.
    pub planner: PlannerKind,
    /// Run summary.
    pub summary: RunSummary,
    /// Execution time normalised to the unconstrained baseline.
    pub normalized: f64,
}

/// Full result: cells plus the per-task feasibility stars.
pub struct Fig10Result {
    /// All measurements.
    pub cells: Vec<Fig10Cell>,
    /// Per task: (lower star, upper star) = min feasible budget and
    /// no-checkpoint peak for the worst-case input.
    pub stars: Vec<(&'static str, usize, usize)>,
}

/// Budgets evaluated for a task: five points between the feasibility stars,
/// except the OD tasks which the paper runs at 14 GB only.
#[must_use]
pub fn budgets_for(task: &Task) -> Vec<usize> {
    if matches!(task.dataset, Dataset::Vision(_)) {
        return vec![14 << 30];
    }
    let worst = task.worst_profile();
    let lo = min_feasible_budget(&worst);
    // Budgets cannot exceed the physical device (16 GB V100); leave ~0.5 GB
    // for the driver like real deployments do.
    let hi = worst
        .peak_no_checkpoint()
        .min((15usize << 30) + (512 << 20));
    let lo = lo + (hi - lo) / 20; // 5 % above the lower star
    (0..5).map(|i| lo + (hi - lo) * i / 5).collect()
}

fn run_one(task: &Task, budget: usize, kind: PlannerKind, iters: usize, seed: u64) -> RunSummary {
    let mut policy = build_policy(kind, task, budget);
    let mut tr = Trainer::new(&task.model, &task.dataset, policy.as_mut(), seed);
    tr.run_summary(iters).expect("fig10 run")
}

/// Run the full grid. `nlp_iters`/`od_iters` control per-run length.
#[must_use]
///
/// # Panics
///
/// Panics when a baseline run is missing from the grid or a training
/// run fails.
pub fn run(nlp_iters: usize, od_iters: usize) -> Fig10Result {
    let tasks = Task::all();
    let stars: Vec<(&'static str, usize, usize)> = tasks
        .iter()
        .map(|t| {
            let w = t.worst_profile();
            (t.abbr, min_feasible_budget(&w), w.peak_no_checkpoint())
        })
        .collect();

    // Work list: (task index, budget, planner).
    let mut work: Vec<(usize, usize, PlannerKind)> = Vec::new();
    for (ti, task) in tasks.iter().enumerate() {
        for b in budgets_for(task) {
            for k in PlannerKind::comparison_set() {
                work.push((ti, b, k));
            }
        }
    }
    let cells: Vec<Fig10Cell> = parallel_map(&work, |&(ti, budget, kind)| {
        let task = &tasks[ti];
        let iters = if matches!(task.dataset, Dataset::Vision(_)) {
            od_iters
        } else {
            nlp_iters
        };
        let summary = run_one(task, budget, kind, iters, 97);
        Fig10Cell {
            task: task.abbr,
            budget,
            planner: kind,
            summary,
            normalized: 0.0, // filled below against the baseline
        }
    });

    // Normalise against the baseline of the same (task, budget).
    let mut cells = cells;
    let baselines: Vec<(&'static str, usize, u64)> = cells
        .iter()
        .filter(|c| c.planner == PlannerKind::Baseline)
        .map(|c| (c.task, c.budget, c.summary.total_ns))
        .collect();
    for c in &mut cells {
        let base = baselines
            .iter()
            .find(|(t, b, _)| *t == c.task && *b == c.budget)
            .map(|(_, _, ns)| *ns)
            .expect("baseline present");
        c.normalized = c.summary.total_ns as f64 / base as f64;
    }
    Fig10Result { cells, stars }
}

/// Render the Fig 10 report.
#[must_use]
pub fn render(r: &Fig10Result) -> String {
    let mut out = String::new();
    for (task, lo, hi) in &r.stars {
        out.push_str(&format!(
            "{task}: ★ lower bound {} GiB, ★ upper bound {} GiB\n",
            gib(*lo),
            gib(*hi)
        ));
    }
    out.push('\n');
    let mut tasks: Vec<&'static str> = r.cells.iter().map(|c| c.task).collect();
    tasks.dedup();
    for task in tasks {
        let mut budgets: Vec<usize> = r
            .cells
            .iter()
            .filter(|c| c.task == task)
            .map(|c| c.budget)
            .collect();
        budgets.sort_unstable();
        budgets.dedup();
        let mut rows = Vec::new();
        for b in budgets {
            for k in PlannerKind::comparison_set() {
                let Some(c) = r
                    .cells
                    .iter()
                    .find(|c| c.task == task && c.budget == b && c.planner == k)
                else {
                    continue;
                };
                let status = if c.summary.oom_iters > 0 {
                    format!("OOM x{}", c.summary.oom_iters)
                } else if c.summary.max_peak_extent > b && k != PlannerKind::Baseline {
                    format!("exceeds budget ({} GiB)", gib(c.summary.max_peak_extent))
                } else {
                    "ok".to_string()
                };
                let norm = if c.summary.oom_iters > 0 {
                    "n/a".to_string()
                } else {
                    format!("{:.3}", c.normalized)
                };
                rows.push(vec![
                    gib(b),
                    k.name().to_string(),
                    norm,
                    gib(c.summary.max_peak_extent),
                    status,
                ]);
            }
        }
        out.push_str(&render_table(
            &format!("Fig 10: {task} — normalised training time"),
            &["budget GiB", "planner", "norm. time", "peak GiB", "status"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Summary statistics quoted in §VI-B: Mimose's mean improvement over
/// Sublinear and DTR across all successful cells.
#[must_use]
pub fn improvements(r: &Fig10Result) -> (f64, f64) {
    let mut vs_sub = Vec::new();
    let mut vs_dtr = Vec::new();
    for c in &r.cells {
        if c.planner != PlannerKind::Mimose || c.summary.oom_iters > 0 {
            continue;
        }
        let find = |k: PlannerKind| {
            r.cells
                .iter()
                .find(|o| o.task == c.task && o.budget == c.budget && o.planner == k)
        };
        if let Some(s) = find(PlannerKind::Sublinear) {
            if s.summary.oom_iters == 0 {
                vs_sub.push(1.0 - c.normalized / s.normalized);
            }
        }
        if let Some(d) = find(PlannerKind::Dtr) {
            if d.summary.oom_iters == 0 {
                vs_dtr.push(1.0 - c.normalized / d.normalized);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    (mean(&vs_sub), mean(&vs_dtr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_lie_between_stars_for_nlp() {
        let task = Task::tc_bert();
        let w = task.worst_profile();
        let lo = min_feasible_budget(&w);
        let hi = w.peak_no_checkpoint();
        for b in budgets_for(&task) {
            assert!(b >= lo && b <= hi, "budget {} outside [{}, {}]", b, lo, hi);
        }
    }

    #[test]
    fn od_runs_at_14_gb() {
        assert_eq!(budgets_for(&Task::od_r50()), vec![14usize << 30]);
    }

    #[test]
    fn mimose_beats_static_and_dynamic_on_tc_bert() {
        // A one-task slice of Fig 10 (fast enough for unit tests).
        let task = Task::tc_bert();
        let budget = budgets_for(&task)[1];
        let iters = 120;
        let base = run_one(&task, budget, PlannerKind::Baseline, iters, 3).total_ns;
        let sub = run_one(&task, budget, PlannerKind::Sublinear, iters, 3).total_ns;
        let dtr = run_one(&task, budget, PlannerKind::Dtr, iters, 3).total_ns;
        let mim = run_one(&task, budget, PlannerKind::Mimose, iters, 3).total_ns;
        assert!(mim < sub, "mimose {mim} !< sublinear {sub}");
        assert!(mim < dtr, "mimose {mim} !< dtr {dtr}");
        assert!(
            mim as f64 >= base as f64 * 0.99,
            "mimose faster than baseline?"
        );
    }
}
