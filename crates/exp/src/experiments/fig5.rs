//! Fig 5: DTR's training-time breakdown and real memory usage on
//! MC-Roberta (SWAG) at budgets 4.2/4.5/5/5.5 GB.

use crate::table::{gib, render_table};
use crate::tasks::Task;
use mimose_exec::Trainer;
use mimose_planner::DtrPolicy;

/// Breakdown for one budget.
pub struct Fig5Row {
    /// Nominal budget bytes.
    pub budget: usize,
    /// Peak address-space extent (bytes "actually used").
    pub actual_bytes: usize,
    /// Peak fragmentation bytes.
    pub frag_bytes: usize,
    /// Fraction of iteration time in cost maintenance (metadata).
    pub maintain_frac: f64,
    /// Fraction in eviction search (planning).
    pub planning_frac: f64,
    /// Fraction in recomputation.
    pub recompute_frac: f64,
    /// Fraction in useful compute.
    pub compute_frac: f64,
}

/// Run DTR on MC-Roberta for `iters` iterations at each budget.
#[must_use]
///
/// # Panics
///
/// Panics when an underlying training run fails.
pub fn run(budgets_gb: &[f64], iters: usize) -> Vec<Fig5Row> {
    budgets_gb
        .iter()
        .map(|&gb| {
            let budget = (gb * (1u64 << 30) as f64) as usize;
            let task = Task::mc_roberta();
            let mut pol = DtrPolicy::new(budget);
            let mut tr = Trainer::new(&task.model, &task.dataset, &mut pol, 5);
            let s = tr.run_summary(iters).expect("fig5 run");
            let total = s.time.total_ns() as f64;
            Fig5Row {
                budget,
                actual_bytes: s.max_peak_extent,
                frag_bytes: s.max_frag_bytes,
                maintain_frac: s.time.bookkeeping_ns as f64 / total,
                planning_frac: s.time.planning_ns as f64 / total,
                recompute_frac: s.time.recompute_ns as f64 / total,
                compute_frac: s.time.compute_ns as f64 / total,
            }
        })
        .collect()
}

/// Render the Fig 5 report.
#[must_use]
pub fn render(rows: &[Fig5Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                gib(r.budget),
                gib(r.actual_bytes),
                gib(r.frag_bytes),
                format!("{:.1}%", r.compute_frac * 100.0),
                format!("{:.1}%", r.recompute_frac * 100.0),
                format!("{:.1}%", r.maintain_frac * 100.0),
                format!("{:.1}%", r.planning_frac * 100.0),
            ]
        })
        .collect();
    render_table(
        "Fig 5: DTR breakdown on MC-Roberta (SWAG)",
        &[
            "budget GiB",
            "actual GiB",
            "frag GiB",
            "compute",
            "recompute",
            "cost maintain",
            "planning",
        ],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtr_breakdown_matches_paper_shape() {
        let rows = run(&[4.2, 5.5], 40);
        for r in &rows {
            // Paper: cost maintenance ~26 % on average (up to 40 %).
            assert!(
                (0.08..0.45).contains(&r.maintain_frac),
                "maintenance fraction {:.3}",
                r.maintain_frac
            );
            // Actual usage exceeds the nominal budget (fragmentation).
            assert!(
                r.actual_bytes > r.budget,
                "actual {} <= budget {}",
                gib(r.actual_bytes),
                gib(r.budget)
            );
        }
        // Tighter budget → more planning/eviction overhead.
        assert!(
            rows[0].planning_frac + rows[0].recompute_frac
                >= rows[1].planning_frac + rows[1].recompute_frac,
            "tight {:.3}/{:.3} vs loose {:.3}/{:.3}",
            rows[0].planning_frac,
            rows[0].recompute_frac,
            rows[1].planning_frac,
            rows[1].recompute_frac
        );
    }
}
