//! Extension experiment: device sensitivity.
//!
//! Planner overheads scale differently with the accelerator generation:
//! recomputation shrinks with compute throughput, while DTR's metadata
//! maintenance is host-side and stays constant — so on a faster device the
//! dynamic planner's *relative* overhead grows and the gap to Mimose widens.

use crate::planners::{build_policy, PlannerKind};
use crate::table::render_table;
use crate::tasks::Task;
use mimose_exec::Trainer;
use mimose_simgpu::DeviceProfile;

/// One (device, planner) cell.
pub struct DeviceRow {
    /// Device label.
    pub device: &'static str,
    /// Planner.
    pub planner: PlannerKind,
    /// Time normalised to that device's unconstrained baseline.
    pub normalized: f64,
}

/// Run the sensitivity grid on TC-Bert under `budget`.
#[must_use]
///
/// # Panics
///
/// Panics when an underlying training run fails.
pub fn run(budget: usize, iters: usize) -> Vec<DeviceRow> {
    let task = Task::tc_bert();
    let mut rows = Vec::new();
    for (label, dev) in [
        ("V100", DeviceProfile::v100()),
        ("A100", DeviceProfile::a100()),
    ] {
        let total = |kind: PlannerKind| -> u64 {
            let mut policy = build_policy(kind, &task, budget);
            let mut tr = Trainer::new(&task.model, &task.dataset, policy.as_mut(), 17);
            tr.device = dev.clone();
            tr.run_summary(iters).expect("device run").total_ns
        };
        let base = total(PlannerKind::Baseline);
        for kind in [
            PlannerKind::Sublinear,
            PlannerKind::Dtr,
            PlannerKind::Mimose,
        ] {
            rows.push(DeviceRow {
                device: label,
                planner: kind,
                normalized: total(kind) as f64 / base as f64,
            });
        }
    }
    rows
}

/// Render the sensitivity table.
#[must_use]
pub fn render(rows: &[DeviceRow], budget: usize) -> String {
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.to_string(),
                r.planner.name().to_string(),
                format!("{:.3}", r.normalized),
            ]
        })
        .collect();
    render_table(
        &format!(
            "Extension: device sensitivity (TC-Bert, budget {} GiB)",
            budget >> 30
        ),
        &["device", "planner", "norm. time"],
        &t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtr_overhead_grows_on_faster_devices() {
        let rows = run(5 << 30, 60);
        let get = |device: &str, planner: PlannerKind| {
            rows.iter()
                .find(|r| r.device == device && r.planner == planner)
                .expect("cell present")
                .normalized
        };
        // DTR's host-side bookkeeping is a larger fraction of the faster
        // device's iteration.
        assert!(
            get("A100", PlannerKind::Dtr) > get("V100", PlannerKind::Dtr),
            "a100 {} !> v100 {}",
            get("A100", PlannerKind::Dtr),
            get("V100", PlannerKind::Dtr)
        );
        // Mimose stays the cheapest budgeted planner on both devices.
        for d in ["V100", "A100"] {
            assert!(get(d, PlannerKind::Mimose) < get(d, PlannerKind::Sublinear));
            assert!(get(d, PlannerKind::Mimose) < get(d, PlannerKind::Dtr));
        }
    }
}
