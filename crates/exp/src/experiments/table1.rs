//! Table I: the qualitative feature matrix, generated from each planner's
//! self-reported metadata.

use crate::planners::{build_policy, PlannerKind};
use crate::table::render_table;
use crate::tasks::Task;
use mimose_planner::{Granularity, PlanTiming};

/// Generate the feature matrix rows.
#[must_use]
pub fn run() -> Vec<Vec<String>> {
    let task = Task::tc_bert();
    let kinds = [
        PlannerKind::Mimose,
        PlannerKind::Dtr,
        PlannerKind::Sublinear,
        PlannerKind::Checkmate,
        PlannerKind::Monet,
    ];
    kinds
        .iter()
        .map(|&k| {
            let m = build_policy(k, &task, 6 << 30).meta();
            let b = |v: bool| if v { "yes" } else { "no" }.to_string();
            vec![
                m.name.to_string(),
                b(m.swapping),
                b(m.checkpointing),
                b(m.dynamic_input),
                b(m.dynamic_graph),
                m.frag_avoidance.to_string(),
                match m.granularity {
                    Granularity::Block => "block",
                    Granularity::Layer => "layer",
                    Granularity::Tensor => "tensor",
                }
                .to_string(),
                match m.timing {
                    PlanTiming::Offline => "offline",
                    PlanTiming::Runtime => "runtime",
                }
                .to_string(),
                m.search_space.to_string(),
                m.search_algorithm.to_string(),
                m.solving_time.to_string(),
            ]
        })
        .collect()
}

/// Render Table I.
#[must_use]
pub fn render(rows: &[Vec<String>]) -> String {
    render_table(
        "Table I: planner comparison",
        &[
            "planner",
            "swap",
            "ckpt",
            "dyn input",
            "dyn graph",
            "frag avoid",
            "granularity",
            "timing",
            "search space",
            "algorithm",
            "solve time",
        ],
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_claims() {
        let rows = run();
        let find = |name: &str| {
            rows.iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let mimose = find("Mimose");
        assert_eq!(mimose[3], "yes"); // dynamic input
        assert_eq!(mimose[7], "runtime");
        assert_eq!(mimose[6], "block");
        let sub = find("Sublinear");
        assert_eq!(sub[3], "no");
        assert_eq!(sub[7], "offline");
        let dtr = find("DTR");
        assert_eq!(dtr[3], "yes");
        assert_eq!(dtr[4], "yes"); // dynamic graph
        assert_eq!(dtr[6], "tensor");
    }
}
