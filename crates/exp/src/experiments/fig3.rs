//! Fig 3: input-size distributions of the four NLP datasets and the GPU
//! memory footprint as a function of input size.

use crate::table::{gib, render_histogram, render_table};
use crate::tasks::Task;

/// One dataset's distribution + memory curve.
pub struct Fig3Result {
    /// Task abbreviation.
    pub task: &'static str,
    /// Collated per-sample extents (seqlen) over the sampled iterations.
    pub extents: Vec<usize>,
    /// (seqlen, no-checkpoint peak bytes) curve.
    pub memory_curve: Vec<(usize, usize)>,
}

/// Sample `iters` batches per NLP task and profile the memory footprint at
/// a sweep of sizes across each dataset's range.
#[must_use]
///
/// # Panics
///
/// Panics when a task's sampled extent set is empty.
pub fn run(iters: usize) -> Vec<Fig3Result> {
    Task::nlp()
        .into_iter()
        .map(|task| {
            let mut stream = task.dataset.stream(33);
            let extents: Vec<usize> = (0..iters)
                .map(|_| stream.next_batch().per_sample_extent())
                .collect();
            let lo = *extents.iter().min().expect("nonempty");
            let hi = *extents.iter().max().expect("nonempty");
            let batch = task.dataset.batch_size();
            let choices = match &task.dataset {
                mimose_data::Dataset::Text(t) => t.choices,
                _ => 1,
            };
            let memory_curve: Vec<(usize, usize)> = (0..=10)
                .map(|i| {
                    let seq = lo + (hi - lo) * i / 10;
                    let input = mimose_models::ModelInput::tokens(batch * choices, seq);
                    let p = task.model.profile(&input).expect("validates");
                    (seq, p.peak_no_checkpoint())
                })
                .collect();
            Fig3Result {
                task: task.abbr,
                extents,
                memory_curve,
            }
        })
        .collect()
}

/// Render the Fig 3 report.
#[must_use]
pub fn render(results: &[Fig3Result]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&render_histogram(
            &format!("{} collated seqlen distribution", r.task),
            &r.extents,
            12,
            40,
        ));
        let rows: Vec<Vec<String>> = r
            .memory_curve
            .iter()
            .map(|(s, b)| vec![s.to_string(), gib(*b)])
            .collect();
        out.push_str(&render_table(
            &format!("{} memory footprint vs seqlen (no checkpointing)", r.task),
            &["seqlen", "peak GiB"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_match_fig3() {
        let results = run(400);
        let expect = [
            ("MC-Roberta", 35, 141),
            ("TR-T5", 17, 460),
            ("QA-Bert", 153, 512),
            ("TC-Bert", 30, 332),
        ];
        for (task, lo, hi) in expect {
            let r = results
                .iter()
                .find(|r| r.task == task)
                .expect("task present");
            let got_lo = *r.extents.iter().min().expect("nonempty");
            let got_hi = *r.extents.iter().max().expect("nonempty");
            assert!(got_lo >= lo, "{task}: min {got_lo} < {lo}");
            assert!(got_hi <= hi, "{task}: max {got_hi} > {hi}");
        }
    }

    #[test]
    fn memory_curve_is_monotone_and_smooth() {
        // §III-A: "the GPU memory usage curve is quite smooth".
        let results = run(50);
        for r in &results {
            let peaks: Vec<usize> = r.memory_curve.iter().map(|c| c.1).collect();
            assert!(
                peaks.windows(2).all(|w| w[1] >= w[0]),
                "{}: non-monotone",
                r.task
            );
        }
    }
}
