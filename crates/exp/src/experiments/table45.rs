//! Tables IV and V: the memory-estimator comparison.
//!
//! Table IV compares six regression families on TC-Bert (training time,
//! prediction latency, relative error of the summed per-layer prediction);
//! Table V runs the winning quadratic polynomial across all six tasks.

use crate::table::render_table;
use crate::tasks::Task;
use mimose_estimator::{
    metrics, DecisionTreeRegressor, GbtRegressor, PolynomialRegressor, Regressor, SvrRegressor,
};
use mimose_rng::StdRng;
use mimose_rng::{Rng, SeedableRng};
use std::time::Instant;

/// Relative std-dev of the profiling noise injected into collected samples.
///
/// The real collector reads `torch.cuda` memory statistics, which jitter
/// with allocator caching and cuDNN workspace choices; the paper's quadratic
/// fit bottoms out at ~0.3 % error (Table IV) rather than zero. Our
/// simulator measures exactly, so we model that jitter explicitly.
pub const PROFILING_NOISE_STD: f64 = 0.004;

/// One estimator-comparison measurement.
pub struct EstimatorRow {
    /// Regressor family label.
    pub model: String,
    /// Training samples used.
    pub samples: usize,
    /// Total fit time across all per-block regressors, ns.
    pub train_ns: u64,
    /// Whole-model prediction latency (all blocks, one input size), ns.
    pub predict_ns: u64,
    /// Mean relative error of the summed prediction on held-out inputs.
    pub error: f64,
}

/// Collect (input_size, per-block act+out bytes) training data for a task:
/// what the shuttle collector would have measured over `n` iterations.
fn collect(task: &Task, n: usize, seed: u64) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut stream = task.dataset.stream(seed);
    let mut noise = Noise::new(seed ^ 0x9e37);
    let mut xs = Vec::with_capacity(n);
    let mut per_block: Vec<Vec<f64>> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while xs.len() < n {
        let input = stream.next_batch();
        // Distinct sizes only — repeated sizes add no information and the
        // shuttle collector skips known sizes.
        if !seen.insert(input.input_size()) {
            continue;
        }
        let p = task.model.profile(&input).expect("validates");
        if per_block.is_empty() {
            per_block = vec![Vec::with_capacity(n); p.blocks.len()];
        }
        xs.push(p.input_size as f64);
        for (bi, b) in p.blocks.iter().enumerate() {
            per_block[bi].push((b.act_bytes + b.out_bytes) as f64 * noise.sample());
        }
    }
    (xs, per_block)
}

/// Multiplicative Gaussian noise source (Box-Muller over a seeded RNG).
struct Noise {
    rng: StdRng,
}

impl Noise {
    fn new(seed: u64) -> Self {
        Noise {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn sample(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        1.0 + PROFILING_NOISE_STD * z
    }
}

/// Evaluate one regressor family (constructed per block by `make`).
fn evaluate(
    task: &Task,
    label: &str,
    samples: usize,
    make: &dyn Fn() -> Box<dyn Regressor>,
) -> EstimatorRow {
    let (xs, per_block) = collect(task, samples, 77);
    // Fit one regressor per block, timing the whole ensemble.
    let t0 = Instant::now();
    let mut fitted: Vec<Box<dyn Regressor>> = Vec::with_capacity(per_block.len());
    for ys in &per_block {
        let mut m = make();
        m.fit(&xs, ys).expect("fit succeeds");
        fitted.push(m);
    }
    let train_ns = t0.elapsed().as_nanos() as u64;

    // Held-out inputs from a different stream seed.
    let mut stream = task.dataset.stream(507);
    let tests: Vec<mimose_models::ModelInput> = (0..30).map(|_| stream.next_batch()).collect();
    let mut pred = Vec::new();
    let mut truth = Vec::new();
    let t1 = Instant::now();
    let mut predictions = 0u32;
    for input in &tests {
        let x = input.input_size() as f64;
        let p: f64 = fitted.iter().map(|m| m.predict(x)).sum();
        pred.push(p);
        predictions += 1;
    }
    let predict_ns = t1.elapsed().as_nanos() as u64 / u64::from(predictions.max(1));
    for input in &tests {
        let p = task.model.profile(input).expect("validates");
        truth.push(p.total_act_bytes() as f64);
    }
    EstimatorRow {
        model: label.to_string(),
        samples,
        train_ns,
        predict_ns,
        error: metrics::mean_relative_error(&pred, &truth),
    }
}

/// Table IV: six regressor configurations on TC-Bert.
#[must_use]
pub fn run_table4() -> Vec<EstimatorRow> {
    let task = Task::tc_bert();
    let mut rows = Vec::new();
    for order in [1usize, 2, 3] {
        rows.push(evaluate(
            &task,
            &format!("Polynomial (n={order})"),
            10,
            &|| Box::new(PolynomialRegressor::new(order)),
        ));
    }
    for n in [10usize, 50] {
        rows.push(evaluate(&task, "SVR", n, &|| {
            Box::new(SvrRegressor::default_params())
        }));
    }
    for n in [10usize, 50] {
        rows.push(evaluate(&task, "DecisionTree", n, &|| {
            Box::new(DecisionTreeRegressor::default_params())
        }));
    }
    for n in [10usize, 50] {
        rows.push(evaluate(&task, "XGBoost", n, &|| {
            Box::new(GbtRegressor::default_params())
        }));
    }
    rows
}

/// Table V: the quadratic polynomial across all six tasks.
#[must_use]
pub fn run_table5() -> Vec<(String, EstimatorRow)> {
    Task::all()
        .into_iter()
        .map(|task| {
            let row = evaluate(&task, "Polynomial (n=2)", 10, &|| {
                Box::new(PolynomialRegressor::new(2))
            });
            (task.abbr.to_string(), row)
        })
        .collect()
}

/// Render Table IV.
#[must_use]
pub fn render_table4(rows: &[EstimatorRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.samples.to_string(),
                format!("{:.2}", r.train_ns as f64 / 1e6),
                format!("{:.2}", r.predict_ns as f64 / 1e3),
                format!("{:.2}%", r.error * 100.0),
            ]
        })
        .collect();
    render_table(
        "Table IV: regression models on TC-Bert",
        &["Model", "# Samples", "Train (ms)", "Predict (us)", "Error"],
        &table,
    )
}

/// Render Table V.
#[must_use]
pub fn render_table5(rows: &[(String, EstimatorRow)]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(task, r)| {
            vec![
                task.clone(),
                r.samples.to_string(),
                format!("{:.2}", r.train_ns as f64 / 1e6),
                format!("{:.2}", r.predict_ns as f64 / 1e3),
                format!("{:.2}%", r.error * 100.0),
            ]
        })
        .collect();
    render_table(
        "Table V: quadratic polynomial across tasks",
        &["Task", "# Samples", "Train (ms)", "Predict (us)", "Error"],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_wins_table4() {
        let rows = run_table4();
        let err = |name: &str, n: usize| {
            rows.iter()
                .find(|r| r.model == name && r.samples == n)
                .unwrap_or_else(|| panic!("{name}/{n} missing"))
                .error
        };
        let quad = err("Polynomial (n=2)", 10);
        // Paper: quadratic at thousandth-level error, linear ~4 %, trees and
        // SVR visibly worse at 10 samples.
        assert!(quad < 0.02, "quadratic error {quad}");
        assert!(err("Polynomial (n=1)", 10) > quad);
        assert!(err("DecisionTree", 10) > quad);
        assert!(err("SVR", 10) > quad);
        assert!(err("XGBoost", 10) > quad);
    }

    #[test]
    fn xgboost_is_orders_slower() {
        let rows = run_table4();
        let find = |name: &str, n: usize| {
            rows.iter()
                .find(|r| r.model == name && r.samples == n)
                .expect("present")
        };
        let quad = find("Polynomial (n=2)", 10);
        let xgb = find("XGBoost", 10);
        assert!(
            xgb.train_ns > 20 * quad.train_ns,
            "xgb {} vs quad {}",
            xgb.train_ns,
            quad.train_ns
        );
        assert!(xgb.predict_ns > 5 * quad.predict_ns);
    }

    #[test]
    fn table5_errors_low_everywhere() {
        let rows = run_table5();
        assert_eq!(rows.len(), 6);
        for (task, r) in &rows {
            // Paper: ≤ 2.3 % (OD tasks worst).
            assert!(r.error < 0.06, "{task}: error {:.3}", r.error);
        }
    }
}
