//! Table III: Mimose's overhead breakdown per epoch under a 6 GB budget —
//! collector cost (10 shuttle iterations), estimator+scheduler latency
//! (sub-millisecond, dozens of invocations), total normalised to the
//! single-iteration time.

use crate::table::{ms, render_table};
use crate::tasks::Task;
use mimose_core::{MimoseConfig, MimosePolicy};
use mimose_exec::Trainer;

/// One task's overhead breakdown.
pub struct Table3Row {
    /// Task abbreviation.
    pub task: &'static str,
    /// Mean non-shuttle iteration time, ns.
    pub iter_ns: u64,
    /// Extra time per collection iteration (the second forward), ns.
    pub collector_per_iter_ns: u64,
    /// Number of collection iterations.
    pub collector_count: usize,
    /// (min, max) estimator+scheduler wall time per generated plan, ns.
    pub plan_ns_range: (u64, u64),
    /// Number of generated plans (cache misses) this run.
    pub plans_generated: u64,
    /// Total overhead (collector extra + plan generation), ns.
    pub total_overhead_ns: u64,
    /// Iterations simulated.
    pub iters: usize,
}

impl Table3Row {
    /// Total overhead expressed in single-iteration units (the paper's
    /// "3.93 iters" style figure).
    #[must_use]
    pub fn overhead_iters(&self) -> f64 {
        self.total_overhead_ns as f64 / self.iter_ns.max(1) as f64
    }
}

/// Run Mimose for up to `max_iters` iterations of each task's epoch under
/// `budget` bytes. The OD tasks run at 14 GB instead (the paper's Fig 10 OD
/// budget): the simulated detector footprint cannot complete even fully
/// checkpointed collection at 6 GB for the largest multi-scale inputs —
/// documented as a calibration difference in EXPERIMENTS.md.
#[must_use]
///
/// # Panics
///
/// Panics when an underlying training run fails.
pub fn run(budget: usize, max_iters: usize) -> Vec<Table3Row> {
    Task::all()
        .into_iter()
        .map(|task| {
            let budget = if matches!(task.dataset, mimose_data::Dataset::Vision(_)) {
                (14usize) << 30
            } else {
                budget
            };
            let iters = task.dataset.iters_per_epoch().min(max_iters);
            let mut pol = MimosePolicy::new(MimoseConfig::with_budget(budget));
            let mut tr = Trainer::new(&task.model, &task.dataset, &mut pol, 11);
            let reports = tr.run(iters).expect("table3 run");
            let normal: Vec<&mimose_exec::IterationReport> =
                reports.iter().filter(|r| !r.shuttle).collect();
            let iter_ns =
                normal.iter().map(|r| r.time.total_ns()).sum::<u64>() / normal.len().max(1) as u64;
            let shuttles: Vec<&mimose_exec::IterationReport> =
                reports.iter().filter(|r| r.shuttle).collect();
            // The collector's extra cost is the shuttle iteration's
            // recompute component (the second forward pass).
            let collector_total: u64 = shuttles.iter().map(|r| r.time.recompute_ns).sum();
            let collector_per_iter_ns = collector_total / shuttles.len().max(1) as u64;
            let stats = pol.stats();
            let total_overhead_ns = collector_total + stats.total_plan_ns();
            Table3Row {
                task: task.abbr,
                iter_ns,
                collector_per_iter_ns,
                collector_count: shuttles.len(),
                plan_ns_range: stats.plan_ns_range(),
                plans_generated: stats.plans_generated,
                total_overhead_ns,
                iters,
            }
        })
        .collect()
}

/// Render Table III.
#[must_use]
pub fn render(rows: &[Table3Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} ({} ms/iter)", r.task, ms(r.iter_ns)),
                format!(
                    "{} ms ({} times)",
                    ms(r.collector_per_iter_ns),
                    r.collector_count
                ),
                format!(
                    "{} ms~{} ms ({} times)",
                    ms(r.plan_ns_range.0),
                    ms(r.plan_ns_range.1),
                    r.plans_generated
                ),
                format!(
                    "{} ms ({:.2} iters)",
                    ms(r.total_overhead_ns),
                    r.overhead_iters()
                ),
            ]
        })
        .collect();
    render_table(
        "Table III: Mimose overhead breakdown (6 GB budget)",
        &["Task", "Collector", "Estimator & Scheduler", "Total"],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_a_few_iterations_per_epoch() {
        let rows = run(6 << 30, 1200);
        for r in &rows {
            assert_eq!(r.collector_count, 10, "{}: collector count", r.task);
            // Paper: total overhead 1.2~6.4 iterations; ours must stay
            // within the same order.
            let oi = r.overhead_iters();
            assert!((0.5..15.0).contains(&oi), "{}: {oi:.2} iters", r.task);
            // Estimator+scheduler stays sub-millisecond per plan in release
            // builds (the paper's claim); unoptimised builds get slack.
            let limit = if cfg!(debug_assertions) {
                50_000_000
            } else {
                2_000_000
            };
            assert!(
                r.plan_ns_range.1 < limit,
                "{}: plan gen {} ns",
                r.task,
                r.plan_ns_range.1
            );
        }
    }

    #[test]
    fn plans_generated_are_dozens_not_thousands() {
        // §V: "the memory scheduler only needs to generate the checkpointing
        // plan dozens of times during the entire epoch".
        let rows = run(6 << 30, 1500);
        for r in &rows {
            assert!(
                (r.plans_generated as usize) < r.iters / 4,
                "{}: {} plans over {} iters",
                r.task,
                r.plans_generated,
                r.iters
            );
        }
    }
}
