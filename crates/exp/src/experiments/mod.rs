//! One module per reproduced table/figure.

pub mod ablations;
pub mod chaos;
pub mod ext_device;
pub mod ext_hybrid;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig9;
pub mod table1;
pub mod table3;
pub mod table45;
