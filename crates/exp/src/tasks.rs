//! The six training tasks of Table II.

use mimose_data::{presets, Dataset};
use mimose_models::builders::{
    bert_base, resnet101_od, resnet50_od, roberta_base, t5_base, BertHead,
};
use mimose_models::{ModelProfile, OptimizedGraph};

/// One evaluation task: model + dataset + batch size (batch size lives in
/// the dataset preset).
pub struct Task {
    /// Paper abbreviation, e.g. `MC-Roberta`.
    pub abbr: &'static str,
    /// Task description.
    pub kind: &'static str,
    /// The model graph, run through the standard optimization
    /// pipeline — every experiment plans and executes against the
    /// shrunk footprint, exactly like production sessions do.
    pub model: OptimizedGraph,
    /// The dataset.
    pub dataset: Dataset,
}

impl Task {
    /// MC-Roberta: multiple choice on SWAG with RoBERTa-base, batch 16.
    #[must_use]
    pub fn mc_roberta() -> Task {
        Task {
            abbr: "MC-Roberta",
            kind: "Multiple Choice",
            model: roberta_base(BertHead::Classification { labels: 1 }).optimize(),
            dataset: presets::swag(),
        }
    }

    /// TR-T5: translation on UN_PC with T5-base, batch 8.
    #[must_use]
    pub fn tr_t5() -> Task {
        Task {
            abbr: "TR-T5",
            kind: "Translation",
            model: t5_base().optimize(),
            dataset: presets::un_pc(),
        }
    }

    /// QA-Bert: question answering on SQuAD with BERT-base, batch 12.
    #[must_use]
    pub fn qa_bert() -> Task {
        Task {
            abbr: "QA-Bert",
            kind: "Question Answering",
            model: bert_base(BertHead::QuestionAnswering).optimize(),
            dataset: presets::squad(),
        }
    }

    /// TC-Bert: text classification on GLUE-QQP with BERT-base, batch 32.
    #[must_use]
    pub fn tc_bert() -> Task {
        Task {
            abbr: "TC-Bert",
            kind: "Text Classification",
            model: bert_base(BertHead::Classification { labels: 2 }).optimize(),
            dataset: presets::glue_qqp(),
        }
    }

    /// OD-R50: object detection on COCO with ResNet-50, batch 8.
    #[must_use]
    pub fn od_r50() -> Task {
        Task {
            abbr: "OD-R50",
            kind: "Object Detection",
            model: resnet50_od().optimize(),
            dataset: presets::coco(8),
        }
    }

    /// OD-R101: object detection on COCO with ResNet-101, batch 6.
    #[must_use]
    pub fn od_r101() -> Task {
        Task {
            abbr: "OD-R101",
            kind: "Object Detection",
            model: resnet101_od().optimize(),
            dataset: presets::coco(6),
        }
    }

    /// All six tasks of Table II.
    #[must_use]
    pub fn all() -> Vec<Task> {
        vec![
            Task::mc_roberta(),
            Task::tr_t5(),
            Task::qa_bert(),
            Task::tc_bert(),
            Task::od_r50(),
            Task::od_r101(),
        ]
    }

    /// The four NLP tasks.
    #[must_use]
    pub fn nlp() -> Vec<Task> {
        vec![
            Task::mc_roberta(),
            Task::tr_t5(),
            Task::qa_bert(),
            Task::tc_bert(),
        ]
    }

    /// Ground-truth profile of the worst-case collated input.
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when the dataset's worst-case input fails to profile.
    pub fn worst_profile(&self) -> ModelProfile {
        self.model
            .profile(&self.dataset.worst_case())
            .expect("worst case must validate")
    }

    /// A "typical" profile near the distribution's centre (what a static
    /// graph export would be solved against when the tool cannot handle
    /// dynamic shapes — the OD failure mode of §VI-B).
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when the dataset's median input fails to profile.
    pub fn typical_profile(&self) -> ModelProfile {
        let mut stream = self.dataset.stream(1234);
        // Median-ish input: take the median input size of 31 draws.
        let mut batches = stream.take_batches(31);
        batches.sort_by_key(|b| b.input_size());
        let median = batches[batches.len() / 2];
        self.model.profile(&median).expect("median must validate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tasks_validate_worst_case() {
        for t in Task::all() {
            let p = t.worst_profile();
            assert!(p.input_size > 0, "{}", t.abbr);
            assert!(!p.blocks.is_empty(), "{}", t.abbr);
        }
    }

    #[test]
    fn batch_sizes_match_table2() {
        assert_eq!(Task::mc_roberta().dataset.batch_size(), 16);
        assert_eq!(Task::tr_t5().dataset.batch_size(), 8);
        assert_eq!(Task::qa_bert().dataset.batch_size(), 12);
        assert_eq!(Task::tc_bert().dataset.batch_size(), 32);
        assert_eq!(Task::od_r50().dataset.batch_size(), 8);
        assert_eq!(Task::od_r101().dataset.batch_size(), 6);
    }

    #[test]
    fn typical_profile_below_worst() {
        for t in Task::nlp() {
            let w = t.worst_profile();
            let ty = t.typical_profile();
            assert!(ty.input_size <= w.input_size, "{}", t.abbr);
        }
    }
}
