//! Hand-rolled argument parsing for the `mimose_sim` CLI driver (the
//! workspace avoids an argument-parsing dependency).

use crate::planners::PlannerKind;
use crate::tasks::Task;

/// Parsed CLI options.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Task abbreviation (Table II).
    pub task: String,
    /// Planner under test.
    pub planner: PlannerKind,
    /// Memory budget in bytes.
    pub budget_bytes: usize,
    /// Iterations to simulate.
    pub iters: usize,
    /// Stream seed.
    pub seed: u64,
    /// Emit per-iteration CSV instead of the text summary.
    pub csv: bool,
    /// Use the A100 device profile instead of the V100.
    pub a100: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            task: "TC-Bert".into(),
            planner: PlannerKind::Mimose,
            budget_bytes: 6 << 30,
            iters: 200,
            seed: 42,
            csv: false,
            a100: false,
        }
    }
}

/// Usage text shown for `--help` and on parse errors.
pub const USAGE: &str = "\
mimose_sim — simulate budgeted training with any planner

USAGE:
    mimose_sim [OPTIONS]

OPTIONS:
    --task <ABBR>       MC-Roberta | TR-T5 | QA-Bert | TC-Bert | OD-R50 | OD-R101  [TC-Bert]
    --planner <NAME>    baseline | sublinear | checkmate | monet | dtr | mimose | mimose-ks  [mimose]
    --budget <GiB>      memory budget in GiB (fractions allowed)  [6]
    --iters <N>         iterations to simulate  [200]
    --seed <N>          batch-stream seed  [42]
    --csv               emit per-iteration CSV on stdout
    --a100              use the A100 device profile
    --help              print this message
";

/// Parse-time failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parse a planner name.
pub fn parse_planner(name: &str) -> Result<PlannerKind, ParseError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "baseline" => PlannerKind::Baseline,
        "sublinear" => PlannerKind::Sublinear,
        "checkmate" => PlannerKind::Checkmate,
        "monet" => PlannerKind::Monet,
        "dtr" => PlannerKind::Dtr,
        "mimose" => PlannerKind::Mimose,
        "mimose-ks" => PlannerKind::MimoseKnapsack,
        other => return Err(ParseError(format!("unknown planner '{other}'"))),
    })
}

/// Look up a task by its Table II abbreviation (case-insensitive).
pub fn find_task(abbr: &str) -> Result<Task, ParseError> {
    Task::all()
        .into_iter()
        .find(|t| t.abbr.eq_ignore_ascii_case(abbr))
        .ok_or_else(|| ParseError(format!("unknown task '{abbr}'")))
}

/// Parse argv (without the program name). `Ok(None)` means `--help`.
pub fn parse_args(args: &[String]) -> Result<Option<SimOptions>, ParseError> {
    let mut opt = SimOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, ParseError> {
            it.next()
                .ok_or_else(|| ParseError(format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--csv" => opt.csv = true,
            "--a100" => opt.a100 = true,
            "--task" => opt.task = value("--task")?.clone(),
            "--planner" => opt.planner = parse_planner(value("--planner")?)?,
            "--budget" => {
                let v: f64 = value("--budget")?
                    .parse()
                    .map_err(|_| ParseError("--budget must be a number of GiB".into()))?;
                if !(v > 0.0 && v < 1024.0) {
                    return Err(ParseError("--budget out of range".into()));
                }
                opt.budget_bytes = (v * (1u64 << 30) as f64) as usize;
            }
            "--iters" => {
                opt.iters = value("--iters")?
                    .parse()
                    .map_err(|_| ParseError("--iters must be an integer".into()))?;
            }
            "--seed" => {
                opt.seed = value("--seed")?
                    .parse()
                    .map_err(|_| ParseError("--seed must be an integer".into()))?;
            }
            other => return Err(ParseError(format!("unknown option '{other}'"))),
        }
    }
    // Validate the task eagerly so errors surface before any simulation.
    find_task(&opt.task)?;
    Ok(Some(opt))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_when_no_args() {
        let opt = parse_args(&[]).unwrap().unwrap();
        assert_eq!(opt, SimOptions::default());
    }

    #[test]
    fn full_command_line() {
        let opt = parse_args(&v(&[
            "--task",
            "qa-bert",
            "--planner",
            "dtr",
            "--budget",
            "4.5",
            "--iters",
            "50",
            "--seed",
            "9",
            "--csv",
            "--a100",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(opt.planner, PlannerKind::Dtr);
        assert_eq!(opt.budget_bytes, (4.5 * (1u64 << 30) as f64) as usize);
        assert_eq!(opt.iters, 50);
        assert_eq!(opt.seed, 9);
        assert!(opt.csv && opt.a100);
        assert_eq!(opt.task, "qa-bert");
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse_args(&v(&["--help"])).unwrap(), None);
        assert_eq!(parse_args(&v(&["--task", "TC-Bert", "-h"])).unwrap(), None);
    }

    #[test]
    fn bad_inputs_error() {
        assert!(parse_args(&v(&["--planner", "magic"])).is_err());
        assert!(parse_args(&v(&["--budget"])).is_err());
        assert!(parse_args(&v(&["--budget", "-3"])).is_err());
        assert!(parse_args(&v(&["--task", "nonsense"])).is_err());
        assert!(parse_args(&v(&["--frobnicate"])).is_err());
    }

    #[test]
    fn every_comparison_planner_parses() {
        for k in crate::planners::PlannerKind::comparison_set() {
            let name = k.name().to_ascii_lowercase();
            let name = if name == "monet" {
                "monet".to_string()
            } else {
                name
            };
            assert_eq!(parse_planner(&name).unwrap(), k, "{name}");
        }
    }
}
