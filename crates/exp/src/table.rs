//! Plain-text table and chart rendering for experiment binaries.

/// Render an aligned text table. `rows` must all have `header.len()` cells.
#[must_use]
///
/// # Panics
///
/// Panics when a row's length differs from the header's.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged row in table {title}");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:w$}", c, w = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out
}

/// Render a horizontal ASCII bar chart (value label + proportional bar).
pub fn render_bars(title: &str, entries: &[(String, f64)], width: usize) -> String {
    let max = entries
        .iter()
        .map(|e| e.1)
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_w = entries.iter().map(|e| e.0.len()).max().unwrap_or(0);
    let mut out = format!("-- {title} --\n");
    for (label, v) in entries {
        let n = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:label_w$}  {:>10.3}  {}\n",
            label,
            v,
            "#".repeat(n)
        ));
    }
    out
}

/// Render a histogram of values into `bins` buckets.
#[must_use]
///
/// # Panics
///
/// Panics when `bins` is zero or `values` is empty.
pub fn render_histogram(title: &str, values: &[usize], bins: usize, width: usize) -> String {
    assert!(bins > 0 && !values.is_empty());
    let lo = *values.iter().min().expect("nonempty");
    let hi = *values.iter().max().expect("nonempty");
    let span = (hi - lo).max(1);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = ((v - lo) * bins / (span + 1)).min(bins - 1);
        counts[b] += 1;
    }
    let maxc = *counts.iter().max().expect("nonempty") as f64;
    let mut out = format!("-- {title} (n={}, range {lo}..{hi}) --\n", values.len());
    for (i, &c) in counts.iter().enumerate() {
        let b_lo = lo + span * i / bins;
        let b_hi = lo + span * (i + 1) / bins;
        let n = ((c as f64 / maxc) * width as f64).round() as usize;
        let label = format!("[{b_lo}-{b_hi})");
        out.push_str(&format!("{label:>15}  {c:>5}  {}\n", "#".repeat(n)));
    }
    out
}

/// Format bytes as GiB with two decimals.
#[must_use]
pub fn gib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1u64 << 30) as f64)
}

/// Format a nanosecond count as milliseconds with two decimals.
#[must_use]
pub fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = render_table(
            "t",
            &["a", "bb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["long".into(), "z".into()],
            ],
        );
        assert!(s.contains("== t =="));
        assert!(s.contains("long"));
        // Header and rows share alignment width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render_table("t", &["a"], &[vec!["x".into(), "y".into()]]);
    }

    #[test]
    fn histogram_counts_everything() {
        let values = vec![1, 2, 3, 10, 10, 10];
        let s = render_histogram("h", &values, 3, 20);
        let total: usize = s
            .lines()
            .skip(1)
            .filter_map(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|x| x.parse::<usize>().ok())
            })
            .sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(gib(1 << 30), "1.00");
        assert_eq!(ms(1_500_000), "1.50");
    }
}
