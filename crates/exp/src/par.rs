//! Scoped-thread work distribution (rayon is unavailable in the offline
//! build environment; this covers the embarrassingly-parallel map the
//! experiment grids need).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` on up to `std::thread::available_parallelism()`
/// worker threads, preserving input order in the output.
///
/// # Panics
///
/// Panics when a worker thread panics (the panic is propagated).
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots_ptr = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            let slots_ptr = &slots_ptr;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                // Each index is claimed by exactly one worker, so writes
                // never alias.
                unsafe { *slots_ptr.0.add(i) = Some(out) };
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

struct SendPtr<U>(*mut Option<U>);
unsafe impl<U: Send> Sync for SendPtr<U> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..257).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = parallel_map(&Vec::<usize>::new(), |&x| x);
        assert!(out.is_empty());
    }
}
