//! Regenerates Fig 4: the static planner's wasted budget on TC-Bert.

use mimose_exp::experiments::fig4;

fn main() {
    let budget = 3usize << 30;
    let points = fig4::run(budget);
    print!("{}", fig4::render(&points, budget));
}
