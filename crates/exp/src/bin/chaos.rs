//! `chaos`: sweep deterministic fault scenarios against the OOM-recovery
//! ladder and report recovered-vs-fatal rates and slowdown.
//!
//! With `--gate`, exit non-zero unless every scenario passes: no fatal
//! (unrecovered) OOM, recovery traces clean under the audit linter, the
//! no-fault control byte-identical to a plain run, and every OOM-injecting
//! scenario actually exercising the ladder.

use mimose_exp::cli::find_task;
use mimose_exp::experiments::chaos::{
    clean_reference, render, run_all, run_scenario, ChaosOptions, Scenario,
};

const USAGE: &str = "\
chaos — sweep fault-injection scenarios against the OOM-recovery ladder

USAGE:
    chaos [OPTIONS]

OPTIONS:
    --task <ABBR>        MC-Roberta | TR-T5 | QA-Bert | TC-Bert | OD-R50 | OD-R101  [TC-Bert]
    --budget <GiB>       memory budget in GiB (fractions allowed)  [6]
    --iters <N>          iterations per scenario  [120]
    --seed <N>           batch-stream and fault seed  [42]
    --scenario <NAME>    none | estimator-under | capacity-shrink | alloc-flake |
                         recompute-spike | combined | all  [all]
    --gate               exit non-zero unless every scenario passes
    --help               print this message
";

struct Args {
    opt: ChaosOptions,
    scenario: Option<Scenario>,
    gate: bool,
}

fn parse(args: &[String]) -> Result<Option<Args>, String> {
    let mut opt = ChaosOptions::default();
    let mut scenario = None;
    let mut gate = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--gate" => gate = true,
            "--task" => opt.task = value("--task")?.clone(),
            "--budget" => {
                let v: f64 = value("--budget")?
                    .parse()
                    .map_err(|_| "--budget must be a number of GiB".to_string())?;
                if !(v > 0.0 && v < 1024.0) {
                    return Err("--budget out of range".into());
                }
                opt.budget_bytes = (v * (1u64 << 30) as f64) as usize;
            }
            "--iters" => {
                opt.iters = value("--iters")?
                    .parse()
                    .map_err(|_| "--iters must be an integer".to_string())?;
            }
            "--seed" => {
                opt.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--scenario" => {
                let name = value("--scenario")?;
                if name.eq_ignore_ascii_case("all") {
                    scenario = None;
                } else {
                    scenario = Some(
                        Scenario::parse(name)
                            .ok_or_else(|| format!("unknown scenario '{name}'"))?,
                    );
                }
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    find_task(&opt.task).map_err(|e| e.to_string())?;
    Ok(Some(Args {
        opt,
        scenario,
        gate,
    }))
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    let outcomes = match args.scenario {
        None => run_all(&args.opt),
        Some(s) => {
            let task = find_task(&args.opt.task).expect("validated");
            let clean = clean_reference(&task, &args.opt);
            vec![run_scenario(&task, s, &args.opt, &clean)]
        }
    };
    print!("{}", render(&args.opt, &outcomes));

    let failing: Vec<&str> = outcomes
        .iter()
        .filter(|o| !o.passes_gate())
        .map(|o| o.scenario.name())
        .collect();
    if args.gate {
        if failing.is_empty() {
            eprintln!("chaos gate: every scenario passed");
        } else {
            eprintln!("chaos gate: FAILED scenario(s): {}", failing.join(", "));
            std::process::exit(1);
        }
    } else if !failing.is_empty() {
        eprintln!(
            "note: scenario(s) not meeting gate criteria: {}",
            failing.join(", ")
        );
    }
}
