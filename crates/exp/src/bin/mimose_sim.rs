//! `mimose_sim`: simulate budgeted training for any (task, planner, budget)
//! from the command line; text summary or per-iteration CSV.

use mimose::prelude::*;
use mimose_exp::cli::{find_task, parse_args, SimOptions, USAGE};
use mimose_exp::csv::iterations_to_csv;
use mimose_exp::planners::build_policy;
use mimose_exp::table::{gib, ms};

fn run(opt: &SimOptions) {
    let task = find_task(&opt.task).expect("validated by parse_args");
    let mut policy = build_policy(opt.planner, &task, opt.budget_bytes);
    let mut trainer = Trainer::new(&task.model, &task.dataset, policy.as_mut(), opt.seed);
    if opt.a100 {
        trainer.device = DeviceProfile::a100();
    }
    let reports = trainer.run(opt.iters).expect("training run");
    if opt.csv {
        print!("{}", iterations_to_csv(&reports));
        return;
    }
    let mut summary = RunSummary::default();
    for r in &reports {
        summary.absorb(r);
    }
    println!(
        "task {} | planner {} | budget {} GiB | {} iters | device {}",
        task.abbr,
        opt.planner.name(),
        gib(opt.budget_bytes),
        opt.iters,
        if opt.a100 { "A100" } else { "V100" }
    );
    println!(
        "total {} ms ({} ms/iter) | peak {} GiB | reserved {} GiB | frag {} GiB",
        ms(summary.total_ns),
        ms(summary.mean_iter_ns()),
        gib(summary.max_peak_bytes),
        gib(summary.max_peak_extent),
        gib(summary.max_frag_bytes),
    );
    println!(
        "compute {} ms | recompute {} ms | planning {} ms | bookkeeping {} ms | swap {} ms",
        ms(summary.time.compute_ns),
        ms(summary.time.recompute_ns),
        ms(summary.time.planning_ns),
        ms(summary.time.bookkeeping_ns),
        ms(summary.time.swap_ns),
    );
    println!(
        "oom iters: {} | shuttle iters: {}",
        summary.oom_iters, summary.shuttle_iters
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Some(opt)) => run(&opt),
        Ok(None) => print!("{USAGE}"),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    }
}
