//! `audit`: run every `mimose-audit` pass over every preset task × planner
//! combination and exit non-zero on any error-severity diagnostic.
//!
//! Per task: lint the worst-case and typical profiles, then for each
//! planner build its policy, lint the plan it emits for the typical input
//! (against the budget it was configured with), execute the plan in the
//! block engine with event recording enabled, and audit the recorded
//! [`ExecEvent`](mimose_runtime::ExecEvent) stream — its allocator
//! projection goes through the shadow replay (including `ArenaStats`
//! divergence) and any embedded recovery events through the ladder lint.
//! In debug builds the engine's own shadow checker additionally
//! cross-validates the allocator against the analytic residency curve at
//! every block boundary, fed from the same stream.
//!
//! Output: one JSON object per diagnostic on stdout, a human summary on
//! stderr. Pass `--errors-only` to suppress info/warning findings.

use mimose_audit::{
    audit_exec_events, lint_fine_plan, lint_hybrid_plan, lint_plan, lint_profile, Diagnostic,
    Severity,
};
use mimose_exec::{BlockIteration, BlockMode};
use mimose_exp::planners::{build_policy, PlannerKind};
use mimose_exp::tasks::Task;
use mimose_planner::memory_model::min_feasible_budget;
use mimose_planner::Directive;
use mimose_simgpu::DeviceProfile;

/// Unconstrained arena for trace collection: plan feasibility is judged
/// analytically by the linter, not by OOMing the engine.
const TRACE_CAPACITY: usize = 64 << 30;

fn all_kinds() -> Vec<PlannerKind> {
    let mut kinds = PlannerKind::comparison_set().to_vec();
    kinds.push(PlannerKind::MimoseKnapsack);
    kinds
}

fn main() {
    let errors_only = std::env::args().any(|a| a == "--errors-only");
    let dev = DeviceProfile::v100();
    let mut diags: Vec<Diagnostic> = Vec::new();

    for task in Task::all() {
        let worst = task.worst_profile();
        let typical = task.typical_profile();
        diags.extend(lint_profile(&worst));
        diags.extend(lint_profile(&typical));

        // Mid-range budget: halfway between the all-checkpointed floor and
        // the no-checkpoint peak of the worst-case input, so every planner
        // has a feasible but non-trivial target.
        let lo = min_feasible_budget(&worst);
        let hi = worst.peak_no_checkpoint();
        let budget = lo + (hi - lo) / 2;

        for kind in all_kinds() {
            let subject = format!("{}/{}", task.abbr, kind.name());
            let mut policy = build_policy(kind, &task, budget);
            // Baseline has no budget to honour; everything else does.
            let lint_budget =
                (policy.budget_bytes() != usize::MAX).then_some(policy.budget_bytes());
            let directive = policy.begin_iteration(0, &typical);

            let mode = match &directive {
                Directive::RunPlan(p) => {
                    diags.extend(lint_plan(&typical, p, lint_budget, &subject));
                    Some(BlockMode::Plan(p))
                }
                Directive::Shuttle(p) => {
                    diags.extend(lint_plan(&typical, p, lint_budget, &subject));
                    Some(BlockMode::Shuttle)
                }
                Directive::RunFine(fp) => {
                    diags.extend(lint_fine_plan(&typical, fp, lint_budget, &subject));
                    Some(BlockMode::Fine(fp))
                }
                Directive::RunHybrid(hp) => {
                    diags.extend(lint_hybrid_plan(&typical, hp, lint_budget, &subject));
                    Some(BlockMode::Hybrid(hp))
                }
                Directive::DtrDynamic => None, // no static plan to lint
            };

            if let Some(mode) = mode {
                let (run, events, stats) = BlockIteration::with_mode(&typical, mode)
                    .device(&dev)
                    .capacity(TRACE_CAPACITY)
                    .run_recorded();
                if let Some(oom) = &run.report.oom {
                    diags.push(Diagnostic::error(
                        "unconstrained-oom",
                        subject.clone(),
                        format!(
                            "engine OOMed in a {} GiB arena during {}",
                            TRACE_CAPACITY >> 30,
                            oom.phase
                        ),
                    ));
                }
                let mut stream_diags = audit_exec_events(TRACE_CAPACITY, &events, Some(&stats));
                for d in &mut stream_diags {
                    d.subject = format!("{subject}: {}", d.subject);
                }
                diags.extend(stream_diags);
            }
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for d in &diags {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
            Severity::Info => {}
        }
        if !errors_only || d.severity == Severity::Error {
            println!("{}", d.to_json());
        }
    }
    eprintln!(
        "audit: {} finding(s) — {errors} error(s), {warnings} warning(s), {} info",
        diags.len(),
        diags.len() - errors - warnings
    );
    if errors > 0 {
        std::process::exit(1);
    }
}
