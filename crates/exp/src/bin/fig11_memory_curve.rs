//! Regenerates Fig 11: Mimose's memory consumption vs input size.

use mimose_exp::experiments::fig11;

fn main() {
    let series = fig11::run(&[4, 5, 6, 7, 8], 600);
    print!("{}", fig11::render(&series));
}
