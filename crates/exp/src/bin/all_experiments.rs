//! Runs every experiment in sequence — the full paper regeneration.

use mimose_exp::experiments::*;

fn main() {
    println!("# Mimose-rs: full experiment suite\n");
    print!("{}", table1::render(&table1::run()));
    println!();
    print!("{}", fig3::render(&fig3::run(2000)));
    let budget = 3usize << 30;
    print!("{}", fig4::render(&fig4::run(budget), budget));
    println!();
    print!("{}", fig5::render(&fig5::run(&[4.2, 4.5, 5.0, 5.5], 120)));
    println!();
    print!("{}", fig9::render(&fig9::run(&[128, 192, 256, 320])));
    println!();
    let f10 = fig10::run(400, 120);
    print!("{}", fig10::render(&f10));
    let (vs_sub, vs_dtr) = fig10::improvements(&f10);
    println!(
        "Mimose mean improvement: {:.1}% vs Sublinear, {:.1}% vs DTR\n",
        vs_sub * 100.0,
        vs_dtr * 100.0
    );
    print!("{}", fig11::render(&fig11::run(&[4, 5, 6, 7, 8], 600)));
    println!();
    print!("{}", table3::render(&table3::run(6 << 30, 4000)));
    println!();
    print!("{}", table45::render_table4(&table45::run_table4()));
    println!();
    print!("{}", table45::render_table5(&table45::run_table5()));
}
