//! Regenerates Table IV: regression-model comparison on TC-Bert.

use mimose_exp::experiments::table45;

fn main() {
    let rows = table45::run_table4();
    print!("{}", table45::render_table4(&rows));
}
