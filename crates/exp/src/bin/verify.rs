//! `verify`: the static-verifier acceptance gate.
//!
//! Three sections, all differential:
//!
//! 1. **Sanitizer** — canonical schedule lowerings lint clean and every
//!    seeded mutant class is caught with its designated check id.
//! 2. **Soundness** — across randomized (task × planner × budget × batch
//!    window) draws, every issued [`SafetyCertificate`] is replayed in the
//!    simulated engine inside an arena of exactly its certified bound, at
//!    every input size in the certified bucket; one OOM fails the gate.
//!    Certification refusals are replayed at the requested budget to
//!    measure (not gate) the false-reject rate.
//! 3. **Plan cache** — a certified bucket hit in the Mimose plan cache
//!    serves with zero planner solves and zero revalidations.
//!
//! `--gate` runs the full acceptance volume (500 policy-driven seeds + 500
//! randomized-plan seeds); the default is a quick smoke (40 + 40). Pass
//! `--seeds N` to override the policy-driven count. Output: one JSON
//! diagnostic per failure on stdout, a human summary on stderr; exits
//! non-zero on any failure.
//!
//! [`SafetyCertificate`]: mimose_verify::SafetyCertificate

use mimose_audit::Diagnostic;
use mimose_exp::verifygate::{check_cache_zero_solve, check_sanitizer, soundness_sweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gate = args.iter().any(|a| a == "--gate");
    let seeds_arg = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok());
    let (policy_seeds, plan_seeds) = match (seeds_arg, gate) {
        (Some(n), _) => (n, n),
        (None, true) => (500, 500),
        (None, false) => (40, 40),
    };

    let mut failures: Vec<Diagnostic> = Vec::new();

    for f in check_sanitizer() {
        failures.push(Diagnostic::error("verify-sanitizer", "gate", f));
    }
    eprintln!(
        "verify: sanitizer section {} (mutant catalogue + canonical lowerings)",
        if failures.is_empty() { "ok" } else { "FAILED" }
    );

    let sweep = soundness_sweep(policy_seeds, plan_seeds);
    for f in &sweep.failures {
        failures.push(Diagnostic::error("verify-soundness", "gate", f.clone()));
    }
    eprintln!(
        "verify: soundness section over {} seeds — {} certified, {} refused \
         ({} false rejects, rate {:.1}%), {} replays, {} violation(s)",
        sweep.seeds,
        sweep.certified,
        sweep.rejected,
        sweep.false_rejects,
        sweep.false_reject_rate() * 100.0,
        sweep.replays,
        sweep.failures.len()
    );

    for f in check_cache_zero_solve() {
        failures.push(Diagnostic::error("verify-cache-zero-solve", "gate", f));
    }
    eprintln!("verify: plan-cache zero-solve section checked");

    for d in &failures {
        println!("{}", d.to_json());
    }
    eprintln!(
        "verify: {} failure(s){}",
        failures.len(),
        if gate { " [gate]" } else { "" }
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
