//! Regenerates Fig 5: DTR's time breakdown and real memory usage.

use mimose_exp::experiments::fig5;

fn main() {
    let rows = fig5::run(&[4.2, 4.5, 5.0, 5.5], 120);
    print!("{}", fig5::render(&rows));
}
