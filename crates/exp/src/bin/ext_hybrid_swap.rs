//! Extension: swap-vs-recompute crossover sweep over host-link bandwidth.

use mimose_exp::experiments::ext_hybrid;

fn main() {
    let budget = 4usize << 30;
    let rows = ext_hybrid::run(budget, 120, &[2e9, 6e9, 12e9, 25e9, 50e9]);
    print!("{}", ext_hybrid::render(&rows, budget));
}
