//! Regenerates Fig 9: peak memory vs which encoder is checkpointed.

use mimose_exp::experiments::fig9;

fn main() {
    let r = fig9::run(&[128, 192, 256, 320]);
    print!("{}", fig9::render(&r));
}
