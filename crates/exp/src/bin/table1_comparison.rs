//! Regenerates Table I: the planner feature matrix.

use mimose_exp::experiments::table1;

fn main() {
    let rows = table1::run();
    print!("{}", table1::render(&rows));
}
