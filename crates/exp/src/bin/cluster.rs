//! `cluster`: run the eight-job mixed NLP/vision workload over a pool of
//! simulated V100s and print the fleet rollup.
//!
//! With `--gate`, exit non-zero unless the fleet scheduler honours its
//! determinism contract: same seed ⇒ byte-identical `ClusterReport` across
//! two runs and across thread counts; a 1-job/1-device cluster run
//! byte-identical to driving the job through `Session::run`; the audit
//! cluster lint clean under every dispatch policy; makespan improving
//! monotonically from 1 to 4 devices; and — the survivability leg — a
//! fault plan permanently killing one device mid-run must end with every
//! job finished or explicitly shed (zero lost jobs), a lint-clean fleet
//! trace, and byte-identical replay across runs and thread counts. The
//! gate also writes `BENCH_cluster.json` (the device-scaling record) at
//! the repository root.
//!
//! `--lose` / `--down` inject device-lifecycle faults into plain runs, so
//! the failure protocol's event chain can be inspected by hand
//! (`--json` includes the full chain).

use mimose::cluster::{ClusterBuilder, ClusterOutcome};
use mimose::prelude::*;
use mimose_audit::lint_cluster;
use mimose_exp::table::{gib, ms, render_table};
use std::path::Path;

const USAGE: &str = "\
cluster — deterministic multi-device fleet scheduling of the mixed workload

USAGE:
    cluster [OPTIONS]

OPTIONS:
    --devices <N>     V100 pool size, 1..=16  [4]
    --iters <N>       iterations per job  [4]
    --threads <N>     worker threads (1 = serial; 0 = one per busy device)  [0]
    --schedule <P>    fifo | shortest-predicted | best-fit-memory  [fifo]
    --lose <D:R>      permanently lose device D at round R (repeatable)
    --down <D:R:N>    take device D down at round R for N rounds (repeatable)
    --json            print the ClusterReport JSON instead of the table
    --gate            run the determinism/audit/scaling/survivability gate
                      and write BENCH_cluster.json at the repository root
    --help            print this message
";

struct Args {
    devices: usize,
    iters: usize,
    threads: usize,
    schedule: SchedulePolicy,
    faults: Vec<(usize, DeviceFault)>,
    json: bool,
    gate: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            devices: 4,
            iters: 4,
            threads: 0,
            schedule: SchedulePolicy::Fifo,
            faults: Vec::new(),
            json: false,
            gate: false,
        }
    }
}

fn parse_fault(arg: &str, spec: &str) -> Result<(usize, DeviceFault), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<usize, String> {
        s.parse()
            .map_err(|_| format!("{arg}: '{s}' is not an integer"))
    };
    match (arg, parts.as_slice()) {
        ("--lose", [d, r]) => Ok((num(d)?, DeviceFault::Lost { at_round: num(r)? })),
        ("--down", [d, r, n]) => Ok((
            num(d)?,
            DeviceFault::Down {
                at_round: num(r)?,
                duration: num(n)?,
            },
        )),
        _ => Err(format!(
            "{arg} expects {}",
            if arg == "--lose" { "D:R" } else { "D:R:N" }
        )),
    }
}

fn parse(args: &[String]) -> Result<Option<Args>, String> {
    let mut a = Args::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--gate" => a.gate = true,
            "--json" => a.json = true,
            "--devices" => {
                a.devices = value("--devices")?
                    .parse()
                    .map_err(|_| "--devices must be an integer".to_string())?;
                if !(1..=16).contains(&a.devices) {
                    return Err("--devices out of range (1..=16)".into());
                }
            }
            "--iters" => {
                a.iters = value("--iters")?
                    .parse()
                    .map_err(|_| "--iters must be an integer".to_string())?;
                if a.iters == 0 {
                    return Err("--iters must be positive".into());
                }
            }
            "--threads" => {
                a.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?;
            }
            "--schedule" => {
                let name = value("--schedule")?;
                a.schedule = SchedulePolicy::parse(name)
                    .ok_or_else(|| format!("unknown schedule '{name}'"))?;
            }
            "--lose" | "--down" => {
                let flag = arg.as_str();
                a.faults.push(parse_fault(flag, value(flag)?)?);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    for (d, _) in &a.faults {
        if *d >= a.devices {
            return Err(format!("fault names device {d}, pool has {}", a.devices));
        }
    }
    Ok(Some(a))
}

fn fault_plan(faults: &[(usize, DeviceFault)]) -> FleetFaultPlan {
    faults.iter().fold(FleetFaultPlan::none(0), |plan, (d, f)| {
        plan.with_device_fault(*d, *f)
    })
}

fn builder(args: &Args) -> ClusterBuilder {
    Cluster::builder()
        .devices(DevicePool::v100(args.devices))
        .workload(Workload::mixed(args.iters))
        .schedule(args.schedule)
        .threads(args.threads)
        .faults(fault_plan(&args.faults))
}

fn run(b: ClusterBuilder) -> ClusterOutcome {
    b.run().expect("gate specs are well-formed")
}

fn render(outcome: &ClusterOutcome) {
    let r = &outcome.report;
    let rows: Vec<Vec<String>> = r
        .jobs
        .iter()
        .map(|j| {
            vec![
                j.name.clone(),
                j.policy.clone(),
                j.device.map_or("-".into(), |d| d.to_string()),
                j.outcome.tag().to_string(),
                j.iters.to_string(),
                ms(j.queue_wait_ns),
                ms(j.total_ns),
                gib(j.max_peak_bytes),
                j.oom_iters.to_string(),
                j.recovered_iters.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!(
                "cluster: {} schedule, {} devices",
                r.schedule,
                r.devices.len()
            ),
            &[
                "job",
                "policy",
                "dev",
                "outcome",
                "iters",
                "queue(ms)",
                "total(ms)",
                "peak",
                "oom",
                "rec",
            ],
            &rows,
        )
    );
    println!(
        "\nmakespan {} ms | utilization {:.1}% | rounds {} | mean queue {} ms | \
         admitted {} demoted {} rejected {}",
        ms(r.makespan_ns),
        r.utilization_pct,
        r.rounds,
        ms(r.mean_queue_wait_ns),
        r.admission.admitted,
        r.admission.demoted,
        r.admission.rejected,
    );
    if !r.events.is_empty() {
        println!(
            "fleet: {} device(s) lost | {} checkpoints | {} migrations | \
             {} shed | {} failed | overhead {} ms",
            r.fleet.devices_lost,
            r.fleet.checkpoints,
            r.fleet.migrations,
            r.fleet.shed_jobs,
            r.fleet.failed_jobs,
            ms(r.fleet.overhead_ns),
        );
        for e in &r.events {
            println!("  round {:>3}  {}", e.round, e.kind.tag());
        }
    }
}

/// One device-count sample of the scaling sweep.
struct ScalePoint {
    devices: usize,
    makespan_ns: u64,
    busy_ns: u64,
    utilization_pct: f64,
    mean_queue_wait_ns: u64,
    rounds: usize,
}

fn bench_json(iters: usize, points: &[ScalePoint]) -> String {
    let mut o = String::new();
    o.push_str("{\n");
    o.push_str("  \"suite\": \"cluster\",\n");
    o.push_str("  \"workload\": \"mixed-8job\",\n");
    o.push_str(&format!("  \"iters_per_job\": {iters},\n"));
    o.push_str("  \"schedule\": \"fifo\",\n");
    o.push_str("  \"scaling\": [\n");
    for (i, p) in points.iter().enumerate() {
        o.push_str(&format!(
            "    {{\"devices\": {}, \"makespan_ns\": {}, \"busy_ns\": {}, \
             \"utilization_pct\": {:.4}, \"mean_queue_wait_ns\": {}, \"rounds\": {}}}{}\n",
            p.devices,
            p.makespan_ns,
            p.busy_ns,
            p.utilization_pct,
            p.mean_queue_wait_ns,
            p.rounds,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    o.push_str("  ]\n}\n");
    o
}

fn gate(args: &Args) -> Vec<String> {
    let mut failures = Vec::new();
    let mut check = |name: &str, ok: bool, detail: String| {
        eprintln!("cluster gate: {name}: {}", if ok { "ok" } else { "FAILED" });
        if !ok {
            failures.push(format!("{name}: {detail}"));
        }
    };

    // 1. Same spec twice ⇒ byte-identical report.
    let a = run(builder(args)).report.to_json();
    let b = run(builder(args)).report.to_json();
    check("replay determinism", a == b, "two runs diverged".into());

    // 2. Serial vs parallel rounds ⇒ byte-identical report.
    let serial = run(builder(args).threads(1)).report.to_json();
    let parallel = run(builder(args).threads(4)).report.to_json();
    check(
        "thread independence",
        serial == parallel,
        "threads=1 and threads=4 reports diverged".into(),
    );

    // 3. Degenerate 1-job/1-device run ≡ Session::run.
    {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let dataset = presets::glue_qqp();
        let device = DeviceProfile::v100();
        let kind = PolicyKind::Sublinear;
        let budget = 6usize << 30;
        let job = JobSpec::new(
            "solo",
            model.clone(),
            dataset.clone(),
            JobPolicy::Planner(kind, budget),
            args.iters,
            7,
        );
        let outcome = run(Cluster::builder()
            .devices(DevicePool::custom(vec![device.clone()]))
            .workload(Workload::custom(vec![job])));
        let worst = model.profile(&dataset.worst_case()).expect("profiles");
        let mut session = Session::builder(&model, &dataset)
            .policy_boxed(kind.build_on(&worst, budget, &device))
            .device(device)
            .seed(7)
            .build()
            .expect("session builds");
        let reports = session.run(args.iters).expect("session runs");
        let same = format!("{:?}", outcome.details[0].reports) == format!("{reports:?}")
            && format!("{:?}", outcome.details[0].summary) == format!("{:?}", session.summary());
        check(
            "degenerate equivalence",
            same,
            "1-job/1-device cluster diverged from Session::run".into(),
        );
    }

    // 4. Audit lint clean under every dispatch policy.
    for schedule in [
        SchedulePolicy::Fifo,
        SchedulePolicy::ShortestPredicted,
        SchedulePolicy::BestFitMemory,
    ] {
        let outcome = run(builder(args).schedule(schedule).record(true));
        let diags = lint_cluster(&outcome);
        check(
            &format!("audit lint ({})", schedule.name()),
            diags.is_empty(),
            format!(
                "{:?}",
                diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
            ),
        );
    }

    // 5. Makespan improves monotonically 1 → 4 devices.
    let points: Vec<ScalePoint> = (1..=4)
        .map(|m| {
            let r = run(Cluster::builder()
                .devices(DevicePool::v100(m))
                .workload(Workload::mixed(args.iters)))
            .report;
            eprintln!(
                "cluster gate: scaling: {m} device(s) → makespan {} ms, utilization {:.1}%",
                ms(r.makespan_ns),
                r.utilization_pct
            );
            ScalePoint {
                devices: m,
                makespan_ns: r.makespan_ns,
                busy_ns: r.busy_ns,
                utilization_pct: r.utilization_pct,
                mean_queue_wait_ns: r.mean_queue_wait_ns,
                rounds: r.rounds,
            }
        })
        .collect();
    let monotone = points
        .windows(2)
        .all(|w| w[1].makespan_ns <= w[0].makespan_ns);
    let strict = points[3].makespan_ns < points[0].makespan_ns;
    check(
        "makespan scaling",
        monotone && strict,
        format!(
            "makespans {:?} not monotonically improving 1→4 devices",
            points.iter().map(|p| p.makespan_ns).collect::<Vec<_>>()
        ),
    );

    // 6. Survivability: permanently lose device 1 of 4 in round 2 of the
    // canonical 8-job workload. Every job must finish or be explicitly
    // shed (here: capacity still fits, so zero shed and zero failed), the
    // fleet trace must lint clean, and the whole degraded run must replay
    // byte-identically across runs and thread counts.
    {
        let lossy = || {
            Cluster::builder()
                .devices(DevicePool::v100(4))
                .workload(Workload::mixed(args.iters))
                .faults(
                    FleetFaultPlan::none(0).with_device_fault(1, DeviceFault::Lost { at_round: 2 }),
                )
                .record(true)
        };
        let outcome = run(lossy());
        let r = &outcome.report;
        let unaccounted: Vec<&str> = r
            .jobs
            .iter()
            .filter(|j| !j.outcome.finished())
            .map(|j| j.name.as_str())
            .collect();
        check(
            "survivability: zero lost jobs",
            unaccounted.is_empty() && r.fleet.devices_lost == 1 && r.fleet.migrations >= 1,
            format!(
                "unaccounted jobs {unaccounted:?}, {} lost device(s), {} migration(s)",
                r.fleet.devices_lost, r.fleet.migrations
            ),
        );
        let diags = lint_cluster(&outcome);
        check(
            "survivability: fleet trace lints clean",
            diags.is_empty(),
            format!(
                "{:?}",
                diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
            ),
        );
        let replay = run(lossy()).report.to_json();
        let threaded = run(lossy().threads(1)).report.to_json();
        check(
            "survivability: byte-identical replay under device loss",
            r.to_json() == replay && replay == threaded,
            "degraded runs diverged across replays or thread counts".into(),
        );
    }

    // 7. Emit the scaling record.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cluster.json");
    match std::fs::write(&path, bench_json(args.iters, &points)) {
        Ok(()) => eprintln!("cluster gate: wrote {}", path.display()),
        Err(e) => failures.push(format!("BENCH_cluster.json: {e}")),
    }

    failures
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    if args.gate {
        let failures = gate(&args);
        if failures.is_empty() {
            eprintln!("cluster gate: every check passed");
        } else {
            for f in &failures {
                eprintln!("cluster gate: FAILED: {f}");
            }
            std::process::exit(1);
        }
        return;
    }

    let outcome = run(builder(&args));
    if args.json {
        println!("{}", outcome.report.to_json());
    } else {
        render(&outcome);
    }
}
