//! `graph`: inspect the graph optimization pass layer — render a model's
//! block DAG with its stash annotations, the per-block before/after
//! memory and FLOP profile, and the pass-by-pass savings attribution.
//!
//! With `--gate`, exit non-zero unless the pass layer honours its
//! contract on the canonical builders: the `mimose-verify`
//! graph-equivalence lint clean on all four (identical FLOPs, identical
//! block boundaries, isomorphic dataflow, no unsound elision), a
//! measured activation-byte reduction floor on BERT and T5, and an
//! idempotent pipeline (a second run annotates and removes nothing).
//! The gate also writes `BENCH_graph.json` (pipeline wall time and
//! bytes saved per builder) at the repository root.

use mimose::models::builders::{bert_base, resnet50_od, roberta_base, t5_base, BertHead};
use mimose::models::{GraphDelta, ModelGraph, ModelInput, OptimizedGraph, StashMode};
use mimose_exp::table::{gib, render_table};
use std::path::Path;
use std::time::Instant;

const USAGE: &str = "\
graph — inspect the graph optimization pass layer

USAGE:
    graph [OPTIONS]

OPTIONS:
    --model <M>       bert | roberta | t5 | resnet50  [bert]
    --batch <N>       batch size  [32]
    --seqlen <N>      sequence length (NLP models)  [256]
    --dag             render the full block DAG with stash annotations
    --gate            run the equivalence/reduction/idempotence gate and
                      write BENCH_graph.json at the repository root
    --help            print this message
";

struct Args {
    model: String,
    batch: usize,
    seqlen: usize,
    dag: bool,
    gate: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            model: "bert".into(),
            batch: 32,
            seqlen: 256,
            dag: false,
            gate: false,
        }
    }
}

fn parse(args: &[String]) -> Result<Option<Args>, String> {
    let mut a = Args::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--gate" => a.gate = true,
            "--dag" => a.dag = true,
            "--model" => {
                let m = value("--model")?;
                if !["bert", "roberta", "t5", "resnet50"].contains(&m.as_str()) {
                    return Err(format!("unknown model '{m}'"));
                }
                a.model = m.clone();
            }
            "--batch" => {
                a.batch = value("--batch")?
                    .parse()
                    .map_err(|_| "--batch must be an integer".to_string())?;
            }
            "--seqlen" => {
                a.seqlen = value("--seqlen")?
                    .parse()
                    .map_err(|_| "--seqlen must be an integer".to_string())?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if a.batch == 0 || a.seqlen == 0 {
        return Err("--batch and --seqlen must be positive".into());
    }
    Ok(Some(a))
}

fn build(model: &str, batch: usize, seqlen: usize) -> (ModelGraph, ModelInput) {
    match model {
        "bert" => (
            bert_base(BertHead::Classification { labels: 2 }),
            ModelInput::tokens(batch, seqlen),
        ),
        "roberta" => (
            roberta_base(BertHead::Classification { labels: 1 }),
            ModelInput::tokens(batch, seqlen),
        ),
        "t5" => (t5_base(), ModelInput::tokens(batch, seqlen)),
        "resnet50" => (resnet50_od(), ModelInput::image(batch, 640, 640)),
        other => unreachable!("parse admitted model '{other}'"),
    }
}

/// The four canonical builders the gate sweeps, with representative
/// inputs.
fn canonical() -> Vec<(&'static str, ModelGraph, ModelInput)> {
    vec![
        (
            "bert-base",
            bert_base(BertHead::Classification { labels: 2 }),
            ModelInput::tokens(32, 256),
        ),
        (
            "roberta-base",
            roberta_base(BertHead::Classification { labels: 1 }),
            ModelInput::tokens(16, 256),
        ),
        ("t5-base", t5_base(), ModelInput::tokens(8, 256)),
        ("resnet50-od", resnet50_od(), ModelInput::image(2, 640, 640)),
    ]
}

fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1u64 << 20) as f64)
}

fn gflop(flops: f64) -> String {
    format!("{:.2}", flops / 1e9)
}

fn stash_tag(mode: StashMode) -> &'static str {
    match mode {
        StashMode::Default => "",
        StashMode::MaskOnly => "  [mask-only]",
        StashMode::Elided => "  [elided]",
    }
}

/// Render every block's node DAG, collapsing runs of structurally
/// identical blocks within a stage (encoder layer 1..=11 repeat layer 0).
fn render_dag(opt: &OptimizedGraph) {
    let mut global = 0usize;
    for stage in &opt.stages {
        println!("stage {}:", stage.name);
        let mut i = 0usize;
        while i < stage.blocks.len() {
            let block = &stage.blocks[i];
            let ann = &opt.annotations()[global];
            let mut run = 1usize;
            while i + run < stage.blocks.len()
                && stage.blocks[i + run].nodes == block.nodes
                && opt.annotations()[global + run] == *ann
            {
                run += 1;
            }
            let times = if run > 1 {
                format!("  (x{run} structurally identical)")
            } else {
                String::new()
            };
            println!("  block {}{times}", block.name);
            for (ni, node) in block.nodes.iter().enumerate() {
                let inputs: Vec<String> =
                    node.inputs.iter().map(|inp| format!("{inp:?}")).collect();
                let by = match ann[ni].by {
                    Some(p) => format!("  <- {}", p.name()),
                    None => String::new(),
                };
                println!(
                    "    %{ni} = {}({}){}{}",
                    node.op.mnemonic(),
                    inputs.join(", "),
                    stash_tag(ann[ni].stash),
                    by
                );
            }
            global += run;
            i += run;
        }
    }
}

fn render_delta(name: &str, delta: &GraphDelta) {
    let rows: Vec<Vec<String>> = delta
        .per_block
        .iter()
        .map(|b| {
            vec![
                b.index.to_string(),
                b.name.clone(),
                mib(b.raw_act_bytes),
                mib(b.opt_act_bytes),
                mib(b.raw_act_bytes.saturating_sub(b.opt_act_bytes)),
                gflop(b.raw_fwd_flops),
                gflop(b.opt_fwd_flops),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("{name}: per-block activation footprint, before/after passes"),
            &["#", "block", "raw(MiB)", "opt(MiB)", "saved", "raw GF", "opt GF",],
            &rows,
        )
    );
    println!();

    let pass_rows: Vec<Vec<String>> = delta
        .per_pass
        .iter()
        .map(|p| {
            vec![
                p.pass.name().to_string(),
                p.nodes.to_string(),
                mib(p.bytes_saved),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("{name}: pass-by-pass attribution"),
            &["pass", "nodes", "saved(MiB)"],
            &pass_rows,
        )
    );
    println!(
        "\ntotal activation bytes {} -> {} ({} saved, {:.1}%) | \
         no-checkpoint peak {} -> {}",
        gib(delta.raw_act_bytes),
        gib(delta.opt_act_bytes),
        gib(delta.bytes_saved()),
        delta.bytes_saved() as f64 / delta.raw_act_bytes.max(1) as f64 * 100.0,
        gib(delta.raw_peak_bytes),
        gib(delta.opt_peak_bytes),
    );
}

struct BenchRow {
    model: &'static str,
    optimize_ns: u128,
    raw_act_bytes: usize,
    opt_act_bytes: usize,
    passes: Vec<(String, usize, usize)>,
}

fn bench_json(rows: &[BenchRow]) -> String {
    let mut o = String::new();
    o.push_str("{\n  \"suite\": \"graph\",\n  \"builders\": [\n");
    for (i, r) in rows.iter().enumerate() {
        o.push_str(&format!(
            "    {{\"model\": \"{}\", \"optimize_ns\": {}, \"raw_act_bytes\": {}, \
             \"opt_act_bytes\": {}, \"bytes_saved\": {}, \"passes\": [",
            r.model,
            r.optimize_ns,
            r.raw_act_bytes,
            r.opt_act_bytes,
            r.raw_act_bytes.saturating_sub(r.opt_act_bytes),
        ));
        for (k, (pass, nodes, saved)) in r.passes.iter().enumerate() {
            o.push_str(&format!(
                "{{\"pass\": \"{pass}\", \"nodes\": {nodes}, \"bytes_saved\": {saved}}}{}",
                if k + 1 < r.passes.len() { ", " } else { "" }
            ));
        }
        o.push_str(&format!(
            "]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    o.push_str("  ]\n}\n");
    o
}

fn gate() -> Vec<String> {
    let mut failures = Vec::new();
    let mut check = |name: &str, ok: bool, detail: String| {
        eprintln!("graph gate: {name}: {}", if ok { "ok" } else { "FAILED" });
        if !ok {
            failures.push(format!("{name}: {detail}"));
        }
    };

    let mut bench_rows = Vec::new();
    for (name, raw, input) in canonical() {
        // 1. Equivalence lint: the optimized graph must preserve FLOPs,
        // boundaries and dataflow, and every elision must re-derive as
        // safe in the independent verifier.
        let t0 = Instant::now();
        let opt = raw.optimize();
        let optimize_ns = t0.elapsed().as_nanos();
        let viols = mimose::audit::lint_optimized_graph(&opt, &input, name);
        check(
            &format!("{name}: equivalence lint"),
            viols.is_empty(),
            format!(
                "{:?}",
                viols.iter().map(|v| v.to_string()).collect::<Vec<_>>()
            ),
        );

        // 2. Idempotence: a second pipeline run is a structural fixpoint —
        // same graph, same annotations (re-derived, not accumulated),
        // nothing removed or rewired.
        let again = (*opt).clone().optimize();
        let noop = *again == *opt
            && again.annotations() == opt.annotations()
            && again
                .reports()
                .iter()
                .all(|r| r.nodes_removed == 0 && r.nodes_rewired == 0);
        check(
            &format!("{name}: pipeline idempotent"),
            noop,
            "second optimize() changed the graph or its annotations".into(),
        );

        let delta = opt.delta(&input).expect("canonical input profiles");
        eprintln!(
            "graph gate: {name}: {} -> {} act bytes ({:.1}% saved) in {:.2} ms",
            delta.raw_act_bytes,
            delta.opt_act_bytes,
            delta.bytes_saved() as f64 / delta.raw_act_bytes.max(1) as f64 * 100.0,
            optimize_ns as f64 / 1e6,
        );

        // 3. Reduction floor on the transformer builders: the paper's
        // encoder blocks keep GELU inputs but free the pure-elementwise
        // tails, worth well over 10% of the stash.
        if name == "bert-base" || name == "t5-base" {
            check(
                &format!("{name}: bytes-reduction floor"),
                delta.bytes_saved() * 10 >= delta.raw_act_bytes,
                format!(
                    "saved {} of {} raw activation bytes (< 10%)",
                    delta.bytes_saved(),
                    delta.raw_act_bytes
                ),
            );
        } else {
            check(
                &format!("{name}: bytes saved"),
                delta.bytes_saved() > 0,
                "pipeline saved nothing".into(),
            );
        }

        bench_rows.push(BenchRow {
            model: name,
            optimize_ns,
            raw_act_bytes: delta.raw_act_bytes,
            opt_act_bytes: delta.opt_act_bytes,
            passes: delta
                .per_pass
                .iter()
                .map(|p| (p.pass.name().to_string(), p.nodes, p.bytes_saved))
                .collect(),
        });
    }

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_graph.json");
    match std::fs::write(&path, bench_json(&bench_rows)) {
        Ok(()) => eprintln!("graph gate: wrote {}", path.display()),
        Err(e) => failures.push(format!("BENCH_graph.json: {e}")),
    }

    failures
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    if args.gate {
        let failures = gate();
        if failures.is_empty() {
            eprintln!("graph gate: every check passed");
        } else {
            for f in &failures {
                eprintln!("graph gate: FAILED: {f}");
            }
            std::process::exit(1);
        }
        return;
    }

    let (model, input) = build(&args.model, args.batch, args.seqlen);
    let opt = model.optimize();
    let delta = match opt.delta(&input) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if args.dag {
        render_dag(&opt);
        println!();
    }
    render_delta(&args.model, &delta);
}
