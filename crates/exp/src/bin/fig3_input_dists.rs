//! Regenerates Fig 3: input-size distributions and memory footprints.

use mimose_exp::experiments::fig3;

fn main() {
    let results = fig3::run(2000);
    print!("{}", fig3::render(&results));
}
