//! `runtime_smoke`: minimal end-to-end exercise of the event-sourced
//! runtime — one block-engine iteration and one DTR iteration, each with a
//! recording [`Recorder`](mimose_runtime::Recorder), their streams pushed
//! through `mimose_audit::audit_exec_events` and their folds cross-checked
//! against the reports. Exits non-zero on any error-severity diagnostic or
//! fold divergence. CI runs this as the runtime-events smoke job.

use mimose::planner::CheckpointPlan;
use mimose::prelude::*;
use mimose::runtime::fold_events;
use mimose_audit::{audit_exec_events, has_errors, Diagnostic};

fn report(label: &str, diags: &[Diagnostic]) -> bool {
    for d in diags {
        println!("{}", d.to_json());
    }
    let ok = !has_errors(diags);
    eprintln!(
        "runtime_smoke: {label}: {} finding(s), {}",
        diags.len(),
        if ok { "ok" } else { "ERRORS" }
    );
    ok
}

fn main() {
    let dev = DeviceProfile::v100();
    let p = bert_base(BertHead::Classification { labels: 2 })
        .profile(&ModelInput::tokens(32, 128))
        .expect("smoke input must profile");
    let mut ok = true;

    // One block-engine iteration under a mixed plan.
    let cap = 64usize << 30;
    let plan = CheckpointPlan::from_indices(p.blocks.len(), &[1, 3, 5]).expect("indices in range");
    let (run, events, stats) = BlockIteration::plan(&p, &plan)
        .device(&dev)
        .capacity(cap)
        .planning_ns(1000)
        .run_recorded();
    assert!(run.report.ok(), "block smoke iteration OOMed");
    let f = fold_events(cap, &events);
    assert_eq!(f.time, run.report.time, "block fold clock divergence");
    assert_eq!(f.peak_used, run.report.peak_bytes, "block fold peak");
    ok &= report("block", &audit_exec_events(cap, &events, Some(&stats)));

    // One DTR iteration under a tight-ish budget (evictions exercised).
    let cap = 16usize << 30;
    let (r, events, stats) = DtrIteration::new(&p, 6 << 30)
        .device(&dev)
        .capacity(cap)
        .run_recorded();
    assert!(r.ok(), "dtr smoke iteration OOMed");
    let f = fold_events(cap, &events);
    assert_eq!(f.time, r.time, "dtr fold clock divergence");
    assert_eq!(f.peak_used, r.peak_bytes, "dtr fold peak");
    ok &= report("dtr", &audit_exec_events(cap, &events, Some(&stats)));

    if !ok {
        std::process::exit(1);
    }
}
