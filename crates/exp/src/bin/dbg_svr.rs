//! Scratch diagnostic for SVR convergence (not part of the evaluation).
use mimose_estimator::{Regressor, SvrRegressor};

fn main() {
    // Quadratic-ish target like a BERT block.
    let n = 50;
    let xs: Vec<f64> = (0..n)
        .map(|i| 1000.0 + 9600.0 * (i as f64) / (n as f64 - 1.0))
        .collect();
    let f = |x: f64| 1e6 + 300.0 * x + 0.05 * x * x;
    let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
    let mut m = SvrRegressor::default_params();
    m.fit(&xs, &ys).unwrap();
    let mut tr_err = 0.0;
    for (&x, &y) in xs.iter().zip(&ys) {
        tr_err += (m.predict(x) - y).abs() / y;
    }
    println!("train rel err {:.4}", tr_err / n as f64);
    for &x in &[1500.0, 4000.0, 8000.0, 10_000.0, 11_000.0] {
        let y = f(x);
        println!(
            "x={x}: pred {:.3e} true {:.3e} rel {:.4}",
            m.predict(x),
            y,
            (m.predict(x) - y).abs() / y
        );
    }
}
