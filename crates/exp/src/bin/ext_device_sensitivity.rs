//! Extension: planner overheads across device generations (V100 vs A100).

use mimose_exp::experiments::ext_device;

fn main() {
    let budget = 5usize << 30;
    let rows = ext_device::run(budget, 150);
    print!("{}", ext_device::render(&rows, budget));
}
