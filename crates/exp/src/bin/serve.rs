//! `serve`: run the fleet in event-driven serving mode — jobs arrive on
//! the virtual clock per an arrival process, dispatch at real iteration
//! boundaries, and the report carries the SLO tail rollup (queue-wait and
//! iteration-latency p50/p95/p99, goodput, rejection/shed rates).
//!
//! With `--gate`, exit non-zero unless serving mode honours its contract:
//! same spec ⇒ byte-identical report across two runs and across thread
//! counts; event mode with every arrival at `t = 0` reproduces the BSP
//! scheduler's per-job evidence exactly (the degenerate-equivalence leg);
//! the audit cluster lint — which independently re-folds every tail
//! percentile from the per-job rows and re-derives the arrival/dispatch/
//! completion chain — is clean on steady and bursty serving runs; and an
//! overload scenario (a scaled workload squeezed through a bounded queue)
//! sheds work explicitly: nonzero sheds, zero failed jobs, every job
//! settled with a terminal outcome. The gate also writes
//! `BENCH_serve.json` (steady + overload SLO records) at the repository
//! root.

use mimose::cluster::{ClusterBuilder, ClusterOutcome, ClusterReport};
use mimose::prelude::*;
use mimose_audit::lint_cluster;
use mimose_exp::table::{gib, ms, render_table};
use std::path::Path;

const USAGE: &str = "\
serve — event-driven serving mode: online arrivals, SLO tails, bounded queues

USAGE:
    serve [OPTIONS]

OPTIONS:
    --devices <N>      V100 pool size, 1..=16  [2]
    --jobs <N>         jobs in the workload (scaled mixed cycle)  [8]
    --iters <N>        iterations per job  [2]
    --arrivals <P>     immediate | poisson | bursty  [poisson]
    --gap <NS>         mean inter-arrival gap, virtual ns  [400000]
    --seed <N>         arrival-stream seed  [42]
    --queue-limit <N>  bound the pending queue; arrivals past it shed  [none]
    --schedule <P>     fifo | shortest-predicted | best-fit-memory  [fifo]
    --threads <N>      worker threads (ignored by the event loop)  [0]
    --json             print the ClusterReport JSON instead of the table
    --gate             run the determinism/equivalence/audit/overload gate
                       and write BENCH_serve.json at the repository root
    --help             print this message
";

/// Burst-phase gap is this fraction of the calm gap in `--arrivals bursty`.
const BURST_GAP_DIV: u64 = 8;
/// Mean arrivals per MMPP phase in `--arrivals bursty`.
const BURST_PHASE_LEN: usize = 6;

struct Args {
    devices: usize,
    jobs: usize,
    iters: usize,
    arrivals: String,
    gap_ns: u64,
    seed: u64,
    queue_limit: Option<usize>,
    schedule: SchedulePolicy,
    threads: usize,
    json: bool,
    gate: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            devices: 2,
            jobs: 8,
            iters: 2,
            arrivals: "poisson".into(),
            gap_ns: 400_000,
            seed: 42,
            queue_limit: None,
            schedule: SchedulePolicy::Fifo,
            threads: 0,
            json: false,
            gate: false,
        }
    }
}

fn parse(args: &[String]) -> Result<Option<Args>, String> {
    let mut a = Args::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        let num = |flag: &str, s: &str| -> Result<usize, String> {
            s.parse().map_err(|_| format!("{flag} must be an integer"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--gate" => a.gate = true,
            "--json" => a.json = true,
            "--devices" => {
                a.devices = num("--devices", value("--devices")?)?;
                if !(1..=16).contains(&a.devices) {
                    return Err("--devices out of range (1..=16)".into());
                }
            }
            "--jobs" => {
                a.jobs = num("--jobs", value("--jobs")?)?;
                if a.jobs == 0 {
                    return Err("--jobs must be positive".into());
                }
            }
            "--iters" => {
                a.iters = num("--iters", value("--iters")?)?;
                if a.iters == 0 {
                    return Err("--iters must be positive".into());
                }
            }
            "--arrivals" => {
                let name = value("--arrivals")?;
                if !["immediate", "poisson", "bursty"].contains(&name.as_str()) {
                    return Err(format!("unknown arrival process '{name}'"));
                }
                a.arrivals = name.clone();
            }
            "--gap" => {
                a.gap_ns = value("--gap")?
                    .parse()
                    .map_err(|_| "--gap must be an integer".to_string())?;
                if a.gap_ns == 0 {
                    return Err("--gap must be positive".into());
                }
            }
            "--seed" => {
                a.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--queue-limit" => {
                a.queue_limit = Some(num("--queue-limit", value("--queue-limit")?)?);
            }
            "--schedule" => {
                let name = value("--schedule")?;
                a.schedule = SchedulePolicy::parse(name)
                    .ok_or_else(|| format!("unknown schedule '{name}'"))?;
            }
            "--threads" => {
                a.threads = num("--threads", value("--threads")?)?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(Some(a))
}

fn arrivals(args: &Args) -> ArrivalProcess {
    match args.arrivals.as_str() {
        "immediate" => ArrivalProcess::Immediate,
        "bursty" => ArrivalProcess::bursty(
            args.gap_ns,
            (args.gap_ns / BURST_GAP_DIV).max(1),
            BURST_PHASE_LEN,
            args.seed,
        ),
        _ => ArrivalProcess::poisson(args.gap_ns, args.seed),
    }
}

fn builder(args: &Args) -> ClusterBuilder {
    Cluster::builder()
        .devices(DevicePool::v100(args.devices))
        .workload(Workload::scaled(args.iters, args.jobs))
        .mode(Mode::EventDriven)
        .arrivals(arrivals(args))
        .queue_limit(args.queue_limit)
        .schedule(args.schedule)
        .threads(args.threads)
}

fn run(b: ClusterBuilder) -> ClusterOutcome {
    b.run().expect("serve specs are well-formed")
}

fn render(outcome: &ClusterOutcome) {
    let r = &outcome.report;
    let rows: Vec<Vec<String>> = r
        .jobs
        .iter()
        .map(|j| {
            vec![
                j.name.clone(),
                j.device.map_or("-".into(), |d| d.to_string()),
                j.outcome.tag().to_string(),
                j.iters.to_string(),
                ms(j.arrival_ns),
                ms(j.queue_wait_ns),
                ms(j.total_ns),
                gib(j.max_peak_bytes),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!(
                "serve: {} arrivals, {} schedule, {} devices",
                r.arrivals.name(),
                r.schedule,
                r.devices.len()
            ),
            &[
                "job",
                "dev",
                "outcome",
                "iters",
                "arrive(ms)",
                "queue(ms)",
                "total(ms)",
                "peak",
            ],
            &rows,
        )
    );
    let s = &r.slo;
    println!(
        "\nmakespan {} ms | utilization {:.1}% | epochs {} | goodput {} iters ({:.1}/s)",
        ms(r.makespan_ns),
        r.utilization_pct,
        r.rounds,
        s.goodput_iters,
        s.goodput_iters_per_s,
    );
    println!(
        "queue wait p50/p95/p99: {}/{}/{} ms | iter latency p50/p95/p99: {}/{}/{} ms",
        ms(s.queue_wait_p50_ns),
        ms(s.queue_wait_p95_ns),
        ms(s.queue_wait_p99_ns),
        ms(s.iter_latency_p50_ns),
        ms(s.iter_latency_p95_ns),
        ms(s.iter_latency_p99_ns),
    );
    println!(
        "rejected {} ({:.1}%) | shed {} ({:.1}%) | failed {}",
        s.rejected_jobs, s.rejection_rate_pct, s.shed_jobs, s.shed_rate_pct, s.failed_jobs,
    );
    if !r.events.is_empty() {
        println!("fleet events ({}):", r.events.len());
        for e in &r.events {
            println!("  t {:>12} ns  {}", e.at_ns, e.kind.tag());
        }
    }
}

fn slo_json(label: &str, r: &ClusterReport) -> String {
    let s = &r.slo;
    format!(
        "  \"{label}\": {{\n    \"devices\": {}, \"jobs\": {}, \"arrivals\": \"{}\", \
         \"makespan_ns\": {}, \"utilization_pct\": {:.4},\n    \
         \"queue_wait_p50_ns\": {}, \"queue_wait_p95_ns\": {}, \"queue_wait_p99_ns\": {},\n    \
         \"iter_latency_p50_ns\": {}, \"iter_latency_p95_ns\": {}, \"iter_latency_p99_ns\": {},\n    \
         \"goodput_iters\": {}, \"goodput_iters_per_s\": {:.4},\n    \
         \"rejected_jobs\": {}, \"shed_jobs\": {}, \"failed_jobs\": {}, \
         \"rejection_rate_pct\": {:.4}, \"shed_rate_pct\": {:.4}\n  }}",
        r.devices.len(),
        r.jobs.len(),
        r.arrivals.name(),
        r.makespan_ns,
        r.utilization_pct,
        s.queue_wait_p50_ns,
        s.queue_wait_p95_ns,
        s.queue_wait_p99_ns,
        s.iter_latency_p50_ns,
        s.iter_latency_p95_ns,
        s.iter_latency_p99_ns,
        s.goodput_iters,
        s.goodput_iters_per_s,
        s.rejected_jobs,
        s.shed_jobs,
        s.failed_jobs,
        s.rejection_rate_pct,
        s.shed_rate_pct,
    )
}

/// Overload-leg shape: enough jobs to swamp the pool, arrivals much
/// faster than service, and a queue bound that forces explicit shedding.
const OVERLOAD_JOBS: usize = 200;
const OVERLOAD_DEVICES: usize = 4;
const OVERLOAD_GAP_NS: u64 = 100_000_000;
const OVERLOAD_QUEUE_LIMIT: usize = 24;
const OVERLOAD_SEED: u64 = 23;

fn overload_builder(iters: usize) -> ClusterBuilder {
    Cluster::builder()
        .devices(DevicePool::v100(OVERLOAD_DEVICES))
        .workload(Workload::scaled(iters, OVERLOAD_JOBS))
        .mode(Mode::EventDriven)
        .arrivals(ArrivalProcess::poisson(OVERLOAD_GAP_NS, OVERLOAD_SEED))
        .queue_limit(Some(OVERLOAD_QUEUE_LIMIT))
}

fn gate(args: &Args) -> Vec<String> {
    let mut failures = Vec::new();
    let mut check = |name: &str, ok: bool, detail: String| {
        eprintln!("serve gate: {name}: {}", if ok { "ok" } else { "FAILED" });
        if !ok {
            failures.push(format!("{name}: {detail}"));
        }
    };

    // 1. Same spec twice ⇒ byte-identical report.
    let steady = run(builder(args));
    let again = run(builder(args)).report.to_json();
    check(
        "replay determinism",
        steady.report.to_json() == again,
        "two serving runs diverged".into(),
    );

    // 2. The thread knob is inert in the event loop.
    let t1 = run(builder(args).threads(1)).report.to_json();
    let t8 = run(builder(args).threads(8)).report.to_json();
    check(
        "thread independence",
        t1 == t8,
        "threads=1 and threads=8 serving reports diverged".into(),
    );

    // 3. Degenerate equivalence: every arrival at t = 0, no queue bound
    // ⇒ each job's execution evidence matches the BSP scheduler's
    // job-for-job, and both modes deliver the same total work.
    {
        let bsp = run(Cluster::builder()
            .devices(DevicePool::v100(args.devices))
            .workload(Workload::mixed(args.iters)));
        let des = run(Cluster::builder()
            .devices(DevicePool::v100(args.devices))
            .workload(Workload::mixed(args.iters))
            .mode(Mode::EventDriven)
            .arrivals(ArrivalProcess::Immediate));
        let per_job = bsp
            .details
            .iter()
            .zip(&des.details)
            .all(|(a, b)| format!("{:?}", a.reports) == format!("{:?}", b.reports))
            && bsp
                .report
                .jobs
                .iter()
                .zip(&des.report.jobs)
                .all(|(a, b)| a.iters == b.iters && a.total_ns == b.total_ns);
        check(
            "bsp-degenerate equivalence",
            per_job
                && bsp.report.busy_ns == des.report.busy_ns
                && bsp.report.slo.goodput_iters == des.report.slo.goodput_iters,
            "event mode with immediate arrivals diverged from BSP".into(),
        );
    }

    // 4. Audit lint — independent re-fold of every SLO tail and the
    // arrival/dispatch/completion chain — clean on steady and bursty
    // serving runs.
    for shape in ["poisson", "bursty"] {
        let mut shaped = Args {
            arrivals: shape.into(),
            ..Args::default()
        };
        shaped.iters = args.iters;
        shaped.devices = args.devices;
        let outcome = run(builder(&shaped).record(true));
        let diags = lint_cluster(&outcome);
        check(
            &format!("audit lint ({shape} arrivals)"),
            diags.is_empty(),
            format!(
                "{:?}",
                diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
            ),
        );
    }

    // 5. Overload: a bounded queue under saturating arrivals must shed
    // explicitly — nonzero sheds, zero failed jobs, every job settled —
    // and still lint clean.
    let overload = run(overload_builder(args.iters).record(true));
    {
        let r = &overload.report;
        let unsettled: Vec<&str> = r
            .jobs
            .iter()
            .filter(|j| {
                !(j.outcome.finished()
                    || matches!(
                        j.outcome,
                        JobOutcome::Rejected | JobOutcome::Shed(_) | JobOutcome::Failed(_)
                    ))
            })
            .map(|j| j.name.as_str())
            .collect();
        eprintln!(
            "serve gate: overload: {} jobs → {} finished, {} shed, {} rejected, {} failed; \
             wait p99 {} ms, goodput {:.1} iters/s",
            r.jobs.len(),
            r.jobs.iter().filter(|j| j.outcome.finished()).count(),
            r.slo.shed_jobs,
            r.slo.rejected_jobs,
            r.slo.failed_jobs,
            ms(r.slo.queue_wait_p99_ns),
            r.slo.goodput_iters_per_s,
        );
        check(
            "overload sheds explicitly, loses nothing",
            r.slo.shed_jobs > 0 && r.slo.failed_jobs == 0 && unsettled.is_empty(),
            format!(
                "{} shed, {} failed, unsettled {unsettled:?}",
                r.slo.shed_jobs, r.slo.failed_jobs
            ),
        );
        let diags = lint_cluster(&overload);
        check(
            "overload trace lints clean",
            diags.is_empty(),
            format!(
                "{:?}",
                diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
            ),
        );
    }

    // 6. Emit the SLO record: the steady serving run plus the overload
    // scenario.
    let json = format!(
        "{{\n  \"suite\": \"serve\",\n  \"mode\": \"event-driven\",\n  \
         \"iters_per_job\": {},\n{},\n{}\n}}\n",
        args.iters,
        slo_json("steady", &steady.report),
        slo_json("overload", &overload.report),
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("serve gate: wrote {}", path.display()),
        Err(e) => failures.push(format!("BENCH_serve.json: {e}")),
    }

    failures
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    if args.gate {
        let failures = gate(&args);
        if failures.is_empty() {
            eprintln!("serve gate: every check passed");
        } else {
            for f in &failures {
                eprintln!("serve gate: FAILED: {f}");
            }
            std::process::exit(1);
        }
        return;
    }

    let outcome = run(builder(&args));
    if args.json {
        println!("{}", outcome.report.to_json());
    } else {
        render(&outcome);
    }
}
