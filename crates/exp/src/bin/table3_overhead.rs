//! Regenerates Table III: Mimose's overhead breakdown.

use mimose_exp::experiments::table3;

fn main() {
    let rows = table3::run(6 << 30, 4000);
    print!("{}", table3::render(&rows));
}
