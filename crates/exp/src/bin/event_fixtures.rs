//! Regenerate `tests/fixtures/block_engine_seed.json` — the pinned
//! block-engine iteration reports that the `exec_events_differential`
//! integration test compares against, byte for byte.
//!
//! The committed fixture was produced by the pre-refactor engine (before
//! `crates/runtime` existed); regenerating it should be a no-op unless the
//! engine's simulated timeline deliberately changed. Run from the workspace
//! root:
//!
//! ```text
//! cargo run --release -p mimose-exp --bin event_fixtures > tests/fixtures/block_engine_seed.json
//! ```

use mimose::planner::CheckpointPlan;
use mimose::prelude::*;

fn profile(batch: usize, seq: usize) -> ModelProfile {
    bert_base(BertHead::Classification { labels: 2 })
        .profile(&ModelInput::tokens(batch, seq))
        .expect("fixture input must profile")
}

fn emit(name: &str, r: &IterationReport, last: bool) {
    let t = &r.time;
    println!("  {{");
    println!("    \"name\": \"{name}\",");
    println!("    \"peak_bytes\": {},", r.peak_bytes);
    println!("    \"peak_extent\": {},", r.peak_extent);
    println!("    \"frag_bytes\": {},", r.frag_bytes);
    println!("    \"dropped_units\": {},", r.dropped_units);
    println!("    \"compute_ns\": {},", t.compute_ns);
    println!("    \"recompute_ns\": {},", t.recompute_ns);
    println!("    \"planning_ns\": {},", t.planning_ns);
    println!("    \"bookkeeping_ns\": {},", t.bookkeeping_ns);
    println!("    \"allocator_ns\": {},", t.allocator_ns);
    println!("    \"swap_ns\": {},", t.swap_ns);
    println!("    \"recovery_ns\": {},", t.recovery_ns);
    println!("    \"total_ns\": {}", t.total_ns());
    println!("  }}{}", if last { "" } else { "," });
}

fn main() {
    let dev = DeviceProfile::v100();
    let cap = 64usize << 30;
    let mut out: Vec<(String, IterationReport)> = Vec::new();

    for (batch, seq) in [(32usize, 128usize), (32, 200), (16, 320)] {
        let p = profile(batch, seq);
        let n = p.blocks.len();
        let plans = [
            ("none", CheckpointPlan::none(n)),
            ("all", CheckpointPlan::all(n)),
            (
                "alt",
                CheckpointPlan::from_indices(n, &[1, 3, 5, 7, 9]).expect("indices in range"),
            ),
        ];
        for (pname, plan) in &plans {
            let run = BlockIteration::plan(&p, plan)
                .device(&dev)
                .capacity(cap)
                .planning_ns(4321)
                .run();
            assert!(run.report.ok(), "fixture run must not OOM");
            out.push((format!("bert_b{batch}_s{seq}_plan_{pname}"), run.report));
        }
        let shuttle = BlockIteration::shuttle(&p).device(&dev).capacity(cap).run();
        assert!(shuttle.report.ok());
        out.push((format!("bert_b{batch}_s{seq}_shuttle"), shuttle.report));
    }

    println!("[");
    let last = out.len() - 1;
    for (i, (name, r)) in out.iter().enumerate() {
        emit(name, r, i == last);
    }
    println!("]");
}
