//! Regenerates Table V: the quadratic polynomial across all six tasks.

use mimose_exp::experiments::table45;

fn main() {
    let rows = table45::run_table5();
    print!("{}", table45::render_table5(&rows));
}
