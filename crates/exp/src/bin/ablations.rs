//! Runs the ablation suite: plan cache, bucket tolerance, scheduler
//! algorithm, allocator fit policy, adaptive re-collection.

use mimose_exp::experiments::ablations as ab;

fn main() {
    let budget = 5usize << 30;
    print!(
        "{}",
        ab::render_cache(&ab::cache_ablation(budget, 400), 400)
    );
    println!();
    print!(
        "{}",
        ab::render_tolerance(&ab::tolerance_ablation(
            budget,
            200,
            &[0.0, 0.05, 0.10, 0.20, 0.40]
        ))
    );
    println!();
    print!(
        "{}",
        ab::render_collect(&ab::collect_ablation(budget, &[5, 10, 20, 30], 250))
    );
    println!();
    let sb = 8usize << 30;
    print!(
        "{}",
        ab::render_scheduler(&ab::scheduler_ablation(sb, 150), sb)
    );
    println!();
    print!(
        "{}",
        ab::render_allocator(&ab::allocator_ablation(budget), budget)
    );
    println!();
    print!(
        "{}",
        ab::render_adaptive(&ab::adaptive_ablation(budget), budget)
    );
}
