//! Regenerates Fig 10: the overall planner comparison across tasks and
//! budgets. This is the heaviest experiment (runs the full grid in
//! parallel); expect a few minutes.

use mimose_exp::experiments::fig10;

fn main() {
    let r = fig10::run(400, 120);
    print!("{}", fig10::render(&r));
    let (vs_sub, vs_dtr) = fig10::improvements(&r);
    println!(
        "Mimose mean improvement: {:.1}% vs Sublinear, {:.1}% vs DTR",
        vs_sub * 100.0,
        vs_dtr * 100.0
    );
}
