//! End-to-end integration: every planner runs every Table II task without
//! panicking, Mimose honours its budget and beats the static baseline on
//! dynamic workloads, and the whole simulation is deterministic.

use mimose::core::{MimoseConfig, MimosePolicy};
use mimose::exec::Trainer;
use mimose_exp::planners::{build_policy, PlannerKind};
use mimose_exp::tasks::Task;

#[test]
fn every_planner_runs_every_task() {
    for task in Task::all() {
        let budget = if task.abbr.starts_with("OD") {
            14usize << 30
        } else {
            6 << 30
        };
        for kind in PlannerKind::comparison_set() {
            let mut policy = build_policy(kind, &task, budget);
            let mut tr = Trainer::new(&task.model, &task.dataset, policy.as_mut(), 13);
            let s = tr.run_summary(25).unwrap();
            assert!(s.total_ns > 0, "{} / {}", task.abbr, kind.name());
            // Some planners legitimately OOM (static plans on OD); the run
            // itself must still complete and account its time.
            assert_eq!(s.iters, 25, "{} / {}", task.abbr, kind.name());
        }
    }
}

#[test]
fn mimose_honours_budget_on_all_nlp_tasks() {
    for task in Task::nlp() {
        let budget = 6usize << 30;
        let mut policy = MimosePolicy::new(MimoseConfig::with_budget(budget));
        let mut tr = Trainer::new(&task.model, &task.dataset, &mut policy, 29);
        for r in tr.run(80).unwrap() {
            assert!(r.ok(), "{}: OOM at iter {}", task.abbr, r.iter);
            assert!(
                r.peak_bytes <= budget,
                "{}: peak {} MiB over budget at iter {}",
                task.abbr,
                r.peak_bytes >> 20,
                r.iter
            );
        }
    }
}

#[test]
fn mimose_beats_sublinear_on_every_nlp_task() {
    // The headline claim (≈18 % over Sublinear) must at least hold in
    // direction on every dynamic-input task at a mid budget.
    for task in Task::nlp() {
        let budget = 6usize << 30;
        let iters = 150;
        let total = |kind: PlannerKind| {
            let mut policy = build_policy(kind, &task, budget);
            let mut tr = Trainer::new(&task.model, &task.dataset, policy.as_mut(), 55);
            tr.run_summary(iters).unwrap().total_ns
        };
        let mim = total(PlannerKind::Mimose);
        let sub = total(PlannerKind::Sublinear);
        assert!(
            mim < sub,
            "{}: mimose {} ms !< sublinear {} ms",
            task.abbr,
            mim / 1_000_000,
            sub / 1_000_000
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    let task = Task::tc_bert();
    let run = || {
        let mut policy = build_policy(PlannerKind::Sublinear, &task, 5 << 30);
        let mut tr = Trainer::new(&task.model, &task.dataset, policy.as_mut(), 1234);
        let s = tr.run_summary(60).unwrap();
        (s.total_ns, s.max_peak_bytes, s.max_frag_bytes)
    };
    assert_eq!(run(), run(), "virtual-time simulation must be bit-stable");
}

#[test]
fn dtr_budget_violations_are_visible() {
    // Fig 5: DTR's nominal budget is respected logically but the reserved
    // footprint exceeds it.
    let task = Task::mc_roberta();
    let budget = (4.5 * (1u64 << 30) as f64) as usize;
    let mut policy = build_policy(PlannerKind::Dtr, &task, budget);
    let mut tr = Trainer::new(&task.model, &task.dataset, policy.as_mut(), 77);
    let s = tr.run_summary(60).unwrap();
    assert!(s.max_peak_bytes <= budget, "logical usage over budget");
    assert!(
        s.max_peak_extent > budget,
        "expected reserved footprint ({} MiB) above the nominal budget",
        s.max_peak_extent >> 20
    );
}

#[test]
fn knapsack_scheduler_is_a_working_alternative() {
    let task = Task::tc_bert();
    let budget = 5usize << 30;
    let mut policy = build_policy(PlannerKind::MimoseKnapsack, &task, budget);
    let mut tr = Trainer::new(&task.model, &task.dataset, policy.as_mut(), 21);
    let s = tr.run_summary(80).unwrap();
    assert_eq!(s.oom_iters, 0);
    assert!(s.max_peak_bytes <= budget);
}

#[test]
fn capuchin_hybrid_runs_within_budget() {
    use mimose::planner::{BlockAction, CapuchinPolicy};
    use mimose::simgpu::DeviceProfile;
    let task = Task::tc_bert();
    let budget = 5usize << 30;
    let worst = task.worst_profile();
    let mut policy = CapuchinPolicy::plan_offline(&worst, budget, &DeviceProfile::v100());
    assert!(policy.is_feasible());
    let actions = policy.plan().clone();
    let mut tr = Trainer::new(&task.model, &task.dataset, &mut policy, 41);
    let s = tr.run_summary(60).unwrap();
    assert_eq!(s.oom_iters, 0);
    assert!(s.max_peak_bytes <= budget);
    // At V100 PCIe bandwidth the plan should recompute, not swap (§I).
    assert!(actions.count(BlockAction::Recompute) >= actions.count(BlockAction::Swap));
}

#[test]
fn adaptive_mimose_matches_base_on_stationary_data() {
    use mimose::core::{MimoseConfig, MimosePolicy};
    // With a stationary, tightly-bounded input distribution (SWAG's clipped
    // normal) the adaptive extensions must not change behaviour: the first
    // ten draws cover the support, so no re-collection triggers.
    let task = Task::mc_roberta();
    let budget = 6usize << 30;
    let mut pol = MimosePolicy::new(MimoseConfig::with_budget_adaptive(budget));
    let mut tr = Trainer::new(&task.model, &task.dataset, &mut pol, 19);
    let s = tr.run_summary(120).unwrap();
    assert_eq!(s.oom_iters, 0);
    assert!(s.max_peak_bytes <= budget);
    assert_eq!(pol.stats().recollections, 0, "stationary data re-collected");
}

#[test]
fn csv_export_round_trips_run_length() {
    use mimose_exp::csv::iterations_to_csv;
    let task = Task::qa_bert();
    let mut policy = build_policy(PlannerKind::Mimose, &task, 6 << 30);
    let mut tr = Trainer::new(&task.model, &task.dataset, policy.as_mut(), 5);
    let reports = tr.run(30).unwrap();
    let csv = iterations_to_csv(&reports);
    assert_eq!(csv.lines().count(), 31);
}
