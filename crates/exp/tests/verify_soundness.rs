//! Differential property suite for the static verifier: certified ⇒ never a
//! dynamic OOM under simulated replay, at any input size in the certified
//! bucket. The randomized-plan sweep pins the interval domain over 500
//! arbitrary checkpoint plans; the policy-driven sweep exercises every
//! evaluated planner's real directives (fine, hybrid and DTR certificates
//! included). False rejects — refusals whose plan would in fact have fit —
//! are permitted by soundness and reported as a measured rate.

use mimose_exp::verifygate::{soundness_sweep_policies, soundness_sweep_random_plans};

/// 500 randomized checkpoint plans over random task windows and budgets:
/// every certificate must survive replay in an arena of exactly its bound.
#[test]
fn certified_random_plans_never_oom_500_seeds() {
    let out = soundness_sweep_random_plans(0..500);
    assert_eq!(out.seeds, 500);
    assert!(
        out.failures.is_empty(),
        "soundness violations: {:?}",
        out.failures
    );
    assert!(out.certified > 0, "sweep never certified anything");
    assert!(out.replays > 0);
    println!(
        "random-plan sweep: {} certified, {} refused, false-reject rate {:.2}%",
        out.certified,
        out.rejected,
        out.false_reject_rate() * 100.0
    );
}

/// Policy-driven sweep across all evaluated planners (static, fine, hybrid,
/// DTR, Mimose): certificates issued for the directives the policies
/// actually emit must survive replay at their bound.
#[test]
fn certified_planner_directives_never_oom() {
    // The policy sweep warms each policy in the engine, so it is heavier per
    // seed than the randomized-plan sweep; debug builds (with the engine's
    // shadow checker on) run a reduced volume, release runs the full gate
    // volume via `verify --gate`.
    let seeds = if cfg!(debug_assertions) { 60 } else { 250 };
    let out = soundness_sweep_policies(0..seeds);
    assert_eq!(out.seeds as u64, seeds);
    assert!(
        out.failures.is_empty(),
        "soundness violations: {:?}",
        out.failures
    );
    assert!(out.certified > 0, "sweep never certified anything");
    println!(
        "policy sweep: {} certified, {} refused, false-reject rate {:.2}%",
        out.certified,
        out.rejected,
        out.false_reject_rate() * 100.0
    );
}
