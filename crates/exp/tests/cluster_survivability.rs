//! Fleet survivability acceptance tests: the failure protocol end to end,
//! over the canonical 8-job workload, through the public facade.
//!
//! The contract under test is the one the `cluster --gate` survivability
//! leg enforces in CI: when the fault plan takes devices away mid-run,
//! every job must end in an explicit outcome (finished, shed, or failed
//! with bounded retries) — no hangs, no panics, no silent drops — the
//! audit lint must re-derive the whole fleet rollup from the event chain,
//! and the degraded run must replay byte-identically across runs and
//! thread counts.

use mimose::prelude::*;
use mimose_audit::lint_cluster;
use mimose_cluster::{ClusterOutcome, JobOutcome};

fn lose_one_of_four(threads: usize) -> ClusterOutcome {
    let faults = FleetFaultPlan::none(0).with_device_fault(1, DeviceFault::Lost { at_round: 2 });
    Cluster::builder()
        .devices(DevicePool::v100(4))
        .workload(Workload::mixed(4))
        .faults(faults)
        .threads(threads)
        .record(true)
        .run()
        .expect("degraded canonical workload runs")
}

#[test]
fn losing_one_device_of_four_loses_no_jobs() {
    let outcome = lose_one_of_four(0);
    let r = &outcome.report;
    for job in &r.jobs {
        assert!(
            job.outcome.finished(),
            "{}: {:?} — capacity still fits, nothing may be shed or failed",
            job.name,
            job.outcome
        );
        // Every job ran to its full length, across however many devices.
        assert_eq!(job.iters, 4, "{}", job.name);
        assert_eq!(
            job.placements.iter().map(|p| p.iters).sum::<usize>(),
            4,
            "{}",
            job.name
        );
    }
    assert_eq!(r.fleet.devices_lost, 1);
    assert!(r.devices[1].lost);
    assert!(r.fleet.migrations >= 1);
    assert_eq!(r.fleet.shed_jobs, 0);
    assert_eq!(r.fleet.failed_jobs, 0);
    // The displaced jobs' overhead is attributed, not vanished.
    let overhead: u64 = r.jobs.iter().map(|j| j.fleet_overhead_ns).sum();
    assert_eq!(overhead, r.fleet.overhead_ns);
    assert!(overhead > 0);
}

#[test]
fn degraded_run_is_lint_clean_and_replays_byte_identically() {
    let a = lose_one_of_four(0);
    let diags = lint_cluster(&a);
    assert!(
        diags.is_empty(),
        "{:?}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
    let b = lose_one_of_four(4);
    let c = lose_one_of_four(1);
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(b.report.to_json(), c.report.to_json());
}

#[test]
fn event_chain_tells_the_whole_displacement_story() {
    let outcome = lose_one_of_four(0);
    let r = &outcome.report;
    // Chronological protocol order for the displaced job: down →
    // checkpoint → requeue → backoff → migrate.
    let displaced: Vec<usize> = r
        .jobs
        .iter()
        .enumerate()
        .filter(|(_, j)| j.migrations > 0)
        .map(|(i, _)| i)
        .collect();
    assert!(!displaced.is_empty());
    for j in displaced {
        let tags: Vec<&str> = r
            .events
            .iter()
            .filter(|e| e.kind.job() == Some(j))
            .map(|e| e.kind.tag())
            .collect();
        assert_eq!(
            tags,
            vec!["checkpoint", "requeue", "backoff", "migrate"],
            "job #{j}"
        );
        // The migration resumed exactly where the checkpoint parked.
        let cursors: Vec<(usize, usize)> = r
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FleetEventKind::Checkpoint { job, cursor, .. } if job == j => Some((0, cursor)),
                FleetEventKind::Migrate { job, cursor, .. } if job == j => Some((1, cursor)),
                _ => None,
            })
            .collect();
        assert_eq!(cursors.len(), 2);
        assert_eq!(cursors[0].1, cursors[1].1, "job #{j} resumed elsewhere");
    }
    // The down event for the lost device is permanent (no return round).
    assert!(r.events.iter().any(|e| matches!(
        e.kind,
        FleetEventKind::DeviceDown {
            device: 1,
            until_round: None
        }
    )));
}

#[test]
fn capacity_collapse_degrades_gracefully() {
    // Halve device 0's capacity for the whole run alongside losing
    // device 1: admission re-decides against the effective capacity, and
    // the fleet still finishes the canonical workload.
    let faults = FleetFaultPlan::none(0)
        .with_device_fault(1, DeviceFault::Lost { at_round: 2 })
        .with_device_fault(
            0,
            DeviceFault::CapacityCollapse {
                at_round: 0,
                duration: usize::MAX,
                factor: 0.5,
            },
        );
    let outcome = Cluster::builder()
        .devices(DevicePool::v100(4))
        .workload(Workload::mixed(4))
        .faults(faults)
        .record(true)
        .run()
        .expect("collapsed canonical workload runs");
    for job in &outcome.report.jobs {
        assert!(
            !matches!(job.outcome, JobOutcome::Rejected),
            "{}: rejected under collapse",
            job.name
        );
        assert!(
            job.outcome.finished() || matches!(job.outcome, JobOutcome::Shed(_)),
            "{}: {:?}",
            job.name,
            job.outcome
        );
    }
    let diags = lint_cluster(&outcome);
    assert!(
        diags.is_empty(),
        "{:?}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn shed_jobs_are_reported_with_reasons_and_lint_clean() {
    // Kill every device: the whole backlog must shed with explicit
    // reasons, and the trace must still satisfy the audit.
    let faults = FleetFaultPlan::none(0)
        .with_device_fault(0, DeviceFault::Lost { at_round: 1 })
        .with_device_fault(1, DeviceFault::Lost { at_round: 1 });
    let outcome = Cluster::builder()
        .devices(DevicePool::v100(2))
        .workload(Workload::mixed(6))
        .faults(faults)
        .record(true)
        .run()
        .expect("dead-pool workload still settles");
    let r = &outcome.report;
    assert!(r.fleet.shed_jobs > 0);
    for job in &r.jobs {
        match &job.outcome {
            JobOutcome::Shed(reason) => assert!(!reason.is_empty(), "{}", job.name),
            other => assert!(other.finished(), "{}: {other:?}", job.name),
        }
    }
    let diags = lint_cluster(&outcome);
    assert!(
        diags.is_empty(),
        "{:?}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
}
