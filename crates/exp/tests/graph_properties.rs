//! Property suite for the graph optimization pass layer: 500 randomized
//! block DAGs (shape-preserving op chains with injected duplicate views
//! and dead nodes) must all come out of the pipeline lint-clean, with
//! per-block activation bytes monotonically non-increasing and every
//! planner-level peak on the optimized graph no worse than on the raw
//! graph.

use mimose::models::builders::{bert_base, t5_base, BertHead};
use mimose::models::{Block, ModelGraph, ModelInput, OptimizerKind, Stage};
use mimose::ops::OpKind;
use mimose_planner::memory_model::{min_feasible_budget, peak_bytes};
use mimose_planner::{CheckpointPlan, SublinearPolicy};
use mimose_rng::{RngCore, SeedableRng, StdRng};
use mimose_verify::lint_graph;

const H: usize = 64;
const SEEDS: u64 = 500;

fn pick(rng: &mut StdRng, n: usize) -> usize {
    (rng.next_u64() % n as u64) as usize
}

/// A random block of shape-preserving ops over `[b, s, H]`. The first
/// block embeds the `[b, s]` token input; later blocks chain from the
/// previous block's output. Randomly interleaves duplicate view pairs
/// (fodder for dedup) and unconsumed nodes (fodder for DCE).
fn random_block(rng: &mut StdRng, name: String, first: bool) -> Block {
    let mut b = Block::builder(name);
    use mimose::models::NodeInput::{BlockInput, Node};
    let mut chain = if first {
        Node(b.push(
            OpKind::Embedding {
                vocab: 1000,
                hidden: H,
            },
            &[BlockInput],
        ))
    } else {
        BlockInput
    };
    // Earlier values usable as a second Add operand ([b, s, H] only).
    let mut values: Vec<usize> = Vec::new();
    let n_ops = 4 + pick(rng, 8);
    for _ in 0..n_ops {
        // Occasionally inject a duplicate view pair: one gets folded back
        // into the chain through a second transpose, its twin is left for
        // dedup-views / dead-node-elim to clean up.
        if pick(rng, 8) == 0 {
            let t1 = b.push(OpKind::TransposeLast2, &[chain]);
            let _twin = b.push(OpKind::TransposeLast2, &[chain]);
            chain = Node(b.push(OpKind::TransposeLast2, &[Node(t1)]));
        }
        // Occasionally inject a dead node nothing consumes.
        if pick(rng, 8) == 0 {
            b.push(OpKind::Relu, &[chain]);
        }
        let next = match pick(rng, 10) {
            0 => b.push(OpKind::Relu, &[chain]),
            1 => b.push(OpKind::Gelu, &[chain]),
            2 => b.push(OpKind::Tanh, &[chain]),
            3 => b.push(OpKind::Sigmoid, &[chain]),
            4 => b.push(OpKind::Dropout { p: 0.1 }, &[chain]),
            5 => b.push(OpKind::Scale, &[chain]),
            6 => b.push(OpKind::Softmax, &[chain]),
            7 => b.push(OpKind::LayerNorm { features: H }, &[chain]),
            8 => b.push(
                OpKind::Linear {
                    in_features: H,
                    out_features: H,
                    bias: true,
                },
                &[chain],
            ),
            _ => match values.as_slice() {
                [] => b.push(OpKind::Scale, &[chain]),
                vs => {
                    let other = vs[pick(rng, vs.len())];
                    b.push(OpKind::Add, &[chain, Node(other)])
                }
            },
        };
        if let Node(i) = chain {
            values.push(i);
        }
        chain = Node(next);
    }
    b.build()
}

fn random_graph(seed: u64) -> (ModelGraph, ModelInput) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_blocks = 2 + pick(&mut rng, 4);
    let blocks = (0..n_blocks)
        .map(|i| random_block(&mut rng, format!("rand.{i}"), i == 0))
        .collect();
    let graph = ModelGraph {
        name: format!("rand-{seed}"),
        stages: vec![Stage {
            name: "body".into(),
            blocks,
            capture_context: false,
        }],
        optimizer: OptimizerKind::Adam,
        max_extent: 256,
        framework_const_bytes: 0,
        reserved_bytes: 0,
    };
    let batch = 1 + pick(&mut rng, 8);
    let seq = 16 << pick(&mut rng, 4);
    (graph, ModelInput::tokens(batch, seq))
}

#[test]
fn randomized_dags_lint_clean_and_only_shrink() {
    let mut total_saved = 0usize;
    for seed in 0..SEEDS {
        let (graph, input) = random_graph(seed);
        let opt = graph.optimize();

        let viols = lint_graph(&opt, &input);
        assert!(viols.is_empty(), "seed {seed}: {viols:?}");

        let delta = opt
            .delta(&input)
            .unwrap_or_else(|e| panic!("seed {seed}: optimized graph failed to profile: {e}"));
        for b in &delta.per_block {
            assert!(
                b.opt_act_bytes <= b.raw_act_bytes,
                "seed {seed}: block {} grew {} -> {} activation bytes",
                b.name,
                b.raw_act_bytes,
                b.opt_act_bytes
            );
        }
        total_saved += delta.bytes_saved();
    }
    // The generator's op mix must actually exercise the passes: across
    // the whole sweep something must have been saved.
    assert!(total_saved > 0, "500 random DAGs saved zero bytes");
}

#[test]
fn planner_peaks_on_optimized_never_exceed_raw() {
    for seed in 0..SEEDS {
        let (graph, input) = random_graph(seed);
        let opt = graph.optimize();
        let raw = opt.raw_profile(&input).unwrap();
        let shrunk = opt.profile(&input).unwrap();

        assert!(
            shrunk.peak_no_checkpoint() <= raw.peak_no_checkpoint(),
            "seed {seed}: no-checkpoint peak grew"
        );
        assert!(
            min_feasible_budget(&shrunk) <= min_feasible_budget(&raw),
            "seed {seed}: all-checkpoint floor grew"
        );
        // Any plan's analytic peak is monotone in the stash bytes, so the
        // raw graph's sublinear plan can only get cheaper on the
        // optimized profile.
        let budget = raw.peak_no_checkpoint() * 3 / 4;
        let plan = SublinearPolicy::plan_offline(&raw, budget).plan().clone();
        assert!(
            peak_bytes(&shrunk, &plan) <= peak_bytes(&raw, &plan),
            "seed {seed}: sublinear plan peak grew on the optimized graph"
        );
        let none = CheckpointPlan::none(raw.blocks.len());
        assert!(
            peak_bytes(&shrunk, &none) <= peak_bytes(&raw, &none),
            "seed {seed}: none-plan peak grew on the optimized graph"
        );
    }
}

#[test]
fn canonical_builders_shrink_under_the_property_lens() {
    // The same three properties on the real builders the gate uses, at a
    // worst-case-ish input.
    for (name, graph, input) in [
        (
            "bert-base",
            bert_base(BertHead::Classification { labels: 2 }),
            ModelInput::tokens(32, 512),
        ),
        ("t5-base", t5_base(), ModelInput::tokens(8, 512)),
    ] {
        let opt = graph.optimize();
        assert!(lint_graph(&opt, &input).is_empty(), "{name}");
        let raw = opt.raw_profile(&input).unwrap();
        let shrunk = opt.profile(&input).unwrap();
        assert!(
            shrunk.total_act_bytes() < raw.total_act_bytes(),
            "{name}: no measured reduction"
        );
        assert!(min_feasible_budget(&shrunk) <= min_feasible_budget(&raw));
    }
}
