//! Property tests for the OOM-recovery ladder.
//!
//! The ladder's contract is structural, not scenario-specific: whatever
//! faults are injected it must terminate, stay within its configured rung
//! bounds, produce a chain the audit linter accepts, and behave
//! deterministically for a given seed. These tests throw hundreds of
//! randomized fault schedules at the engine-level driver to check exactly
//! that, then close with an end-to-end run through the trainer and the
//! Mimose policy showing the acceptance scenario: an injected estimator
//! under-prediction that is fatal without the ladder completes with it.

use mimose_audit::{lint_recovery_trace, Severity};
use mimose_chaos::{FaultInjector, FaultSpec, IterationFaults};
use mimose_exec::{BlockIteration, BlockRun, RecoveryConfig, Trainer};
use mimose_exp::experiments::chaos::{clean_reference, scenario_spec, ChaosOptions, Scenario};
use mimose_exp::tasks::Task;
use mimose_models::builders::{bert_base, BertHead};
use mimose_models::{ModelInput, ModelProfile};
use mimose_planner::memory_model::peak_bytes;
use mimose_planner::{CheckpointPlan, RecoveryRung};
use mimose_rng::{Rng, SeedableRng, StdRng};
use mimose_simgpu::DeviceProfile;

fn profiles() -> Vec<ModelProfile> {
    let model = bert_base(BertHead::Classification { labels: 2 });
    [(8, 64), (16, 128), (8, 192)]
        .iter()
        .map(|&(batch, seq)| model.profile(&ModelInput::tokens(batch, seq)).unwrap())
        .collect()
}

/// Draw a random but structurally valid ladder configuration.
fn random_config(rng: &mut StdRng) -> RecoveryConfig {
    RecoveryConfig {
        compact: rng.gen::<f64>() < 0.8,
        demote: rng.gen::<f64>() < 0.8,
        max_restarts: rng.gen_range(0..4usize),
        shrink_factor: rng.gen_range(0.55..0.95),
        max_inline_events: rng.gen_range(4..32usize),
        fallback: rng.gen::<f64>() < 0.85,
    }
}

/// Draw a random fault schedule through the deterministic injector, so the
/// property suite also exercises the chaos layer's channel derivation.
fn random_faults(rng: &mut StdRng, iter: usize) -> IterationFaults {
    let spec = FaultSpec {
        alloc_failure_rate: if rng.gen::<f64>() < 0.6 { 1.0 } else { 0.0 },
        alloc_failures_per_iter: rng.gen_range(1..5usize),
        alloc_failure_span: rng.gen_range(8..96u64),
        recompute_spike_rate: if rng.gen::<f64>() < 0.4 { 1.0 } else { 0.0 },
        recompute_spike_factor: rng.gen_range(1.0..4.0),
        ..FaultSpec::none(rng.gen::<u64>())
    };
    FaultInjector::new(spec).iteration_faults(iter)
}

struct Trial {
    profile_idx: usize,
    plan: CheckpointPlan,
    shuttle: bool,
    capacity: usize,
    cfg: RecoveryConfig,
    faults: IterationFaults,
    iter: usize,
}

fn random_trial(rng: &mut StdRng, profiles: &[ModelProfile]) -> Trial {
    let profile_idx = rng.gen_range(0..profiles.len());
    let p = &profiles[profile_idx];
    let n = p.blocks.len();
    let mut plan = CheckpointPlan::none(n);
    let density = rng.gen::<f64>();
    for i in 0..n {
        if rng.gen::<f64>() < density {
            plan.set(i, true);
        }
    }
    let floor = peak_bytes(p, &CheckpointPlan::all(n));
    let roof = peak_bytes(p, &CheckpointPlan::none(n));
    // From hopeless (below even the full-checkpoint floor) to comfortable:
    // fatal outcomes are in scope — the property is termination and
    // discipline, not success.
    let capacity = rng
        .gen_range(floor / 2..roof + roof / 4)
        .next_multiple_of(512);
    let iter = rng.gen_range(0..64usize);
    Trial {
        profile_idx,
        plan,
        shuttle: rng.gen::<f64>() < 0.1,
        capacity,
        cfg: random_config(rng),
        faults: random_faults(rng, iter),
        iter,
    }
}

fn run_trial(t: &Trial, profiles: &[ModelProfile], dev: &DeviceProfile) -> BlockRun {
    let p = &profiles[t.profile_idx];
    let it = if t.shuttle {
        BlockIteration::shuttle(p)
    } else {
        BlockIteration::plan(p, &t.plan)
    };
    it.device(dev)
        .capacity(t.capacity)
        .iter(t.iter)
        .recovery(&t.cfg)
        .faults(&t.faults)
        .run()
}

#[test]
fn ladder_terminates_with_bounded_linted_chains_on_randomized_schedules() {
    let profiles = profiles();
    let dev = DeviceProfile::v100();
    let mut rng = StdRng::seed_from_u64(0x1adde2);
    let mut recovered = 0usize;
    let mut fatal = 0usize;
    for trial_no in 0..520 {
        let t = random_trial(&mut rng, &profiles);
        let run = run_trial(&t, &profiles, &dev);
        let events = &run.report.recovery;

        // Bounded escalation: each attempt holds at most the inline cap
        // plus its closing escalation, and there are at most
        // 1 + max_restarts + 1 (fallback) attempts.
        let attempts = 2 + t.cfg.max_restarts;
        let bound = attempts * (t.cfg.max_inline_events + 1);
        assert!(
            events.len() <= bound,
            "trial {trial_no}: {} events exceeds bound {bound} ({:?})",
            events.len(),
            t.cfg
        );
        let restarts = events
            .iter()
            .filter(|e| e.rung == RecoveryRung::Restart)
            .count();
        assert!(
            restarts <= t.cfg.max_restarts,
            "trial {trial_no}: {restarts} restarts > {}",
            t.cfg.max_restarts
        );
        let fallbacks = events
            .iter()
            .filter(|e| e.rung == RecoveryRung::Fallback)
            .count();
        assert!(fallbacks <= 1, "trial {trial_no}: {fallbacks} fallbacks");

        // Whatever happened, the chain must satisfy the audit linter.
        let diags = lint_recovery_trace(events, t.cfg.max_restarts, t.cfg.max_inline_events);
        let errs: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            errs.is_empty(),
            "trial {trial_no}: lint errors {errs:?} on {events:#?}"
        );

        // A fatal report still carries the remedies it tried.
        if run.report.ok() {
            if !events.is_empty() {
                recovered += 1;
            }
        } else {
            fatal += 1;
        }
    }
    // The schedule space must actually cover both regimes, otherwise the
    // assertions above are vacuous.
    assert!(
        recovered > 50,
        "only {recovered} recovered trials — schedules too tame"
    );
    assert!(fatal > 20, "only {fatal} fatal trials — schedules too soft");
}

#[test]
fn ladder_is_deterministic_for_a_given_schedule() {
    let profiles = profiles();
    let dev = DeviceProfile::v100();
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for _ in 0..60 {
        let t = random_trial(&mut rng, &profiles);
        let a = run_trial(&t, &profiles, &dev);
        let b = run_trial(&t, &profiles, &dev);
        assert_eq!(a.report.recovery, b.report.recovery);
        assert_eq!(a.report.time.total_ns(), b.report.time.total_ns());
        assert_eq!(a.report.peak_bytes, b.report.peak_bytes);
        assert_eq!(a.report.oom.is_some(), b.report.oom.is_some());
    }
}

#[test]
fn happy_path_is_byte_identical_under_recovery_harness() {
    let profiles = profiles();
    let mut rng = StdRng::seed_from_u64(0xfeed);
    let cfg = RecoveryConfig::default();
    for _ in 0..50 {
        let t = random_trial(&mut rng, &profiles);
        let p = &profiles[t.profile_idx];
        // Generous capacity and no faults: the harness must be invisible.
        let capacity = peak_bytes(p, &CheckpointPlan::none(p.blocks.len())) * 2;
        let plain = BlockIteration::plan(p, &t.plan)
            .capacity(capacity)
            .iter(t.iter)
            .planning_ns(7)
            .run();
        let guarded = BlockIteration::plan(p, &t.plan)
            .capacity(capacity)
            .iter(t.iter)
            .planning_ns(7)
            .recovery(&cfg)
            .run();
        assert!(guarded.report.recovery.is_empty());
        assert_eq!(plain.report.time.total_ns(), guarded.report.time.total_ns());
        assert_eq!(plain.report.peak_bytes, guarded.report.peak_bytes);
        assert_eq!(plain.report.peak_extent, guarded.report.peak_extent);
        assert_eq!(plain.report.frag_bytes, guarded.report.frag_bytes);
        assert_eq!(plain.report.dropped_units, guarded.report.dropped_units);
    }
}

#[test]
fn spurious_failures_are_absorbed_by_coalesce_retry() {
    let profiles = profiles();
    let p = &profiles[1];
    let dev = DeviceProfile::v100();
    let n = p.blocks.len();
    let plan = CheckpointPlan::none(n);
    let capacity = peak_bytes(p, &plan) * 2;
    let cfg = RecoveryConfig::default();
    let faults = IterationFaults {
        fail_allocs: vec![3, 17, 40],
        ..IterationFaults::identity()
    };
    let run = BlockIteration::plan(p, &plan)
        .device(&dev)
        .capacity(capacity)
        .recovery(&cfg)
        .faults(&faults)
        .run();
    assert!(run.report.ok(), "{:?}", run.report.oom);
    assert_eq!(run.report.recovery.len(), 3);
    assert!(run
        .report
        .recovery
        .iter()
        .all(|e| e.rung == RecoveryRung::CoalesceRetry));
    assert!(
        run.report.time.recovery_ns > 0,
        "compaction copies must be charged"
    );
}

/// End-to-end acceptance scenario: an estimator that under-predicts by ~2x
/// on a squeezed device is fatal without the ladder and fully recovered
/// with it, with linted recovery chains and virtual-clock attribution.
#[test]
fn e2e_estimator_under_prediction_is_fatal_without_ladder_and_recovered_with_it() {
    let task = Task::tc_bert();
    let opt = ChaosOptions {
        iters: 60,
        ..ChaosOptions::default()
    };
    let clean = clean_reference(&task, &opt);
    let (spec, estimate_scale) = scenario_spec(Scenario::EstimatorUnder, &task, &opt, &clean);
    assert!(spec.capacity_shrink.is_some() && estimate_scale < 1.0);

    let make_policy = |scale: f64| {
        let mut cfg = mimose_core::MimoseConfig::with_budget(opt.budget_bytes);
        cfg.estimate_scale = scale;
        mimose_core::MimosePolicy::new(cfg)
    };

    // Without the ladder the faults are fatal.
    let mut bare_policy = make_policy(estimate_scale);
    let mut bare = Trainer::new(&task.model, &task.dataset, &mut bare_policy, opt.seed)
        .with_chaos(FaultInjector::new(spec.clone()));
    let bare_reports = bare.run(opt.iters).unwrap();
    let bare_fatal = bare_reports.iter().filter(|r| !r.ok()).count();
    assert!(bare_fatal > 0, "scenario must be fatal without recovery");

    // With the ladder every iteration completes.
    let recovery = RecoveryConfig::default();
    let mut policy = make_policy(estimate_scale);
    let mut tr = Trainer::new(&task.model, &task.dataset, &mut policy, opt.seed)
        .with_recovery(recovery.clone())
        .with_chaos(FaultInjector::new(spec));
    let reports = tr.run(opt.iters).unwrap();

    let fatal = reports.iter().filter(|r| !r.ok()).count();
    assert_eq!(fatal, 0, "ladder must rescue every injected OOM");
    let recovered = reports.iter().filter(|r| r.recovered()).count();
    assert!(recovered > 0, "the squeeze must actually bite");
    for r in &reports {
        let diags = lint_recovery_trace(
            &r.recovery,
            recovery.max_restarts,
            recovery.max_inline_events,
        );
        assert!(
            !mimose_audit::has_errors(&diags),
            "iter {}: {diags:?}",
            r.iter
        );
        // Clock attribution: escalations charge the aborted attempt.
        if r.recovery
            .iter()
            .any(|e| matches!(e.rung, RecoveryRung::Restart | RecoveryRung::Fallback))
        {
            assert!(
                r.time.recovery_ns > 0,
                "iter {}: escalation without cost",
                r.iter
            );
        }
    }
}
