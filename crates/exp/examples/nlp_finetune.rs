//! Fine-tuning scenario: compare every planner on QA-Bert (SQuAD) under the
//! same memory budget — the production "frequent fine-tuning" use case the
//! paper motivates, where the input-size distribution of the freshly
//! collected dataset is unknown in advance.
//!
//! Run with: `cargo run --release --example nlp_finetune`

use mimose::exec::Trainer;
use mimose_exp::planners::{build_policy, PlannerKind};
use mimose_exp::tasks::Task;

fn main() {
    let task = Task::qa_bert();
    let budget = 6usize << 30;
    let iters = 200;

    println!(
        "task: {} — {} on {} (batch {}), budget {} GiB, {} iterations\n",
        task.abbr,
        task.kind,
        task.dataset.name(),
        task.dataset.batch_size(),
        budget >> 30,
        iters
    );

    println!("planner    total(s)  vs baseline  peak(GiB)  recompute%  oom");
    let mut baseline_ns = None;
    for kind in PlannerKind::comparison_set() {
        let mut policy = build_policy(kind, &task, budget);
        let mut trainer = Trainer::new(&task.model, &task.dataset, policy.as_mut(), 7);
        let s = trainer.run_summary(iters).expect("run");
        if kind == PlannerKind::Baseline {
            baseline_ns = Some(s.total_ns);
        }
        let norm = s.total_ns as f64 / baseline_ns.expect("baseline first") as f64;
        println!(
            "{:<9}  {:>8.2}  {:>11.3}  {:>9.2}  {:>9.1}%  {:>3}",
            kind.name(),
            s.total_ns as f64 / 1e9,
            norm,
            s.max_peak_extent as f64 / (1u64 << 30) as f64,
            s.time.recompute_ns as f64 / s.time.total_ns() as f64 * 100.0,
            s.oom_iters
        );
    }

    println!("\nExpected shape (paper Fig 10): Mimose closest to baseline; the");
    println!("static planners pay worst-case recomputation on every iteration;");
    println!("DTR pays metadata maintenance and exceeds the nominal budget.");
}
