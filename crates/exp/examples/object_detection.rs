//! Object-detection scenario: ResNet-50 on COCO-like multi-scale data.
//!
//! Multi-scale resize (short side 480–800, long side ≤ 1333) makes the
//! collated image shape fluctuate wildly across iterations — the strongest
//! form of the input dynamics Mimose exploits. Static tensor planners must
//! solve against one exported shape and blow through the budget on larger
//! ones (§VI-B).
//!
//! Run with: `cargo run --release --example object_detection`

use mimose::core::{MimoseConfig, MimosePolicy};
use mimose::exec::Trainer;
use mimose::planner::SublinearPolicy;
use mimose_exp::tasks::Task;

fn main() {
    let task = Task::od_r50();
    let budget = 14usize << 30;
    let iters = 120;

    println!(
        "task: {} on {} (batch {}), budget {} GiB\n",
        task.abbr,
        task.dataset.name(),
        task.dataset.batch_size(),
        budget >> 30
    );

    // Show the input dynamics first.
    let mut stream = task.dataset.stream(3);
    println!("sample collated shapes after multi-scale resize + padding:");
    for _ in 0..8 {
        let b = stream.next_batch();
        println!("  input_size = {:>9} ({:?})", b.input_size(), b.kind);
    }
    println!();

    // Mimose vs the conservative static plan.
    let mut mimose = MimosePolicy::new(MimoseConfig::with_budget(budget));
    let s_mimose = Trainer::new(&task.model, &task.dataset, &mut mimose, 9)
        .run_summary(iters)
        .expect("run");

    let worst = task.worst_profile();
    let mut sublinear = SublinearPolicy::plan_offline(&worst, budget);
    let s_sub = Trainer::new(&task.model, &task.dataset, &mut sublinear, 9)
        .run_summary(iters)
        .expect("run");

    println!("planner    total(s)  peak(GiB)  frag(GiB)  recompute%");
    for (name, s) in [("Mimose", &s_mimose), ("Sublinear", &s_sub)] {
        println!(
            "{:<9}  {:>8.2}  {:>9.2}  {:>9.2}  {:>9.1}%",
            name,
            s.total_ns as f64 / 1e9,
            s.max_peak_extent as f64 / (1u64 << 30) as f64,
            s.max_frag_bytes as f64 / (1u64 << 30) as f64,
            s.time.recompute_ns as f64 / s.time.total_ns() as f64 * 100.0,
        );
    }
    assert!(s_mimose.max_peak_extent <= budget);
    assert!(
        s_mimose.total_ns < s_sub.total_ns,
        "input-aware planning should beat the static worst-case plan"
    );
    println!(
        "\nMimose is {:.1}% faster by skipping recomputation on small images.",
        (1.0 - s_mimose.total_ns as f64 / s_sub.total_ns as f64) * 100.0
    );
}
