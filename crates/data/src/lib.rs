//! # mimose-data
//!
//! Synthetic dataset generators reproducing the paper's input-tensor
//! dynamics: per-sample length distributions (Fig 3 ranges), multi-scale
//! resize augmentation for detection, and pad/truncate/collate semantics
//! that turn per-sample dims into the per-iteration input size every planner
//! keys on.

#![warn(missing_docs)]

mod arrivals;
mod length;
mod loader;
pub mod presets;
mod text;
mod vision;

pub use arrivals::ArrivalProcess;
pub use length::LengthSampler;
pub use loader::{BatchStream, Dataset};
pub use text::TextDataset;
pub use vision::{CocoLikeDataset, MAX_LONG_SIDE, MULTISCALE_LADDER};
