//! COCO-like image dataset with multi-scale resize augmentation.
//!
//! Object-detection pipelines (DETR, Sparse R-CNN, Swin — paper §II-A)
//! randomly resize each image so the shorter side lands on a ladder between
//! 480 and 800 while the longer side is capped at 1333, preserving aspect
//! ratio; the batch is then padded to its largest height/width (rounded to a
//! multiple of 32 for FPN strides).

use mimose_models::ModelInput;
use mimose_rng::Rng;

/// The standard multi-scale ladder used by DETR/Sparse-RCNN configs.
pub const MULTISCALE_LADDER: [usize; 11] = [480, 512, 544, 576, 608, 640, 672, 704, 736, 768, 800];

/// Maximum longer-side extent.
pub const MAX_LONG_SIDE: usize = 1333;

/// COCO-like synthetic detection dataset.
#[derive(Debug, Clone)]
pub struct CocoLikeDataset {
    /// Dataset name.
    pub name: String,
    /// Mini-batch size in images.
    pub batch_size: usize,
    /// Samples per epoch.
    pub epoch_samples: usize,
    /// Spatial padding granularity (detector stride), typically 32.
    pub pad_multiple: usize,
}

impl CocoLikeDataset {
    /// COCO train2017-like defaults.
    #[must_use]
    pub fn coco(batch_size: usize) -> Self {
        CocoLikeDataset {
            name: "COCO".into(),
            batch_size,
            epoch_samples: 118_000,
            pad_multiple: 32,
        }
    }

    /// Iterations per epoch.
    #[must_use]
    pub fn iters_per_epoch(&self) -> usize {
        self.epoch_samples / self.batch_size
    }

    /// Sample one raw image aspect ratio (w/h). COCO aspect ratios cluster
    /// around 4:3 and 3:4 with a broad spread (paper cites [19]).
    fn sample_aspect<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Mixture: 70 % landscape ~4:3, 25 % portrait ~3:4, 5 % extreme.
        let u: f64 = rng.gen();
        if u < 0.70 {
            rng.gen_range(1.15..1.55)
        } else if u < 0.95 {
            rng.gen_range(0.65..0.90)
        } else {
            rng.gen_range(0.45..2.2)
        }
    }

    /// Apply multi-scale resize to one image: pick a short side from the
    /// ladder, scale so aspect is preserved, cap the long side at 1333.
    fn resize_one<R: Rng + ?Sized>(rng: &mut R) -> (usize, usize) {
        let short = MULTISCALE_LADDER[rng.gen_range(0..MULTISCALE_LADDER.len())];
        let aspect = Self::sample_aspect(rng);
        // aspect = w/h. Short side is the smaller of h, w.
        let (h, w) = if aspect >= 1.0 {
            let h = short as f64;
            let mut w = h * aspect;
            if w > MAX_LONG_SIDE as f64 {
                let scale = MAX_LONG_SIDE as f64 / w;
                w = MAX_LONG_SIDE as f64;
                return ((h * scale).round() as usize, w as usize);
            }
            (h, w)
        } else {
            let w = short as f64;
            let mut h = w / aspect;
            if h > MAX_LONG_SIDE as f64 {
                let scale = MAX_LONG_SIDE as f64 / h;
                h = MAX_LONG_SIDE as f64;
                return (h as usize, (w * scale).round() as usize);
            }
            (h, w)
        };
        (h.round() as usize, w.round() as usize)
    }

    fn pad_up(&self, v: usize) -> usize {
        v.div_ceil(self.pad_multiple) * self.pad_multiple
    }

    /// Draw and collate one mini-batch: per-image resize, then pad the batch
    /// to its max height/width (rounded to `pad_multiple`).
    pub fn next_batch<R: Rng + ?Sized>(&self, rng: &mut R) -> ModelInput {
        let mut max_h = 0usize;
        let mut max_w = 0usize;
        for _ in 0..self.batch_size {
            let (h, w) = Self::resize_one(rng);
            max_h = max_h.max(h);
            max_w = max_w.max(w);
        }
        ModelInput::image(self.batch_size, self.pad_up(max_h), self.pad_up(max_w))
    }

    /// Worst-case collated input for static planning. Because the batch is
    /// padded to its max height *and* max width independently, a portrait
    /// image (height at the 1333 cap) and a landscape image (width at the
    /// cap) in the same batch drive both dims to the cap.
    #[must_use]
    pub fn worst_case(&self) -> ModelInput {
        ModelInput::image(
            self.batch_size,
            self.pad_up(MAX_LONG_SIDE),
            self.pad_up(MAX_LONG_SIDE),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::ModelInputKind;
    use mimose_rng::SeedableRng;
    use mimose_rng::StdRng;

    #[test]
    fn resized_batches_respect_detr_constraints() {
        let ds = CocoLikeDataset::coco(8);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let b = ds.next_batch(&mut rng);
            let (h, w) = match b.kind {
                ModelInputKind::Image { h, w } => (h, w),
                _ => unreachable!(),
            };
            assert_eq!(h % 32, 0);
            assert_eq!(w % 32, 0);
            // Short side ≥ ladder minimum (after padding), long ≤ cap+pad.
            assert!(h.min(w) >= 480, "short {}", h.min(w));
            assert!(h.max(w) <= MAX_LONG_SIDE + 31, "long {}", h.max(w));
        }
    }

    #[test]
    fn input_sizes_vary() {
        let ds = CocoLikeDataset::coco(8);
        let mut rng = StdRng::seed_from_u64(12);
        let sizes: std::collections::HashSet<usize> = (0..100)
            .map(|_| ds.next_batch(&mut rng).input_size())
            .collect();
        assert!(sizes.len() > 20, "only {} distinct sizes", sizes.len());
    }

    #[test]
    fn worst_case_dominates() {
        let ds = CocoLikeDataset::coco(8);
        let wc = ds.worst_case().input_size();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..300 {
            assert!(ds.next_batch(&mut rng).input_size() <= wc);
        }
    }

    #[test]
    fn aspect_preserved_before_padding() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..500 {
            let (h, w) = CocoLikeDataset::resize_one(&mut rng);
            let short = h.min(w);
            let long = h.max(w);
            assert!(short >= 279, "short side {short} collapsed"); // 1333-capped extreme aspect
            assert!(long <= MAX_LONG_SIDE);
            assert!(
                MULTISCALE_LADDER.contains(&short) || long == MAX_LONG_SIDE,
                "short {short} long {long}"
            );
        }
    }
}
