//! Text datasets: tokenisation-equivalent length sampling, padding,
//! truncation and collation into mini-batch inputs.

use crate::LengthSampler;
use mimose_models::ModelInput;
use mimose_rng::Rng;

/// A synthetic text dataset that reproduces a real dataset's per-sample
/// token-length distribution. Samples are collated by padding every sequence
/// in the mini-batch to the batch maximum and truncating at `max_len`
/// (paper §II-A).
#[derive(Debug, Clone)]
pub struct TextDataset {
    /// Dataset name (e.g. `SWAG`).
    pub name: String,
    /// Per-sample token-length distribution after tokenisation.
    pub lengths: LengthSampler,
    /// Mini-batch size in *samples*.
    pub batch_size: usize,
    /// Choices per sample: multiple-choice tasks expand each sample into
    /// `choices` sequences (SWAG: 4), multiplying the effective batch.
    pub choices: usize,
    /// Truncation limit (the model's `max_extent`, 512 for BERT).
    pub max_len: usize,
    /// Number of samples per epoch.
    pub epoch_samples: usize,
    /// Length-grouped batching (HuggingFace `group_by_length`): batches are
    /// formed from similar-length samples, so the *collated* length follows
    /// the per-sample distribution instead of its batch-max upper tail. The
    /// paper's Fig 4 shows whole QQP batches at seqlen 55 under batch size
    /// 32 — only possible with grouping — so this defaults to `true`.
    pub grouped: bool,
}

impl TextDataset {
    /// Number of iterations in one epoch.
    #[must_use]
    pub fn iters_per_epoch(&self) -> usize {
        self.epoch_samples / self.batch_size
    }

    /// Draw and collate one mini-batch.
    ///
    /// With `grouped` batching the collated length is one draw from the
    /// per-sample distribution (plus intra-bucket padding jitter); otherwise
    /// per-sample lengths are sampled and the batch pads to its maximum.
    pub fn next_batch<R: Rng + ?Sized>(&self, rng: &mut R) -> ModelInput {
        let max = if self.grouped {
            let base = self.lengths.sample(rng);
            let jitter = rng.gen_range(0..=(base / 16));
            let (lo, hi) = self.lengths.bounds();
            (base + jitter).clamp(lo, hi).min(self.max_len)
        } else {
            let mut max = 0usize;
            for _ in 0..self.batch_size {
                let raw = self.lengths.sample(rng);
                max = max.max(raw.min(self.max_len));
            }
            max
        };
        ModelInput::tokens(self.batch_size * self.choices, max)
    }

    /// Worst-case collated input (for static planners): every sequence at
    /// the distribution's upper clip (truncated).
    #[must_use]
    pub fn worst_case(&self) -> ModelInput {
        let (_, hi) = self.lengths.bounds();
        ModelInput::tokens(self.batch_size * self.choices, hi.min(self.max_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_rng::SeedableRng;
    use mimose_rng::StdRng;

    fn swag_like() -> TextDataset {
        TextDataset {
            name: "SWAG".into(),
            lengths: LengthSampler::Normal {
                mu: 72.0,
                sigma: 22.0,
                min: 35,
                max: 141,
            },
            batch_size: 16,
            choices: 4,
            max_len: 512,
            epoch_samples: 73_000,
            grouped: true,
        }
    }

    #[test]
    fn batch_expands_choices() {
        let ds = swag_like();
        let mut rng = StdRng::seed_from_u64(1);
        let b = ds.next_batch(&mut rng);
        assert_eq!(b.batch, 64); // 16 samples x 4 choices
    }

    #[test]
    fn batch_length_is_padded_max() {
        let ds = swag_like();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let b = ds.next_batch(&mut rng);
            let seq = match b.kind {
                mimose_models::ModelInputKind::Tokens { seq } => seq,
                _ => unreachable!(),
            };
            assert!((35..=141).contains(&seq), "seq {seq}");
        }
    }

    #[test]
    fn input_sizes_fluctuate_across_iterations() {
        // The core premise of the paper: input size varies iteration to
        // iteration.
        let ds = swag_like();
        let mut rng = StdRng::seed_from_u64(3);
        let sizes: Vec<usize> = (0..50)
            .map(|_| ds.next_batch(&mut rng).input_size())
            .collect();
        let distinct: std::collections::HashSet<_> = sizes.iter().collect();
        assert!(
            distinct.len() > 10,
            "only {} distinct sizes",
            distinct.len()
        );
    }

    #[test]
    fn truncation_caps_at_max_len() {
        let ds = TextDataset {
            max_len: 100,
            ..swag_like()
        };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let b = ds.next_batch(&mut rng);
            assert!(b.per_sample_extent() <= 100);
        }
        assert_eq!(ds.worst_case().per_sample_extent(), 100);
    }

    #[test]
    fn worst_case_dominates_samples() {
        let ds = swag_like();
        let wc = ds.worst_case().input_size();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            assert!(ds.next_batch(&mut rng).input_size() <= wc);
        }
    }
}
