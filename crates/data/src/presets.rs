//! Dataset presets matching the paper's Table II and Fig 3.
//!
//! Distribution parameters are calibrated so per-sample token lengths fall
//! in the ranges Fig 3 reports: SWAG 35–141, SQuAD 153–512, GLUE-QQP 30–332,
//! UN_PC 17–460; COCO uses the DETR multi-scale ladder.

use crate::{CocoLikeDataset, Dataset, LengthSampler, TextDataset};

/// SWAG (multiple choice, RoBERTa-base, batch 16 × 4 choices).
#[must_use]
pub fn swag() -> Dataset {
    Dataset::Text(TextDataset {
        name: "SWAG".into(),
        lengths: LengthSampler::Normal {
            mu: 72.0,
            sigma: 22.0,
            min: 35,
            max: 141,
        },
        batch_size: 16,
        choices: 4,
        max_len: 512,
        epoch_samples: 73_546,
        grouped: true,
    })
}

/// SQuAD (question answering, BERT-base, batch 12).
#[must_use]
pub fn squad() -> Dataset {
    Dataset::Text(TextDataset {
        name: "SQuAD".into(),
        lengths: LengthSampler::Normal {
            mu: 270.0,
            sigma: 75.0,
            min: 153,
            max: 512,
        },
        batch_size: 12,
        choices: 1,
        max_len: 512,
        epoch_samples: 87_599,
        grouped: true,
    })
}

/// GLUE-QQP (text classification, BERT-base, batch 32). Power-law-ish.
#[must_use]
pub fn glue_qqp() -> Dataset {
    Dataset::Text(TextDataset {
        name: "GLUE-QQP".into(),
        lengths: LengthSampler::LogNormal {
            mu_ln: 50f64.ln(),
            sigma_ln: 0.60,
            min: 30,
            max: 332,
        },
        batch_size: 32,
        choices: 1,
        max_len: 512,
        epoch_samples: 363_846,
        grouped: true,
    })
}

/// UN_PC (translation, T5-base, batch 8). Long-tailed sentence lengths.
#[must_use]
pub fn un_pc() -> Dataset {
    Dataset::Text(TextDataset {
        name: "UN_PC".into(),
        lengths: LengthSampler::LogNormal {
            mu_ln: 90f64.ln(),
            sigma_ln: 0.65,
            min: 17,
            max: 460,
        },
        batch_size: 8,
        choices: 1,
        max_len: 512,
        epoch_samples: 100_000,
        grouped: true,
    })
}

/// COCO with multi-scale resize (object detection, batch as given).
#[must_use]
pub fn coco(batch_size: usize) -> Dataset {
    Dataset::Vision(CocoLikeDataset::coco(batch_size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_ranges_match_fig3() {
        let cases = [
            (swag(), 35, 141),
            (squad(), 153, 512),
            (glue_qqp(), 30, 332),
            (un_pc(), 17, 460),
        ];
        for (ds, lo, hi) in cases {
            let mut s = ds.stream(99);
            for _ in 0..500 {
                let b = s.next_batch();
                let ext = b.per_sample_extent();
                assert!(
                    (lo..=hi).contains(&ext),
                    "{}: extent {ext} outside [{lo},{hi}]",
                    ds.name()
                );
            }
        }
    }

    #[test]
    fn batch_sizes_match_table2() {
        assert_eq!(swag().batch_size(), 16);
        assert_eq!(squad().batch_size(), 12);
        assert_eq!(glue_qqp().batch_size(), 32);
        assert_eq!(un_pc().batch_size(), 8);
        assert_eq!(coco(8).batch_size(), 8);
        assert_eq!(coco(6).batch_size(), 6);
    }

    #[test]
    fn epochs_contain_thousands_of_iterations() {
        // Table III normalises overhead against epochs of thousands of
        // iterations.
        for ds in [swag(), squad(), glue_qqp(), un_pc(), coco(8)] {
            assert!(ds.iters_per_epoch() > 1000, "{}", ds.name());
        }
    }
}
