//! Per-sample size distributions.
//!
//! Fig 3 of the paper shows that input sizes across datasets "tend to follow
//! a certain probability distribution, such as normal distribution and
//! power-law distribution". These samplers generate per-sample token lengths
//! (or image extents) with the shapes and ranges reported there.

use mimose_rng::Rng;
use mimose_rng::{Distribution, LogNormal, Normal};

/// A bounded distribution over per-sample sizes.
#[derive(Debug, Clone, PartialEq)]
pub enum LengthSampler {
    /// Truncated normal distribution (SWAG-, SQuAD-like).
    Normal {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
        /// Inclusive lower clip.
        min: usize,
        /// Inclusive upper clip.
        max: usize,
    },
    /// Truncated log-normal (power-law-ish tail: QQP-, UN_PC-like).
    LogNormal {
        /// Mean of ln(x).
        mu_ln: f64,
        /// Std-dev of ln(x).
        sigma_ln: f64,
        /// Inclusive lower clip.
        min: usize,
        /// Inclusive upper clip.
        max: usize,
    },
    /// Uniform over an inclusive range (multi-scale resize chooses the short
    /// side uniformly from a pre-defined ladder).
    Uniform {
        /// Inclusive lower bound.
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    },
    /// Discrete choice from an explicit ladder (DETR-style resize steps).
    Ladder {
        /// The candidate values.
        steps: Vec<usize>,
    },
}

impl LengthSampler {
    /// Draw one size.
    ///
    /// # Panics
    ///
    /// Panics when a mixture component has a non-positive sigma.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match self {
            LengthSampler::Normal {
                mu,
                sigma,
                min,
                max,
            } => {
                let d = Normal::new(*mu, *sigma).expect("sigma > 0");
                let v = d.sample(rng).round();
                (v.max(*min as f64) as usize).min(*max)
            }
            LengthSampler::LogNormal {
                mu_ln,
                sigma_ln,
                min,
                max,
            } => {
                let d = LogNormal::new(*mu_ln, *sigma_ln).expect("sigma > 0");
                let v = d.sample(rng).round();
                (v.max(*min as f64) as usize).min(*max)
            }
            LengthSampler::Uniform { min, max } => rng.gen_range(*min..=*max),
            LengthSampler::Ladder { steps } => {
                assert!(!steps.is_empty(), "empty ladder");
                steps[rng.gen_range(0..steps.len())]
            }
        }
    }

    /// Inclusive support bounds (after clipping).
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when the ladder has no steps.
    pub fn bounds(&self) -> (usize, usize) {
        match self {
            LengthSampler::Normal { min, max, .. }
            | LengthSampler::LogNormal { min, max, .. }
            | LengthSampler::Uniform { min, max } => (*min, *max),
            LengthSampler::Ladder { steps } => {
                let lo = *steps.iter().min().expect("empty ladder");
                let hi = *steps.iter().max().expect("empty ladder");
                (lo, hi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_rng::SeedableRng;
    use mimose_rng::StdRng;

    fn draws(s: &LengthSampler, n: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(7);
        (0..n).map(|_| s.sample(&mut rng)).collect()
    }

    #[test]
    fn normal_respects_clip_bounds() {
        let s = LengthSampler::Normal {
            mu: 72.0,
            sigma: 40.0,
            min: 35,
            max: 141,
        };
        let xs = draws(&s, 5000);
        assert!(xs.iter().all(|&x| (35..=141).contains(&x)));
        let mean = xs.iter().sum::<usize>() as f64 / xs.len() as f64;
        assert!((60.0..90.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn lognormal_has_right_tail() {
        let s = LengthSampler::LogNormal {
            mu_ln: 50f64.ln(),
            sigma_ln: 0.5,
            min: 30,
            max: 332,
        };
        let xs = draws(&s, 5000);
        assert!(xs.iter().all(|&x| (30..=332).contains(&x)));
        let median = {
            let mut v = xs.clone();
            v.sort_unstable();
            v[v.len() / 2]
        };
        let p95 = {
            let mut v = xs;
            v.sort_unstable();
            v[(v.len() as f64 * 0.95) as usize]
        };
        // Right-skew: the 95th percentile is far above the median.
        assert!(
            p95 as f64 > 1.8 * median as f64,
            "median {median} p95 {p95}"
        );
    }

    #[test]
    fn ladder_only_emits_steps() {
        let s = LengthSampler::Ladder {
            steps: vec![480, 512, 544, 576, 608],
        };
        let xs = draws(&s, 200);
        assert!(xs.iter().all(|x| [480, 512, 544, 576, 608].contains(x)));
        assert_eq!(s.bounds(), (480, 608));
    }

    #[test]
    fn uniform_covers_range() {
        let s = LengthSampler::Uniform { min: 5, max: 8 };
        let xs = draws(&s, 1000);
        for v in 5..=8 {
            assert!(xs.contains(&v), "missing {v}");
        }
    }
}
