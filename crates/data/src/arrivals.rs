//! Job-arrival processes for the fleet's event-driven serving mode.
//!
//! The paper exploits the fact that *input sizes* arrive as a stochastic
//! process the planner can adapt to; one level up, *jobs* arrive as a
//! stochastic process the scheduler must absorb. An [`ArrivalProcess`]
//! turns a seed into a deterministic, nondecreasing sequence of virtual
//! arrival offsets (nanoseconds on the cluster's event clock), so an
//! event-driven fleet run is reproducible from `(workload, arrivals,
//! faults)` alone.
//!
//! The stochastic variants ride on the same `mimose-rng` machinery as
//! [`LengthSampler`](crate::LengthSampler) — seeded `StdRng` streams and
//! inverse-CDF draws — and [`ArrivalProcess::Sampled`] plugs a
//! `LengthSampler` in directly as an inter-arrival-gap distribution.

use crate::LengthSampler;
use mimose_rng::{Rng, SeedableRng, StdRng};

/// How jobs arrive on the fleet's virtual clock.
///
/// Every variant is a pure function from `(self, n)` to `n` nondecreasing
/// arrival offsets in virtual nanoseconds — no shared stream, no wall
/// clock — so two runs with the same process are byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Every job is present at `t = 0` (the BSP batch-world assumption).
    Immediate,
    /// Poisson arrivals: independent exponential inter-arrival gaps with
    /// the given mean, drawn by inverse CDF from a seeded stream.
    Poisson {
        /// Mean inter-arrival gap in virtual nanoseconds.
        mean_gap_ns: u64,
        /// Seed for the gap stream.
        seed: u64,
    },
    /// A two-phase Markov-modulated Poisson process: the arrival rate
    /// alternates between a calm phase and a burst phase, with
    /// geometrically distributed phase lengths. Models the bursty traffic
    /// of the north-star serving scenario.
    Bursty {
        /// Mean inter-arrival gap during the calm phase, in virtual ns.
        calm_gap_ns: u64,
        /// Mean inter-arrival gap during the burst phase, in virtual ns.
        burst_gap_ns: u64,
        /// Mean number of arrivals per phase before switching (≥ 1).
        mean_phase_len: usize,
        /// Seed for the gap and phase-switch streams.
        seed: u64,
    },
    /// Inter-arrival gaps drawn from a [`LengthSampler`] distribution,
    /// scaled by `unit_ns` — reuses the paper's per-sample size
    /// distributions (normal, log-normal, ladder) as arrival shapes.
    Sampled {
        /// Distribution over gap multiples.
        gaps: LengthSampler,
        /// Virtual nanoseconds per sampled unit.
        unit_ns: u64,
        /// Seed for the gap stream.
        seed: u64,
    },
    /// Replay of an explicit arrival trace: absolute offsets in virtual
    /// nanoseconds, sorted ascending. Jobs beyond the trace extend at the
    /// trace's final inter-arrival gap.
    Trace {
        /// Absolute arrival offsets in virtual nanoseconds.
        offsets_ns: Vec<u64>,
    },
}

impl ArrivalProcess {
    /// All jobs at `t = 0`.
    #[must_use]
    pub fn immediate() -> Self {
        ArrivalProcess::Immediate
    }

    /// Poisson arrivals with the given mean inter-arrival gap.
    #[must_use]
    pub fn poisson(mean_gap_ns: u64, seed: u64) -> Self {
        ArrivalProcess::Poisson { mean_gap_ns, seed }
    }

    /// Bursty (two-phase MMPP) arrivals alternating between calm and
    /// burst rates. `mean_phase_len` is clamped to at least 1.
    #[must_use]
    pub fn bursty(calm_gap_ns: u64, burst_gap_ns: u64, mean_phase_len: usize, seed: u64) -> Self {
        ArrivalProcess::Bursty {
            calm_gap_ns,
            burst_gap_ns,
            mean_phase_len: mean_phase_len.max(1),
            seed,
        }
    }

    /// Inter-arrival gaps drawn from a [`LengthSampler`], `unit_ns` virtual
    /// nanoseconds per sampled unit.
    #[must_use]
    pub fn sampled(gaps: LengthSampler, unit_ns: u64, seed: u64) -> Self {
        ArrivalProcess::Sampled {
            gaps,
            unit_ns,
            seed,
        }
    }

    /// Replay an explicit trace of absolute arrival offsets (sorted here,
    /// so callers may pass them in any order).
    #[must_use]
    pub fn trace(mut offsets_ns: Vec<u64>) -> Self {
        offsets_ns.sort_unstable();
        ArrivalProcess::Trace { offsets_ns }
    }

    /// Parse a trace file: one absolute arrival offset (virtual ns) per
    /// line; blank lines and `#` comments are skipped. Offsets may appear
    /// in any order — they are sorted on construction.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first line that is not a `u64`.
    pub fn parse_trace(text: &str) -> Result<Self, String> {
        let mut offsets = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let ns: u64 = line.parse().map_err(|e| {
                format!(
                    "trace line {}: {:?} is not a u64 ns offset ({e})",
                    i + 1,
                    line
                )
            })?;
            offsets.push(ns);
        }
        Ok(ArrivalProcess::trace(offsets))
    }

    /// Short stable name of the variant ("immediate", "poisson", "bursty",
    /// "sampled", "trace") for reports and CLI round-trips.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Immediate => "immediate",
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Sampled { .. } => "sampled",
            ArrivalProcess::Trace { .. } => "trace",
        }
    }

    /// The first `n` arrival offsets in virtual nanoseconds, nondecreasing.
    /// Pure: the same `(self, n)` always produces the same sequence, and
    /// a longer request is a prefix-extension of a shorter one.
    #[must_use]
    pub fn arrival_ns(&self, n: usize) -> Vec<u64> {
        match self {
            ArrivalProcess::Immediate => vec![0; n],
            ArrivalProcess::Poisson { mean_gap_ns, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut t = 0u64;
                (0..n)
                    .map(|_| {
                        t = t.saturating_add(exp_draw(&mut rng, *mean_gap_ns));
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                calm_gap_ns,
                burst_gap_ns,
                mean_phase_len,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let switch_p = 1.0 / (*mean_phase_len).max(1) as f64;
                let mut calm = true;
                let mut t = 0u64;
                (0..n)
                    .map(|_| {
                        let mean = if calm { *calm_gap_ns } else { *burst_gap_ns };
                        t = t.saturating_add(exp_draw(&mut rng, mean));
                        // Geometric phase lengths: after each arrival the
                        // phase flips with probability 1/mean_phase_len.
                        if rng.gen::<f64>() < switch_p {
                            calm = !calm;
                        }
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Sampled {
                gaps,
                unit_ns,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut t = 0u64;
                (0..n)
                    .map(|_| {
                        let gap = (gaps.sample(&mut rng) as u64).saturating_mul(*unit_ns);
                        t = t.saturating_add(gap);
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Trace { offsets_ns } => {
                if offsets_ns.is_empty() {
                    return vec![0; n];
                }
                let last = offsets_ns[offsets_ns.len() - 1];
                let final_gap = if offsets_ns.len() >= 2 {
                    last - offsets_ns[offsets_ns.len() - 2]
                } else {
                    0
                };
                (0..n)
                    .map(|i| {
                        if i < offsets_ns.len() {
                            offsets_ns[i]
                        } else {
                            let extra = (i - offsets_ns.len() + 1) as u64;
                            last.saturating_add(final_gap.saturating_mul(extra))
                        }
                    })
                    .collect()
            }
        }
    }

    /// Deterministic JSON descriptor (stable field order) so cluster
    /// reports are self-describing about how their jobs arrived.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            ArrivalProcess::Immediate => "{\"kind\":\"immediate\"}".to_string(),
            ArrivalProcess::Poisson { mean_gap_ns, seed } => {
                format!("{{\"kind\":\"poisson\",\"mean_gap_ns\":{mean_gap_ns},\"seed\":{seed}}}")
            }
            ArrivalProcess::Bursty {
                calm_gap_ns,
                burst_gap_ns,
                mean_phase_len,
                seed,
            } => format!(
                "{{\"kind\":\"bursty\",\"calm_gap_ns\":{calm_gap_ns},\
                 \"burst_gap_ns\":{burst_gap_ns},\"mean_phase_len\":{mean_phase_len},\
                 \"seed\":{seed}}}"
            ),
            ArrivalProcess::Sampled { unit_ns, seed, .. } => {
                format!("{{\"kind\":\"sampled\",\"unit_ns\":{unit_ns},\"seed\":{seed}}}")
            }
            ArrivalProcess::Trace { offsets_ns } => {
                format!("{{\"kind\":\"trace\",\"len\":{}}}", offsets_ns.len())
            }
        }
    }
}

/// One exponential draw with the given mean, by inverse CDF, rounded to
/// whole nanoseconds. A zero mean yields zero gaps (back-to-back arrivals).
fn exp_draw<R: Rng + ?Sized>(rng: &mut R, mean_ns: u64) -> u64 {
    // Draw u in [0, 1); 1-u is in (0, 1] so ln() is finite and <= 0.
    let u: f64 = rng.gen();
    let gap = -(1.0 - u).max(f64::MIN_POSITIVE).ln() * mean_ns as f64;
    gap.round().min(u64::MAX as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_is_all_zeros() {
        assert_eq!(ArrivalProcess::immediate().arrival_ns(4), vec![0, 0, 0, 0]);
        assert_eq!(ArrivalProcess::immediate().arrival_ns(0), Vec::<u64>::new());
    }

    #[test]
    fn poisson_is_deterministic_nondecreasing_and_prefix_stable() {
        let p = ArrivalProcess::poisson(1_000_000, 42);
        let a = p.arrival_ns(100);
        let b = p.arrival_ns(100);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Longer requests extend, never rewrite, shorter ones.
        assert_eq!(&p.arrival_ns(150)[..100], &a[..]);
        // The empirical mean gap lands near the configured mean.
        let mean = a[99] as f64 / 100.0;
        assert!(
            (500_000.0..2_000_000.0).contains(&mean),
            "empirical mean gap {mean}"
        );
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let a = ArrivalProcess::poisson(1_000_000, 1).arrival_ns(10);
        let b = ArrivalProcess::poisson(1_000_000, 2).arrival_ns(10);
        assert_ne!(a, b);
    }

    #[test]
    fn bursty_is_denser_than_its_calm_phase() {
        let calm_only = ArrivalProcess::poisson(1_000_000, 9).arrival_ns(200);
        let bursty = ArrivalProcess::bursty(1_000_000, 50_000, 10, 9).arrival_ns(200);
        assert!(bursty.windows(2).all(|w| w[0] <= w[1]));
        // Mixing in a 20x-faster burst phase must compress the horizon.
        assert!(
            bursty[199] < calm_only[199],
            "bursty horizon {} vs calm {}",
            bursty[199],
            calm_only[199]
        );
    }

    #[test]
    fn sampled_rides_a_length_sampler() {
        let p = ArrivalProcess::sampled(LengthSampler::Uniform { min: 2, max: 4 }, 1_000, 7);
        let a = p.arrival_ns(50);
        assert_eq!(a, p.arrival_ns(50));
        assert!(a
            .windows(2)
            .all(|w| w[1] - w[0] >= 2_000 && w[1] - w[0] <= 4_000));
    }

    #[test]
    fn trace_replays_sorts_and_extends() {
        let p = ArrivalProcess::trace(vec![3_000, 1_000, 2_000]);
        // Sorted on construction, extended at the final gap (1000).
        assert_eq!(p.arrival_ns(5), vec![1_000, 2_000, 3_000, 4_000, 5_000]);
        assert_eq!(ArrivalProcess::trace(vec![]).arrival_ns(3), vec![0, 0, 0]);
        assert_eq!(
            ArrivalProcess::trace(vec![500]).arrival_ns(3),
            vec![500, 500, 500]
        );
    }

    #[test]
    fn trace_parser_skips_comments_and_rejects_garbage() {
        let text = "# fleet trace\n1000\n\n  2000 \n# tail\n3000\n";
        let p = ArrivalProcess::parse_trace(text).unwrap();
        assert_eq!(p.arrival_ns(3), vec![1_000, 2_000, 3_000]);
        let err = ArrivalProcess::parse_trace("1000\nnope\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn json_descriptors_are_stable() {
        assert_eq!(
            ArrivalProcess::immediate().to_json(),
            "{\"kind\":\"immediate\"}"
        );
        assert_eq!(
            ArrivalProcess::poisson(5, 1).to_json(),
            "{\"kind\":\"poisson\",\"mean_gap_ns\":5,\"seed\":1}"
        );
        assert_eq!(ArrivalProcess::trace(vec![1, 2]).name(), "trace");
        assert!(ArrivalProcess::bursty(10, 1, 4, 0)
            .to_json()
            .contains("\"mean_phase_len\":4"));
    }
}
