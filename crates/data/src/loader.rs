//! Unified dataset handle + deterministic batch stream.

use crate::{CocoLikeDataset, TextDataset};
use mimose_models::ModelInput;
use mimose_rng::SeedableRng;
use mimose_rng::StdRng;

/// Any dataset in the evaluation suite.
#[derive(Debug, Clone)]
pub enum Dataset {
    /// NLP dataset (SWAG, SQuAD, GLUE-QQP, UN_PC).
    Text(TextDataset),
    /// Detection dataset (COCO with multi-scale resize).
    Vision(CocoLikeDataset),
}

impl Dataset {
    /// Dataset name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Dataset::Text(d) => &d.name,
            Dataset::Vision(d) => &d.name,
        }
    }

    /// Mini-batch size in samples.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        match self {
            Dataset::Text(d) => d.batch_size,
            Dataset::Vision(d) => d.batch_size,
        }
    }

    /// Iterations per epoch.
    #[must_use]
    pub fn iters_per_epoch(&self) -> usize {
        match self {
            Dataset::Text(d) => d.iters_per_epoch(),
            Dataset::Vision(d) => d.iters_per_epoch(),
        }
    }

    /// Worst-case collated input, used by static planners.
    #[must_use]
    pub fn worst_case(&self) -> ModelInput {
        match self {
            Dataset::Text(d) => d.worst_case(),
            Dataset::Vision(d) => d.worst_case(),
        }
    }

    /// Open a deterministic batch stream with the given seed.
    #[must_use]
    pub fn stream(&self, seed: u64) -> BatchStream<'_> {
        BatchStream {
            dataset: self,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

/// Deterministic, infinite stream of collated mini-batches.
pub struct BatchStream<'a> {
    dataset: &'a Dataset,
    rng: StdRng,
}

impl BatchStream<'_> {
    /// Draw the next collated batch.
    pub fn next_batch(&mut self) -> ModelInput {
        match self.dataset {
            Dataset::Text(d) => d.next_batch(&mut self.rng),
            Dataset::Vision(d) => d.next_batch(&mut self.rng),
        }
    }

    /// Draw `n` batches.
    pub fn take_batches(&mut self, n: usize) -> Vec<ModelInput> {
        (0..n).map(|_| self.next_batch()).collect()
    }
}

impl Iterator for BatchStream<'_> {
    type Item = ModelInput;
    fn next(&mut self) -> Option<ModelInput> {
        Some(self.next_batch())
    }
}

#[cfg(test)]
mod tests {

    use crate::presets;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let ds = presets::swag();
        let a = ds.stream(42).take_batches(20);
        let b = ds.stream(42).take_batches(20);
        assert_eq!(a, b);
        let c = ds.stream(43).take_batches(20);
        assert_ne!(a, c);
    }

    #[test]
    fn worst_case_bounds_stream() {
        for ds in [presets::swag(), presets::squad(), presets::glue_qqp()] {
            let wc = ds.worst_case().input_size();
            let mut s = ds.stream(1);
            for _ in 0..300 {
                assert!(s.next_batch().input_size() <= wc, "{}", ds.name());
            }
        }
    }
}
